//! Microbench: raw engine overheads — one RDD job vs one MapReduce job over
//! the same small input. Measures the *simulator's* real cost per job (wall
//! time), complementing the virtual-time figures.

use yafim_bench::microbench::{bench, black_box, header};
use yafim_cluster::{ClusterSpec, CostModel, SimCluster};
use yafim_mapreduce::{Emitter, MapReduceJob, MrRunner};
use yafim_rdd::Context;

fn small_cluster() -> SimCluster {
    SimCluster::with_threads(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era(), 1)
}

fn lines(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("{} {} {}", i % 50, i % 31, i % 17))
        .collect()
}

fn main() {
    header("engine_wordcount_10k_lines");

    {
        let cluster = small_cluster();
        cluster.hdfs().put_overwrite("in.txt", lines(10_000));
        let ctx = Context::new(cluster);
        bench("rdd", 10, || {
            let out = ctx
                .text_file("in.txt", 16)
                .expect("exists")
                .flat_map(|l: String| l.split_whitespace().map(str::to_string).collect::<Vec<_>>())
                .map(|w| (w, 1u64))
                .reduce_by_key(|a, b| a + b)
                .collect();
            black_box(out.len())
        });
    }

    {
        let cluster = small_cluster();
        cluster.hdfs().put_overwrite("in.txt", lines(10_000));
        let runner = MrRunner::new(cluster);
        bench("mapreduce", 10, || {
            let job = MapReduceJob::new(
                "wc",
                "in.txt",
                |_o, line: &str, em: &mut Emitter<String, u64>, _w| {
                    for w in line.split_whitespace() {
                        em.emit(w.to_string(), 1);
                    }
                },
                |k: &String, vs: Vec<u64>, em: &mut Emitter<String, u64>, _w| {
                    em.emit(k.clone(), vs.into_iter().sum())
                },
            )
            .with_combiner(|_k: &String, vs: Vec<u64>| vs.into_iter().sum());
            let out = runner.run(job).expect("input exists");
            black_box(out.pairs.len())
        });
    }
}
