//! Criterion microbench: raw engine overheads — one RDD job vs one
//! MapReduce job over the same small input. Measures the *simulator's* real
//! cost per job (wall time), complementing the virtual-time figures.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yafim_cluster::{ClusterSpec, CostModel, SimCluster};
use yafim_mapreduce::{Emitter, MapReduceJob, MrRunner};
use yafim_rdd::Context;

fn small_cluster() -> SimCluster {
    SimCluster::with_threads(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era(), 1)
}

fn lines(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{} {} {}", i % 50, i % 31, i % 17)).collect()
}

fn bench_rdd_job(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_wordcount_10k_lines");
    g.sample_size(10);

    g.bench_function("rdd", |b| {
        let cluster = small_cluster();
        cluster.hdfs().put_overwrite("in.txt", lines(10_000));
        let ctx = Context::new(cluster);
        b.iter(|| {
            let out = ctx
                .text_file("in.txt", 16)
                .expect("exists")
                .flat_map(|l: String| {
                    l.split_whitespace().map(str::to_string).collect::<Vec<_>>()
                })
                .map(|w| (w, 1u64))
                .reduce_by_key(|a, b| a + b)
                .collect();
            black_box(out.len())
        })
    });

    g.bench_function("mapreduce", |b| {
        let cluster = small_cluster();
        cluster.hdfs().put_overwrite("in.txt", lines(10_000));
        let runner = MrRunner::new(cluster);
        b.iter(|| {
            let job = MapReduceJob::new(
                "wc",
                "in.txt",
                |_o, line: &str, em: &mut Emitter<String, u64>, _w| {
                    for w in line.split_whitespace() {
                        em.emit(w.to_string(), 1);
                    }
                },
                |k: &String, vs: Vec<u64>, em: &mut Emitter<String, u64>, _w| {
                    em.emit(k.clone(), vs.into_iter().sum())
                },
            )
            .with_combiner(|_k: &String, vs: Vec<u64>| vs.into_iter().sum());
            let out = runner.run(job).expect("input exists");
            black_box(out.pairs.len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_rdd_job);
criterion_main!(benches);
