//! Microbench: `ap_gen` candidate generation (join + prune), the
//! driver-side step of every YAFIM pass.

use yafim_bench::microbench::{bench, black_box, header};
use yafim_core::{ap_gen, Itemset};

/// All 2-itemsets over `n` items — the worst-case dense L2.
fn dense_l2(n: u32) -> Vec<Itemset> {
    let mut out = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            out.push(Itemset::from_sorted(vec![a, b]));
        }
    }
    out
}

/// Sparse L3: grouped 3-itemsets with shared prefixes.
fn sparse_l3(groups: u32) -> Vec<Itemset> {
    let mut out = Vec::new();
    for g in 0..groups {
        let base = g * 10;
        for x in 2..7u32 {
            out.push(Itemset::from_sorted(vec![base, base + 1, base + x]));
        }
    }
    out
}

fn main() {
    header("ap_gen");
    for &n in &[30u32, 60, 120] {
        let l2 = dense_l2(n);
        bench(&format!("dense_l2/{}", l2.len()), 20, || {
            ap_gen(black_box(&l2))
        });
    }
    for &groups in &[100u32, 1000] {
        let l3 = sparse_l3(groups);
        bench(&format!("sparse_l3/{}", l3.len()), 20, || {
            ap_gen(black_box(&l3))
        });
    }
}
