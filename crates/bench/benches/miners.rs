//! Criterion microbench: the single-node miners (sequential Apriori, Eclat,
//! FP-Growth) on a scaled-down MushRoom profile — the classic algorithm
//! comparison backing the paper's related-work discussion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yafim_core::{apriori, eclat, fp_growth, SequentialConfig, Support};
use yafim_data::PaperDataset;

fn bench_miners(c: &mut Criterion) {
    let tx = PaperDataset::Mushroom.generate_scaled(0.05);
    let support = Support::Fraction(0.35);

    let mut g = c.benchmark_group("miners_mushroom_5pct");
    g.sample_size(10);
    g.bench_function("apriori", |b| {
        let cfg = SequentialConfig::new(support);
        b.iter(|| black_box(apriori(&tx, &cfg).total()))
    });
    g.bench_function("eclat", |b| {
        b.iter(|| black_box(eclat(&tx, support).total()))
    });
    g.bench_function("fp_growth", |b| {
        b.iter(|| black_box(fp_growth(&tx, support).total()))
    });
    g.finish();
}

criterion_group!(benches, bench_miners);
criterion_main!(benches);
