//! Microbench: the single-node miners (sequential Apriori, Eclat,
//! FP-Growth) on a scaled-down MushRoom profile — the classic algorithm
//! comparison backing the paper's related-work discussion.

use yafim_bench::microbench::{bench, black_box, header};
use yafim_core::{apriori, eclat, fp_growth, SequentialConfig, Support};
use yafim_data::PaperDataset;

fn main() {
    let tx = PaperDataset::Mushroom.generate_scaled(0.05);
    let support = Support::Fraction(0.35);

    header("miners_mushroom_5pct");
    let cfg = SequentialConfig::new(support);
    bench("apriori", 10, || black_box(apriori(&tx, &cfg).total()));
    bench("eclat", 10, || black_box(eclat(&tx, support).total()));
    bench("fp_growth", 10, || {
        black_box(fp_growth(&tx, support).total())
    });
}
