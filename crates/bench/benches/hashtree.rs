//! Microbench: hash-tree construction and subset matching vs the naive
//! scan — the data-structure half of YAFIM's Phase II.

use yafim_bench::microbench::{bench, black_box, header};
use yafim_core::{HashTree, Itemset, MatchScratch};
use yafim_data::rng::StdRng;

fn candidates(n: usize, k: usize, universe: u32, seed: u64) -> Vec<Itemset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = std::collections::HashSet::new();
    while out.len() < n {
        let mut items = Vec::with_capacity(k);
        while items.len() < k {
            let i = rng.gen_range(0..universe);
            if !items.contains(&i) {
                items.push(i);
            }
        }
        out.insert(Itemset::new(items));
    }
    out.into_iter().collect()
}

fn transactions(n: usize, len: usize, universe: u32, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut t: Vec<u32> = (0..len * 2).map(|_| rng.gen_range(0..universe)).collect();
            t.sort_unstable();
            t.dedup();
            t.truncate(len);
            t
        })
        .collect()
}

fn main() {
    header("hashtree_build");
    for &n in &[1_000usize, 10_000, 50_000] {
        let cands = candidates(n, 3, 500, 1);
        bench(&format!("build/{n}"), 20, || {
            HashTree::build(black_box(cands.clone()))
        });
    }

    header("hashtree_match_1k_tx");
    let txs = transactions(1_000, 20, 500, 2);
    for &n in &[1_000usize, 10_000] {
        let tree = HashTree::build(candidates(n, 3, 500, 1));
        bench(&format!("tree/{n}"), 10, || {
            let mut scratch = MatchScratch::default();
            let mut hits = 0u64;
            for t in &txs {
                tree.for_each_match(t, &mut scratch, |_| hits += 1);
            }
            black_box(hits)
        });
        bench(&format!("naive/{n}"), 10, || {
            let mut hits = 0usize;
            for t in &txs {
                hits += tree.matches_naive(t).len();
            }
            black_box(hits)
        });
    }
}
