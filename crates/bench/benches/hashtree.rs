//! Criterion microbench: hash-tree construction and subset matching vs the
//! naive scan — the data-structure half of YAFIM's Phase II.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use yafim_core::{HashTree, Itemset, MatchScratch};

fn candidates(n: usize, k: usize, universe: u32, seed: u64) -> Vec<Itemset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = std::collections::HashSet::new();
    while out.len() < n {
        let mut items = Vec::with_capacity(k);
        while items.len() < k {
            let i = rng.gen_range(0..universe);
            if !items.contains(&i) {
                items.push(i);
            }
        }
        out.insert(Itemset::new(items));
    }
    out.into_iter().collect()
}

fn transactions(n: usize, len: usize, universe: u32, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut t: Vec<u32> = (0..len * 2).map(|_| rng.gen_range(0..universe)).collect();
            t.sort_unstable();
            t.dedup();
            t.truncate(len);
            t
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashtree_build");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000, 50_000] {
        let cands = candidates(n, 3, 500, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &cands, |b, cands| {
            b.iter(|| HashTree::build(black_box(cands.clone())))
        });
    }
    g.finish();
}

fn bench_match(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashtree_match_1k_tx");
    g.sample_size(10);
    let txs = transactions(1_000, 20, 500, 2);
    for &n in &[1_000usize, 10_000] {
        let tree = HashTree::build(candidates(n, 3, 500, 1));
        g.bench_function(BenchmarkId::new("tree", n), |b| {
            b.iter(|| {
                let mut scratch = MatchScratch::default();
                let mut hits = 0u64;
                for t in &txs {
                    tree.for_each_match(t, &mut scratch, |_| hits += 1);
                }
                black_box(hits)
            })
        });
        g.bench_function(BenchmarkId::new("naive", n), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for t in &txs {
                    hits += tree.matches_naive(t).len();
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_match);
criterion_main!(benches);
