//! Microbench: vertical TID-bitmap counting vs trie matching — the two
//! `k ≥ 3` Phase-II strategies, head to head on the raw kernel.
//!
//! The bitmap side intersects one `u64` row per candidate item and
//! popcounts the final level (with the prefix-reuse scratch exploiting the
//! sorted candidate order); the trie side walks every transaction through
//! the candidate trie. Two density regimes bound the crossover:
//!
//! * **dense** — QUEST-like: small alphabet, long transactions (~25% of
//!   the rows set), the regime the columnar layout targets;
//! * **sparse** — T10-like: wide alphabet, short transactions (~2% set),
//!   where most intersected words are zero and the trie's early exits
//!   shine.
//!
//! Also prints the [`CostModel::bitmap_build`] virtual estimate next to
//! the measured build time, so the simulator's charge can be sanity-checked
//! against the real kernel.

use yafim_bench::microbench::{bench, black_box, header};
use yafim_cluster::CostModel;
use yafim_core::{BitmapScratch, CandidateTrie, ColumnarPartition, Itemset};
use yafim_data::rng::StdRng;

/// Dense-encoded transactions: `n` sorted, deduped draws over `0..items`.
fn transactions(n: usize, len: usize, items: u32, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut t: Vec<u32> = (0..len * 2).map(|_| rng.gen_range(0..items)).collect();
            t.sort_unstable();
            t.dedup();
            t.truncate(len);
            t
        })
        .collect()
}

/// `n` distinct k-itemsets over `0..items`, sorted like `ap_gen` output so
/// the bitmap's prefix-reuse scratch sees realistic candidate ordering.
fn candidates(n: usize, k: usize, items: u32, seed: u64) -> Vec<Itemset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = std::collections::HashSet::new();
    while out.len() < n {
        let mut picks = Vec::with_capacity(k);
        while picks.len() < k {
            let i = rng.gen_range(0..items);
            if !picks.contains(&i) {
                picks.push(i);
            }
        }
        out.insert(Itemset::new(picks));
    }
    let mut sorted: Vec<Itemset> = out.into_iter().collect();
    sorted.sort();
    sorted
}

fn regime(name: &str, txs: &[Vec<u32>], items: u32, cands: &[Itemset]) {
    let col = ColumnarPartition::build(items as usize, txs);
    let set_bits: u64 = (0..col.n_items())
        .map(|r| {
            col.row(r)
                .iter()
                .map(|w| w.count_ones() as u64)
                .sum::<u64>()
        })
        .sum();
    let density = set_bits as f64 / (64 * col.arena_words()) as f64;
    let virt = CostModel::hadoop_era().bitmap_build(col.arena_words() as u64, set_bits);
    println!(
        "\n-- {name}: {} tx, {items} items, density {:.1}%, |C| = {} \
         (virtual build estimate: {virt}) --",
        txs.len(),
        density * 100.0,
        cands.len()
    );

    header(&format!("{name}/build"));
    bench("columnar build", 20, || {
        ColumnarPartition::build(items as usize, black_box(txs))
    });
    bench("trie build", 20, || {
        CandidateTrie::build(black_box(cands.to_vec()))
    });

    header(&format!("{name}/count"));
    bench("bitmap intersect+popcount", 20, || {
        let mut scratch = BitmapScratch::default();
        let mut hits = 0u64;
        let words = col.count_candidates(cands, &mut scratch, &mut |_, c| hits += c);
        black_box((words, hits))
    });
    let trie = CandidateTrie::build(cands.to_vec());
    bench("trie per-transaction match", 20, || {
        let mut counts = vec![0u64; cands.len()];
        let mut visits = 0u64;
        for t in txs {
            visits += trie.for_each_match(t, &mut |i| counts[i] += 1);
        }
        black_box((visits, counts))
    });
}

fn main() {
    // Dense: QUEST-style regime where pass-3+ candidates stay numerous.
    let dense_items = 120u32;
    let dense_txs = transactions(4_000, 30, dense_items, 1);
    let dense_cands = candidates(20_000, 3, dense_items, 2);
    regime("dense", &dense_txs, dense_items, &dense_cands);

    // Sparse: T10-style regime — wide alphabet, short transactions.
    let sparse_items = 500u32;
    let sparse_txs = transactions(4_000, 10, sparse_items, 3);
    let sparse_cands = candidates(20_000, 3, sparse_items, 4);
    regime("sparse", &sparse_txs, sparse_items, &sparse_cands);
}
