//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §4 and `EXPERIMENTS.md`); this library holds the common
//! plumbing: building clusters, loading datasets onto simulated HDFS,
//! running both miners, and printing aligned series.

pub mod microbench;

use yafim_cluster::{ClusterSpec, CostModel, SimCluster};
use yafim_core::{MinerRun, MrApriori, MrAprioriConfig, Support, Yafim, YafimConfig};
use yafim_data::{to_lines, PaperDataset, Transaction};
use yafim_rdd::Context;

/// Build the paper's cluster (or a resized one) with experiment settings.
///
/// HDFS keeps its real 64 MiB default block size. This matters for fidelity:
/// the benchmark datasets are megabytes, so a stock Hadoop deployment hands
/// MapReduce only one or two map tasks per job — a large part of why the
/// paper's MR baseline scales so poorly and grows linearly under
/// replication, while Spark (whose `textFile(path, minPartitions)` splits
/// below block granularity) keeps the whole cluster busy.
pub fn experiment_cluster(spec: ClusterSpec) -> SimCluster {
    SimCluster::new(spec, CostModel::hadoop_era())
}

/// Write a dataset onto a cluster's HDFS under `name`.
pub fn load_dataset(cluster: &SimCluster, name: &str, transactions: &[Transaction]) {
    cluster.hdfs().put_overwrite(name, to_lines(transactions));
}

/// Run YAFIM on a fresh paper-shaped cluster over `transactions`.
pub fn run_yafim(spec: ClusterSpec, transactions: &[Transaction], support: Support) -> MinerRun {
    run_yafim_profiled(spec, transactions, support).0
}

/// Like [`run_yafim`], but also hand back the cluster so callers can read
/// its metrics (span log, per-stage report, Chrome trace) after the run.
pub fn run_yafim_profiled(
    spec: ClusterSpec,
    transactions: &[Transaction],
    support: Support,
) -> (MinerRun, SimCluster) {
    let cluster = experiment_cluster(spec);
    load_dataset(&cluster, "input.dat", transactions);
    let ctx = Context::new(cluster.clone());
    let run = Yafim::new(ctx, YafimConfig::new(support))
        .mine("input.dat")
        .expect("input.dat was just written");
    (run, cluster)
}

/// Run MR-Apriori (SPC) on a fresh paper-shaped cluster.
pub fn run_mr(spec: ClusterSpec, transactions: &[Transaction], support: Support) -> MinerRun {
    run_mr_profiled(spec, transactions, support).0
}

/// Like [`run_mr`], but also hand back the cluster for metrics inspection.
pub fn run_mr_profiled(
    spec: ClusterSpec,
    transactions: &[Transaction],
    support: Support,
) -> (MinerRun, SimCluster) {
    let cluster = experiment_cluster(spec);
    load_dataset(&cluster, "input.dat", transactions);
    let run = MrApriori::new(cluster.clone(), MrAprioriConfig::new(support))
        .mine("input.dat")
        .expect("input.dat was just written");
    (run, cluster)
}

/// Generated dataset with its paper metadata, shared by the binaries.
pub struct BenchDataset {
    /// Which paper dataset this is.
    pub dataset: PaperDataset,
    /// Display name.
    pub name: &'static str,
    /// Paper support threshold.
    pub support: Support,
    /// The generated transactions.
    pub transactions: Vec<Transaction>,
}

/// Generate one benchmark dataset at `scale` (1.0 = Table I size).
pub fn bench_dataset(dataset: PaperDataset, scale: f64) -> BenchDataset {
    let profile = dataset.profile();
    BenchDataset {
        dataset,
        name: profile.name,
        support: Support::Fraction(profile.support),
        transactions: dataset.generate_scaled(scale),
    }
}

/// The four Table I benchmarks at `scale`.
pub fn all_benchmarks(scale: f64) -> Vec<BenchDataset> {
    PaperDataset::benchmarks()
        .into_iter()
        .map(|d| bench_dataset(d, scale))
        .collect()
}

/// Print a per-pass comparison of two runs as an aligned text table
/// (the paper's Fig. 3 / Fig. 6 panels, one row per pass).
pub fn print_pass_table(title: &str, yafim: &MinerRun, mr: &MinerRun) {
    println!("\n== {title} ==");
    println!(
        "{:>4}  {:>12}  {:>12}  {:>8}  {:>10}  {:>10}",
        "pass", "YAFIM (s)", "MR (s)", "speedup", "candidates", "frequent"
    );
    let passes = yafim.passes.len().max(mr.passes.len());
    for i in 0..passes {
        let y = yafim.passes.get(i);
        let m = mr.passes.get(i);
        let ys = y.map_or(f64::NAN, |p| p.seconds);
        let ms = m.map_or(f64::NAN, |p| p.seconds);
        println!(
            "{:>4}  {:>12.2}  {:>12.2}  {:>7.1}x  {:>10}  {:>10}",
            i + 1,
            ys,
            ms,
            ms / ys,
            y.or(m).map_or(0, |p| p.candidates),
            y.or(m).map_or(0, |p| p.frequent),
        );
    }
    println!(
        "{:>4}  {:>12.2}  {:>12.2}  {:>7.1}x   total frequent itemsets: {}",
        "all",
        yafim.total_seconds,
        mr.total_seconds,
        mr.total_seconds / yafim.total_seconds,
        yafim.result.total()
    );
}

/// Write a [`RunManifest`] as a JSON document at `path`, creating parent
/// directories as needed. Smoke runs write under `target/manifests/` (the
/// regression gate compares them against the committed baselines in
/// `results/`); full runs write next to the text reports in `results/`.
pub fn write_manifest(manifest: &yafim_cluster::RunManifest, path: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("create {}: {e}", parent.display()));
        }
    }
    std::fs::write(path, format!("{}\n", manifest.to_json()))
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
}

/// Assert both miners found identical itemsets — the paper's correctness
/// check ("all the experimental results of YAFIM are exactly same as
/// MRApriori"). Panics with a diagnostic on mismatch.
pub fn assert_same_results(name: &str, yafim: &MinerRun, mr: &MinerRun) {
    assert_eq!(
        yafim.result.level_sizes(),
        mr.result.level_sizes(),
        "{name}: level sizes diverge"
    );
    assert_eq!(yafim.result, mr.result, "{name}: itemsets diverge");
}
