//! Minimal wall-clock microbenchmark harness.
//!
//! The workspace builds with no external crates, so the `benches/` targets
//! use this instead of criterion: run a closure for a warmup pass plus a
//! fixed number of samples and print min / median / max wall time. Good
//! enough to compare data structures and spot order-of-magnitude
//! regressions; not a statistics suite.

use std::time::Instant;

/// Re-export of [`std::hint::black_box`] for benchmark bodies.
pub use std::hint::black_box;

/// Time `f` for `samples` iterations (after one warmup) and print one
/// aligned result line under `name`.
pub fn bench<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) {
    let samples = samples.max(1);
    black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    let min = times[0];
    let median = times[times.len() / 2];
    let max = times[times.len() - 1];
    println!(
        "{name:<44} {:>10}  {:>10}  {:>10}   ({samples} samples)",
        fmt_secs(min),
        fmt_secs(median),
        fmt_secs(max),
    );
}

/// Print the header matching [`bench`]'s output columns.
pub fn header(group: &str) {
    println!("\n== {group} ==");
    println!(
        "{:<44} {:>10}  {:>10}  {:>10}",
        "benchmark", "min", "median", "max"
    );
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}
