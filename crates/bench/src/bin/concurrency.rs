//! Concurrent-jobs benchmark for the multi-job scheduler: dozens of
//! simultaneous mining jobs share one [`JobQueue`] across fair and FIFO
//! pools, on clusters swept from 100 to 1000 nodes.
//!
//! What it proves (each is asserted, not just reported):
//!
//! * **Byte-identical results** — every concurrent job finds exactly the
//!   itemsets a solo run on an unbound cluster finds. Pool grants and queue
//!   waits move only virtual time, never data.
//! * **Fair shares track weights** — the `interactive` (weight 2) and
//!   `batch` (weight 1) pools receive node grants within 10 % of the 2:1
//!   weight ratio at every sweep point.
//! * **FIFO pools serialize** — `etl` jobs run one at a time; successors
//!   charge their wait to the `scheduler_queue` critical-path bucket, and
//!   the bucket sum still tiles each job's makespan within 1e-6.
//! * **Scheduler overhead is sublinear** — placement decision units grow
//!   far slower than cluster size across the 100→1000-node sweep (the
//!   lazy-deletion heap replaces the old per-task linear core scan).
//! * **Independent fault recovery** — one batch job runs under a seeded
//!   node-loss plan; it recovers alone (its recovery counters move, every
//!   other job's stay zero) and still matches the solo results.
//!
//! Output: stdout report; full runs also write `results/concurrency.txt`
//! and `results/concurrency.manifest.json`. Smoke runs write
//! `target/manifests/concurrency.smoke.manifest.json`, gated by CI against
//! the committed `results/concurrency.smoke.manifest.json`.
//!
//! `--unfair` is a gate self-test: it deliberately misconfigures the pool
//! weights to 1:1 (a 2:1 skew against the committed baseline) and writes
//! `target/manifests/concurrency.unfair.manifest.json`; CI asserts the
//! bench gate *fails* that manifest against the fair baseline.
//!
//! Usage: `cargo run -p yafim-bench --release --bin concurrency [--smoke] [--unfair]`

use std::fmt::Write as _;
use yafim_bench::write_manifest;
use yafim_cluster::json::JsonValue;
use yafim_cluster::{
    critical_path, ClusterSpec, CostModel, FaultPlan, JobQueue, NodeId, PoolSpec, RunManifest,
    SimCluster, SimDuration, SimInstant,
};
use yafim_core::{MiningResult, Support, Yafim, YafimConfig};
use yafim_rdd::Context;

/// splitmix64 — deterministic synthetic data without a rand crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Synthetic market-basket transactions: `n` baskets over a 40-item
/// alphabet with a popularity skew, so multi-pass mining has real L2/L3s.
fn synthetic_transactions(n: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = Rng(seed);
    (0..n)
        .map(|_| {
            let len = 4 + (rng.next() % 8) as usize;
            let mut t: Vec<u32> = (0..len)
                .map(|_| {
                    let r = rng.next() % 100;
                    // Popular items 1..=8 dominate; the tail is sparse.
                    if r < 70 {
                        1 + (rng.next() % 8) as u32
                    } else {
                        9 + (rng.next() % 32) as u32
                    }
                })
                .collect();
            t.sort_unstable();
            t.dedup();
            t
        })
        .collect()
}

/// One job in the fleet.
#[derive(Clone)]
struct JobDef {
    pool: &'static str,
    name: String,
    /// Seeded node-loss plan (the independent-recovery probe).
    faulted: bool,
}

/// What one finished job reports back to the driver.
struct JobOutcome {
    def: JobDef,
    result: MiningResult,
    /// Final virtual time of the job's cluster.
    makespan: f64,
    /// Critical-path bucket sum (must tile `makespan`).
    bucket_sum: f64,
    /// Queue wait attributed by the critical path.
    scheduler_queue: f64,
    /// Placement decision units the job spent.
    decision_units: u64,
    /// Nodes the job lost to its fault plan.
    nodes_lost: u64,
    /// Executor grant `(node_lo, node_count)`.
    grant: (usize, usize),
}

fn cluster_for(nodes: u32) -> SimCluster {
    // Two real threads per job keeps a 24-job fleet from oversubscribing
    // the host; virtual cores are what the scheduler sees.
    SimCluster::with_threads(
        ClusterSpec::new(nodes, 8, 24 * 1024 * 1024 * 1024),
        CostModel::hadoop_era(),
        2,
    )
}

fn mining_config(pool: &str) -> YafimConfig {
    let mut cfg = YafimConfig::new(Support::Count(40));
    // Fixed partitioning: real work must not scale with the virtual node
    // count (the sweep varies only scheduling, never the data).
    cfg.min_partitions = 32;
    cfg.max_passes = 3;
    cfg.pool = pool.to_string();
    cfg
}

/// Run one job bound to its queue ticket, on its own virtual cluster.
fn run_job(
    nodes: u32,
    def: JobDef,
    ticket: yafim_cluster::JobTicket,
    lines: Vec<String>,
) -> JobOutcome {
    let c = cluster_for(nodes);
    c.hdfs().put_overwrite("input.dat", lines);
    if def.faulted {
        // Lose a node from this job's own grant mid-run; recovery must be
        // invisible to every other job in the fleet.
        let (lo, _) = ticket.grant();
        c.faults().set_plan(FaultPlan::seeded(11).lose_node_at(
            NodeId(lo as u32),
            SimInstant::EPOCH + SimDuration::from_secs(0.05),
        ));
    }
    let grant = ticket.grant();
    c.attach_job(&ticket);
    let run = Yafim::new(Context::new(c.clone()), mining_config(def.pool))
        .mine("input.dat")
        .expect("input.dat was just written");
    let report = critical_path(c.metrics(), c.cost());
    JobOutcome {
        def,
        result: run.result,
        makespan: report.makespan,
        bucket_sum: report.buckets.total(),
        scheduler_queue: report.buckets.scheduler_queue,
        decision_units: c.registry().counter("sched.decision_units").get(),
        nodes_lost: c.metrics().snapshot().recovery.nodes_lost,
        grant,
    }
}

/// The job mix: `per_pool` jobs in each of the two fair pools plus
/// `per_pool / 2 + 1` FIFO etl jobs. One batch job carries a fault plan.
fn fleet(per_pool: usize) -> Vec<JobDef> {
    let mut jobs = Vec::new();
    for i in 0..per_pool {
        jobs.push(JobDef {
            pool: "interactive",
            name: format!("interactive-{i}"),
            faulted: false,
        });
        jobs.push(JobDef {
            pool: "batch",
            name: format!("batch-{i}"),
            faulted: i == 0,
        });
    }
    for i in 0..per_pool / 2 + 1 {
        jobs.push(JobDef {
            pool: "etl",
            name: format!("etl-{i}"),
            faulted: false,
        });
    }
    jobs
}

struct SweepPoint {
    nodes: u32,
    outcomes: Vec<JobOutcome>,
    interactive_nodes: usize,
    batch_nodes: usize,
    fair_ratio: f64,
    /// Decision units spent by fault-free jobs (the heap path).
    total_decision_units: u64,
    /// Decision units spent by the faulted probe job (fault path).
    faulted_decision_units: u64,
    jobs_submitted: u64,
    jobs_completed: u64,
}

/// Run the whole fleet concurrently at one cluster size.
fn run_sweep_point(nodes: u32, jobs: &[JobDef], lines: &[String], unfair: bool) -> SweepPoint {
    let queue = JobQueue::new(nodes);
    // The fair pools whose 2:1 weight split the bench asserts — or a
    // deliberately mis-weighted 1:1 split under `--unfair`, planted so CI
    // can prove the regression gate catches a fair-share skew.
    let interactive_weight = if unfair { 1.0 } else { 2.0 };
    queue.add_pool(PoolSpec::fair("interactive", interactive_weight));
    queue.add_pool(PoolSpec::fair("batch", 1.0));
    queue.add_pool(PoolSpec::fifo("etl", 1.0));

    // Determinism contract: submit every job before any thread binds, so
    // grants are a pure function of the submitted set.
    let tickets: Vec<_> = jobs.iter().map(|j| queue.submit(j.pool, &j.name)).collect();

    let handles: Vec<_> = jobs
        .iter()
        .zip(tickets)
        .map(|(def, ticket)| {
            let def = def.clone();
            let lines = lines.to_vec();
            std::thread::spawn(move || run_job(nodes, def, ticket, lines))
        })
        .collect();
    let outcomes: Vec<JobOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Pool widths from the union of member grants (fair pools lay members
    // out inside one contiguous pool range).
    let pool_width = |pool: &str| -> usize {
        let spans: Vec<(usize, usize)> = outcomes
            .iter()
            .filter(|o| o.def.pool == pool)
            .map(|o| o.grant)
            .collect();
        let lo = spans.iter().map(|&(l, _)| l).min().unwrap_or(0);
        let hi = spans.iter().map(|&(l, c)| l + c).max().unwrap_or(0);
        hi - lo
    };
    let interactive_nodes = pool_width("interactive");
    let batch_nodes = pool_width("batch");

    SweepPoint {
        nodes,
        interactive_nodes,
        batch_nodes,
        fair_ratio: interactive_nodes as f64 / batch_nodes.max(1) as f64,
        // The sublinearity claim is about the heap placement path; the
        // fault-recovery scheduler still honestly counts its linear scans,
        // so the faulted probe job is tracked separately.
        total_decision_units: outcomes
            .iter()
            .filter(|o| !o.def.faulted)
            .map(|o| o.decision_units)
            .sum(),
        faulted_decision_units: outcomes
            .iter()
            .filter(|o| o.def.faulted)
            .map(|o| o.decision_units)
            .sum(),
        jobs_submitted: queue.jobs_submitted(),
        jobs_completed: queue.jobs_completed(),
        outcomes,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let unfair = std::env::args().any(|a| a == "--unfair");
    let per_pool = if smoke { 2 } else { 8 };
    let sweep: &[u32] = if smoke {
        &[100, 1000]
    } else {
        &[100, 250, 500, 1000]
    };
    let jobs = fleet(per_pool);

    let tx = synthetic_transactions(400, 42);
    let lines: Vec<String> = tx
        .iter()
        .map(|t| t.iter().map(u32::to_string).collect::<Vec<_>>().join(" "))
        .collect();

    // The solo reference: same dataset, same config, unbound cluster.
    // Every concurrent job must reproduce it byte for byte.
    let solo = {
        let c = cluster_for(sweep[0]);
        c.hdfs().put_overwrite("input.dat", lines.clone());
        Yafim::new(Context::new(c), mining_config("default"))
            .mine("input.dat")
            .expect("input.dat was just written")
            .result
    };

    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Concurrent jobs: {} jobs (interactive w=2 fair, batch w=1 fair, etl FIFO) ==",
        jobs.len()
    );
    let _ = writeln!(
        report,
        "{:>6} {:>12} {:>12} {:>10} {:>16} {:>10}",
        "nodes", "interactive", "batch", "ratio", "decision units", "jobs"
    );

    let points: Vec<SweepPoint> = sweep
        .iter()
        .map(|&nodes| run_sweep_point(nodes, &jobs, &lines, unfair))
        .collect();

    for p in &points {
        let _ = writeln!(
            report,
            "{:>6} {:>12} {:>12} {:>10.3} {:>16} {:>7}/{:<3}",
            p.nodes,
            p.interactive_nodes,
            p.batch_nodes,
            p.fair_ratio,
            p.total_decision_units,
            p.jobs_completed,
            p.jobs_submitted,
        );

        for o in &p.outcomes {
            // (a) Byte-identical results vs the solo run.
            assert_eq!(
                o.result, solo,
                "{} @ {} nodes: concurrent results diverge from solo run",
                o.def.name, p.nodes
            );
            // Critical-path buckets (scheduler_queue included) tile the
            // makespan for every job.
            assert!(
                (o.bucket_sum - o.makespan).abs() < 1e-6,
                "{} @ {} nodes: buckets sum {} != makespan {}",
                o.def.name,
                p.nodes,
                o.bucket_sum,
                o.makespan
            );
            // (d) Fault recovery stays inside the faulted job.
            if o.def.faulted {
                assert!(
                    o.nodes_lost >= 1,
                    "{}: fault plan planted a node loss that never fired",
                    o.def.name
                );
            } else {
                assert_eq!(
                    o.nodes_lost, 0,
                    "{}: lost a node despite having no fault plan",
                    o.def.name
                );
            }
        }
        // (b) Fair-share node grants within 10 % of the 2:1 weights.
        if !unfair {
            assert!(
                (p.fair_ratio - 2.0).abs() <= 0.2,
                "{} nodes: interactive:batch grant ratio {:.3} strays >10% from 2.0",
                p.nodes,
                p.fair_ratio
            );
        }
        // FIFO serialization: exactly one etl job starts unqueued, every
        // other one charges a positive scheduler_queue bucket.
        let etl_queued = p
            .outcomes
            .iter()
            .filter(|o| o.def.pool == "etl" && o.scheduler_queue > 0.0)
            .count();
        let etl_total = p.outcomes.iter().filter(|o| o.def.pool == "etl").count();
        assert_eq!(
            etl_queued,
            etl_total - 1,
            "{} nodes: FIFO pool should queue all but the first job",
            p.nodes
        );
        // The queue drained: every submitted job reported completion.
        assert_eq!(p.jobs_completed, p.jobs_submitted);
    }

    // (c) Scheduler overhead sublinear in cluster size: 10x the nodes must
    // cost far less than 10x the decision units on the heap placement path
    // (linear rescanning would be ~10x). The faulted probe's fault-path
    // units are reported but not budgeted — recovery scheduling still
    // scans its grant.
    let first = &points[0];
    let last = points.last().unwrap();
    let growth = last.total_decision_units as f64 / first.total_decision_units.max(1) as f64;
    let _ = writeln!(
        report,
        "\ndecision-unit growth {}→{} nodes: {growth:.2}x (sublinear budget 3x)",
        first.nodes, last.nodes
    );
    assert!(
        growth <= 3.0,
        "scheduler overhead grew {growth:.2}x over a {}x node sweep — not sublinear",
        last.nodes / first.nodes
    );
    let _ = writeln!(
        report,
        "parity: all {} jobs byte-identical to solo; buckets tile makespans within 1e-6",
        jobs.len() * points.len()
    );
    print!("{report}");

    // Regression-gate manifest. Captured from a fleet re-run at the first
    // sweep size whose cluster we keep (job interactive-0's metrics are
    // deterministic), plus fleet-level metrics pushed by hand.
    let dataset_doc = JsonValue::object(vec![
        ("name", "synthetic-baskets".into()),
        ("transactions", tx.len().into()),
        ("seed", 42u64.into()),
        ("smoke", JsonValue::Bool(smoke)),
    ]);
    let config_doc = JsonValue::object(vec![
        ("pools", "interactive:fair:2 batch:fair:1 etl:fifo:1".into()),
        ("jobs", jobs.len().into()),
        (
            "sweep",
            JsonValue::Array(sweep.iter().map(|&n| (n as u64).into()).collect()),
        ),
        ("min_partitions", 32u64.into()),
        ("support", 40u64.into()),
    ]);
    let mut manifest = {
        // A fresh single job bound to a fresh queue reproduces job-level
        // registry metrics deterministically for capture.
        let queue = JobQueue::new(first.nodes);
        queue.add_pool(PoolSpec::fair(
            "interactive",
            if unfair { 1.0 } else { 2.0 },
        ));
        queue.add_pool(PoolSpec::fair("batch", 1.0));
        let ticket = queue.submit("interactive", "capture");
        let c = cluster_for(first.nodes);
        c.hdfs().put_overwrite("input.dat", lines.clone());
        c.attach_job(&ticket);
        let run = Yafim::new(Context::new(c.clone()), mining_config("interactive"))
            .mine("input.dat")
            .expect("input.dat was just written");
        assert_eq!(run.result, solo);
        RunManifest::capture("concurrency", "yafim", dataset_doc, config_doc, &c)
    };
    for p in &points {
        manifest.push_metric(
            format!("fleet.n{}.interactive_nodes", p.nodes),
            p.interactive_nodes as f64,
        );
        manifest.push_metric(
            format!("fleet.n{}.batch_nodes", p.nodes),
            p.batch_nodes as f64,
        );
        manifest.push_metric(format!("fleet.n{}.fair_ratio", p.nodes), p.fair_ratio);
        manifest.push_metric(
            format!("fleet.n{}.decision_units", p.nodes),
            p.total_decision_units as f64,
        );
        manifest.push_metric(
            format!("fleet.n{}.faulted_decision_units", p.nodes),
            p.faulted_decision_units as f64,
        );
        manifest.push_metric(
            format!("fleet.n{}.jobs_completed", p.nodes),
            p.jobs_completed as f64,
        );
    }
    manifest.push_metric("fleet.decision_unit_growth", growth);

    let manifest_path = if unfair {
        "target/manifests/concurrency.unfair.manifest.json"
    } else if smoke {
        "target/manifests/concurrency.smoke.manifest.json"
    } else {
        "results/concurrency.manifest.json"
    };
    write_manifest(&manifest, manifest_path);

    if smoke || unfair {
        println!("smoke mode: all assertions held; wrote {manifest_path}");
        return;
    }

    std::fs::write("results/concurrency.txt", &report).expect("write results/concurrency.txt");
    println!("wrote results/concurrency.txt and {manifest_path}");
}
