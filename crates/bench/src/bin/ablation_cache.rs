//! Ablation for §IV.B ("Memory Utilization"): what caching the transactions
//! RDD is worth. Three configurations:
//!
//! * normal — full cache, the YAFIM design;
//! * starved — per-node cache capacity too small for the dataset, so
//!   partitions are evicted and recomputed from HDFS through the lineage
//!   every pass (Spark under memory pressure);
//! * the MapReduce baseline, which has no cache at all.
//!
//! Honest finding (recorded in EXPERIMENTS.md): at Table I scale on 96
//! cores, re-reading megabytes from HDFS is nearly free, so the starved
//! cache costs little *time* — the disk-traffic column shows the extra I/O
//! the cache removes. The MapReduce baseline's 20×+ penalty comes from its
//! per-job architecture, not from re-reading bytes per se; caching becomes
//! time-critical only when the dataset is large relative to the cluster.
//!
//! Usage: `cargo run -p yafim-bench --release --bin ablation_cache [--scale X]`

use yafim_bench::{bench_dataset, experiment_cluster, load_dataset};
use yafim_cluster::ClusterSpec;
use yafim_core::{MrApriori, MrAprioriConfig, Yafim, YafimConfig};
use yafim_data::{replicate, PaperDataset};
use yafim_rdd::{Context, RddConfig};

fn main() {
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    let data = bench_dataset(PaperDataset::T10I4D100K, scale);
    let transactions = replicate(&data.transactions, 4);

    println!("== Ablation: memory utilization (§IV.B), T10I4D100K (4x) sup=0.25% ==");
    println!(
        "{:<38} {:>10} {:>14} {:>24}",
        "configuration", "time (s)", "disk read", "cache activity"
    );

    let mut baseline = None;
    for (label, capacity) in [
        ("YAFIM, full cache", None),
        ("YAFIM, starved cache (256 KiB/node)", Some(256 * 1024)),
    ] {
        let cluster = experiment_cluster(ClusterSpec::paper());
        load_dataset(&cluster, "input.dat", &transactions);
        let mut cfg = RddConfig::for_cluster(&cluster);
        cfg.cache_capacity_per_node = capacity;
        let ctx = Context::with_config(cluster.clone(), cfg);
        let run = Yafim::new(ctx.clone(), YafimConfig::new(data.support))
            .mine("input.dat")
            .expect("dataset written");
        let cache = ctx.cache().stats();
        let disk = cluster.metrics().snapshot().work.disk_read_bytes;
        baseline.get_or_insert(run.total_seconds);
        println!(
            "{:<38} {:>10.2} {:>11.1} MB {:>7} hit / {:>5} evict",
            label,
            run.total_seconds,
            disk as f64 / 1e6,
            cache.hits,
            cache.evictions
        );
    }

    let cluster = experiment_cluster(ClusterSpec::paper());
    load_dataset(&cluster, "input.dat", &transactions);
    let mr = MrApriori::new(cluster.clone(), MrAprioriConfig::new(data.support))
        .mine("input.dat")
        .expect("dataset written");
    let disk = cluster.metrics().snapshot().work.disk_read_bytes;
    println!(
        "{:<38} {:>10.2} {:>11.1} MB   re-reads HDFS every job",
        "MR-Apriori (no cache by design)",
        mr.total_seconds,
        disk as f64 / 1e6
    );
    println!(
        "\nMapReduce penalty over cached YAFIM: {:.1}x",
        mr.total_seconds / baseline.expect("baseline ran")
    );
}
