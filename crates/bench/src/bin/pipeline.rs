//! Throughput benchmark for fused iterator pipelines vs the retained
//! naive-eager reference evaluator (`ExecMode`).
//!
//! The workload is the shape fusion targets: a clone-heavy
//! `flatMap → map → filter` chain over `String` records — the narrow
//! prefix of YAFIM's Phase I `flatMap → map → reduceByKey` hot loop. The
//! eager reference collapses the partition into a fresh buffer at every
//! operator boundary (the pre-fusion engine's allocation pattern); the
//! fused engine streams each record through the whole chain and buffers
//! nothing until the action.
//!
//! Before timing anything, both modes `collect` the same lineage and the
//! results are compared element-for-element — the bench *fails* on any
//! divergence, which is what the CI smoke step leans on.
//!
//! Output:
//! * stdout + `results/pipeline.txt` — human-readable report
//!   (wall-clock numbers vary run to run; everything else is deterministic);
//! * `BENCH_pipeline.json` — machine-readable, seeds the perf trajectory;
//! * a [`RunManifest`] for the regression gate: smoke runs write
//!   `target/manifests/pipeline.smoke.manifest.json` (compared by CI
//!   against the committed `results/pipeline.smoke.manifest.json`), full
//!   runs write `results/pipeline.manifest.json`.
//!
//! Usage: `cargo run -p yafim-bench --release --bin pipeline [--smoke]`

use std::fmt::Write as _;
use std::time::Instant;
use yafim_bench::write_manifest;
use yafim_cluster::json::JsonValue;
use yafim_cluster::{ClusterSpec, CostModel, RunManifest, SimCluster, MANIFEST_SCHEMA_VERSION};
use yafim_rdd::{Context, ExecMode, Rdd, RddConfig};

/// splitmix64 — deterministic synthetic data without a rand crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// `lines` space-separated pseudo-words, ~`words_per_line` words each.
fn synthetic_lines(lines: usize, words_per_line: usize, seed: u64) -> Vec<String> {
    let mut rng = Rng(seed);
    (0..lines)
        .map(|_| {
            let n = words_per_line / 2 + (rng.next() as usize) % words_per_line;
            (0..n.max(1))
                .map(|_| format!("w{:06x}", rng.next() & 0xff_ffff))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

fn ctx_with(mode: ExecMode) -> Context {
    let cluster =
        SimCluster::with_threads(ClusterSpec::new(4, 4, 1 << 30), CostModel::hadoop_era(), 8);
    let mut config = RddConfig::for_cluster(&cluster);
    config.exec_mode = mode;
    Context::with_config(cluster, config)
}

/// The measured chain: flatMap (split into words) → map (clone-heavy
/// transform) → filter.
fn chain(c: &Context, data: &[String], parts: usize) -> Rdd<String> {
    c.parallelize_with_partitions(data.to_vec(), parts)
        .flat_map(|line| line.split(' ').map(str::to_string).collect::<Vec<String>>())
        .map(|w| {
            let mut s = w;
            s.push('!');
            s
        })
        .filter(|w| w.as_bytes()[1] % 4 != 0)
}

struct ModeRun {
    label: &'static str,
    /// Median wall-clock seconds for one `count` over the chain.
    seconds: f64,
    /// Records that flowed through operator inputs during one run
    /// (identical across modes by construction).
    pipeline_records: u64,
    records_per_sec: f64,
    /// Largest `bytes_materialized` of any single stage.
    peak_stage_bytes: u64,
    total_bytes: u64,
}

fn run_mode(
    mode: ExecMode,
    label: &'static str,
    data: &[String],
    parts: usize,
    samples: usize,
) -> (ModeRun, Vec<String>, Context) {
    // Accounting + parity pass (fresh context, deterministic).
    let c = ctx_with(mode);
    let collected = chain(&c, data, parts).collect();
    let snap = c.metrics().snapshot();
    let pipeline_records = snap.work.records_in;
    let peak_stage_bytes = c
        .metrics()
        .stage_spans()
        .iter()
        .map(|s| s.profile.bytes_materialized)
        .max()
        .unwrap_or(0);
    let total_bytes = snap.profile.bytes_materialized;

    // Timed pass: fresh context per sample so no cache/shuffle state
    // carries over; only the action is inside the timer.
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let c = ctx_with(mode);
            let rdd = chain(&c, data, parts);
            let t0 = Instant::now();
            std::hint::black_box(rdd.count());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    let seconds = times[times.len() / 2];

    (
        ModeRun {
            label,
            seconds,
            pipeline_records,
            records_per_sec: pipeline_records as f64 / seconds,
            peak_stage_bytes,
            total_bytes,
        },
        collected,
        c,
    )
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.2} M/s", r / 1e6)
    } else {
        format!("{:.1} k/s", r / 1e3)
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (lines, words, samples) = if smoke { (500, 6, 2) } else { (20_000, 8, 5) };
    let parts = 16;
    let data = synthetic_lines(lines, words, 7);

    let (eager, eager_out, _eager_ctx) = run_mode(
        ExecMode::Eager,
        "eager (per-op buffers)",
        &data,
        parts,
        samples,
    );
    let (fused, fused_out, fused_ctx) =
        run_mode(ExecMode::Fused, "fused (pipelined)", &data, parts, samples);

    // The whole point of keeping the eager evaluator: it is the reference.
    assert_eq!(
        eager.pipeline_records, fused.pipeline_records,
        "record accounting diverged between modes"
    );
    if fused_out != eager_out {
        eprintln!(
            "FAIL: fused results diverge from the eager reference \
             ({} vs {} records)",
            fused_out.len(),
            eager_out.len()
        );
        std::process::exit(1);
    }

    let speedup = eager.seconds / fused.seconds;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "== Pipeline fusion: flatMap -> map -> filter over {} lines ({} source records, {} partitions) ==",
        lines,
        data.len(),
        parts
    );
    let _ = writeln!(
        report,
        "{:<26} {:>10} {:>14} {:>16} {:>16}",
        "mode", "time", "records/sec", "peak stage mat.", "total mat."
    );
    for m in [&eager, &fused] {
        let _ = writeln!(
            report,
            "{:<26} {:>8.3} s {:>14} {:>14} B {:>14} B",
            m.label,
            m.seconds,
            fmt_rate(m.records_per_sec),
            m.peak_stage_bytes,
            m.total_bytes
        );
    }
    let _ = writeln!(
        report,
        "\nfused speedup: {speedup:.2}x | records through pipeline per run: {} | parity: ok ({} output records)",
        fused.pipeline_records,
        fused_out.len()
    );
    print!("{report}");

    // Regression-gate manifest: captured from the fused accounting context
    // (deterministic: the parity `collect` pass, no wall-clock numbers).
    let dataset_doc = JsonValue::object(vec![
        ("name", "synthetic-lines".into()),
        ("lines", lines.into()),
        ("words_per_line", words.into()),
        ("partitions", parts.into()),
        ("seed", 7u64.into()),
        ("smoke", JsonValue::Bool(smoke)),
    ]);
    let config_doc = JsonValue::object(vec![
        ("chain", "flatMap -> map -> filter".into()),
        ("cluster", "4 nodes x 4 cores".into()),
        ("engine", "fused".into()),
        ("reference", "eager".into()),
    ]);
    let mut manifest = RunManifest::capture(
        "pipeline",
        "fused",
        dataset_doc.clone(),
        config_doc,
        fused_ctx.cluster(),
    );
    manifest.push_metric("pipeline.records", fused.pipeline_records as f64);
    manifest.push_metric("pipeline.output_records", fused_out.len() as f64);
    manifest.push_metric(
        "fused.peak_stage_bytes_materialized",
        fused.peak_stage_bytes as f64,
    );
    manifest.push_metric("fused.total_bytes_materialized", fused.total_bytes as f64);
    manifest.push_metric(
        "eager.peak_stage_bytes_materialized",
        eager.peak_stage_bytes as f64,
    );
    manifest.push_metric("eager.total_bytes_materialized", eager.total_bytes as f64);
    let manifest_path = if smoke {
        "target/manifests/pipeline.smoke.manifest.json"
    } else {
        "results/pipeline.manifest.json"
    };
    write_manifest(&manifest, manifest_path);

    if smoke {
        println!("smoke mode: parity verified; wrote {manifest_path}");
        return;
    }

    std::fs::write("results/pipeline.txt", &report).expect("write results/pipeline.txt");

    let mode_json = |m: &ModeRun| {
        JsonValue::object(vec![
            ("seconds", JsonValue::Number(m.seconds)),
            ("records_per_sec", JsonValue::Number(m.records_per_sec)),
            ("peak_stage_bytes_materialized", m.peak_stage_bytes.into()),
            ("total_bytes_materialized", m.total_bytes.into()),
        ])
    };
    let json = JsonValue::object(vec![
        ("bench", "pipeline".into()),
        ("schema_version", MANIFEST_SCHEMA_VERSION.into()),
        ("dataset", dataset_doc),
        ("config_fingerprint", manifest.fingerprint.as_str().into()),
        ("chain", "flatMap -> map -> filter".into()),
        ("source_records", data.len().into()),
        ("pipeline_records", fused.pipeline_records.into()),
        ("output_records", fused_out.len().into()),
        ("eager", mode_json(&eager)),
        ("fused", mode_json(&fused)),
        ("fused_speedup", JsonValue::Number(speedup)),
        ("parity", "ok".into()),
    ]);
    std::fs::write("BENCH_pipeline.json", format!("{json}\n")).expect("write BENCH_pipeline.json");
    println!("wrote results/pipeline.txt, {manifest_path} and BENCH_pipeline.json");
}
