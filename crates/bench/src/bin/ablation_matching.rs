//! Ablation: the candidate hash tree vs naive list-scan matching in the
//! MapReduce baseline — quantifies how much of YAFIM's win comes from the
//! framework (in-memory reuse, cheap stages) rather than from the hash tree
//! data structure itself, by giving the MR baseline each matcher in turn.
//!
//! Usage: `cargo run -p yafim-bench --release --bin ablation_matching [--scale X]`

use yafim_bench::{bench_dataset, experiment_cluster, load_dataset};
use yafim_cluster::ClusterSpec;
use yafim_core::{MrApriori, MrAprioriConfig, MrMatching};
use yafim_data::PaperDataset;

fn main() {
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    println!("== Ablation: MR-Apriori candidate matching strategy ==");
    println!(
        "{:<12} {:>16} {:>16} {:>10}",
        "dataset", "hash tree (s)", "naive scan (s)", "penalty"
    );
    for ds in [PaperDataset::Mushroom, PaperDataset::T10I4D100K] {
        let data = bench_dataset(ds, scale);
        let mut totals = Vec::new();
        let mut results = Vec::new();
        for matching in [MrMatching::HashTree, MrMatching::NaiveScan] {
            let cluster = experiment_cluster(ClusterSpec::paper());
            load_dataset(&cluster, "input.dat", &data.transactions);
            let mut cfg = MrAprioriConfig::new(data.support);
            cfg.matching = matching;
            let run = MrApriori::new(cluster, cfg)
                .mine("input.dat")
                .expect("dataset written");
            totals.push(run.total_seconds);
            results.push(run.result);
        }
        assert_eq!(
            results[0], results[1],
            "matchers must agree on {}",
            data.name
        );
        println!(
            "{:<12} {:>16.2} {:>16.2} {:>9.2}x",
            data.name,
            totals[0],
            totals[1],
            totals[1] / totals[0]
        );
    }
    println!("\n(Both matchers return identical itemsets; only the cost differs.)");
}
