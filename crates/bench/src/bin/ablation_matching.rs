//! Ablation: candidate matching and the Phase-II hot path.
//!
//! Two sections:
//!
//! 1. **MR-Apriori matcher** — hash tree vs naive list-scan in the MapReduce
//!    baseline: quantifies how much of YAFIM's win comes from the framework
//!    rather than the hash tree data structure.
//! 2. **YAFIM Phase II** — the paper-faithful hash-tree engine vs the dense
//!    projection + triangular pass-2 counter vs trie matching vs everything
//!    combined (projection + triangle + trie + cross-pass trimming) vs the
//!    vertical TID-bitmap counter (projection + triangle + columnar
//!    word-wise counting for `k ≥ 3`), on a pass-2-dominated QUEST-style
//!    workload (dense alphabet, low support, so
//!    `|C_2| = |L1|·(|L1|−1)/2` dwarfs every other pass). Wall-clock
//!    pass 2 is isolated as `median wall(max_passes=2) − median
//!    wall(max_passes=1)`, and the `k ≥ 3` matching tail as
//!    `median wall(all passes) − median wall(max_passes=2)`; the
//!    transaction count is the numerator for every config, so records/sec
//!    ratios equal time ratios.
//!
//! Every configuration must return byte-identical itemsets, supports and
//! per-pass candidate/frequent counts — the bench *fails* on any
//! divergence, which is what the CI smoke step leans on.
//!
//! Output:
//! * stdout + `results/ablation_matching.txt` — human-readable report
//!   (wall-clock numbers vary run to run; everything else is deterministic);
//! * `BENCH_phase2.json` — machine-readable: per-pass virtual stats,
//!   pass-2 and `k ≥ 3` wall records/sec, peak cache bytes, pass-2
//!   speedup, bitmap-vs-trie `k ≥ 3` speedup;
//! * a [`RunManifest`] for the regression gate, captured from the
//!   bitmap configuration's accounting run: smoke runs write
//!   `target/manifests/phase2.smoke.manifest.json` (compared by CI
//!   against the committed `results/phase2.smoke.manifest.json`), full
//!   runs write `results/phase2.manifest.json`.
//!
//! Usage: `cargo run -p yafim-bench --release --bin ablation_matching
//! [--scale X] [--smoke]`

use std::fmt::Write as _;
use std::time::Instant;
use yafim_bench::{bench_dataset, experiment_cluster, load_dataset, write_manifest};
use yafim_cluster::json::JsonValue;
use yafim_cluster::{ClusterSpec, CostModel, RunManifest, SimCluster, MANIFEST_SCHEMA_VERSION};
use yafim_core::{
    apriori, Matcher, MinerRun, MrApriori, MrAprioriConfig, MrMatching, Phase2Config,
    SequentialConfig, Support, Yafim, YafimConfig,
};
use yafim_data::{to_lines, PaperDataset, QuestConfig, QuestGenerator};
use yafim_rdd::Context;

/// The swept Phase-II configurations, mildest to most aggressive.
fn phase2_configs() -> Vec<(&'static str, Phase2Config)> {
    vec![
        ("hash tree (paper)", Phase2Config::paper()),
        (
            "dense + trie",
            Phase2Config {
                project: true,
                triangle_pass2: false,
                matcher: Matcher::Trie,
                trim: false,
                checkpoint_interval: 0,
            },
        ),
        (
            "dense + triangle p2",
            Phase2Config {
                project: true,
                triangle_pass2: true,
                matcher: Matcher::HashTree,
                trim: false,
                checkpoint_interval: 0,
            },
        ),
        ("triangle + trie + trim", Phase2Config::optimized()),
        ("triangle + bitmap + trim", Phase2Config::bitmap()),
    ]
}

fn cluster() -> SimCluster {
    SimCluster::with_threads(ClusterSpec::new(4, 4, 1 << 30), CostModel::hadoop_era(), 8)
}

fn miner(c: &SimCluster, support: Support, phase2: Phase2Config, max_passes: usize) -> Yafim {
    let cfg = YafimConfig {
        max_passes,
        phase2,
        ..YafimConfig::new(support)
    };
    Yafim::new(Context::new(c.clone()), cfg)
}

/// Deterministic accounting run: full mining, returning the run (virtual
/// per-pass stats), the peak cache footprint, and the cluster (so the last
/// configuration's metrics can feed the run manifest).
fn accounting_run(
    lines: &[String],
    support: Support,
    phase2: &Phase2Config,
) -> (MinerRun, u64, SimCluster) {
    let c = cluster();
    c.hdfs().put_overwrite("q.dat", lines.to_vec());
    let ctx = Context::new(c.clone());
    let run = Yafim::new(
        ctx.clone(),
        YafimConfig {
            phase2: phase2.clone(),
            ..YafimConfig::new(support)
        },
    )
    .mine("q.dat")
    .expect("dataset written");
    (run, ctx.cache().stats().peak_bytes, c)
}

/// Median wall-clock seconds of a full `mine` limited to `max_passes`,
/// fresh cluster per sample.
fn wall_seconds(
    lines: &[String],
    support: Support,
    phase2: &Phase2Config,
    max_passes: usize,
    samples: usize,
) -> f64 {
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let c = cluster();
            c.hdfs().put_overwrite("q.dat", lines.to_vec());
            let m = miner(&c, support, phase2.clone(), max_passes);
            let t0 = Instant::now();
            std::hint::black_box(m.mine("q.dat").expect("dataset written"));
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

struct ConfigRun {
    label: &'static str,
    run: MinerRun,
    peak_cache_bytes: u64,
    /// Isolated pass-2 wall seconds (`wall(2 passes) − wall(1 pass)`).
    pass2_seconds: f64,
    /// Transactions through pass 2 per wall second (same numerator for
    /// every config: the raw dataset size).
    pass2_records_per_sec: f64,
    /// Isolated `k ≥ 3` matching wall seconds
    /// (`wall(all passes) − wall(2 passes)`): the tail the trie and the
    /// columnar bitmap compete on.
    k3_seconds: f64,
    /// Transactions through the `k ≥ 3` tail per wall second (same
    /// numerator for every config, so ratios equal time ratios).
    k3_records_per_sec: f64,
    total_wall_seconds: f64,
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.2} M/s", r / 1e6)
    } else {
        format!("{:.1} k/s", r / 1e3)
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.05 } else { 0.25 });

    let mut report = String::new();

    // ---- Section 1: MR-Apriori matcher ----
    let _ = writeln!(
        report,
        "== Ablation 1: MR-Apriori candidate matching strategy =="
    );
    let _ = writeln!(
        report,
        "{:<12} {:>16} {:>16} {:>10}",
        "dataset", "hash tree (s)", "naive scan (s)", "penalty"
    );
    for ds in [PaperDataset::Mushroom, PaperDataset::T10I4D100K] {
        let data = bench_dataset(ds, scale);
        let mut totals = Vec::new();
        let mut results = Vec::new();
        for matching in [MrMatching::HashTree, MrMatching::NaiveScan] {
            let cluster = experiment_cluster(ClusterSpec::paper());
            load_dataset(&cluster, "input.dat", &data.transactions);
            let mut cfg = MrAprioriConfig::new(data.support);
            cfg.matching = matching;
            let run = MrApriori::new(cluster, cfg)
                .mine("input.dat")
                .expect("dataset written");
            totals.push(run.total_seconds);
            results.push(run.result);
        }
        if results[0] != results[1] {
            eprintln!("FAIL: MR matchers diverge on {}", data.name);
            std::process::exit(1);
        }
        let _ = writeln!(
            report,
            "{:<12} {:>16.2} {:>16.2} {:>9.2}x",
            data.name,
            totals[0],
            totals[1],
            totals[1] / totals[0]
        );
    }

    // ---- Section 2: YAFIM Phase-II hot path ----
    //
    // Dense alphabet + low support → |L1| ≈ items, so pass 2 counts
    // |L1|·(|L1|−1)/2 pairs and dominates the run: exactly the regime the
    // triangular counter targets. Planted QUEST patterns keep L2/L3
    // non-empty so trie matching runs too.
    let (transactions, items, support_frac, samples) = if smoke {
        (800, 80u32, 0.02, 1)
    } else {
        (6000, 300u32, 0.008, 5)
    };
    let support = Support::Fraction(support_frac);
    let tx = QuestGenerator::new(QuestConfig {
        transactions,
        items,
        avg_transaction_len: 12.0,
        avg_pattern_len: 4.0,
        patterns: 40,
        correlation: 0.25,
        keep_fraction: 0.7,
        seed: 0xab1a_7104,
    })
    .generate();
    let lines = to_lines(&tx);

    // Parity gate: every configuration against the sequential reference —
    // identical itemsets, supports and per-pass metadata.
    let reference = apriori(&tx, &SequentialConfig::new(support));
    let mut runs: Vec<ConfigRun> = Vec::new();
    let mut manifest_cluster: Option<SimCluster> = None;
    for (label, p2) in phase2_configs() {
        let (run, peak_cache_bytes, c) = accounting_run(&lines, support, &p2);
        if run.result != reference {
            eprintln!("FAIL: '{label}' diverges from the sequential reference");
            std::process::exit(1);
        }
        // phase2_configs() ends with the bitmap config; keep its cluster.
        manifest_cluster = Some(c);
        runs.push(ConfigRun {
            label,
            run,
            peak_cache_bytes,
            pass2_seconds: f64::NAN,
            pass2_records_per_sec: f64::NAN,
            k3_seconds: f64::NAN,
            k3_records_per_sec: f64::NAN,
            total_wall_seconds: f64::NAN,
        });
    }
    let baseline_passes: Vec<_> = runs[0]
        .run
        .passes
        .iter()
        .map(|p| (p.pass, p.candidates, p.frequent))
        .collect();
    for r in &runs[1..] {
        let got: Vec<_> = r
            .run
            .passes
            .iter()
            .map(|p| (p.pass, p.candidates, p.frequent))
            .collect();
        if got != baseline_passes {
            eprintln!(
                "FAIL: '{}' pass metadata diverges from the paper engine",
                r.label
            );
            std::process::exit(1);
        }
    }

    // Regression-gate manifest: captured from the bitmap configuration's
    // accounting run (deterministic: virtual time, counters, byte totals —
    // including the `bitmap.*` build and word counters).
    let dataset_doc = JsonValue::object(vec![
        ("generator", "quest".into()),
        ("transactions", transactions.into()),
        ("items", (items as u64).into()),
        ("support_frac", JsonValue::Number(support_frac)),
        ("avg_transaction_len", JsonValue::Number(12.0)),
        ("patterns", 40u64.into()),
        ("seed", "0xab1a7104".into()),
        ("smoke", JsonValue::Bool(smoke)),
    ]);
    let config_doc = JsonValue::object(vec![
        ("phase2", "triangle + bitmap + trim".into()),
        ("cluster", "4 nodes x 4 cores".into()),
    ]);
    let featured = runs.last().expect("configs swept");
    let mut manifest = RunManifest::capture(
        "phase2",
        "triangle + bitmap + trim",
        dataset_doc.clone(),
        config_doc,
        manifest_cluster.as_ref().expect("configs swept"),
    );
    manifest.push_metric("frequent_itemsets", reference.total() as f64);
    manifest.push_metric("passes", featured.run.passes.len() as f64);
    manifest.push_metric("peak_cache_bytes", featured.peak_cache_bytes as f64);
    for p in &featured.run.passes {
        manifest.push_metric(format!("pass.{}.virtual_seconds", p.pass), p.seconds);
        manifest.push_metric(format!("pass.{}.candidates", p.pass), p.candidates as f64);
        manifest.push_metric(format!("pass.{}.frequent", p.pass), p.frequent as f64);
    }
    let manifest_path = if smoke {
        "target/manifests/phase2.smoke.manifest.json"
    } else {
        "results/phase2.manifest.json"
    };
    write_manifest(&manifest, manifest_path);

    if smoke {
        print!("{report}");
        println!(
            "\n== Ablation 2: YAFIM Phase-II hot path ==\n\
             smoke mode: {} configs byte-identical to the sequential reference \
             on {} QUEST transactions ({} frequent itemsets, {} passes); \
             wrote {manifest_path}; skipping wall-clock sweep and result files",
            runs.len(),
            tx.len(),
            reference.total(),
            runs[0].run.passes.len()
        );
        return;
    }

    // Wall-clock sweep: isolate pass 2 and the k≥3 tail per config.
    for r in &mut runs {
        let p2 = phase2_configs()
            .into_iter()
            .find(|(l, _)| *l == r.label)
            .expect("label round-trips")
            .1;
        let one = wall_seconds(&lines, support, &p2, 1, samples);
        let two = wall_seconds(&lines, support, &p2, 2, samples);
        r.total_wall_seconds = wall_seconds(&lines, support, &p2, 0, samples);
        r.pass2_seconds = (two - one).max(1e-9);
        r.pass2_records_per_sec = tx.len() as f64 / r.pass2_seconds;
        // The k≥3 tail carries the columnar build for the bitmap config
        // (nothing is projected before pass 3), so the comparison below
        // charges build + counting against the trie's pure matching time.
        r.k3_seconds = (r.total_wall_seconds - two).max(1e-9);
        r.k3_records_per_sec = tx.len() as f64 / r.k3_seconds;
    }

    let _ = writeln!(
        report,
        "\n== Ablation 2: YAFIM Phase-II hot path ({} QUEST transactions, {} items, \
         minsup {:.1}%, |C2| = {}) ==",
        tx.len(),
        items,
        support_frac * 100.0,
        runs[0].run.passes.get(1).map_or(0, |p| p.candidates)
    );
    let _ = writeln!(
        report,
        "{:<24} {:>12} {:>14} {:>12} {:>11} {:>14} {:>14} {:>12}",
        "configuration",
        "pass 2 (s)",
        "p2 records/s",
        "p2 speedup",
        "k>=3 (s)",
        "k3 records/s",
        "peak cache",
        "total (s)"
    );
    let base_p2 = runs[0].pass2_seconds;
    for r in &runs {
        let _ = writeln!(
            report,
            "{:<24} {:>10.3} s {:>14} {:>11.2}x {:>9.3} s {:>14} {:>12} B {:>10.3} s",
            r.label,
            r.pass2_seconds,
            fmt_rate(r.pass2_records_per_sec),
            base_p2 / r.pass2_seconds,
            r.k3_seconds,
            fmt_rate(r.k3_records_per_sec),
            r.peak_cache_bytes,
            r.total_wall_seconds,
        );
    }
    let _ = writeln!(
        report,
        "\nper-pass (virtual, identical candidates/frequent across configs):"
    );
    for p in &runs[0].run.passes {
        let _ = writeln!(
            report,
            "  pass {}: {} candidates, {} frequent",
            p.pass, p.candidates, p.frequent
        );
    }
    let best = runs
        .iter()
        .map(|r| base_p2 / r.pass2_seconds)
        .fold(f64::NAN, f64::max);
    let by_label = |l: &str| {
        runs.iter()
            .find(|r| r.label == l)
            .expect("config label present")
    };
    let trie_k3 = by_label("triangle + trie + trim").k3_seconds;
    let bitmap_k3 = by_label("triangle + bitmap + trim").k3_seconds;
    let _ = writeln!(
        report,
        "\nk>=3 matching tail: bitmap {bitmap_k3:.3} s vs trie {trie_k3:.3} s \
         ({:.2}x, columnar build included)",
        trie_k3 / bitmap_k3
    );
    let _ = writeln!(
        report,
        "best pass-2 speedup over the paper engine: {best:.2}x | parity: ok \
         ({} frequent itemsets, every config byte-identical)",
        reference.total()
    );
    print!("{report}");

    if best < 1.5 {
        eprintln!("FAIL: specialized pass 2 must be at least 1.5x the hash-tree baseline");
        std::process::exit(1);
    }
    if bitmap_k3 >= trie_k3 {
        eprintln!(
            "FAIL: bitmap counting must beat trie matching on the k>=3 wall clock \
             ({bitmap_k3:.3} s vs {trie_k3:.3} s)"
        );
        std::process::exit(1);
    }

    std::fs::write("results/ablation_matching.txt", &report)
        .expect("write results/ablation_matching.txt");

    let config_json = |r: &ConfigRun| {
        JsonValue::object(vec![
            ("pass2_seconds", JsonValue::Number(r.pass2_seconds)),
            (
                "pass2_records_per_sec",
                JsonValue::Number(r.pass2_records_per_sec),
            ),
            (
                "pass2_speedup",
                JsonValue::Number(base_p2 / r.pass2_seconds),
            ),
            ("k3_seconds", JsonValue::Number(r.k3_seconds)),
            (
                "k3_records_per_sec",
                JsonValue::Number(r.k3_records_per_sec),
            ),
            ("peak_cache_bytes", r.peak_cache_bytes.into()),
            (
                "total_wall_seconds",
                JsonValue::Number(r.total_wall_seconds),
            ),
            (
                "passes",
                JsonValue::Array(
                    r.run
                        .passes
                        .iter()
                        .map(|p| {
                            JsonValue::object(vec![
                                ("pass", p.pass.into()),
                                ("virtual_seconds", JsonValue::Number(p.seconds)),
                                ("candidates", p.candidates.into()),
                                ("frequent", p.frequent.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    };
    let json = JsonValue::object(vec![
        ("bench", "phase2".into()),
        ("schema_version", MANIFEST_SCHEMA_VERSION.into()),
        ("dataset", dataset_doc),
        ("config_fingerprint", manifest.fingerprint.as_str().into()),
        ("transactions", tx.len().into()),
        ("items", (items as usize).into()),
        ("frequent_itemsets", reference.total().into()),
        (
            "configs",
            JsonValue::object(runs.iter().map(|r| (r.label, config_json(r))).collect()),
        ),
        ("best_pass2_speedup", JsonValue::Number(best)),
        (
            "bitmap_k3_speedup_vs_trie",
            JsonValue::Number(trie_k3 / bitmap_k3),
        ),
        ("parity", "ok".into()),
    ]);
    std::fs::write("BENCH_phase2.json", format!("{json}\n")).expect("write BENCH_phase2.json");
    println!("\nwrote results/ablation_matching.txt, {manifest_path} and BENCH_phase2.json");
}
