//! Extension comparison (beyond the paper's figures): every parallel miner
//! in the repository on the same dataset and cluster — YAFIM (k-phase,
//! Spark-style), MR-Apriori/SPC (k-phase, MapReduce), SON (one-phase,
//! MapReduce) and PFP (no candidate generation, Spark-style) — the four
//! corners of the design space the paper's related-work section sketches.
//!
//! Usage: `cargo run -p yafim-bench --release --bin compare_miners [--scale X]`

use yafim_bench::{bench_dataset, experiment_cluster, load_dataset};
use yafim_cluster::ClusterSpec;
use yafim_core::{
    MinerRun, MrApriori, MrAprioriConfig, Pfp, PfpConfig, Son, SonConfig, Yafim, YafimConfig,
};
use yafim_data::PaperDataset;
use yafim_rdd::Context;

fn main() {
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    for ds in [PaperDataset::Mushroom, PaperDataset::Medical] {
        let data = bench_dataset(ds, scale);
        println!(
            "\n== miner comparison: {} (sup per paper, scale {scale}) ==",
            data.name
        );
        println!(
            "{:<28} {:>8} {:>12} {:>10}",
            "miner", "jobs", "total (s)", "itemsets"
        );

        let mut reference: Option<MinerRun> = None;
        let mut report = |label: &str, jobs: u64, run: MinerRun| {
            if let Some(r) = &reference {
                assert_eq!(r.result, run.result, "{label} diverges");
            }
            println!(
                "{:<28} {:>8} {:>12.2} {:>10}",
                label,
                jobs,
                run.total_seconds,
                run.result.total()
            );
            reference.get_or_insert(run);
        };

        // YAFIM (the paper's contribution).
        let cluster = experiment_cluster(ClusterSpec::paper());
        load_dataset(&cluster, "input.dat", &data.transactions);
        let run = Yafim::new(
            Context::new(cluster.clone()),
            YafimConfig::new(data.support),
        )
        .mine("input.dat")
        .expect("dataset written");
        report(
            "YAFIM (Spark, k-phase)",
            cluster.metrics().snapshot().jobs,
            run,
        );

        // MR-Apriori / SPC (the paper's baseline).
        let cluster = experiment_cluster(ClusterSpec::paper());
        load_dataset(&cluster, "input.dat", &data.transactions);
        let run = MrApriori::new(cluster.clone(), MrAprioriConfig::new(data.support))
            .mine("input.dat")
            .expect("dataset written");
        report(
            "MR-Apriori/SPC (k-phase)",
            cluster.metrics().snapshot().jobs,
            run,
        );

        // SON (one-phase family from related work).
        let cluster = experiment_cluster(ClusterSpec::paper());
        load_dataset(&cluster, "input.dat", &data.transactions);
        let run = Son::new(cluster.clone(), SonConfig::new(data.support))
            .mine("input.dat")
            .expect("dataset written");
        report(
            "SON (MapReduce, one-phase)",
            cluster.metrics().snapshot().jobs,
            run,
        );

        // PFP (no candidate generation, Spark-style).
        let cluster = experiment_cluster(ClusterSpec::paper());
        load_dataset(&cluster, "input.dat", &data.transactions);
        let run = Pfp::new(Context::new(cluster.clone()), PfpConfig::new(data.support))
            .mine("input.dat")
            .expect("dataset written");
        report(
            "PFP (Spark, FP-Growth)",
            cluster.metrics().snapshot().jobs,
            run,
        );
    }
    println!("\n(All miners are asserted to produce identical itemsets.)");
}
