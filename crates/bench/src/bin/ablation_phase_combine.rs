//! Ablation over the related-work job-combining schemes (Lin et al., the
//! paper's ref \[17\]): SPC (one job per pass) vs FPC (fixed passes combined)
//! vs DPC (dynamic passes combined). Combining passes amortizes Hadoop's
//! per-job overhead at the price of counting speculative candidates — the
//! related-work attempt to mitigate exactly the overhead YAFIM removes by
//! switching frameworks.
//!
//! Usage: `cargo run -p yafim-bench --release --bin ablation_phase_combine [--scale X]`

use yafim_bench::{bench_dataset, experiment_cluster, load_dataset, run_yafim};
use yafim_cluster::ClusterSpec;
use yafim_core::{MrApriori, MrAprioriConfig, MrVariant};
use yafim_data::PaperDataset;

fn main() {
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    let data = bench_dataset(PaperDataset::Medical, scale);
    println!("== Ablation: MR job-combining variants, medical dataset sup=3% ==");
    println!(
        "{:<28} {:>8} {:>12} {:>16}",
        "variant", "jobs", "total (s)", "vs SPC"
    );

    let mut spc_total = None;
    let mut reference = None;
    for (label, variant) in [
        ("SPC (one job per pass)", MrVariant::Spc),
        (
            "FPC (2 passes per job)",
            MrVariant::Fpc { passes_per_job: 2 },
        ),
        (
            "FPC (3 passes per job)",
            MrVariant::Fpc { passes_per_job: 3 },
        ),
        (
            "DPC (<= 3000 candidates/job)",
            MrVariant::Dpc {
                max_candidates: 3000,
            },
        ),
    ] {
        let cluster = experiment_cluster(ClusterSpec::paper());
        load_dataset(&cluster, "input.dat", &data.transactions);
        let mut cfg = MrAprioriConfig::new(data.support);
        cfg.variant = variant;
        let run = MrApriori::new(cluster.clone(), cfg)
            .mine("input.dat")
            .expect("dataset written");
        match &reference {
            None => reference = Some(run.result.clone()),
            Some(r) => assert_eq!(r, &run.result, "{label} diverges"),
        }
        let base = *spc_total.get_or_insert(run.total_seconds);
        println!(
            "{:<28} {:>8} {:>12.2} {:>15.2}x",
            label,
            cluster.metrics().snapshot().jobs,
            run.total_seconds,
            base / run.total_seconds
        );
    }

    let yafim = run_yafim(ClusterSpec::paper(), &data.transactions, data.support);
    println!(
        "{:<28} {:>8} {:>12.2} {:>15.2}x   <- framework switch beats job combining",
        "YAFIM (Spark engine)",
        "-",
        yafim.total_seconds,
        spc_total.expect("SPC ran") / yafim.total_seconds
    );
}
