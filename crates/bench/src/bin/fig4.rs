//! Fig. 4 reproduction: sizeup. Core count fixed at 48 (6 nodes × 8); each
//! dataset is replicated 1–6× and both miners run over the enlarged data.
//! The paper's shape: MR-Apriori "increases sharply and almost grows
//! linearly" while YAFIM "grows slowly and keeps nearly flat".
//!
//! Usage: `cargo run -p yafim-bench --release --bin fig4 [--scale X]`
//! (default base scale 1.0; T10I4D100K defaults to 0.2 so the ×6 point
//! stays tractable on a single host — shapes are scale-invariant.)

use yafim_bench::{bench_dataset, run_mr, run_yafim};
use yafim_cluster::ClusterSpec;
use yafim_data::{replicate, PaperDataset};

const PANELS: [(PaperDataset, f64); 4] = [
    (PaperDataset::Mushroom, 1.0),
    (PaperDataset::T10I4D100K, 0.2),
    (PaperDataset::Chess, 1.0),
    (PaperDataset::PumsbStar, 0.5),
];

fn main() {
    let scale_override: Option<f64> = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok());

    for (ds, default_scale) in PANELS {
        let scale = scale_override.unwrap_or(default_scale);
        let data = bench_dataset(ds, scale);
        println!(
            "\n== Fig. 4: {} sizeup (48 cores, base scale {scale}) ==",
            data.name
        );
        println!(
            "{:>10}  {:>12}  {:>12}  {:>10}",
            "replicas", "YAFIM (s)", "MR (s)", "MR/YAFIM"
        );
        let mut first: Option<(f64, f64)> = None;
        let mut last: Option<(f64, f64)> = None;
        for times in 1..=6usize {
            let enlarged = replicate(&data.transactions, times);
            let yafim = run_yafim(ClusterSpec::paper_sizeup(), &enlarged, data.support);
            let mr = run_mr(ClusterSpec::paper_sizeup(), &enlarged, data.support);
            assert_eq!(
                yafim.result.level_sizes(),
                mr.result.level_sizes(),
                "{} x{times}",
                data.name
            );
            println!(
                "{:>10}  {:>12.2}  {:>12.2}  {:>9.1}x",
                times,
                yafim.total_seconds,
                mr.total_seconds,
                mr.total_seconds / yafim.total_seconds
            );
            if times == 1 {
                first = Some((yafim.total_seconds, mr.total_seconds));
            }
            if times == 6 {
                last = Some((yafim.total_seconds, mr.total_seconds));
            }
        }
        if let (Some((y1, m1)), Some((y6, m6))) = (first, last) {
            println!(
                "   growth 1x -> 6x: YAFIM {:.2}x, MR {:.2}x (paper: YAFIM nearly flat, MR ~linear)",
                y6 / y1,
                m6 / m1
            );
        }
    }
}
