//! Calibration tool (not a paper figure): prints, for each dataset profile
//! at its paper support, the frequent-itemset level series from the
//! sequential miner, plus generation stats. Used to tune the generators so
//! the iteration depth and workload shape match the paper's figures.
//!
//! Usage: `cargo run -p yafim-bench --release --bin calibrate [scale]`

use yafim_core::{apriori, SequentialConfig, Support};
use yafim_data::{stats, PaperDataset};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    let mut datasets: Vec<PaperDataset> = PaperDataset::benchmarks().to_vec();
    datasets.push(PaperDataset::Medical);

    for ds in datasets {
        let profile = ds.profile();
        let start = std::time::Instant::now();
        let tx = ds.generate_scaled(scale);
        let gen_time = start.elapsed();
        let s = stats(&tx);

        let start = std::time::Instant::now();
        let result = apriori(
            &tx,
            &SequentialConfig::new(Support::Fraction(profile.support)),
        );
        let mine_time = start.elapsed();

        println!(
            "{:<12} sup={:>6.2}%  tx={:<7} items={:<5} avg_len={:<5.1} gen={:>6.2?} mine={:>7.2?}",
            profile.name,
            profile.support * 100.0,
            s.transactions,
            s.distinct_items,
            s.avg_len,
            gen_time,
            mine_time,
        );
        println!(
            "             levels: {:?}  total={} max_len={}",
            result.level_sizes(),
            result.total(),
            result.max_len()
        );
    }
}
