//! Inspection tool: run YAFIM on one dataset and dump the full virtual-time
//! event log (jobs, stages, broadcasts, driver work, per-pass spans), the
//! per-stage Spark-UI-style table, and the by-kind breakdown — the raw
//! material behind every figure.
//!
//! Usage: `cargo run -p yafim-bench --release --bin timeline
//!     [--dataset mushroom|t10|chess|pumsb|medical] [--scale X]
//!     [--trace out.json]`
//!
//! `--trace` writes the run's Chrome trace (Perfetto / chrome://tracing).

use yafim_bench::{bench_dataset, experiment_cluster, load_dataset};
use yafim_cluster::{chrome_trace, full_report, ClusterSpec};
use yafim_core::{Yafim, YafimConfig};
use yafim_data::PaperDataset;
use yafim_rdd::Context;

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let dataset = match arg("--dataset").as_deref() {
        None | Some("mushroom") => PaperDataset::Mushroom,
        Some("t10") => PaperDataset::T10I4D100K,
        Some("chess") => PaperDataset::Chess,
        Some("pumsb") => PaperDataset::PumsbStar,
        Some("medical") => PaperDataset::Medical,
        Some(other) => {
            eprintln!("unknown dataset {other}; use mushroom|t10|chess|pumsb|medical");
            std::process::exit(2);
        }
    };
    let scale: f64 = arg("--scale").and_then(|s| s.parse().ok()).unwrap_or(0.25);

    let data = bench_dataset(dataset, scale);
    let cluster = experiment_cluster(ClusterSpec::paper());
    load_dataset(&cluster, "input.dat", &data.transactions);
    let run = Yafim::new(
        Context::new(cluster.clone()),
        YafimConfig::new(data.support),
    )
    .mine("input.dat")
    .expect("dataset written");

    println!(
        "YAFIM on {} (scale {scale}): {} itemsets in {:.2} virtual s\n",
        data.name,
        run.result.total(),
        run.total_seconds
    );
    print!("{}", cluster.metrics().render_timeline());

    println!("\n{}", full_report(cluster.metrics()));

    println!("virtual time by event kind:");
    for (kind, n, total) in cluster.metrics().summary_by_kind() {
        println!("  {kind:?}: {n} events, {total}");
    }
    let snap = cluster.metrics().snapshot();
    println!(
        "\njobs {} · stages {} · tasks {} · cpu units {} · shuffle bytes {}",
        snap.jobs, snap.stages, snap.tasks, snap.work.cpu_units, snap.work.ser_bytes
    );

    if let Some(path) = arg("--trace") {
        let json = chrome_trace(cluster.metrics(), cluster.spec());
        match std::fs::write(&path, json) {
            Ok(()) => println!("\nwrote Chrome trace to {path} (open in https://ui.perfetto.dev)"),
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
