//! Fig. 3 reproduction: per-iteration execution time of YAFIM vs MR-Apriori
//! on the four benchmark datasets, at the paper's support thresholds, on
//! the paper's 12-node × 8-core cluster. Also prints the §V.B headline
//! numbers (totals, last-pass times, speedups) next to the paper's targets.
//!
//! Usage: `cargo run -p yafim-bench --release --bin fig3 [--scale X]`
//! (`--scale` scales every dataset's transaction count; default 1.0 except
//! T10I4D100K which defaults to 0.25 to keep single-host wall time sane —
//! relative shapes are scale-invariant, see EXPERIMENTS.md.)

use yafim_bench::{
    assert_same_results, bench_dataset, print_pass_table, run_mr, run_yafim_profiled,
};
use yafim_cluster::{iteration_report, ClusterSpec};
use yafim_data::PaperDataset;

/// (dataset, default scale, paper total-speedup target, paper last-pass speedup target)
const PANELS: [(PaperDataset, f64, f64, Option<f64>); 4] = [
    (PaperDataset::Mushroom, 1.0, 21.0, Some(37.0)),
    (PaperDataset::T10I4D100K, 0.25, 10.0, None),
    (PaperDataset::Chess, 1.0, 21.0, Some(55.0)),
    (PaperDataset::PumsbStar, 1.0, 21.0, None),
];

fn main() {
    let scale_override: Option<f64> = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok());

    let mut speedups = Vec::new();
    for (ds, default_scale, paper_total, paper_last) in PANELS {
        let scale = scale_override.unwrap_or(default_scale);
        let data = bench_dataset(ds, scale);
        let (yafim, yafim_cluster) =
            run_yafim_profiled(ClusterSpec::paper(), &data.transactions, data.support);
        let mr = run_mr(ClusterSpec::paper(), &data.transactions, data.support);
        assert_same_results(data.name, &yafim, &mr);

        let title = format!(
            "Fig. 3: {} (sup per paper, scale {scale}) — per-pass execution time",
            data.name
        );
        print_pass_table(&title, &yafim, &mr);
        println!("\n   YAFIM per-iteration report (virtual timeline):");
        for line in iteration_report(yafim_cluster.metrics()).lines() {
            println!("   {line}");
        }

        let total_speedup = mr.total_seconds / yafim.total_seconds;
        speedups.push(total_speedup);
        println!("   paper target: ~{paper_total:.0}x total speedup; measured {total_speedup:.1}x");
        if let (Some(target), Some(y), Some(m)) =
            (paper_last, yafim.passes.last(), mr.passes.last())
        {
            println!(
                "   last pass: paper ~{target:.0}x; measured {:.1}x ({:.2}s vs {:.2}s)",
                m.seconds / y.seconds,
                y.seconds,
                m.seconds
            );
        }
    }

    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("\n== summary ==");
    println!("average total speedup across benchmarks: {avg:.1}x (paper: ~18x)");
}
