//! Bench-regression gate: compare two [`RunManifest`]s metric by metric.
//!
//! The gate is the machine half of the observability story: every bench
//! binary emits a versioned manifest whose `metrics` map holds only
//! deterministic quantities (virtual seconds, critical-path buckets,
//! registry counters, byte totals — never wall-clock). CI re-runs the
//! smoke benches, then gates the fresh manifests against the committed
//! baselines in `results/`; any metric outside its tolerance band fails
//! the build.
//!
//! Modes:
//!
//! * `bench_gate --baseline FILE --candidate FILE [--tolerance FRAC]
//!   [--metric-tolerance NAME=FRAC]...` — compare. `NAME` may end in `*`
//!   for a prefix band (e.g. `--metric-tolerance 'hist.*=0.05'`); the
//!   longest matching rule wins, exact names beat prefixes.
//! * `bench_gate --self-test` — plant a 50 % regression in a synthetic
//!   manifest pair and **exit non-zero** when the gate (correctly)
//!   catches it. CI asserts the non-zero exit, so a gate that has gone
//!   blind fails the build by exiting zero here.
//! * `bench_gate --validate FILE...` — parse each JSON document and
//!   round-trip it (`parse → emit → parse`); files carrying both a
//!   `schema_version` and a `metrics` map must also decode as manifests.
//!   Used by CI to keep
//!   every emitted trace/manifest machine-readable.
//!
//! Exit codes: `0` ok, `1` regression (or validation failure), `2` usage
//! error or incompatible manifests (schema version, bench name, engine or
//! dataset/config fingerprint mismatch — refusing to compare beats
//! comparing the wrong experiments).

use std::collections::BTreeSet;
use std::process::ExitCode;
use yafim_cluster::json::{self, JsonValue};
use yafim_cluster::{RunManifest, MANIFEST_SCHEMA_VERSION};

/// Absolute slack added to every band so a zero baseline tolerates only
/// genuinely negligible drift.
const ABS_EPSILON: f64 = 1e-9;

/// Default relative band. Manifest metrics are deterministic, so the
/// default is tight; loosen per metric where a bench has a documented
/// source of drift.
const DEFAULT_TOLERANCE: f64 = 1e-6;

struct Tolerances {
    default: f64,
    /// `(pattern, band)`; a pattern ending in `*` matches by prefix.
    rules: Vec<(String, f64)>,
}

impl Tolerances {
    fn band_for(&self, metric: &str) -> f64 {
        let mut best: Option<(usize, bool, f64)> = None; // (specificity, exact, band)
        for (pat, band) in &self.rules {
            let (hit, exact, len) = match pat.strip_suffix('*') {
                Some(prefix) => (metric.starts_with(prefix), false, prefix.len()),
                None => (metric == pat, true, pat.len()),
            };
            if hit && best.is_none_or(|(l, e, _)| (len, exact) > (l, e)) {
                best = Some((len, exact, *band));
            }
        }
        best.map_or(self.default, |(_, _, b)| b)
    }
}

enum Failure {
    MissingInCandidate(String, f64),
    MissingInBaseline(String, f64),
    Drift {
        metric: String,
        baseline: f64,
        candidate: f64,
        band: f64,
    },
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::MissingInCandidate(m, b) => {
                write!(
                    f,
                    "{m}: present in baseline ({b}) but missing from candidate"
                )
            }
            Failure::MissingInBaseline(m, c) => {
                write!(
                    f,
                    "{m}: present in candidate ({c}) but not in baseline (refresh the baseline)"
                )
            }
            Failure::Drift {
                metric,
                baseline,
                candidate,
                band,
            } => {
                let denom = baseline.abs().max(candidate.abs()).max(ABS_EPSILON);
                write!(
                    f,
                    "{metric}: baseline {baseline} -> candidate {candidate} \
                     ({:+.4}% , band {:.4}%)",
                    (candidate - baseline) / denom * 100.0,
                    band * 100.0
                )
            }
        }
    }
}

/// Refuse to compare manifests describing different experiments.
fn check_compatible(base: &RunManifest, cand: &RunManifest) -> Result<(), String> {
    if base.schema_version != cand.schema_version {
        return Err(format!(
            "schema_version mismatch: baseline v{} vs candidate v{} (gate speaks v{})",
            base.schema_version, cand.schema_version, MANIFEST_SCHEMA_VERSION
        ));
    }
    if base.bench != cand.bench {
        return Err(format!(
            "bench mismatch: baseline '{}' vs candidate '{}'",
            base.bench, cand.bench
        ));
    }
    if base.engine != cand.engine {
        return Err(format!(
            "engine mismatch: baseline '{}' vs candidate '{}'",
            base.engine, cand.engine
        ));
    }
    if base.fingerprint != cand.fingerprint {
        return Err(format!(
            "dataset/config fingerprint mismatch: baseline {} vs candidate {} \
             (different experiment parameters — refresh the baseline instead)",
            base.fingerprint, cand.fingerprint
        ));
    }
    Ok(())
}

/// Compare every metric in either manifest against its tolerance band.
fn compare(base: &RunManifest, cand: &RunManifest, tol: &Tolerances) -> Vec<Failure> {
    let names: BTreeSet<&String> = base.metrics.keys().chain(cand.metrics.keys()).collect();
    let mut failures = Vec::new();
    for name in names {
        match (base.metrics.get(name), cand.metrics.get(name)) {
            (Some(b), None) => failures.push(Failure::MissingInCandidate(name.clone(), *b)),
            (None, Some(c)) => failures.push(Failure::MissingInBaseline(name.clone(), *c)),
            (Some(b), Some(c)) => {
                let band = tol.band_for(name);
                if (c - b).abs() > band * b.abs().max(c.abs()) + ABS_EPSILON {
                    failures.push(Failure::Drift {
                        metric: name.clone(),
                        baseline: *b,
                        candidate: *c,
                        band,
                    });
                }
            }
            (None, None) => unreachable!("name came from one of the maps"),
        }
    }
    failures
}

fn load_manifest(path: &str) -> Result<RunManifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    RunManifest::from_json(&value).map_err(|e| format!("{path}: {e}"))
}

fn gate(baseline_path: &str, candidate_path: &str, tol: &Tolerances) -> Result<ExitCode, String> {
    let base = load_manifest(baseline_path)?;
    let cand = load_manifest(candidate_path)?;
    check_compatible(&base, &cand)?;
    let failures = compare(&base, &cand, tol);
    if failures.is_empty() {
        println!(
            "gate: OK — bench '{}' ({}), {} metrics within tolerance",
            base.bench,
            base.engine,
            base.metrics.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "gate: REGRESSION — bench '{}' ({}), {} of {} metrics outside tolerance:",
            base.bench,
            base.engine,
            failures.len(),
            base.metrics.len().max(cand.metrics.len())
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        Ok(ExitCode::from(1))
    }
}

/// A synthetic manifest pair for `--self-test`.
fn toy_manifest() -> RunManifest {
    let dataset = JsonValue::object(vec![("name", "self-test".into())]);
    let config = JsonValue::object(vec![("mode", "toy".into())]);
    let fingerprint = RunManifest::fingerprint_of(&dataset, &config);
    let mut metrics = std::collections::BTreeMap::new();
    metrics.insert("virtual_seconds".to_string(), 10.0);
    metrics.insert("bucket.compute".to_string(), 7.0);
    metrics.insert("bucket.shuffle_read".to_string(), 3.0);
    metrics.insert("counter.executor.tasks".to_string(), 64.0);
    RunManifest {
        schema_version: MANIFEST_SCHEMA_VERSION,
        bench: "self-test".to_string(),
        engine: "toy".to_string(),
        dataset,
        config,
        fingerprint,
        metrics,
        detail: JsonValue::Null,
    }
}

/// Prove the gate still bites: identical manifests must pass, a planted
/// 50 % regression must fail, and a fingerprint mismatch must be refused.
/// Exits non-zero exactly when all three hold (CI asserts the non-zero
/// exit).
fn self_test(tol: &Tolerances) -> ExitCode {
    let base = toy_manifest();

    if !compare(&base, &base.clone(), tol).is_empty() {
        eprintln!("self-test BROKEN: identical manifests compared unequal");
        return ExitCode::SUCCESS; // zero exit -> CI's `!` assertion fails
    }
    println!("self-test: identical manifests compare clean");

    let mut slow = base.clone();
    slow.metrics.insert("virtual_seconds".to_string(), 15.0);
    let failures = compare(&base, &slow, tol);
    if failures.is_empty() {
        eprintln!("self-test BROKEN: planted 50% regression went undetected");
        return ExitCode::SUCCESS;
    }
    println!("self-test: planted 50% regression detected:");
    for f in &failures {
        println!("  {f}");
    }

    let mut other = base.clone();
    other.fingerprint = "0000000000000000".to_string();
    if check_compatible(&base, &other).is_ok() {
        eprintln!("self-test BROKEN: fingerprint mismatch was not refused");
        return ExitCode::SUCCESS;
    }
    println!("self-test: fingerprint mismatch refused");

    println!("self-test: gate is healthy — exiting non-zero as designed");
    ExitCode::from(1)
}

/// The integrity counters every manifest must carry, with their internal
/// consistency rules: silent corruption is only ever *observed* at
/// detection time, so detected == injected; nothing undetected can be
/// repaired; and every repair went down exactly one repair path.
fn check_integrity_metrics(m: &RunManifest) -> Result<(), String> {
    let get = |name: &str| -> Result<f64, String> {
        m.metrics
            .get(name)
            .copied()
            .ok_or_else(|| format!("missing integrity metric '{name}'"))
    };
    let injected = get("integrity.corruptions_injected")?;
    let detected = get("integrity.corruptions_detected")?;
    let repaired = get("integrity.corruptions_repaired")?;
    let via = get("integrity.repaired_via_replica")?
        + get("integrity.repaired_via_recompute")?
        + get("integrity.repaired_via_resubmit")?;
    if detected != injected {
        return Err(format!(
            "integrity.corruptions_detected ({detected}) != corruptions_injected ({injected})"
        ));
    }
    if repaired > detected {
        return Err(format!(
            "integrity.corruptions_repaired ({repaired}) exceeds corruptions_detected ({detected})"
        ));
    }
    if via != repaired {
        return Err(format!(
            "integrity repair paths sum to {via} but corruptions_repaired is {repaired}"
        ));
    }
    Ok(())
}

/// Scheduler-consistency rules: queue wait and scheduler idle are slices of
/// the makespan, so their sum can never exceed it; and a finished run must
/// have completed every job it submitted (an imbalance means a job guard
/// leaked or a FIFO successor wedged). Metrics absent from older manifests
/// count as zero, so pre-scheduler baselines still validate.
fn check_scheduler_metrics(m: &RunManifest) -> Result<(), String> {
    let get = |name: &str| m.metrics.get(name).copied().unwrap_or(0.0);
    let queue = get("bucket.scheduler_queue");
    let idle = get("bucket.scheduler_idle");
    let makespan = get("virtual_seconds");
    if queue + idle > makespan + 1e-6 {
        return Err(format!(
            "bucket.scheduler_queue ({queue}) + bucket.scheduler_idle ({idle}) \
             exceeds virtual_seconds ({makespan})"
        ));
    }
    let submitted = get("counter.sched.jobs_submitted");
    let completed = get("counter.sched.jobs_completed");
    if submitted != completed {
        return Err(format!(
            "counter.sched.jobs_completed ({completed}) != \
             counter.sched.jobs_submitted ({submitted})"
        ));
    }
    Ok(())
}

/// Bitmap-engine consistency rules: intersecting words requires a columnar
/// store to have been built; builds always register their arena bytes; a
/// manifest that both fell back *and* built columnar partitions caught the
/// density guard flapping; and the columnar arenas live in the cache, so
/// their build bytes can never exceed the cache's peak (when the manifest
/// reports one). Metrics absent from pre-bitmap manifests count as zero, so
/// older baselines still validate.
fn check_bitmap_metrics(m: &RunManifest) -> Result<(), String> {
    let get = |name: &str| m.metrics.get(name).copied().unwrap_or(0.0);
    let words = get("counter.bitmap.words_intersected");
    let built = get("counter.bitmap.partitions_built");
    let bytes = get("counter.bitmap.build_bytes");
    let fallbacks = get("counter.bitmap.fallbacks");
    if words > 0.0 && built == 0.0 {
        return Err(format!(
            "counter.bitmap.words_intersected ({words}) without any \
             counter.bitmap.partitions_built"
        ));
    }
    if (built > 0.0) != (bytes > 0.0) {
        return Err(format!(
            "counter.bitmap.partitions_built ({built}) and \
             counter.bitmap.build_bytes ({bytes}) must be zero or nonzero together"
        ));
    }
    if fallbacks > 0.0 && built > 0.0 {
        return Err(format!(
            "counter.bitmap.fallbacks ({fallbacks}) alongside \
             counter.bitmap.partitions_built ({built}): the density guard flapped"
        ));
    }
    if built > 0.0 {
        if let Some(&peak) = m.metrics.get("peak_cache_bytes") {
            if bytes > peak {
                return Err(format!(
                    "counter.bitmap.build_bytes ({bytes}) exceeds peak_cache_bytes \
                     ({peak}): columnar arenas must live in the cache"
                ));
            }
        }
    }
    Ok(())
}

/// Memory-governor consistency rules: every injected OOM is resolved
/// exactly once (killed or survived by degradation); spilled bytes imply
/// spill events; and no task's execution peak can exceed the hard budget
/// cap the governor advertised (when one was armed). Metrics absent from
/// pre-governor manifests count as zero, so older baselines still
/// validate.
fn check_memory_metrics(m: &RunManifest) -> Result<(), String> {
    let get = |name: &str| m.metrics.get(name).copied().unwrap_or(0.0);
    let injected = get("mem.oom_injected");
    let killed = get("mem.oom_killed");
    let survived = get("mem.oom_survived_by_degradation");
    if injected != killed + survived {
        return Err(format!(
            "mem.oom_injected ({injected}) != mem.oom_killed ({killed}) + \
             mem.oom_survived_by_degradation ({survived})"
        ));
    }
    if get("mem.spill_bytes") > 0.0 && get("mem.spills") == 0.0 {
        return Err(format!(
            "mem.spill_bytes ({}) without any mem.spills",
            get("mem.spill_bytes")
        ));
    }
    let budget = get("gauge.mem.task_budget_bytes");
    let peak = get("mem.peak_execution_bytes");
    if budget > 0.0 && peak > budget {
        return Err(format!(
            "mem.peak_execution_bytes ({peak}) exceeds the governor's hard \
             cap gauge.mem.task_budget_bytes ({budget})"
        ));
    }
    Ok(())
}

/// Parse + round-trip every file; manifests must also decode.
fn validate(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("usage: bench_gate --validate FILE...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in paths {
        let verdict = (|| -> Result<&'static str, String> {
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            let value = json::parse(&text).map_err(|e| e.to_string())?;
            let reparsed =
                json::parse(&value.to_string()).map_err(|e| format!("round-trip re-parse: {e}"))?;
            if reparsed != value {
                return Err("round-trip changed the document".to_string());
            }
            // A manifest carries both a schema version and the flat
            // metrics map; BENCH_*.json files share the version field but
            // are not manifests.
            if value.get("schema_version").is_some() && value.get("metrics").is_some() {
                let manifest =
                    RunManifest::from_json(&value).map_err(|e| format!("manifest decode: {e}"))?;
                check_integrity_metrics(&manifest)?;
                check_scheduler_metrics(&manifest)?;
                check_bitmap_metrics(&manifest)?;
                check_memory_metrics(&manifest)?;
                Ok("manifest ok (integrity + scheduler + bitmap + memory counters consistent)")
            } else {
                Ok("json ok")
            }
        })();
        match verdict {
            Ok(kind) => println!("validate: {path}: {kind}"),
            Err(e) => {
                eprintln!("validate: {path}: FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        println!("validate: all {} files machine-readable", paths.len());
        ExitCode::SUCCESS
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         bench_gate --baseline FILE --candidate FILE [--tolerance FRAC] \
         [--metric-tolerance NAME=FRAC]...\n  \
         bench_gate --self-test\n  \
         bench_gate --validate FILE..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut tol = Tolerances {
        default: DEFAULT_TOLERANCE,
        rules: Vec::new(),
    };
    let mut baseline: Option<String> = None;
    let mut candidate: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--self-test" => return self_test(&tol),
            "--validate" => return validate(&args[i + 1..]),
            "--baseline" | "--candidate" | "--tolerance" | "--metric-tolerance" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{} needs a value", args[i]);
                    return usage();
                };
                match args[i].as_str() {
                    "--baseline" => baseline = Some(value.clone()),
                    "--candidate" => candidate = Some(value.clone()),
                    "--tolerance" => match value.parse::<f64>() {
                        Ok(f) if f >= 0.0 => tol.default = f,
                        _ => {
                            eprintln!("--tolerance wants a non-negative fraction, got '{value}'");
                            return usage();
                        }
                    },
                    "--metric-tolerance" => {
                        let Some((name, band)) = value.split_once('=') else {
                            eprintln!("--metric-tolerance wants NAME=FRAC, got '{value}'");
                            return usage();
                        };
                        match band.parse::<f64>() {
                            Ok(f) if f >= 0.0 => tol.rules.push((name.to_string(), f)),
                            _ => {
                                eprintln!("bad band in '{value}'");
                                return usage();
                            }
                        }
                    }
                    _ => unreachable!(),
                }
                i += 2;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }

    let (Some(base), Some(cand)) = (baseline, candidate) else {
        return usage();
    };
    match gate(&base, &cand, &tol) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("gate: INCOMPATIBLE: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_manifests_pass() {
        let tol = Tolerances {
            default: DEFAULT_TOLERANCE,
            rules: vec![],
        };
        let m = toy_manifest();
        assert!(compare(&m, &m.clone(), &tol).is_empty());
    }

    #[test]
    fn drift_beyond_band_fails_and_within_band_passes() {
        let tol = Tolerances {
            default: 0.05,
            rules: vec![],
        };
        let base = toy_manifest();
        let mut cand = base.clone();
        cand.metrics.insert("virtual_seconds".into(), 10.4); // +4% < 5%
        assert!(compare(&base, &cand, &tol).is_empty());
        cand.metrics.insert("virtual_seconds".into(), 11.0); // +10% > 5%
        assert_eq!(compare(&base, &cand, &tol).len(), 1);
    }

    #[test]
    fn missing_and_extra_metrics_fail() {
        let tol = Tolerances {
            default: DEFAULT_TOLERANCE,
            rules: vec![],
        };
        let base = toy_manifest();
        let mut cand = base.clone();
        cand.metrics.remove("bucket.compute");
        cand.metrics.insert("counter.new".into(), 1.0);
        assert_eq!(compare(&base, &cand, &tol).len(), 2);
    }

    #[test]
    fn per_metric_band_overrides_default_and_exact_beats_prefix() {
        let tol = Tolerances {
            default: DEFAULT_TOLERANCE,
            rules: vec![
                ("bucket.*".to_string(), 0.5),
                ("bucket.compute".to_string(), 0.0),
            ],
        };
        assert_eq!(tol.band_for("bucket.shuffle_read"), 0.5);
        assert_eq!(tol.band_for("bucket.compute"), 0.0);
        assert_eq!(tol.band_for("virtual_seconds"), DEFAULT_TOLERANCE);
    }

    #[test]
    fn incompatible_fingerprints_are_refused() {
        let base = toy_manifest();
        let mut other = base.clone();
        other.fingerprint = "f".repeat(16);
        assert!(check_compatible(&base, &other).is_err());
        assert!(check_compatible(&base, &base.clone()).is_ok());
    }

    #[test]
    fn integrity_metrics_must_be_present_and_consistent() {
        let mut m = toy_manifest();
        assert!(check_integrity_metrics(&m)
            .unwrap_err()
            .contains("missing integrity metric"));

        for (k, v) in [
            ("integrity.corruptions_injected", 4.0),
            ("integrity.corruptions_detected", 4.0),
            ("integrity.corruptions_repaired", 4.0),
            ("integrity.repaired_via_replica", 1.0),
            ("integrity.repaired_via_recompute", 1.0),
            ("integrity.repaired_via_resubmit", 2.0),
        ] {
            m.metrics.insert(k.to_string(), v);
        }
        assert!(check_integrity_metrics(&m).is_ok());

        m.metrics
            .insert("integrity.corruptions_detected".into(), 3.0);
        assert!(check_integrity_metrics(&m)
            .unwrap_err()
            .contains("!= corruptions_injected"));

        m.metrics
            .insert("integrity.corruptions_detected".into(), 4.0);
        m.metrics
            .insert("integrity.repaired_via_resubmit".into(), 5.0);
        assert!(check_integrity_metrics(&m)
            .unwrap_err()
            .contains("repair paths sum"));
    }

    #[test]
    fn scheduler_metrics_must_tile_and_balance() {
        // Older manifests without sched metrics validate (missing == 0).
        let mut m = toy_manifest();
        assert!(check_scheduler_metrics(&m).is_ok());

        for (k, v) in [
            ("bucket.scheduler_queue", 2.0),
            ("bucket.scheduler_idle", 3.0),
            ("counter.sched.jobs_submitted", 4.0),
            ("counter.sched.jobs_completed", 4.0),
        ] {
            m.metrics.insert(k.to_string(), v);
        }
        assert!(check_scheduler_metrics(&m).is_ok());

        // Queue + idle overflowing the makespan is impossible in a real run.
        m.metrics.insert("bucket.scheduler_queue".into(), 8.0);
        assert!(check_scheduler_metrics(&m)
            .unwrap_err()
            .contains("exceeds virtual_seconds"));

        m.metrics.insert("bucket.scheduler_queue".into(), 2.0);
        m.metrics.insert("counter.sched.jobs_completed".into(), 3.0);
        assert!(check_scheduler_metrics(&m)
            .unwrap_err()
            .contains("jobs_completed"));
    }

    #[test]
    fn bitmap_metrics_must_cohere() {
        // Pre-bitmap manifests carry none of the counters and validate.
        let mut m = toy_manifest();
        assert!(check_bitmap_metrics(&m).is_ok());

        for (k, v) in [
            ("counter.bitmap.words_intersected", 5000.0),
            ("counter.bitmap.partitions_built", 8.0),
            ("counter.bitmap.build_bytes", 4096.0),
            ("counter.bitmap.fallbacks", 0.0),
            ("peak_cache_bytes", 100_000.0),
        ] {
            m.metrics.insert(k.to_string(), v);
        }
        assert!(check_bitmap_metrics(&m).is_ok());

        // Words counted without a columnar store is impossible.
        m.metrics
            .insert("counter.bitmap.partitions_built".into(), 0.0);
        assert!(check_bitmap_metrics(&m)
            .unwrap_err()
            .contains("without any"));

        // Builds always register bytes (and vice versa).
        m.metrics
            .insert("counter.bitmap.partitions_built".into(), 8.0);
        m.metrics.insert("counter.bitmap.build_bytes".into(), 0.0);
        assert!(check_bitmap_metrics(&m)
            .unwrap_err()
            .contains("zero or nonzero together"));

        // Falling back and building in the same run means the guard flapped.
        m.metrics
            .insert("counter.bitmap.build_bytes".into(), 4096.0);
        m.metrics.insert("counter.bitmap.fallbacks".into(), 1.0);
        assert!(check_bitmap_metrics(&m).unwrap_err().contains("flapped"));

        // Columnar arenas live in the cache, bounded by its peak.
        m.metrics.insert("counter.bitmap.fallbacks".into(), 0.0);
        m.metrics.insert("peak_cache_bytes".into(), 100.0);
        assert!(check_bitmap_metrics(&m)
            .unwrap_err()
            .contains("exceeds peak_cache_bytes"));
    }

    #[test]
    fn memory_metrics_must_cohere() {
        // Pre-governor manifests carry none of the counters and validate.
        let mut m = toy_manifest();
        assert!(check_memory_metrics(&m).is_ok());

        for (k, v) in [
            ("mem.oom_injected", 6.0),
            ("mem.oom_killed", 4.0),
            ("mem.oom_survived_by_degradation", 2.0),
            ("mem.spills", 3.0),
            ("mem.spill_bytes", 12288.0),
            ("mem.peak_execution_bytes", 50_000.0),
            ("gauge.mem.task_budget_bytes", 100_000.0),
        ] {
            m.metrics.insert(k.to_string(), v);
        }
        assert!(check_memory_metrics(&m).is_ok());

        // Every injected OOM is resolved exactly once.
        m.metrics.insert("mem.oom_killed".into(), 5.0);
        assert!(check_memory_metrics(&m)
            .unwrap_err()
            .contains("mem.oom_injected"));

        // Spilled bytes without spill events is impossible.
        m.metrics.insert("mem.oom_killed".into(), 4.0);
        m.metrics.insert("mem.spills".into(), 0.0);
        assert!(check_memory_metrics(&m)
            .unwrap_err()
            .contains("without any mem.spills"));

        // A task peak above the governor's hard cap means the ledger leaked.
        m.metrics.insert("mem.spills".into(), 3.0);
        m.metrics
            .insert("mem.peak_execution_bytes".into(), 200_000.0);
        assert!(check_memory_metrics(&m)
            .unwrap_err()
            .contains("exceeds the governor's hard cap"));

        // An unarmed governor (budget gauge 0) bounds nothing.
        m.metrics.insert("gauge.mem.task_budget_bytes".into(), 0.0);
        assert!(check_memory_metrics(&m).is_ok());
    }

    #[test]
    fn zero_baseline_tolerates_only_epsilon() {
        let tol = Tolerances {
            default: 0.05,
            rules: vec![],
        };
        let mut base = toy_manifest();
        base.metrics.insert("recovery.nodes_lost".into(), 0.0);
        let mut cand = base.clone();
        assert!(compare(&base, &cand, &tol).is_empty());
        cand.metrics.insert("recovery.nodes_lost".into(), 1.0);
        assert_eq!(compare(&base, &cand, &tol).len(), 1);
    }
}
