//! Ablation for §IV.C ("Share Data With Broadcast"): YAFIM with Spark's
//! torrent-style broadcast variables versus the naive default the paper
//! warns about, where the driver ships the shared data (the candidate hash
//! tree) with *every task* through its single uplink.
//!
//! Usage: `cargo run -p yafim-bench --release --bin ablation_broadcast [--scale X]`

use yafim_bench::{bench_dataset, experiment_cluster, load_dataset};
use yafim_cluster::ClusterSpec;
use yafim_core::{Yafim, YafimConfig};
use yafim_data::PaperDataset;
use yafim_rdd::{BroadcastMode, Context, RddConfig};

fn main() {
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    println!("== Ablation: broadcast variables vs naive per-task shipping (§IV.C) ==");
    println!(
        "{:<12} {:>16} {:>16} {:>10}",
        "dataset", "torrent (s)", "per-task (s)", "penalty"
    );
    for ds in [PaperDataset::T10I4D100K, PaperDataset::Mushroom] {
        let data = bench_dataset(ds, scale);
        let mut totals = Vec::new();
        for mode in [BroadcastMode::Torrent, BroadcastMode::NaivePerTask] {
            let cluster = experiment_cluster(ClusterSpec::paper());
            load_dataset(&cluster, "input.dat", &data.transactions);
            let mut cfg = RddConfig::for_cluster(&cluster);
            cfg.broadcast = mode;
            let ctx = Context::with_config(cluster, cfg);
            let run = Yafim::new(ctx, YafimConfig::new(data.support))
                .mine("input.dat")
                .expect("dataset written");
            totals.push(run.total_seconds);
        }
        println!(
            "{:<12} {:>16.2} {:>16.2} {:>9.2}x",
            data.name,
            totals[0],
            totals[1],
            totals[1] / totals[0]
        );
    }
    println!(
        "\n(The paper: naive shipping makes the master's bandwidth the bottleneck, \
         'capping the rate at which tasks could be launched'.)"
    );
}
