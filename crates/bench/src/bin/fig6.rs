//! Fig. 6 reproduction: the real-world medical application (§V.D).
//! Medical case data at Sup = 3%, YAFIM vs MR-Apriori per iteration; the
//! paper reports ~25× overall and notes both that every YAFIM iteration is
//! far cheaper than MR's and that YAFIM's iterations get cheaper as the
//! frequent-itemset levels shrink.
//!
//! Usage: `cargo run -p yafim-bench --release --bin fig6 [--scale X]`

use yafim_bench::{assert_same_results, bench_dataset, print_pass_table, run_mr, run_yafim};
use yafim_cluster::ClusterSpec;
use yafim_data::PaperDataset;

fn main() {
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    let data = bench_dataset(PaperDataset::Medical, scale);
    let yafim = run_yafim(ClusterSpec::paper(), &data.transactions, data.support);
    let mr = run_mr(ClusterSpec::paper(), &data.transactions, data.support);
    assert_same_results("medical", &yafim, &mr);

    print_pass_table(
        &format!(
            "Fig. 6: medical case data, Sup = 3% ({} cases)",
            data.transactions.len()
        ),
        &yafim,
        &mr,
    );
    println!(
        "\npaper target: ~25x total speedup; measured {:.1}x",
        mr.total_seconds / yafim.total_seconds
    );

    // The paper's qualitative claim: YAFIM iterations shrink over time.
    let y = &yafim.passes;
    let head = y.iter().take(3).map(|p| p.seconds).sum::<f64>() / 3.0;
    let tail_n = y.len().saturating_sub(3).max(1);
    let tail = y.iter().skip(3).map(|p| p.seconds).sum::<f64>() / tail_n as f64;
    println!(
        "YAFIM early passes avg {head:.2}s vs later passes avg {tail:.2}s \
         (paper: per-iteration time decreases with the iterations)"
    );
}
