//! Chaos harness: run YAFIM and MR-Apriori under identical deterministic
//! fault plans and verify that recovery changes *when* things finish, never
//! *what* they compute.
//!
//! Two scenarios, both seeded and bit-for-bit reproducible:
//!
//! * **A — node loss mid-Phase-II**: a node dies halfway through pass 2,
//!   taking its cached partitions and shuffle map outputs (YAFIM) or its
//!   completed map outputs (MR) with it. Both engines must produce results
//!   byte-identical to the fault-free run, paying only extra virtual time.
//! * **B — flaky tasks + a straggler node**: background task crashes with
//!   bounded retries, one node degraded 3×, speculative execution on.
//!
//! Usage: `cargo run -p yafim-bench --release --bin chaos
//!     [--seed N] [--scale X]`
//!
//! Run it twice with the same seed and diff the output: identical bytes.

use yafim_bench::{bench_dataset, experiment_cluster, load_dataset};
use yafim_cluster::{
    full_report, ClusterSpec, EventKind, FaultPlan, NodeId, RecoveryCounters, SimCluster,
    SimDuration, SimInstant,
};
use yafim_core::{MinerRun, MrApriori, MrAprioriConfig, Yafim, YafimConfig};
use yafim_data::PaperDataset;
use yafim_rdd::Context;

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let seed: u64 = arg("--seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let scale: f64 = arg("--scale").and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let data = bench_dataset(PaperDataset::Mushroom, scale);

    println!("== chaos: deterministic fault injection (seed {seed}) ==");
    println!(
        "dataset {} at scale {scale}, support {:?}\n",
        data.name, data.support
    );

    for engine in ["YAFIM", "MR-Apriori"] {
        // Fault-free baseline: reference results, makespan, and the virtual
        // instant halfway through pass 2 (mid-Phase-II) for the node loss.
        let (base_run, base_cluster) = mine(engine, &data, None);
        let t_loss = pass2_midpoint(&base_cluster).unwrap_or(base_run.total_seconds * 0.5);
        println!("-- {engine} --");
        println!(
            "fault-free: {} itemsets in {:.2} virtual s",
            base_run.result.total(),
            base_run.total_seconds
        );

        // A: lose the node holding the input's primary block replica (the
        // data-local node — it owns cached partitions and map outputs)
        // mid-Phase-II. HDFS placement is deterministic, so the victim is
        // the same node in every run.
        let victim = base_cluster
            .hdfs()
            .get("input.dat")
            .expect("loaded")
            .blocks()[0]
            .replicas[0];
        let plan_a = FaultPlan::seeded(seed)
            .lose_node_at(victim, SimInstant::EPOCH + SimDuration::from_secs(t_loss));
        let (run_a, cluster_a) = mine(engine, &data, Some(plan_a));
        assert_eq!(
            base_run.result, run_a.result,
            "{engine}: node loss changed mining results"
        );
        let rec_a = cluster_a.metrics().snapshot().recovery;
        println!(
            "A {victim} lost at {t_loss:.2}s (mid pass 2): results identical, \
             {:.2} virtual s (+{:.2}s recovery)",
            run_a.total_seconds,
            run_a.total_seconds - base_run.total_seconds
        );
        print_counters(&rec_a);
        print_recovery_excerpt(&cluster_a);

        // B: flaky tasks + one straggler node, speculation on.
        let plan_b = FaultPlan::seeded(seed)
            .crash_tasks(0.08)
            .with_max_task_failures(10)
            .slow_node(NodeId(2), 3.0)
            .with_speculation();
        let (run_b, cluster_b) = mine(engine, &data, Some(plan_b));
        assert_eq!(
            base_run.result, run_b.result,
            "{engine}: crashes/speculation changed mining results"
        );
        let rec_b = cluster_b.metrics().snapshot().recovery;
        println!(
            "B crashes 8% + node2 slowed 3x + speculation: results identical, \
             {:.2} virtual s (+{:.2}s recovery)",
            run_b.total_seconds,
            run_b.total_seconds - base_run.total_seconds
        );
        print_counters(&rec_b);
        println!();
    }
    println!("all fault scenarios returned byte-identical mining results");
}

/// Run one engine over the dataset, optionally under a fault plan.
fn mine(
    engine: &str,
    data: &yafim_bench::BenchDataset,
    plan: Option<FaultPlan>,
) -> (MinerRun, SimCluster) {
    let cluster = experiment_cluster(ClusterSpec::paper());
    load_dataset(&cluster, "input.dat", &data.transactions);
    if let Some(p) = plan {
        cluster.faults().set_plan(p);
    }
    let run = match engine {
        "YAFIM" => Yafim::new(
            Context::new(cluster.clone()),
            YafimConfig::new(data.support),
        )
        .mine("input.dat")
        .expect("below-budget plan must not abort"),
        _ => MrApriori::new(cluster.clone(), MrAprioriConfig::new(data.support))
            .mine("input.dat")
            .expect("below-budget plan must not abort"),
    };
    (run, cluster)
}

/// Virtual instant (seconds) halfway through the `pass 2` iteration span.
fn pass2_midpoint(cluster: &SimCluster) -> Option<f64> {
    cluster
        .metrics()
        .events_of(EventKind::Iteration)
        .iter()
        .find(|e| e.label == "pass 2")
        .map(|e| e.start.since(SimInstant::EPOCH).as_secs() + e.duration.as_secs() / 2.0)
}

fn print_counters(r: &RecoveryCounters) {
    println!(
        "   recovery: {} task failures, {} retries, {} speculative ({} won), \
         {} nodes lost, {} map outputs refetched, {} partitions recomputed",
        r.task_failures,
        r.task_retries,
        r.speculative_launched,
        r.speculative_wins,
        r.nodes_lost,
        r.fetch_failures,
        r.recomputed_partitions
    );
}

/// Print the stage-report rows that show recovery work (resubmissions and
/// nonzero recovery columns) plus the report's recovery totals line.
fn print_recovery_excerpt(cluster: &SimCluster) {
    let report = full_report(cluster.metrics());
    for line in report.lines() {
        if line.contains("resubmit") || line.contains("recovery:") || has_recovery_cell(line) {
            println!("   | {}", line.trim_end());
        }
    }
}

/// Does a stage row end in a `Nf Nr Ns` recovery cell?
fn has_recovery_cell(line: &str) -> bool {
    let toks: Vec<&str> = line.split_whitespace().rev().take(3).collect();
    toks.len() == 3
        && toks[0].ends_with('s')
        && toks[1].ends_with('r')
        && toks[2].ends_with('f')
        && toks
            .iter()
            .all(|t| t.len() > 1 && t[..t.len() - 1].chars().all(|c| c.is_ascii_digit()))
}
