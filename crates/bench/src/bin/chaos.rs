//! Chaos harness: run YAFIM and MR-Apriori under identical deterministic
//! fault plans and verify that recovery changes *when* things finish, never
//! *what* they compute.
//!
//! Three scenarios, all seeded and bit-for-bit reproducible:
//!
//! * **A — node loss mid-Phase-II**: a node dies halfway through pass 2,
//!   taking its cached partitions and shuffle map outputs (YAFIM) or its
//!   completed map outputs (MR) with it. Both engines must produce results
//!   byte-identical to the fault-free run, paying only extra virtual time.
//! * **B — flaky tasks + a straggler node**: background task crashes with
//!   bounded retries, one node degraded 3×, speculative execution on.
//! * **C — checkpoint cadence vs lineage replay**: the optimized Phase-II
//!   trims its working RDD every pass, so lineage grows one level per pass
//!   and a node lost after pass k forces a ~k-level replay back to HDFS.
//!   Checkpointing every c passes caps the replay at the blocks written at
//!   most c passes ago, no matter how late the loss lands. The harness
//!   loses a node during *every* pass, with checkpointing off and on, and
//!   asserts the measured max replay depth stays within the cadence-derived
//!   bound (and that results never move).
//! * **E — memory governor sweep**: budget × matcher × engine over the
//!   wide-alphabet T10I4D100K (whose candidate structures are big enough
//!   to overflow a tight node budget). Every cell must mine byte-identical
//!   itemsets to its unconstrained baseline while the sweep as a whole
//!   exercises every rung of the degradation ladder — combine-buffer
//!   spills, matcher step-downs, OOM kill-and-retry — and two
//!   starved-beyond-use cells must end in a typed admission refusal.
//!
//! The report is also written to `results/chaos.txt` (scenario E to
//! `results/chaos_e.txt`; both skipped under `--smoke`, which runs the same
//! scenarios at a reduced scale for CI). The output is fully deterministic:
//! run it twice with the same seed and diff the output — identical bytes.
//!
//! Usage: `cargo run -p yafim-bench --release --bin chaos
//!     [--seed N] [--scale X] [--smoke]`

use std::fmt::Write as _;

use yafim_bench::{bench_dataset, experiment_cluster, load_dataset, write_manifest};
use yafim_cluster::json::JsonValue;
use yafim_cluster::{
    critical_path, full_report, fx_hash64, ClusterSpec, EventKind, FaultPlan, IntegrityTier,
    MemoryCounters, NodeId, RecoveryCounters, RunManifest, SimCluster, SimDuration, SimInstant,
};
use yafim_core::{MineError, MinerRun, MrApriori, MrAprioriConfig, Support, Yafim, YafimConfig};
use yafim_data::PaperDataset;
use yafim_mapreduce::MrError;
use yafim_rdd::{Context, ExecError};

/// Scenario C checkpoints the working RDD every this many Phase-II passes.
const CKPT_INTERVAL: usize = 2;

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed: u64 = arg("--seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let scale: f64 = arg("--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.1 } else { 0.25 });
    let data = bench_dataset(PaperDataset::Mushroom, scale);
    let mut out = String::new();

    let _ = writeln!(
        out,
        "== chaos: deterministic fault injection (seed {seed}) =="
    );
    let _ = writeln!(
        out,
        "dataset {} at scale {scale}, support {:?}\n",
        data.name, data.support
    );

    for engine in ["YAFIM", "MR-Apriori"] {
        // Fault-free baseline: reference results, makespan, and the virtual
        // instant halfway through pass 2 (mid-Phase-II) for the node loss.
        let (base_run, base_cluster) = mine(engine, &data, None);
        let t_loss = pass2_midpoint(&base_cluster).unwrap_or(base_run.total_seconds * 0.5);
        let _ = writeln!(out, "-- {engine} --");
        let _ = writeln!(
            out,
            "fault-free: {} itemsets in {:.2} virtual s",
            base_run.result.total(),
            base_run.total_seconds
        );

        // A: lose the node holding the input's primary block replica (the
        // data-local node — it owns cached partitions and map outputs)
        // mid-Phase-II. HDFS placement is deterministic, so the victim is
        // the same node in every run.
        let victim = base_cluster
            .hdfs()
            .get("input.dat")
            .expect("loaded")
            .blocks()[0]
            .replicas[0];
        let plan_a = FaultPlan::seeded(seed)
            .lose_node_at(victim, SimInstant::EPOCH + SimDuration::from_secs(t_loss));
        let (run_a, cluster_a) = mine(engine, &data, Some(plan_a));
        assert_eq!(
            base_run.result, run_a.result,
            "{engine}: node loss changed mining results"
        );
        let rec_a = cluster_a.metrics().snapshot().recovery;
        let _ = writeln!(
            out,
            "A {victim} lost at {t_loss:.2}s (mid pass 2): results identical, \
             {:.2} virtual s (+{:.2}s recovery)",
            run_a.total_seconds,
            run_a.total_seconds - base_run.total_seconds
        );
        print_counters(&mut out, &rec_a);
        print_recovery_excerpt(&mut out, &cluster_a);

        // B: flaky tasks + one straggler node, speculation on.
        let plan_b = FaultPlan::seeded(seed)
            .crash_tasks(0.08)
            .with_max_task_failures(10)
            .slow_node(NodeId(2), 3.0)
            .with_speculation();
        let (run_b, cluster_b) = mine(engine, &data, Some(plan_b));
        assert_eq!(
            base_run.result, run_b.result,
            "{engine}: crashes/speculation changed mining results"
        );
        let rec_b = cluster_b.metrics().snapshot().recovery;
        let _ = writeln!(
            out,
            "B crashes 8% + node2 slowed 3x + speculation: results identical, \
             {:.2} virtual s (+{:.2}s recovery)",
            run_b.total_seconds,
            run_b.total_seconds - base_run.total_seconds
        );
        print_counters(&mut out, &rec_b);
        let _ = writeln!(out);
    }

    scenario_c(&mut out, seed, &data);
    let sweep = scenario_d(&mut out, seed, &data);
    let _ = writeln!(
        out,
        "all fault scenarios returned byte-identical mining results"
    );

    print!("{out}");
    if !smoke {
        std::fs::write("results/chaos.txt", &out).expect("write results/chaos.txt");
    }

    // Regression-gate manifest: captured from scenario D's representative
    // run (YAFIM, every tier corrupted at the top sweep rate) plus sweep
    // totals — all deterministic virtual-time quantities.
    let dataset_doc = JsonValue::object(vec![
        ("name", data.name.into()),
        ("scale", scale.into()),
        ("support", format!("{:?}", data.support).as_str().into()),
        ("smoke", JsonValue::Bool(smoke)),
    ]);
    let config_doc = JsonValue::object(vec![
        ("scenario", "D".into()),
        ("engine", "YAFIM".into()),
        ("corruption", "shuffle+cache+hdfs".into()),
        ("rate", CORRUPTION_RATES[CORRUPTION_RATES.len() - 1].into()),
        ("seed", seed.into()),
    ]);
    let mut manifest = RunManifest::capture(
        "chaos",
        "yafim",
        dataset_doc,
        config_doc,
        &sweep.representative_cluster,
    );
    manifest.push_metric("chaos.itemsets", sweep.representative_itemsets as f64);
    manifest.push_metric("chaos.sweep_runs", sweep.runs as f64);
    manifest.push_metric("chaos.sweep_detected", sweep.detected as f64);
    manifest.push_metric("chaos.sweep_repaired", sweep.repaired as f64);
    let manifest_path = if smoke {
        "target/manifests/chaos.smoke.manifest.json"
    } else {
        "results/chaos.manifest.json"
    };
    write_manifest(&manifest, manifest_path);
    println!("wrote {manifest_path}");

    scenario_e(seed, scale, smoke);
}

/// Node-memory override for scenario E's pressure cells: small enough that
/// the pass-2 triangle array and candidate tries overflow the per-task
/// slice (forcing step-downs and retry-ladder survivals), big enough that
/// the hash-tree floor still fits a fully-backed-off retry.
const E_TIGHT_BUDGET: u64 = 24 * 1024 * 1024;

/// Injected per-acquisition OOM probability for scenario E's OOM cells.
const E_OOM_PROB: f64 = 0.05;

/// Node budget whose per-task slice falls below the spill granule — every
/// admission check must refuse it with a typed error.
const E_REFUSAL_BUDGET: u64 = 256 * 1024;

/// E: memory-governor sweep — budget × matcher × engine. Every budgeted
/// cell must return itemsets byte-identical to its own unconstrained
/// baseline; across the sweep every degradation rung (spill, matcher
/// step-down, OOM kill-and-retry) must fire at least once; and two
/// starved cells must end in a typed admission refusal, never a partial
/// result.
fn scenario_e(seed: u64, scale: f64, smoke: bool) {
    // T10I4D100K, not the Mushroom set the other scenarios use: its ~850
    // item alphabet makes |C_2| (and so the triangle array and candidate
    // stores) large enough to overflow a tight-but-admissible budget.
    let data = bench_dataset(PaperDataset::T10I4D100K, scale);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== chaos E: memory governor sweep (seed {seed}) ==\n\
         dataset {} at scale {scale}, support {:?}\n\
         budgets: oom = injected OOM at p={E_OOM_PROB} (full node memory), \
         tight = {} MiB per node\n",
        data.name,
        data.support,
        E_TIGHT_BUDGET / (1024 * 1024)
    );
    let _ = writeln!(
        out,
        "{:<20} {:>6} | {:>10} {:>6} {:>9} | {:>8} {:>6} {:>8} | {:>9}",
        "engine/matcher",
        "budget",
        "peak (B)",
        "spills",
        "stepdown",
        "injected",
        "killed",
        "survived",
        "extra(s)"
    );

    let budgets: [(&str, FaultPlan); 2] = [
        ("oom", FaultPlan::seeded(seed).inject_oom(E_OOM_PROB)),
        (
            "tight",
            FaultPlan::seeded(seed).with_mem_budget(E_TIGHT_BUDGET),
        ),
    ];
    type Cfg = fn(Support) -> YafimConfig;
    let matchers: [(&str, Cfg); 3] = [
        ("YAFIM/hash-tree", YafimConfig::new),
        ("YAFIM/trie", YafimConfig::optimized),
        ("YAFIM/bitmap", YafimConfig::bitmap),
    ];

    let mut agg = MemoryCounters::default();
    let mut cells = 0u64;
    let mut representative: Option<(SimCluster, usize)> = None;
    for (mname, cfg) in &matchers {
        let (base, _) = mine_yafim_budgeted(&data, cfg(data.support), None);
        for (bname, plan) in &budgets {
            let (run, cluster) = mine_yafim_budgeted(&data, cfg(data.support), Some(plan.clone()));
            assert_eq!(
                base.result, run.result,
                "{mname} under the {bname} budget changed mining results"
            );
            let mem = cell_counters(&cluster, &format!("{mname} {bname}"));
            agg.merge(&mem);
            cells += 1;
            let _ = writeln!(
                out,
                "{:<20} {:>6} | {:>10} {:>6} {:>9} | {:>8} {:>6} {:>8} | {:>9.2}",
                mname,
                bname,
                mem.peak_execution_bytes,
                mem.spills,
                mem.degradations,
                mem.oom_injected,
                mem.oom_killed,
                mem.oom_survived_by_degradation,
                run.total_seconds - base.total_seconds
            );
            if *mname == "YAFIM/trie" && *bname == "tight" {
                representative = Some((cluster, run.result.total()));
            }
        }
    }

    let (mr_base, _) = mine_mr_budgeted(&data, None);
    for (bname, plan) in &budgets {
        let (run, cluster) = mine_mr_budgeted(&data, Some(plan.clone()));
        assert_eq!(
            mr_base.result, run.result,
            "MR-Apriori under the {bname} budget changed mining results"
        );
        let mem = cell_counters(&cluster, &format!("MR-Apriori {bname}"));
        agg.merge(&mem);
        cells += 1;
        let _ = writeln!(
            out,
            "{:<20} {:>6} | {:>10} {:>6} {:>9} | {:>8} {:>6} {:>8} | {:>9.2}",
            "MR-Apriori",
            bname,
            mem.peak_execution_bytes,
            mem.spills,
            mem.degradations,
            mem.oom_injected,
            mem.oom_killed,
            mem.oom_survived_by_degradation,
            run.total_seconds - mr_base.total_seconds
        );
    }

    // Every rung of the ladder must have fired somewhere in the sweep.
    assert!(
        agg.spills > 0 && agg.spill_bytes > 0,
        "the sweep must exercise the spill rung"
    );
    assert!(
        agg.degradations > 0,
        "the sweep must exercise the matcher step-down rung"
    );
    assert!(
        agg.oom_injected > 0 && agg.oom_killed > 0,
        "the sweep must exercise the OOM kill-and-retry rung"
    );
    assert!(
        agg.oom_survived_by_degradation > 0,
        "some injected OOM must be survived by spilling"
    );
    assert_eq!(
        agg.oom_injected,
        agg.oom_killed + agg.oom_survived_by_degradation,
        "every injected OOM is either killed or survived by degradation"
    );

    // Starved beyond use: a node whose per-task slice is below the spill
    // granule cannot make progress even by streaming through disk, so
    // admission control must refuse the job with a typed error on both
    // engines — never return a partial result.
    let starved = FaultPlan::seeded(seed).with_mem_budget(E_REFUSAL_BUDGET);
    let cluster = experiment_cluster(ClusterSpec::paper());
    load_dataset(&cluster, "input.dat", &data.transactions);
    cluster.faults().set_plan(starved.clone());
    match Yafim::new(
        Context::new(cluster.clone()),
        YafimConfig::new(data.support),
    )
    .try_mine("input.dat")
    {
        Err(MineError::Exec(ExecError::MemoryRefused { refusal })) => {
            let _ = writeln!(out, "\nstarved (YAFIM): {refusal}");
        }
        Err(e) => panic!("expected a memory refusal, got: {e}"),
        Ok(_) => panic!("a {E_REFUSAL_BUDGET}-byte node must be refused at admission"),
    }
    let cluster = experiment_cluster(ClusterSpec::paper());
    load_dataset(&cluster, "input.dat", &data.transactions);
    cluster.faults().set_plan(starved);
    match MrApriori::new(cluster.clone(), MrAprioriConfig::new(data.support)).mine("input.dat") {
        Err(MrError::MemoryRefused { refusal }) => {
            let _ = writeln!(out, "starved (MR): {refusal}");
        }
        Err(e) => panic!("expected a memory refusal, got: {e}"),
        Ok(_) => panic!("a {E_REFUSAL_BUDGET}-byte node must be refused at admission"),
    }
    let _ = writeln!(
        out,
        "all {cells} budgeted cells returned byte-identical mining results; \
         ladder: {} spills, {} step-downs, {} OOM injected ({} killed, {} \
         survived by degradation)",
        agg.spills,
        agg.degradations,
        agg.oom_injected,
        agg.oom_killed,
        agg.oom_survived_by_degradation
    );

    print!("{out}");
    if !smoke {
        std::fs::write("results/chaos_e.txt", &out).expect("write results/chaos_e.txt");
    }

    // Regression-gate manifest: captured from the representative cell
    // (YAFIM trie matcher under the tight budget — the cell that walks the
    // most ladder rungs) plus sweep totals.
    let (rep_cluster, rep_itemsets) = representative.expect("the trie tight cell ran");
    let dataset_doc = JsonValue::object(vec![
        ("name", data.name.into()),
        ("scale", scale.into()),
        ("support", format!("{:?}", data.support).as_str().into()),
        ("smoke", JsonValue::Bool(smoke)),
    ]);
    let config_doc = JsonValue::object(vec![
        ("scenario", "E".into()),
        ("engine", "YAFIM".into()),
        ("matcher", "trie".into()),
        ("mem_budget_bytes", E_TIGHT_BUDGET.into()),
        ("oom_prob", E_OOM_PROB.into()),
        ("seed", seed.into()),
    ]);
    let mut manifest =
        RunManifest::capture("chaos_e", "yafim", dataset_doc, config_doc, &rep_cluster);
    manifest.push_metric("chaosE.itemsets", rep_itemsets as f64);
    manifest.push_metric("chaosE.cells", cells as f64);
    manifest.push_metric("chaosE.sweep_spills", agg.spills as f64);
    manifest.push_metric("chaosE.sweep_degradations", agg.degradations as f64);
    manifest.push_metric("chaosE.sweep_oom_injected", agg.oom_injected as f64);
    let manifest_path = if smoke {
        "target/manifests/chaos_e.smoke.manifest.json"
    } else {
        "results/chaos_e.manifest.json"
    };
    write_manifest(&manifest, manifest_path);
    println!("wrote {manifest_path}");
}

/// Read one budgeted cell's memory counters and check the per-cell
/// invariants: OOM bookkeeping balances, spill bytes imply spill events,
/// and the critical-path buckets still sum to the makespan (pressure
/// stalls land in `fault_stall`, not in a leak).
fn cell_counters(cluster: &SimCluster, label: &str) -> MemoryCounters {
    let mem = cluster.metrics().snapshot().recovery.mem;
    assert_eq!(
        mem.oom_injected,
        mem.oom_killed + mem.oom_survived_by_degradation,
        "{label}: OOM bookkeeping must balance"
    );
    assert!(
        mem.spill_bytes == 0 || mem.spills > 0,
        "{label}: spill bytes without spill events"
    );
    assert_bucket_sum(cluster, label);
    mem
}

/// Run YAFIM through the typed path ([`Yafim::try_mine`]) — budgeted cells
/// must complete via the degradation ladder, so any typed failure here is
/// a harness bug worth a loud panic.
fn mine_yafim_budgeted(
    data: &yafim_bench::BenchDataset,
    config: YafimConfig,
    plan: Option<FaultPlan>,
) -> (MinerRun, SimCluster) {
    let cluster = experiment_cluster(ClusterSpec::paper());
    load_dataset(&cluster, "input.dat", &data.transactions);
    if let Some(p) = plan {
        cluster.faults().set_plan(p);
    }
    let run = Yafim::new(Context::new(cluster.clone()), config)
        .try_mine("input.dat")
        .unwrap_or_else(|e| panic!("budgeted cell must survive the ladder: {e}"));
    (run, cluster)
}

/// Run MR-Apriori (SPC) under an optional plan, panicking on any typed
/// failure — its map-side combine degrades by spilling, so budgeted cells
/// always complete.
fn mine_mr_budgeted(
    data: &yafim_bench::BenchDataset,
    plan: Option<FaultPlan>,
) -> (MinerRun, SimCluster) {
    let cluster = experiment_cluster(ClusterSpec::paper());
    load_dataset(&cluster, "input.dat", &data.transactions);
    if let Some(p) = plan {
        cluster.faults().set_plan(p);
    }
    let run = MrApriori::new(cluster.clone(), MrAprioriConfig::new(data.support))
        .mine("input.dat")
        .unwrap_or_else(|e| panic!("budgeted cell must survive the ladder: {e}"));
    (run, cluster)
}

/// C: lose a node during every Phase-II pass, with checkpointing off vs
/// every [`CKPT_INTERVAL`] passes, and compare the deepest lineage replay
/// each loss forces.
fn scenario_c(out: &mut String, seed: u64, data: &yafim_bench::BenchDataset) {
    let _ = writeln!(
        out,
        "-- C: checkpoint cadence vs lineage replay (YAFIM optimized Phase-II) --"
    );
    // Each arm gets its own fault-free baseline: checkpointing shifts the
    // virtual timeline, so "just after pass k" must be read off a clean run
    // with the *same* checkpoint cadence for the loss to land where the
    // lineage truncation has actually happened.
    let (clean, clean_cluster) = mine_optimized(data, None);
    let (clean_ckpt, clean_ckpt_cluster) = mine_optimized(
        data,
        Some(FaultPlan::seeded(seed).with_checkpoint_interval(CKPT_INTERVAL)),
    );
    assert_eq!(
        clean.result, clean_ckpt.result,
        "checkpointing alone changed mining results"
    );
    let victim = clean_cluster
        .hdfs()
        .get("input.dat")
        .expect("loaded")
        .blocks()[0]
        .replicas[0];
    // Per-arm loss instants: just inside each Phase-II pass's counting
    // stage, i.e. after every bit of the previous pass's housekeeping
    // (trim plan, checkpoint job) has finished. Pass 1 is Phase-I — no
    // cached Phase-II state to lose yet — so rows start at pass 2.
    let starts_off = pass_starts(&clean_cluster);
    let starts_on = pass_starts(&clean_ckpt_cluster);
    assert_eq!(starts_off.len(), starts_on.len(), "pass counts must agree");
    let _ = writeln!(
        out,
        "{} passes; {victim} lost during each pass, checkpoint off vs every {CKPT_INTERVAL} passes",
        starts_off.len()
    );
    let _ = writeln!(
        out,
        "{:>11} | {:>12} {:>9} | {:>12} {:>9} {:>7} {:>6}",
        "loss during", "off: replay", "extra(s)", "on: replay", "extra(s)", "writes", "reads"
    );

    let mut depths_off = Vec::new();
    let mut depths_on = Vec::new();
    for (k, (&off_at, &on_at)) in starts_off.iter().zip(&starts_on).enumerate().skip(1) {
        let pass = k + 1;
        let mut cells = Vec::new();
        for (interval, start, base_secs) in [
            (0usize, off_at, clean.total_seconds),
            (CKPT_INTERVAL, on_at, clean_ckpt.total_seconds),
        ] {
            let plan = FaultPlan::seeded(seed ^ pass as u64)
                .lose_node_at(
                    victim,
                    SimInstant::EPOCH + SimDuration::from_secs(start + 1e-3),
                )
                .with_checkpoint_interval(interval);
            let (run, cluster) = mine_optimized(data, Some(plan));
            assert_eq!(
                clean.result, run.result,
                "loss during pass {pass} (ckpt interval {interval}) changed results"
            );
            let rec = cluster.metrics().snapshot().recovery;
            if interval == 0 {
                assert_eq!(rec.checkpoint_writes, 0, "interval 0 must never checkpoint");
                depths_off.push(rec.max_replay_depth);
            } else {
                depths_on.push(rec.max_replay_depth);
            }
            cells.push((run.total_seconds - base_secs, rec));
        }
        let (extra_off, ref rec_off) = cells[0];
        let (extra_on, ref rec_on) = cells[1];
        let _ = writeln!(
            out,
            "{:>8} {:>2} | {:>12} {:>9.2} | {:>12} {:>9.2} {:>7} {:>6}",
            "pass",
            pass,
            rec_off.max_replay_depth,
            extra_off,
            rec_on.max_replay_depth,
            extra_on,
            rec_on.checkpoint_writes,
            rec_on.checkpoint_reads
        );
    }

    // The cadence bound: the first checkpoint is written at the end of
    // pass c+1, and from then on the working RDD's lineage is at most a
    // checkpoint reader (1 level) plus c-1 trims of 2 levels each (map +
    // filter) — independent of how late the loss lands. Without
    // checkpointing, depth keeps growing with the loss pass.
    let bound = (2 * CKPT_INTERVAL - 1) as u64;
    for (i, &d) in depths_on.iter().enumerate() {
        let pass = i + 2;
        assert!(
            d <= bound.max(depths_off[i]),
            "loss during pass {pass}: checkpointing must never deepen replay \
             ({d} > off-arm {})",
            depths_off[i]
        );
        if pass >= CKPT_INTERVAL + 2 {
            assert!(
                d <= bound,
                "loss during pass {pass}: replay depth {d} exceeds the cadence \
                 bound {bound} (checkpoint + {} trims)",
                CKPT_INTERVAL - 1
            );
        }
    }
    if depths_off.len() > CKPT_INTERVAL + 1 {
        assert!(
            depths_off.last() > depths_on.last(),
            "late loss must replay deeper without checkpoints \
             (off {:?} vs on {:?})",
            depths_off.last(),
            depths_on.last()
        );
    }
    let _ = writeln!(
        out,
        "replay depth stays <= {bound} once the first checkpoint lands (pass {}); \
         grows to {} without checkpointing\n",
        CKPT_INTERVAL + 2,
        depths_off.iter().max().expect("nonempty")
    );
}

/// Corruption probabilities scenario D sweeps per tier.
const CORRUPTION_RATES: [f64; 2] = [0.05, 0.25];

/// What scenario D hands back for the chaos manifest.
struct SweepSummary {
    /// Cluster behind the representative run (YAFIM, all tiers corrupted
    /// at the top rate) — the manifest captures its metrics.
    representative_cluster: SimCluster,
    /// Itemsets the representative run mined.
    representative_itemsets: usize,
    /// Corrupted runs executed across the sweep.
    runs: u64,
    /// Total corruptions detected across the sweep.
    detected: u64,
    /// Total corruptions repaired across the sweep.
    repaired: u64,
}

/// D: silent-corruption sweep. Each storage tier (shuffle map outputs,
/// cached partitions, HDFS replicas) is corrupted alone and then combined,
/// at each rate in [`CORRUPTION_RATES`], on both engines. Every run must
/// (a) mine byte-identical itemsets to the fault-free baseline, (b) detect
/// every injected corruption, (c) repair everything it detected, and
/// (d) keep the critical-path buckets summing to the makespan. A final
/// poisoned-beyond-repair case must escalate to a typed integrity error
/// instead of returning anything.
fn scenario_d(out: &mut String, seed: u64, data: &yafim_bench::BenchDataset) -> SweepSummary {
    let _ = writeln!(out, "-- D: silent corruption sweep (checksums on) --");
    let _ = writeln!(
        out,
        "{:<11} {:>7} {:>5} | {:>8} {:>8} {:>8} | {:>24} {:>9}",
        "engine",
        "tier",
        "rate",
        "injected",
        "detected",
        "repaired",
        "paths (repl/rec/resub)",
        "extra(s)"
    );

    type TierKnob = fn(FaultPlan, f64) -> FaultPlan;
    let tiers: [(&str, TierKnob); 4] = [
        ("shuffle", |p, r| p.corrupt_shuffle(r)),
        ("cache", |p, r| p.corrupt_cache(r)),
        ("hdfs", |p, r| p.corrupt_hdfs(r)),
        ("all", |p, r| {
            p.corrupt_shuffle(r).corrupt_cache(r).corrupt_hdfs(r)
        }),
    ];

    let mut summary = SweepSummary {
        representative_cluster: experiment_cluster(ClusterSpec::paper()),
        representative_itemsets: 0,
        runs: 0,
        detected: 0,
        repaired: 0,
    };
    for engine in ["YAFIM", "MR-Apriori"] {
        let (base_run, _) = mine(engine, data, None);
        for &rate in &CORRUPTION_RATES {
            for (tier, corrupt) in &tiers {
                let plan = corrupt(FaultPlan::seeded(seed), rate);
                let (run, cluster) = mine(engine, data, Some(plan));
                assert_eq!(
                    base_run.result, run.result,
                    "{engine}: {tier} corruption at {rate} changed mining results"
                );
                let rec = cluster.metrics().snapshot().recovery;
                let i = rec.integrity;
                assert_eq!(
                    i.corruptions_detected, i.corruptions_injected,
                    "{engine}: {tier}@{rate}: every injected corruption must be detected"
                );
                assert_eq!(
                    i.corruptions_repaired, i.corruptions_detected,
                    "{engine}: {tier}@{rate}: every detected corruption must be repaired"
                );
                assert_bucket_sum(&cluster, &format!("{engine} {tier}@{rate}"));
                let _ = writeln!(
                    out,
                    "{:<11} {:>7} {:>5.2} | {:>8} {:>8} {:>8} | {:>14}/{:>3}/{:>4} {:>9.2}",
                    engine,
                    tier,
                    rate,
                    i.corruptions_injected,
                    i.corruptions_detected,
                    i.corruptions_repaired,
                    i.repaired_via_replica,
                    i.repaired_via_recompute,
                    i.repaired_via_resubmit,
                    run.total_seconds - base_run.total_seconds
                );
                summary.runs += 1;
                summary.detected += i.corruptions_detected;
                summary.repaired += i.corruptions_repaired;
                if engine == "YAFIM" && *tier == "all" && rate == CORRUPTION_RATES[1] {
                    summary.representative_cluster = cluster;
                    summary.representative_itemsets = run.result.total();
                }
            }
        }
    }
    assert!(
        summary.detected > 0,
        "the sweep must actually inject corruptions somewhere"
    );

    // Poisoned beyond repair: every replica of a checkpoint block fails
    // verification and the lineage behind it is truncated — the engine
    // must refuse with a typed integrity error, never return results.
    let cluster = experiment_cluster(ClusterSpec::paper());
    load_dataset(&cluster, "input.dat", &data.transactions);
    let ctx = Context::new(cluster.clone());
    let cp = ctx.text_file("input.dat", 4).expect("loaded").checkpoint();
    cluster
        .faults()
        .set_plan(FaultPlan::seeded(seed).corrupt_all_replicas(IntegrityTier::Hdfs, cp.id(), 0));
    match cp.try_collect() {
        Err(ExecError::IntegrityFailure { detail }) => {
            let _ = writeln!(
                out,
                "beyond repair (YAFIM): refused with integrity failure: {detail}"
            );
        }
        Err(e) => panic!("expected an integrity failure, got: {e}"),
        Ok(_) => panic!("all replicas poisoned + truncated lineage must not return results"),
    }

    // Same escalation on the MapReduce engine: every replica of an input
    // split is poisoned and Hadoop has no lineage to recompute inputs.
    let cluster = experiment_cluster(ClusterSpec::paper());
    load_dataset(&cluster, "input.dat", &data.transactions);
    cluster
        .faults()
        .set_plan(FaultPlan::seeded(seed).corrupt_all_replicas(
            IntegrityTier::Hdfs,
            fx_hash64(&"input.dat"),
            0,
        ));
    match MrApriori::new(cluster.clone(), MrAprioriConfig::new(data.support)).mine("input.dat") {
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("data integrity failure"),
                "expected an integrity failure, got: {msg}"
            );
            let _ = writeln!(out, "beyond repair (MR): refused with integrity failure");
        }
        Ok(_) => panic!("all replicas poisoned must not return results"),
    }
    let _ = writeln!(
        out,
        "corruption sweep: {} runs, {} injected corruptions all detected and repaired\n",
        summary.runs, summary.detected
    );
    summary
}

/// The critical-path buckets must account for every virtual second even
/// under corruption plans (repair stalls land in `fault_stall`, recompute
/// in the normal buckets of the resubmitted work).
fn assert_bucket_sum(cluster: &SimCluster, label: &str) {
    let report = critical_path(cluster.metrics(), cluster.cost());
    let sum: f64 = report.buckets.named().iter().map(|(_, v)| v).sum();
    let makespan = cluster.metrics().snapshot().now.as_secs();
    assert!(
        (sum - makespan).abs() < 1e-6,
        "{label}: critical-path buckets sum to {sum} but makespan is {makespan}"
    );
}

/// Run one engine over the dataset, optionally under a fault plan.
fn mine(
    engine: &str,
    data: &yafim_bench::BenchDataset,
    plan: Option<FaultPlan>,
) -> (MinerRun, SimCluster) {
    let cluster = experiment_cluster(ClusterSpec::paper());
    load_dataset(&cluster, "input.dat", &data.transactions);
    if let Some(p) = plan {
        cluster.faults().set_plan(p);
    }
    let run = match engine {
        "YAFIM" => Yafim::new(
            Context::new(cluster.clone()),
            YafimConfig::new(data.support),
        )
        .mine("input.dat")
        .expect("below-budget plan must not abort"),
        _ => MrApriori::new(cluster.clone(), MrAprioriConfig::new(data.support))
            .mine("input.dat")
            .expect("below-budget plan must not abort"),
    };
    (run, cluster)
}

/// Run YAFIM with the optimized Phase-II (whose per-pass trimming grows the
/// working RDD's lineage — the interesting case for checkpointing).
fn mine_optimized(
    data: &yafim_bench::BenchDataset,
    plan: Option<FaultPlan>,
) -> (MinerRun, SimCluster) {
    let cluster = experiment_cluster(ClusterSpec::paper());
    load_dataset(&cluster, "input.dat", &data.transactions);
    if let Some(p) = plan {
        cluster.faults().set_plan(p);
    }
    let run = Yafim::new(
        Context::new(cluster.clone()),
        YafimConfig::optimized(data.support),
    )
    .mine("input.dat")
    .expect("below-budget plan must not abort");
    (run, cluster)
}

/// Virtual instant (seconds) halfway through the `pass 2` iteration span.
fn pass2_midpoint(cluster: &SimCluster) -> Option<f64> {
    cluster
        .metrics()
        .events_of(EventKind::Iteration)
        .iter()
        .find(|e| e.label == "pass 2")
        .map(|e| e.start.since(SimInstant::EPOCH).as_secs() + e.duration.as_secs() / 2.0)
}

/// Virtual start instant (seconds) of every pass's counting stage, in pass
/// order (pass 1 is Phase-I).
fn pass_starts(cluster: &SimCluster) -> Vec<f64> {
    cluster
        .metrics()
        .events_of(EventKind::Iteration)
        .iter()
        .filter(|e| e.label.starts_with("pass "))
        .map(|e| e.start.since(SimInstant::EPOCH).as_secs())
        .collect()
}

fn print_counters(out: &mut String, r: &RecoveryCounters) {
    let _ = writeln!(
        out,
        "   recovery: {} task failures, {} retries, {} speculative ({} won), \
         {} nodes lost, {} map outputs refetched, {} partitions recomputed",
        r.task_failures,
        r.task_retries,
        r.speculative_launched,
        r.speculative_wins,
        r.nodes_lost,
        r.fetch_failures,
        r.recomputed_partitions
    );
}

/// Print the stage-report rows that show recovery work (resubmissions and
/// nonzero recovery columns) plus the report's recovery totals line.
fn print_recovery_excerpt(out: &mut String, cluster: &SimCluster) {
    let report = full_report(cluster.metrics());
    for line in report.lines() {
        if line.contains("resubmit") || line.contains("recovery:") || has_recovery_cell(line) {
            let _ = writeln!(out, "   | {}", line.trim_end());
        }
    }
}

/// Does a stage row end in a `Nf Nr Ns` recovery cell?
fn has_recovery_cell(line: &str) -> bool {
    let toks: Vec<&str> = line.split_whitespace().rev().take(3).collect();
    toks.len() == 3
        && toks[0].ends_with('s')
        && toks[1].ends_with('r')
        && toks[2].ends_with('f')
        && toks
            .iter()
            .all(|t| t.len() > 1 && t[..t.len() - 1].chars().all(|c| c.is_ascii_digit()))
}
