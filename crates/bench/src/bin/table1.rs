//! Table I reproduction: properties of the benchmark datasets.
//!
//! Prints the paper's reported (items, transactions) next to the measured
//! properties of our synthetic stand-ins, plus the measured density facts
//! (average transaction length) that drive mining behaviour.
//!
//! The report is also written to `results/table1.txt`. The output is fully
//! deterministic (seeded generators, no wall-clock), so CI regenerates it
//! and fails on any diff — the committed file can never drift from the
//! generators again.
//!
//! Usage: `cargo run -p yafim-bench --release --bin table1`

use std::fmt::Write as _;
use yafim_data::{stats, PaperDataset};

fn main() {
    let mut report = String::new();
    let _ = writeln!(
        report,
        "TABLE I. PROPERTIES OF DATASETS FOR OUR EXPERIMENTS"
    );
    let _ = writeln!(
        report,
        "{:<12} {:>12} {:>14} {:>14} {:>16} {:>10}",
        "Dataset", "Items(paper)", "Items(ours)", "Tx(paper)", "Tx(ours)", "avg len"
    );
    for ds in PaperDataset::benchmarks() {
        let p = ds.profile();
        let tx = ds.generate();
        let s = stats(&tx);
        let _ = writeln!(
            report,
            "{:<12} {:>12} {:>14} {:>14} {:>16} {:>10.1}",
            p.name, p.items, s.distinct_items, p.transactions, s.transactions, s.avg_len
        );
    }
    let _ = writeln!(
        report,
        "\n(Stand-in generators; see DESIGN.md §2 for the substitution rationale.)"
    );
    print!("{report}");
    std::fs::write("results/table1.txt", &report).expect("write results/table1.txt");
}
