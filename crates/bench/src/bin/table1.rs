//! Table I reproduction: properties of the benchmark datasets.
//!
//! Prints the paper's reported (items, transactions) next to the measured
//! properties of our synthetic stand-ins, plus the measured density facts
//! (average transaction length) that drive mining behaviour.
//!
//! Usage: `cargo run -p yafim-bench --release --bin table1`

use yafim_data::{stats, PaperDataset};

fn main() {
    println!("TABLE I. PROPERTIES OF DATASETS FOR OUR EXPERIMENTS");
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>16} {:>10}",
        "Dataset", "Items(paper)", "Items(ours)", "Tx(paper)", "Tx(ours)", "avg len"
    );
    for ds in PaperDataset::benchmarks() {
        let p = ds.profile();
        let tx = ds.generate();
        let s = stats(&tx);
        println!(
            "{:<12} {:>12} {:>14} {:>14} {:>16} {:>10.1}",
            p.name, p.items, s.distinct_items, p.transactions, s.transactions, s.avg_len
        );
    }
    println!("\n(Stand-in generators; see DESIGN.md §2 for the substitution rationale.)");
}
