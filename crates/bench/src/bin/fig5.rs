//! Fig. 5 reproduction: node scalability of YAFIM. Dataset fixed, node
//! count swept through 4, 6, 8, 10, 12 (32–96 cores). The paper reports
//! near-linear speedup ("the time cost for YAFIM goes near-linear").
//!
//! Deviation note (see EXPERIMENTS.md): scalability is only visible where
//! per-pass *compute* dominates the per-pass scheduling floor (job/stage
//! dispatch, broadcast), which is constant in cluster size. At the original
//! Table I sizes the benchmarks are megabytes and YAFIM is floor-bound, so
//! this binary sweeps the 6×-replicated datasets by default (`--replicate N`
//! to change, `--replicate 1` for the originals; `--scale X` scales the base
//! dataset).
//!
//! Usage: `cargo run -p yafim-bench --release --bin fig5 [--scale X] [--replicate N]`

use yafim_bench::{bench_dataset, run_yafim};
use yafim_cluster::ClusterSpec;
use yafim_data::{replicate, PaperDataset};

const PANELS: [(PaperDataset, f64); 4] = [
    (PaperDataset::Mushroom, 1.0),
    (PaperDataset::T10I4D100K, 0.25),
    (PaperDataset::Chess, 1.0),
    (PaperDataset::PumsbStar, 1.0),
];

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let scale_override: Option<f64> = arg("--scale").and_then(|s| s.parse().ok());
    let replicas: usize = arg("--replicate")
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
        .max(1);

    for (ds, default_scale) in PANELS {
        let scale = scale_override.unwrap_or(default_scale);
        let data = bench_dataset(ds, scale);
        let enlarged = replicate(&data.transactions, replicas);
        println!(
            "\n== Fig. 5: {} node scalability (scale {scale}, {replicas}x replicated) ==",
            data.name
        );
        println!(
            "{:>8} {:>8}  {:>12}  {:>14}",
            "nodes", "cores", "YAFIM (s)", "vs 32 cores"
        );
        let mut base: Option<f64> = None;
        for spec in ClusterSpec::paper_speedup_sweep() {
            let cores = spec.total_cores();
            let nodes = spec.nodes;
            let run = run_yafim(spec, &enlarged, data.support);
            let baseline = *base.get_or_insert(run.total_seconds);
            println!(
                "{:>8} {:>8}  {:>12.2}  {:>13.2}x",
                nodes,
                cores,
                run.total_seconds,
                baseline / run.total_seconds
            );
        }
        println!("   (paper: time decreases near-linearly with added nodes; ideal 96/32 = 3x)");
    }
}
