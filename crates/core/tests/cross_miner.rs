//! The paper's correctness check, generalized: every miner in the
//! repository — sequential Apriori, Eclat, FP-Growth, YAFIM on the RDD
//! engine, MR-Apriori (all three variants) on the MapReduce engine — must
//! produce *identical* frequent itemsets on the same input and support.
//!
//! Datasets are scaled-down versions of the paper's Table I profiles, so
//! all five generator families and both engines are exercised.

use yafim_cluster::{ClusterSpec, CostModel, SimCluster};
use yafim_core::{
    apriori, eclat, fp_growth, mine_in_memory, MrApriori, MrAprioriConfig, MrVariant, Pfp,
    PfpConfig, SequentialConfig, Son, SonConfig, Support, YafimConfig,
};
use yafim_data::{to_lines, PaperDataset};
use yafim_rdd::Context;

fn cluster() -> SimCluster {
    SimCluster::with_threads(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era(), 2)
}

fn check_all_miners(name: &str, transactions: &[Vec<u32>], support: Support) {
    let reference = apriori(transactions, &SequentialConfig::new(support));

    let e = eclat(transactions, support);
    assert_eq!(reference, e, "{name}: eclat diverges");

    let f = fp_growth(transactions, support);
    assert_eq!(reference, f, "{name}: fp-growth diverges");

    let ctx = Context::new(cluster());
    let y = mine_in_memory(&ctx, transactions, YafimConfig::new(support));
    assert_eq!(reference, y.result, "{name}: yafim diverges");

    let c = cluster();
    c.hdfs().put_overwrite("in.dat", to_lines(transactions));
    let m = MrApriori::new(c, MrAprioriConfig::new(support))
        .mine("in.dat")
        .expect("input exists");
    assert_eq!(reference, m.result, "{name}: mr-apriori diverges");

    let c = cluster();
    c.hdfs().put_overwrite("in.dat", to_lines(transactions));
    let s = Son::new(c, SonConfig::new(support))
        .mine("in.dat")
        .expect("input exists");
    assert_eq!(reference, s.result, "{name}: SON diverges");

    let ctx = Context::new(cluster());
    ctx.cluster()
        .hdfs()
        .put_overwrite("in.dat", to_lines(transactions));
    let p = Pfp::new(ctx, PfpConfig::new(support))
        .mine("in.dat")
        .expect("input exists");
    assert_eq!(reference, p.result, "{name}: PFP diverges");
}

#[test]
fn mushroom_profile_all_miners_agree() {
    let tx = PaperDataset::Mushroom.generate_scaled(0.02);
    check_all_miners("mushroom", &tx, Support::Fraction(0.35));
}

#[test]
fn chess_profile_all_miners_agree() {
    let tx = PaperDataset::Chess.generate_scaled(0.05);
    check_all_miners("chess", &tx, Support::Fraction(0.85));
}

#[test]
fn quest_profile_all_miners_agree() {
    let tx = PaperDataset::T10I4D100K.generate_scaled(0.01);
    // 1000 transactions at 1% support keeps the candidate space small.
    check_all_miners("t10i4", &tx, Support::Fraction(0.01));
}

#[test]
fn pumsb_profile_all_miners_agree() {
    let tx = PaperDataset::PumsbStar.generate_scaled(0.01);
    check_all_miners("pumsb_star", &tx, Support::Fraction(0.65));
}

#[test]
fn medical_profile_all_miners_agree() {
    let tx = PaperDataset::Medical.generate_scaled(0.02);
    check_all_miners("medical", &tx, Support::Fraction(0.03));
}

#[test]
fn mr_variants_agree_on_medical() {
    let tx = PaperDataset::Medical.generate_scaled(0.01);
    let reference = apriori(&tx, &SequentialConfig::new(Support::Fraction(0.05)));

    for variant in [
        MrVariant::Spc,
        MrVariant::Fpc { passes_per_job: 2 },
        MrVariant::Dpc {
            max_candidates: 500,
        },
    ] {
        let c = cluster();
        c.hdfs().put_overwrite("in.dat", to_lines(&tx));
        let mut cfg = MrAprioriConfig::new(Support::Fraction(0.05));
        cfg.variant = variant;
        let run = MrApriori::new(c, cfg).mine("in.dat").expect("input exists");
        assert_eq!(reference, run.result, "variant {variant:?} diverges");
    }
}

#[test]
fn replication_preserves_results_and_scales_supports() {
    // The sizeup methodology (Fig. 4) relies on this invariant.
    let tx = PaperDataset::Mushroom.generate_scaled(0.01);
    let tripled = yafim_data::replicate(&tx, 3);
    let a = apriori(&tx, &SequentialConfig::new(Support::Fraction(0.35)));
    let b = apriori(&tripled, &SequentialConfig::new(Support::Fraction(0.35)));
    assert_eq!(a.level_sizes(), b.level_sizes());
    for (set, sup) in a.iter() {
        assert_eq!(b.support_of(set), Some(sup * 3), "{set}");
    }
}
