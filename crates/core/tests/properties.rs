//! Randomized-but-deterministic tests over the mining core.
//!
//! Strategy: small seeded transaction databases and candidate sets, checked
//! against independent oracles — brute force, naive matchers, and the
//! algebraic invariants of frequent itemset mining.

use yafim_core::candidates::{ap_gen, ap_gen_naive};
use yafim_core::{
    apriori, brute_force, eclat, fp_growth, generate_rules, HashTree, Itemset, MatchScratch,
    RuleConfig, SequentialConfig, Support,
};
use yafim_data::rng::StdRng;

/// A random transaction over a small universe: sorted, deduplicated,
/// non-empty subsets of 0..12.
fn transaction(rng: &mut StdRng) -> Vec<u32> {
    let n = rng.gen_range(1usize..8);
    let mut v: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..12)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn database(rng: &mut StdRng) -> Vec<Vec<u32>> {
    let n = rng.gen_range(1usize..24);
    (0..n).map(|_| transaction(rng)).collect()
}

/// A random candidate set of equal-length itemsets.
fn candidate_set(rng: &mut StdRng, k: usize) -> Vec<Itemset> {
    let n = rng.gen_range(0usize..30);
    let mut seen = std::collections::HashSet::new();
    (0..n)
        .map(|_| {
            let raw: Vec<u32> = (0..k).map(|_| rng.gen_range(0u32..15)).collect();
            Itemset::new(raw)
        })
        .filter(|s| s.len() == k && seen.insert(s.clone()))
        .collect()
}

fn raw_items(rng: &mut StdRng, max_len: usize, universe: u32) -> Vec<u32> {
    let n = rng.gen_range(0usize..max_len.max(1));
    (0..n).map(|_| rng.gen_range(0u32..universe)).collect()
}

fn sorted_dedup(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

const CASES: usize = 64;

#[test]
fn itemset_new_is_sorted_dedup() {
    let mut rng = StdRng::seed_from_u64(50);
    for _ in 0..CASES {
        let items = raw_items(&mut rng, 20, 100);
        let s = Itemset::new(items.clone());
        assert!(s.items().windows(2).all(|w| w[0] < w[1]));
        for i in items {
            assert!(s.contains(i));
        }
    }
}

#[test]
fn subset_test_matches_hashset_semantics() {
    let mut rng = StdRng::seed_from_u64(51);
    for _ in 0..CASES {
        let a = raw_items(&mut rng, 8, 20);
        let b = raw_items(&mut rng, 12, 20);
        let sub = Itemset::new(a);
        let sup = sorted_dedup(b);
        let expected = sub.items().iter().all(|i| sup.contains(i));
        assert_eq!(sub.is_subset_of_sorted(&sup), expected);
    }
}

#[test]
fn hash_tree_agrees_with_naive() {
    let mut rng = StdRng::seed_from_u64(52);
    for _ in 0..CASES {
        let cands = candidate_set(&mut rng, 3);
        let t = sorted_dedup(raw_items(&mut rng, 12, 15));
        let tree = HashTree::build(cands);
        let mut fast = Vec::new();
        let mut scratch = MatchScratch::default();
        tree.for_each_match(&t, &mut scratch, |i| fast.push(i));
        fast.sort_unstable();
        let mut naive = tree.matches_naive(&t);
        naive.sort_unstable();
        assert_eq!(fast, naive);
    }
}

#[test]
fn hash_tree_never_double_counts() {
    let mut rng = StdRng::seed_from_u64(53);
    for _ in 0..CASES {
        let cands = candidate_set(&mut rng, 2);
        let t = sorted_dedup(raw_items(&mut rng, 12, 15));
        let tree = HashTree::build(cands);
        let mut counts = vec![0u32; tree.len()];
        let mut scratch = MatchScratch::default();
        tree.for_each_match(&t, &mut scratch, |i| counts[i] += 1);
        assert!(counts.iter().all(|&c| c <= 1));
    }
}

#[test]
fn ap_gen_agrees_with_naive() {
    let mut rng = StdRng::seed_from_u64(54);
    for _ in 0..CASES {
        let cands = candidate_set(&mut rng, 2);
        let (fast, _) = ap_gen(&cands);
        assert_eq!(fast, ap_gen_naive(&cands));
    }
}

#[test]
fn ap_gen_output_has_length_k_plus_1() {
    let mut rng = StdRng::seed_from_u64(55);
    for _ in 0..CASES {
        let cands = candidate_set(&mut rng, 3);
        let (out, _) = ap_gen(&cands);
        assert!(out.iter().all(|s| s.len() == 4));
        // Sorted and unique.
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }
}

#[test]
fn apriori_equals_brute_force() {
    let mut rng = StdRng::seed_from_u64(56);
    for _ in 0..CASES {
        let db = database(&mut rng);
        let sup = rng.gen_range(1u64..6);
        let a = apriori(&db, &SequentialConfig::new(Support::Count(sup)));
        let b = brute_force(&db, Support::Count(sup), 8);
        assert_eq!(a, b);
    }
}

#[test]
fn three_miners_agree() {
    let mut rng = StdRng::seed_from_u64(57);
    for _ in 0..CASES {
        let db = database(&mut rng);
        let sup = rng.gen_range(1u64..6);
        let a = apriori(&db, &SequentialConfig::new(Support::Count(sup)));
        let e = eclat(&db, Support::Count(sup));
        let f = fp_growth(&db, Support::Count(sup));
        assert_eq!(&a, &e);
        assert_eq!(&a, &f);
    }
}

#[test]
fn monotonicity_of_support() {
    let mut rng = StdRng::seed_from_u64(58);
    for _ in 0..CASES {
        let db = database(&mut rng);
        let sup = rng.gen_range(1u64..5);
        let r = apriori(&db, &SequentialConfig::new(Support::Count(sup)));
        for (set, s) in r.iter() {
            assert!(*s >= sup);
            for sub in set.one_item_removed() {
                if sub.is_empty() {
                    continue;
                }
                let sub_sup = r.support_of(&sub);
                assert!(sub_sup.is_some(), "subset {sub} of {set} missing");
                assert!(sub_sup.expect("checked") >= *s);
            }
        }
    }
}

#[test]
fn support_counts_are_exact() {
    let mut rng = StdRng::seed_from_u64(59);
    for _ in 0..CASES {
        let db = database(&mut rng);
        let sup = rng.gen_range(1u64..5);
        let r = apriori(&db, &SequentialConfig::new(Support::Count(sup)));
        for (set, s) in r.iter() {
            let actual = db.iter().filter(|t| set.is_subset_of_sorted(t)).count() as u64;
            assert_eq!(*s, actual, "support of {} wrong", set);
        }
    }
}

#[test]
fn raising_support_shrinks_results() {
    let mut rng = StdRng::seed_from_u64(60);
    for _ in 0..CASES {
        let db = database(&mut rng);
        let lo = apriori(&db, &SequentialConfig::new(Support::Count(1)));
        let hi = apriori(&db, &SequentialConfig::new(Support::Count(3)));
        assert!(hi.total() <= lo.total());
        // Everything frequent at the high threshold is frequent at the low.
        for (set, s) in hi.iter() {
            assert_eq!(lo.support_of(set), Some(*s));
        }
    }
}

#[test]
fn rules_are_consistent() {
    let mut rng = StdRng::seed_from_u64(61);
    for _ in 0..CASES {
        let db = database(&mut rng);
        let conf: f64 = rng.gen();
        let r = apriori(&db, &SequentialConfig::new(Support::Count(1)));
        let rules = generate_rules(&r, db.len() as u64, &RuleConfig::new(conf));
        for rule in rules {
            assert!(rule.confidence >= conf - 1e-9);
            assert!(rule.confidence <= 1.0 + 1e-9);
            assert!(rule.lift > 0.0);
            // support(A ∪ B) really is the rule's support.
            let joint: Itemset = rule
                .antecedent
                .items()
                .iter()
                .chain(rule.consequent.items())
                .copied()
                .collect();
            assert_eq!(r.support_of(&joint), Some(rule.support));
        }
    }
}

#[test]
fn condensed_representations_are_sound() {
    let mut rng = StdRng::seed_from_u64(62);
    for _ in 0..CASES {
        let db = database(&mut rng);
        let sup = rng.gen_range(1u64..5);
        let r = apriori(&db, &SequentialConfig::new(Support::Count(sup)));
        let maximal = yafim_core::maximal_itemsets(&r);
        let closed = yafim_core::closed_itemsets(&r);
        // Coverage: every frequent itemset under some maximal one.
        for (set, _) in r.iter() {
            assert!(maximal
                .iter()
                .any(|(m, _)| set.is_subset_of_sorted(m.items())));
        }
        // Support recovery: max support over closed supersets is exact.
        for (set, s) in r.iter() {
            let derived = closed
                .iter()
                .filter(|(c, _)| set.is_subset_of_sorted(c.items()))
                .map(|(_, cs)| *cs)
                .max();
            assert_eq!(derived, Some(*s));
        }
        // Antichain property of the maximal family.
        for (i, (a, _)) in maximal.iter().enumerate() {
            for (b, _) in maximal.iter().skip(i + 1) {
                assert!(!a.is_subset_of_sorted(b.items()));
                assert!(!b.is_subset_of_sorted(a.items()));
            }
        }
    }
}

#[test]
fn fraction_and_count_supports_agree() {
    let mut rng = StdRng::seed_from_u64(63);
    for _ in 0..CASES {
        let db = database(&mut rng);
        let n = db.len() as u64;
        let frac = apriori(&db, &SequentialConfig::new(Support::Fraction(0.5)));
        let count = apriori(
            &db,
            &SequentialConfig::new(Support::Count((n as f64 * 0.5).ceil() as u64)),
        );
        assert_eq!(frac, count);
    }
}
