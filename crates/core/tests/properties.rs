//! Property-based tests (proptest) over the mining core.
//!
//! Strategy: small random transaction databases and candidate sets, checked
//! against independent oracles — brute force, naive matchers, and the
//! algebraic invariants of frequent itemset mining.

use proptest::collection::vec;
use proptest::prelude::*;
use yafim_core::candidates::{ap_gen, ap_gen_naive};
use yafim_core::{
    apriori, brute_force, eclat, fp_growth, generate_rules, HashTree, Itemset, MatchScratch,
    RuleConfig, SequentialConfig, Support,
};

/// A random transaction over a small universe: sorted, deduplicated,
/// non-empty subsets of 0..12.
fn transaction() -> impl Strategy<Value = Vec<u32>> {
    vec(0u32..12, 1..8).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn database() -> impl Strategy<Value = Vec<Vec<u32>>> {
    vec(transaction(), 1..24)
}

/// A random candidate set of equal-length itemsets.
fn candidate_set(k: usize) -> impl Strategy<Value = Vec<Itemset>> {
    vec(vec(0u32..15, k..=k), 0..30).prop_map(move |raw| {
        let mut seen = std::collections::HashSet::new();
        raw.into_iter()
            .map(Itemset::new)
            .filter(|s| s.len() == k && seen.insert(s.clone()))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn itemset_new_is_sorted_dedup(items in vec(0u32..100, 0..20)) {
        let s = Itemset::new(items.clone());
        prop_assert!(s.items().windows(2).all(|w| w[0] < w[1]));
        for i in items {
            prop_assert!(s.contains(i));
        }
    }

    #[test]
    fn subset_test_matches_hashset_semantics(
        a in vec(0u32..20, 0..8),
        b in vec(0u32..20, 0..12),
    ) {
        let sub = Itemset::new(a);
        let mut sup = b.clone();
        sup.sort_unstable();
        sup.dedup();
        let expected = sub.items().iter().all(|i| sup.contains(i));
        prop_assert_eq!(sub.is_subset_of_sorted(&sup), expected);
    }

    #[test]
    fn hash_tree_agrees_with_naive(
        cands in candidate_set(3),
        t in vec(0u32..15, 0..12),
    ) {
        let mut t = t;
        t.sort_unstable();
        t.dedup();
        let tree = HashTree::build(cands);
        let mut fast = Vec::new();
        let mut scratch = MatchScratch::default();
        tree.for_each_match(&t, &mut scratch, |i| fast.push(i));
        fast.sort_unstable();
        let mut naive = tree.matches_naive(&t);
        naive.sort_unstable();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn hash_tree_never_double_counts(
        cands in candidate_set(2),
        t in vec(0u32..15, 0..12),
    ) {
        let mut t = t;
        t.sort_unstable();
        t.dedup();
        let tree = HashTree::build(cands);
        let mut counts = vec![0u32; tree.len()];
        let mut scratch = MatchScratch::default();
        tree.for_each_match(&t, &mut scratch, |i| counts[i] += 1);
        prop_assert!(counts.iter().all(|&c| c <= 1));
    }

    #[test]
    fn ap_gen_agrees_with_naive(cands in candidate_set(2)) {
        let (fast, _) = ap_gen(&cands);
        prop_assert_eq!(fast, ap_gen_naive(&cands));
    }

    #[test]
    fn ap_gen_output_has_length_k_plus_1(cands in candidate_set(3)) {
        let (out, _) = ap_gen(&cands);
        prop_assert!(out.iter().all(|s| s.len() == 4));
        // Sorted and unique.
        prop_assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn apriori_equals_brute_force(db in database(), sup in 1u64..6) {
        let a = apriori(&db, &SequentialConfig::new(Support::Count(sup)));
        let b = brute_force(&db, Support::Count(sup), 8);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn three_miners_agree(db in database(), sup in 1u64..6) {
        let a = apriori(&db, &SequentialConfig::new(Support::Count(sup)));
        let e = eclat(&db, Support::Count(sup));
        let f = fp_growth(&db, Support::Count(sup));
        prop_assert_eq!(&a, &e);
        prop_assert_eq!(&a, &f);
    }

    #[test]
    fn monotonicity_of_support(db in database(), sup in 1u64..5) {
        let r = apriori(&db, &SequentialConfig::new(Support::Count(sup)));
        for (set, s) in r.iter() {
            prop_assert!(*s >= sup);
            for sub in set.one_item_removed() {
                if sub.is_empty() {
                    continue;
                }
                let sub_sup = r.support_of(&sub);
                prop_assert!(sub_sup.is_some(), "subset {sub} of {set} missing");
                prop_assert!(sub_sup.expect("checked") >= *s);
            }
        }
    }

    #[test]
    fn support_counts_are_exact(db in database(), sup in 1u64..5) {
        let r = apriori(&db, &SequentialConfig::new(Support::Count(sup)));
        for (set, s) in r.iter() {
            let actual = db.iter().filter(|t| set.is_subset_of_sorted(t)).count() as u64;
            prop_assert_eq!(*s, actual, "support of {} wrong", set);
        }
    }

    #[test]
    fn raising_support_shrinks_results(db in database()) {
        let lo = apriori(&db, &SequentialConfig::new(Support::Count(1)));
        let hi = apriori(&db, &SequentialConfig::new(Support::Count(3)));
        prop_assert!(hi.total() <= lo.total());
        // Everything frequent at the high threshold is frequent at the low.
        for (set, s) in hi.iter() {
            prop_assert_eq!(lo.support_of(set), Some(*s));
        }
    }

    #[test]
    fn rules_are_consistent(db in database(), conf in 0.0f64..1.0) {
        let r = apriori(&db, &SequentialConfig::new(Support::Count(1)));
        let rules = generate_rules(&r, db.len() as u64, &RuleConfig::new(conf));
        for rule in rules {
            prop_assert!(rule.confidence >= conf - 1e-9);
            prop_assert!(rule.confidence <= 1.0 + 1e-9);
            prop_assert!(rule.lift > 0.0);
            // support(A ∪ B) really is the rule's support.
            let joint: Itemset = rule
                .antecedent
                .items()
                .iter()
                .chain(rule.consequent.items())
                .copied()
                .collect();
            prop_assert_eq!(r.support_of(&joint), Some(rule.support));
        }
    }

    #[test]
    fn condensed_representations_are_sound(db in database(), sup in 1u64..5) {
        let r = apriori(&db, &SequentialConfig::new(Support::Count(sup)));
        let maximal = yafim_core::maximal_itemsets(&r);
        let closed = yafim_core::closed_itemsets(&r);
        // Coverage: every frequent itemset under some maximal one.
        for (set, _) in r.iter() {
            prop_assert!(maximal.iter().any(|(m, _)| set.is_subset_of_sorted(m.items())));
        }
        // Support recovery: max support over closed supersets is exact.
        for (set, s) in r.iter() {
            let derived = closed
                .iter()
                .filter(|(c, _)| set.is_subset_of_sorted(c.items()))
                .map(|(_, cs)| *cs)
                .max();
            prop_assert_eq!(derived, Some(*s));
        }
        // Antichain property of the maximal family.
        for (i, (a, _)) in maximal.iter().enumerate() {
            for (b, _) in maximal.iter().skip(i + 1) {
                prop_assert!(!a.is_subset_of_sorted(b.items()));
                prop_assert!(!b.is_subset_of_sorted(a.items()));
            }
        }
    }

    #[test]
    fn fraction_and_count_supports_agree(db in database()) {
        let n = db.len() as u64;
        let frac = apriori(&db, &SequentialConfig::new(Support::Fraction(0.5)));
        let count = apriori(
            &db,
            &SequentialConfig::new(Support::Count((n as f64 * 0.5).ceil() as u64)),
        );
        prop_assert_eq!(frac, count);
    }
}
