//! Edge-case matrix across the miners: degenerate databases, extreme
//! thresholds, and pathological transaction shapes. Every miner must handle
//! all of them and agree.

use yafim_cluster::{ClusterSpec, CostModel, SimCluster};
use yafim_core::{
    apriori, eclat, fp_growth, generate_rules, mine_in_memory, Itemset, MiningResult, RuleConfig,
    SequentialConfig, Support, YafimConfig,
};
use yafim_rdd::Context;

fn all_single_node(tx: &[Vec<u32>], support: Support) -> Vec<(&'static str, MiningResult)> {
    vec![
        ("apriori", apriori(tx, &SequentialConfig::new(support))),
        ("eclat", eclat(tx, support)),
        ("fp_growth", fp_growth(tx, support)),
    ]
}

fn assert_all_agree(tx: &[Vec<u32>], support: Support) -> MiningResult {
    let results = all_single_node(tx, support);
    for (name, r) in &results[1..] {
        assert_eq!(&results[0].1, r, "{name} diverges");
    }
    let ctx = Context::new(SimCluster::with_threads(
        ClusterSpec::new(2, 2, 1 << 30),
        CostModel::hadoop_era(),
        2,
    ));
    let y = mine_in_memory(&ctx, tx, YafimConfig::new(support));
    assert_eq!(results[0].1, y.result, "yafim diverges");
    results.into_iter().next().expect("non-empty").1
}

#[test]
fn single_transaction_database() {
    let r = assert_all_agree(&[vec![1, 2, 3]], Support::Count(1));
    assert_eq!(r.total(), 7, "all non-empty subsets");
    assert_eq!(r.max_len(), 3);
}

#[test]
fn single_item_transactions() {
    let tx: Vec<Vec<u32>> = (0..10).map(|i| vec![i % 3]).collect();
    let r = assert_all_agree(&tx, Support::Count(3));
    assert_eq!(r.max_len(), 1);
    assert_eq!(r.level(1).len(), 3);
}

#[test]
fn identical_transactions() {
    let tx = vec![vec![5, 10, 15]; 20];
    let r = assert_all_agree(&tx, Support::Count(20));
    assert_eq!(r.total(), 7);
    for (_, sup) in r.iter() {
        assert_eq!(*sup, 20);
    }
}

#[test]
fn disjoint_transactions_have_no_pairs() {
    let tx: Vec<Vec<u32>> = (0u32..8).map(|i| vec![2 * i, 2 * i + 1]).collect();
    let r = assert_all_agree(&tx, Support::Count(2));
    assert_eq!(r.total(), 0, "every item unique to one transaction");
}

#[test]
fn support_one_finds_everything_present() {
    let tx = vec![vec![1, 2], vec![3]];
    let r = assert_all_agree(&tx, Support::Count(1));
    assert_eq!(r.support_of(&Itemset::new(vec![1, 2])), Some(1));
    assert_eq!(r.support_of(&Itemset::single(3)), Some(1));
    assert_eq!(r.support_of(&Itemset::new(vec![1, 3])), None);
}

#[test]
fn full_support_fraction() {
    let tx = vec![vec![1, 2], vec![1, 2], vec![1, 2, 3]];
    let r = assert_all_agree(&tx, Support::Fraction(1.0));
    assert_eq!(r.support_of(&Itemset::new(vec![1, 2])), Some(3));
    assert_eq!(r.support_of(&Itemset::single(3)), None);
}

#[test]
fn large_item_ids() {
    let tx = vec![vec![u32::MAX - 1, u32::MAX], vec![u32::MAX - 1, u32::MAX]];
    let r = assert_all_agree(&tx, Support::Count(2));
    assert_eq!(
        r.support_of(&Itemset::new(vec![u32::MAX - 1, u32::MAX])),
        Some(2)
    );
}

#[test]
fn wide_transaction_deep_levels() {
    // One 12-item transaction repeated: levels up to 12 — exercises deep
    // candidate generation and tree descent.
    let t: Vec<u32> = (0..12).collect();
    let tx = vec![t; 3];
    let r = assert_all_agree(&tx, Support::Count(3));
    assert_eq!(r.max_len(), 12);
    assert_eq!(r.total(), (1usize << 12) - 1);
}

#[test]
fn rules_on_degenerate_results() {
    // No itemsets → no rules; single-level results → no rules.
    let empty = MiningResult::default();
    assert!(generate_rules(&empty, 10, &RuleConfig::new(0.5)).is_empty());

    let tx: Vec<Vec<u32>> = (0..4).map(|i| vec![i]).collect();
    let singles = apriori(&tx, &SequentialConfig::new(Support::Count(1)));
    assert!(generate_rules(&singles, 4, &RuleConfig::new(0.0)).is_empty());
}

#[test]
fn unparseable_lines_are_skipped_gracefully() {
    let ctx = Context::new(SimCluster::with_threads(
        ClusterSpec::new(2, 2, 1 << 30),
        CostModel::hadoop_era(),
        2,
    ));
    ctx.cluster().hdfs().put_overwrite(
        "noisy.dat",
        vec![
            "1 2 3".to_string(),
            "not a transaction".to_string(),
            "".to_string(),
            "2 3".to_string(),
        ],
    );
    let run = yafim_core::Yafim::new(ctx, YafimConfig::new(Support::Count(2)))
        .mine("noisy.dat")
        .expect("written");
    // Two parseable transactions share {2,3}; noise lines contribute nothing.
    assert_eq!(run.result.support_of(&Itemset::new(vec![2, 3])), Some(2));
}
