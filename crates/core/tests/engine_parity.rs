//! Configuration-invariance tests: mining results must not depend on any
//! execution knob — partition counts, reduce tasks, split sizes, cluster
//! shapes, broadcast mode, matching strategy, or group counts. Only timing
//! may change.

use yafim_cluster::{ClusterSpec, CostModel, SimCluster};
use yafim_core::{
    apriori, MrApriori, MrAprioriConfig, MrMatching, Pfp, PfpConfig, SequentialConfig, Support,
    Yafim, YafimConfig,
};
use yafim_data::{to_lines, PaperDataset};
use yafim_rdd::{BroadcastMode, Context, RddConfig};

fn dataset() -> (Vec<Vec<u32>>, Support) {
    (
        PaperDataset::Medical.generate_scaled(0.01),
        Support::Fraction(0.05),
    )
}

fn cluster(nodes: u32, cores: u32) -> SimCluster {
    SimCluster::with_threads(
        ClusterSpec::new(nodes, cores, 1 << 30),
        CostModel::hadoop_era(),
        2,
    )
}

#[test]
fn yafim_invariant_to_partition_count() {
    let (tx, support) = dataset();
    let reference = apriori(&tx, &SequentialConfig::new(support));
    for partitions in [1usize, 3, 17, 64] {
        let c = cluster(4, 2);
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        let mut cfg = YafimConfig::new(support);
        cfg.min_partitions = partitions;
        let run = Yafim::new(Context::new(c), cfg)
            .mine("d.dat")
            .expect("written");
        assert_eq!(reference, run.result, "partitions = {partitions}");
    }
}

#[test]
fn yafim_invariant_to_cluster_shape() {
    let (tx, support) = dataset();
    let reference = apriori(&tx, &SequentialConfig::new(support));
    for (nodes, cores) in [(1u32, 1u32), (2, 4), (12, 8)] {
        let c = cluster(nodes, cores);
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        let run = Yafim::new(Context::new(c), YafimConfig::new(support))
            .mine("d.dat")
            .expect("written");
        assert_eq!(reference, run.result, "cluster {nodes}x{cores}");
    }
}

#[test]
fn yafim_invariant_to_broadcast_mode() {
    let (tx, support) = dataset();
    let mut results = Vec::new();
    for mode in [BroadcastMode::Torrent, BroadcastMode::NaivePerTask] {
        let c = cluster(4, 2);
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        let mut cfg = RddConfig::for_cluster(&c);
        cfg.broadcast = mode;
        let run = Yafim::new(Context::with_config(c, cfg), YafimConfig::new(support))
            .mine("d.dat")
            .expect("written");
        results.push(run);
    }
    assert_eq!(results[0].result, results[1].result);
    assert!(
        results[1].total_seconds > results[0].total_seconds,
        "naive broadcast must cost more virtual time"
    );
}

#[test]
fn mr_invariant_to_reduce_tasks_and_split_size() {
    let (tx, support) = dataset();
    let reference = apriori(&tx, &SequentialConfig::new(support));
    for (reduce_tasks, split_size) in [(1usize, None), (5, Some(4096u64)), (32, Some(512))] {
        let c = cluster(4, 2);
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        let mut cfg = MrAprioriConfig::new(support);
        cfg.reduce_tasks = reduce_tasks;
        cfg.split_size = split_size;
        let run = MrApriori::new(c, cfg).mine("d.dat").expect("written");
        assert_eq!(
            reference, run.result,
            "reduce_tasks={reduce_tasks} split={split_size:?}"
        );
    }
}

#[test]
fn mr_invariant_to_matching_strategy() {
    let (tx, support) = dataset();
    let mut runs = Vec::new();
    for matching in [MrMatching::HashTree, MrMatching::NaiveScan] {
        let c = cluster(4, 2);
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        let mut cfg = MrAprioriConfig::new(support);
        cfg.matching = matching;
        runs.push(MrApriori::new(c, cfg).mine("d.dat").expect("written"));
    }
    assert_eq!(runs[0].result, runs[1].result);
}

#[test]
fn pfp_invariant_to_partitions_and_groups() {
    let (tx, support) = dataset();
    let reference = apriori(&tx, &SequentialConfig::new(support));
    for (partitions, groups) in [(1usize, 1usize), (8, 5), (32, 0)] {
        let c = cluster(4, 2);
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        let mut cfg = PfpConfig::new(support);
        cfg.min_partitions = partitions;
        cfg.groups = groups;
        let run = Pfp::new(Context::new(c), cfg)
            .mine("d.dat")
            .expect("written");
        assert_eq!(
            reference, run.result,
            "partitions={partitions} groups={groups}"
        );
    }
}

#[test]
fn virtual_speedup_grows_with_cluster_for_mr_reduce_side() {
    // Bigger clusters can only help (more reduce slots / shuffle fan-out).
    let (tx, support) = dataset();
    let mut times = Vec::new();
    for nodes in [2u32, 8] {
        let c = cluster(nodes, 4);
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        let run = MrApriori::new(c, MrAprioriConfig::new(support))
            .mine("d.dat")
            .expect("written");
        times.push(run.total_seconds);
    }
    assert!(
        times[1] <= times[0] * 1.01,
        "8 nodes ({}) should not be slower than 2 ({})",
        times[1],
        times[0]
    );
}
