//! Phase-II hot-path invariance: every combination of the dense-projection,
//! triangular-pass-2, trie-matching and cross-pass-trimming switches must
//! produce *byte-identical* mining output to both the sequential reference
//! and the paper-faithful (hash tree, untrimmed) engine — identical itemsets
//! and supports, identical per-level sizes, identical candidate/frequent
//! counts per pass, identical pass count. Only virtual seconds may differ.
//!
//! The optimizations rest on two invariance arguments (DESIGN.md §"Candidate
//! matching & dataset trimming"): monotone dense re-encoding is a bijection
//! on the frequent-itemset lattice, and DHP-style trimming only removes
//! items/transactions that Apriori monotonicity proves can never contribute
//! to a later frequent itemset. This suite is the executable form of those
//! arguments, including under injected node loss, where the projected and
//! trimmed RDDs must recompute through lineage.

use yafim_cluster::{
    ClusterSpec, CostModel, FaultPlan, NodeId, SimCluster, SimDuration, SimInstant,
};
use yafim_core::{
    apriori, Matcher, MinerRun, Phase2Config, SequentialConfig, Support, Yafim, YafimConfig,
};
use yafim_data::{to_lines, PaperDataset, QuestConfig, QuestGenerator};
use yafim_rdd::Context;

fn cluster() -> SimCluster {
    SimCluster::with_threads(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era(), 2)
}

fn run(tx: &[Vec<u32>], support: Support, phase2: Phase2Config) -> MinerRun {
    let c = cluster();
    c.hdfs().put_overwrite("d.dat", to_lines(tx));
    let cfg = YafimConfig {
        phase2,
        ..YafimConfig::new(support)
    };
    Yafim::new(Context::new(c), cfg)
        .mine("d.dat")
        .expect("written")
}

/// All 24 switch combinations (several are redundant — triangle/trim/bitmap
/// without projection fall back to the store path — but redundant
/// configurations must *still* agree).
fn all_configs() -> Vec<Phase2Config> {
    let mut out = Vec::new();
    for project in [false, true] {
        for triangle_pass2 in [false, true] {
            for matcher in [Matcher::HashTree, Matcher::Trie, Matcher::Bitmap] {
                for trim in [false, true] {
                    out.push(Phase2Config {
                        project,
                        triangle_pass2,
                        matcher,
                        trim,
                        checkpoint_interval: 0,
                    });
                }
            }
        }
    }
    out
}

fn assert_identical(paper: &MinerRun, other: &MinerRun, label: &str) {
    assert_eq!(
        paper.result, other.result,
        "{label}: itemsets/supports differ"
    );
    assert_eq!(
        paper.result.level_sizes(),
        other.result.level_sizes(),
        "{label}: level sizes differ"
    );
    assert_eq!(
        paper.passes.len(),
        other.passes.len(),
        "{label}: pass count differs"
    );
    for (p, o) in paper.passes.iter().zip(&other.passes) {
        assert_eq!(
            (p.pass, p.candidates, p.frequent),
            (o.pass, o.candidates, o.frequent),
            "{label}: pass {} metadata differs",
            p.pass
        );
    }
}

#[test]
fn every_phase2_config_is_invisible_on_quest_data() {
    // Small dense QUEST-style instances with long patterns → 4-5 passes,
    // exercising triangle (pass 2), trie (k ≥ 3) and repeated trimming.
    for seed in [7u64, 99, 4242] {
        let tx = QuestGenerator::new(QuestConfig {
            transactions: 400,
            items: 60,
            avg_transaction_len: 8.0,
            avg_pattern_len: 4.0,
            patterns: 12,
            correlation: 0.25,
            keep_fraction: 0.7,
            seed,
        })
        .generate();
        let support = Support::Fraction(0.03);
        let reference = apriori(&tx, &SequentialConfig::new(support));
        let paper = run(&tx, support, Phase2Config::paper());
        assert_eq!(
            reference, paper.result,
            "seed {seed}: paper engine vs sequential"
        );
        assert!(
            paper.result.max_len() >= 3,
            "seed {seed}: workload too shallow to exercise k ≥ 3 matching"
        );

        for p2 in all_configs() {
            let r = run(&tx, support, p2.clone());
            assert_identical(&paper, &r, &format!("seed {seed}, {p2:?}"));
        }
    }
}

#[test]
fn every_phase2_config_is_invisible_on_medical_data() {
    let tx = PaperDataset::Medical.generate_scaled(0.01);
    let support = Support::Fraction(0.05);
    let reference = apriori(&tx, &SequentialConfig::new(support));
    let paper = run(&tx, support, Phase2Config::paper());
    assert_eq!(reference, paper.result);

    for p2 in all_configs() {
        let r = run(&tx, support, p2.clone());
        assert_identical(&paper, &r, &format!("{p2:?}"));
    }
}

#[test]
fn optimized_path_survives_node_loss() {
    // Losing a node drops its cached partitions — including the projected
    // and trimmed RDDs, which must then recompute through their narrow
    // lineage (raw HDFS read → parse → encode → trims) without changing a
    // single count.
    let tx = PaperDataset::Medical.generate_scaled(0.01);
    let support = Support::Fraction(0.05);
    let reference = apriori(&tx, &SequentialConfig::new(support));

    for seed in 0..4u64 {
        let c = cluster();
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        c.faults().set_plan(
            FaultPlan::seeded(seed)
                .crash_tasks(0.1)
                .with_max_task_failures(10)
                .lose_node_at(
                    NodeId((seed % 4) as u32),
                    SimInstant::EPOCH + SimDuration::from_secs(1.0 + seed as f64 * 0.7),
                )
                .slow_node(NodeId(((seed + 2) % 4) as u32), 3.0)
                .with_speculation(),
        );
        let opt = Yafim::new(Context::new(c.clone()), YafimConfig::optimized(support))
            .mine("d.dat")
            .expect("below-budget faults must not abort the job");
        assert_eq!(
            reference, opt.result,
            "seed {seed}: node loss changed optimized-path results"
        );
        let rec = c.metrics().snapshot().recovery;
        assert!(rec.any(), "seed {seed}: the plan must actually fire");
        assert_eq!(rec.nodes_lost, 1, "seed {seed}");
    }
}

#[test]
fn node_loss_at_every_pass_boundary_is_invisible() {
    // Kill a node just after each pass boundary, on both engines, with
    // checkpointing off and on (interval 2, supplied through the fault
    // plan). Whatever the recovery path — lineage replay back to HDFS or a
    // bounded re-read of checkpoint blocks — itemsets and supports must be
    // byte-identical to the sequential reference every time.
    let tx = PaperDataset::Medical.generate_scaled(0.01);
    let support = Support::Fraction(0.05);
    let reference = apriori(&tx, &SequentialConfig::new(support));

    for (name, p2) in [
        ("paper", Phase2Config::paper()),
        ("optimized", Phase2Config::optimized()),
        ("bitmap", Phase2Config::bitmap()),
    ] {
        // A clean run maps pass number → cumulative virtual seconds, so
        // each loss lands just after "its" pass completed.
        let clean = run(&tx, support, p2.clone());
        assert_eq!(reference, clean.result, "{name}: clean run");
        let mut cum = 0.0;
        let boundaries: Vec<f64> = clean
            .passes
            .iter()
            .map(|p| {
                cum += p.seconds;
                cum
            })
            .collect();

        for (k, &boundary) in boundaries.iter().enumerate() {
            for ckpt in [0usize, 2] {
                let c = cluster();
                c.hdfs().put_overwrite("d.dat", to_lines(&tx));
                c.faults().set_plan(
                    FaultPlan::seeded(k as u64)
                        .lose_node_at(
                            NodeId((k % 4) as u32),
                            SimInstant::EPOCH + SimDuration::from_secs(boundary + 1e-3),
                        )
                        .with_checkpoint_interval(ckpt),
                );
                let cfg = YafimConfig {
                    phase2: p2.clone(),
                    ..YafimConfig::new(support)
                };
                let r = Yafim::new(Context::new(c.clone()), cfg)
                    .mine("d.dat")
                    .expect("single node loss stays below the retry budget");
                assert_eq!(
                    reference,
                    r.result,
                    "{name}: loss after pass {} (ckpt interval {ckpt}) changed results",
                    k + 1
                );
                if ckpt != 0 {
                    let rec = c.metrics().snapshot().recovery;
                    assert!(
                        rec.checkpoint_writes > 0,
                        "{name}: interval {ckpt} run must have checkpointed"
                    );
                }
            }
        }
    }
}

#[test]
fn silent_corruption_is_invisible_to_every_engine() {
    // Scenario-D parity: corrupt each storage tier (shuffle map outputs,
    // cached partitions — which for the bitmap engine include the columnar
    // bitset blocks — and HDFS replicas) under every engine flavor. The
    // integrity layer must detect and repair every injected corruption,
    // and results must stay byte-identical to the sequential reference.
    let tx = PaperDataset::Medical.generate_scaled(0.01);
    let support = Support::Fraction(0.05);
    let reference = apriori(&tx, &SequentialConfig::new(support));

    type Corrupt = fn(FaultPlan, f64) -> FaultPlan;
    let tiers: [(&str, Corrupt); 3] = [
        ("shuffle", |p, r| p.corrupt_shuffle(r)),
        ("cache", |p, r| p.corrupt_cache(r)),
        ("hdfs", |p, r| p.corrupt_hdfs(r)),
    ];
    for (name, p2) in [
        ("paper", Phase2Config::paper()),
        ("optimized", Phase2Config::optimized()),
        ("bitmap", Phase2Config::bitmap()),
    ] {
        for (tier, corrupt) in &tiers {
            let c = cluster();
            c.hdfs().put_overwrite("d.dat", to_lines(&tx));
            c.faults().set_plan(corrupt(FaultPlan::seeded(11), 0.25));
            let cfg = YafimConfig {
                phase2: p2.clone(),
                ..YafimConfig::new(support)
            };
            let r = Yafim::new(Context::new(c.clone()), cfg)
                .mine("d.dat")
                .expect("repairable corruption must not abort the job");
            assert_eq!(
                reference, r.result,
                "{name}: {tier} corruption changed results"
            );
            let i = c.metrics().snapshot().recovery.integrity;
            assert!(
                i.corruptions_injected > 0,
                "{name}: {tier} plan must actually corrupt something"
            );
            assert_eq!(
                i.corruptions_detected, i.corruptions_injected,
                "{name}: {tier}: every injected corruption must be detected"
            );
            assert_eq!(
                i.corruptions_repaired, i.corruptions_detected,
                "{name}: {tier}: every detected corruption must be repaired"
            );
        }
    }
}

#[test]
fn optimized_path_is_deterministic_under_faults() {
    let tx = PaperDataset::Medical.generate_scaled(0.01);
    let support = Support::Fraction(0.05);
    let mut observed = Vec::new();
    for _ in 0..2 {
        let c = cluster();
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        c.faults().set_plan(
            FaultPlan::seeded(3)
                .crash_tasks(0.1)
                .with_max_task_failures(10)
                .with_speculation(),
        );
        let run = Yafim::new(Context::new(c.clone()), YafimConfig::optimized(support))
            .mine("d.dat")
            .expect("below budget");
        observed.push((
            run.result,
            run.total_seconds,
            c.metrics().snapshot().recovery,
        ));
    }
    assert_eq!(
        observed[0], observed[1],
        "same fault seed must reproduce the optimized run bit-for-bit"
    );
}
