//! Fault-injection invariance: mining results must not depend on the fault
//! plan. Any seeded plan whose failures stay below the retry budget yields
//! byte-identical results to the fault-free run on both engines — recovery
//! only ever adds virtual time. Exhausting the budget aborts with a
//! descriptive error instead of returning wrong results.

use yafim_cluster::{
    ClusterSpec, CostModel, FaultPlan, NodeId, SimCluster, SimDuration, SimInstant,
};
use yafim_core::{
    apriori, MrApriori, MrAprioriConfig, SequentialConfig, Support, Yafim, YafimConfig,
};
use yafim_data::{to_lines, PaperDataset};
use yafim_rdd::Context;

fn dataset() -> (Vec<Vec<u32>>, Support) {
    (
        PaperDataset::Medical.generate_scaled(0.01),
        Support::Fraction(0.05),
    )
}

fn cluster() -> SimCluster {
    SimCluster::with_threads(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era(), 2)
}

/// A representative plan for `seed`: background task crashes, one node lost
/// mid-run, one degraded node with speculation enabled. Failure counts stay
/// far below the (raised) retry budget.
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .crash_tasks(0.1)
        .with_max_task_failures(10)
        .lose_node_at(
            NodeId((seed % 4) as u32),
            SimInstant::EPOCH + SimDuration::from_secs(1.0 + seed as f64 * 0.7),
        )
        .slow_node(NodeId(((seed + 2) % 4) as u32), 3.0)
        .with_speculation()
}

#[test]
fn yafim_results_survive_any_below_budget_plan() {
    let (tx, support) = dataset();
    let reference = apriori(&tx, &SequentialConfig::new(support));

    let healthy = cluster();
    healthy.hdfs().put_overwrite("d.dat", to_lines(&tx));
    let baseline = Yafim::new(Context::new(healthy), YafimConfig::new(support))
        .mine("d.dat")
        .expect("written");
    assert_eq!(reference, baseline.result);

    for seed in 0..4u64 {
        let c = cluster();
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        c.faults().set_plan(plan(seed));
        let run = Yafim::new(Context::new(c.clone()), YafimConfig::new(support))
            .mine("d.dat")
            .expect("below-budget faults must not abort the job");
        assert_eq!(
            reference, run.result,
            "seed {seed}: faults changed mining results"
        );
        assert!(
            run.total_seconds >= baseline.total_seconds,
            "seed {seed}: recovery must only add virtual time \
             ({} < {})",
            run.total_seconds,
            baseline.total_seconds
        );
        let rec = c.metrics().snapshot().recovery;
        assert!(rec.any(), "seed {seed}: the plan must actually fire");
        assert_eq!(rec.nodes_lost, 1, "seed {seed}");
    }
}

#[test]
fn mr_results_survive_any_below_budget_plan() {
    let (tx, support) = dataset();
    let reference = apriori(&tx, &SequentialConfig::new(support));

    let healthy = cluster();
    healthy.hdfs().put_overwrite("d.dat", to_lines(&tx));
    let baseline = MrApriori::new(healthy, MrAprioriConfig::new(support))
        .mine("d.dat")
        .expect("written");
    assert_eq!(reference, baseline.result);

    for seed in 0..4u64 {
        let c = cluster();
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        c.faults().set_plan(plan(seed));
        let run = MrApriori::new(c.clone(), MrAprioriConfig::new(support))
            .mine("d.dat")
            .expect("below-budget faults must not abort the job");
        assert_eq!(
            reference, run.result,
            "seed {seed}: faults changed mining results"
        );
        assert!(
            run.total_seconds >= baseline.total_seconds,
            "seed {seed}: recovery must only add virtual time \
             ({} < {})",
            run.total_seconds,
            baseline.total_seconds
        );
        assert!(
            c.metrics().snapshot().recovery.any(),
            "seed {seed}: the plan must actually fire"
        );
    }
}

#[test]
fn chaos_runs_are_reproducible() {
    let (tx, support) = dataset();
    let mut reports = Vec::new();
    for _ in 0..2 {
        let c = cluster();
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        c.faults().set_plan(plan(1));
        let run = Yafim::new(Context::new(c.clone()), YafimConfig::new(support))
            .mine("d.dat")
            .expect("below budget");
        let snap = c.metrics().snapshot();
        reports.push((run.result, run.total_seconds, snap.recovery));
    }
    assert_eq!(
        reports[0], reports[1],
        "same seed must reproduce results, virtual time and recovery counters bit-for-bit"
    );
}

#[test]
fn transient_and_heartbeat_faults_are_invisible_to_results() {
    // The full transient taxonomy at once: flaky shuffle fetches and HDFS
    // reads (retried with exponential backoff, escalating to map
    // resubmission), heartbeat-delayed node-loss detection, and
    // plan-driven checkpointing. None of it may change a single support.
    let (tx, support) = dataset();
    let reference = apriori(&tx, &SequentialConfig::new(support));

    for seed in 0..3u64 {
        let c = cluster();
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        c.faults().set_plan(
            FaultPlan::seeded(seed)
                .flaky_fetches(0.2)
                .flaky_hdfs(0.2)
                .with_heartbeat(SimDuration::from_secs(0.5), SimDuration::from_secs(1.0))
                .with_checkpoint_interval(1)
                .lose_node_at(
                    NodeId((seed % 4) as u32),
                    SimInstant::EPOCH + SimDuration::from_secs(2.0 + seed as f64),
                ),
        );
        let run = Yafim::new(Context::new(c.clone()), YafimConfig::new(support))
            .mine("d.dat")
            .expect("transients and one loss stay below the retry budget");
        assert_eq!(
            reference, run.result,
            "seed {seed}: transient faults changed mining results"
        );
        let rec = c.metrics().snapshot().recovery;
        assert!(
            rec.fetch_retries > 0,
            "seed {seed}: flaky plan must have retried fetches"
        );
        assert!(
            rec.backoff_micros > 0,
            "seed {seed}: retries must have backed off"
        );
        assert!(
            rec.checkpoint_writes > 0,
            "seed {seed}: plan-driven checkpointing must have fired"
        );
    }
}

#[test]
fn transient_chaos_runs_are_reproducible() {
    let (tx, support) = dataset();
    let mut reports = Vec::new();
    for _ in 0..2 {
        let c = cluster();
        c.hdfs().put_overwrite("d.dat", to_lines(&tx));
        c.faults().set_plan(
            FaultPlan::seeded(9)
                .flaky_fetches(0.3)
                .flaky_hdfs(0.3)
                .with_checkpoint_interval(2),
        );
        let run = Yafim::new(Context::new(c.clone()), YafimConfig::optimized(support))
            .mine("d.dat")
            .expect("transients never abort");
        reports.push((
            run.result,
            run.total_seconds,
            c.metrics().snapshot().recovery,
        ));
    }
    assert_eq!(
        reports[0], reports[1],
        "same transient seed must reproduce results, time and counters bit-for-bit"
    );
}

#[test]
fn mr_exceeding_retry_budget_aborts_descriptively() {
    let (tx, support) = dataset();
    let c = cluster();
    c.hdfs().put_overwrite("d.dat", to_lines(&tx));
    c.faults().set_plan(FaultPlan::seeded(5).crash_tasks(1.0));
    let err = MrApriori::new(c, MrAprioriConfig::new(support))
        .mine("d.dat")
        .expect_err("every attempt crashes");
    let msg = err.to_string();
    assert!(msg.contains("max_task_failures"), "got: {msg}");
    assert!(msg.contains("aborted"), "got: {msg}");
}

#[test]
#[should_panic(expected = "max_task_failures")]
fn yafim_exceeding_retry_budget_panics_descriptively() {
    let (tx, support) = dataset();
    let c = cluster();
    c.hdfs().put_overwrite("d.dat", to_lines(&tx));
    c.faults().set_plan(FaultPlan::seeded(5).crash_tasks(1.0));
    // The RDD actions' panicking variants surface the abort message.
    let _ = Yafim::new(Context::new(c), YafimConfig::new(support)).mine("d.dat");
}
