//! Contiguous-arena prefix trie over candidate `k`-itemsets — the second
//! matcher behind [`CandidateStore`](crate::candidates::CandidateStore).
//!
//! Singh et al. ("A Data Structure Perspective to the RDD-based Apriori
//! Algorithm") observe that the candidate data structure dominates Phase II
//! runtime and that tries beat the classic hash tree. This trie stores all
//! nodes in flat arrays (CSR layout): each node's children occupy one
//! contiguous, item-sorted range of `child_item`/`child_node`, so matching a
//! sorted transaction against a node is a two-pointer merge with no hashing,
//! no pointer chasing between allocations, and — because each candidate is
//! reachable along exactly one root-to-leaf path — no duplicate-visit
//! bookkeeping (the hash tree needs per-call leaf stamps for that).
//!
//! Built from the sorted candidate list `ap_gen` produces; candidate `i` of
//! the input is reported as match index `i`, the same contract as
//! [`HashTree`](crate::hashtree::HashTree).

use crate::candidates::CandidateStore;
use crate::hashtree::MatchScratch;
use crate::types::{Item, Itemset};
use yafim_cluster::ByteSize;

/// Sentinel for "this node carries no candidate" (interior node).
const NO_CANDIDATE: u32 = u32::MAX;

/// A prefix trie over candidates of equal length `k`, arena-allocated.
///
/// ```
/// use yafim_core::{CandidateStore, CandidateTrie, Itemset};
///
/// let trie = CandidateTrie::build(vec![
///     Itemset::new(vec![1, 2]),
///     Itemset::new(vec![2, 3]),
///     Itemset::new(vec![4, 5]),
/// ]);
/// let mut found = Vec::new();
/// trie.for_each_match(&[1, 2, 3], &mut |idx| found.push(idx));
/// assert_eq!(found, vec![0, 1]);
/// ```
pub struct CandidateTrie {
    k: usize,
    /// CSR ranges: children of node `i` are `child_start[i]..child_start[i+1]`.
    child_start: Vec<u32>,
    /// Edge labels, ascending within each node's range.
    child_item: Vec<Item>,
    /// Edge targets, parallel to `child_item`.
    child_node: Vec<u32>,
    /// Candidate index at depth-`k` nodes, [`NO_CANDIDATE`] elsewhere.
    candidate_at: Vec<u32>,
    candidates: Vec<Itemset>,
}

/// Adjacency built during the recursive construction, flattened to CSR after.
struct BuildNode {
    children: Vec<(Item, u32)>,
    candidate: u32,
}

impl CandidateTrie {
    /// Build over `candidates`, which must be sorted ascending, distinct,
    /// and of equal length (exactly what `ap_gen` returns). Panics otherwise.
    pub fn build(candidates: Vec<Itemset>) -> Self {
        let k = candidates.first().map_or(0, Itemset::len);
        assert!(
            candidates.iter().all(|c| c.len() == k),
            "all candidates must have equal length"
        );
        assert!(
            candidates.windows(2).all(|w| w[0] < w[1]),
            "candidates must be sorted and distinct"
        );

        let mut nodes: Vec<BuildNode> = Vec::with_capacity(candidates.len() * 2 + 1);
        nodes.push(BuildNode {
            children: Vec::new(),
            candidate: NO_CANDIDATE,
        });
        if !candidates.is_empty() {
            build_rec(&candidates, 0, candidates.len(), 0, 0, k, &mut nodes);
        }

        // Flatten the adjacency lists into the CSR arena.
        let mut child_start = Vec::with_capacity(nodes.len() + 1);
        let mut child_item = Vec::new();
        let mut child_node = Vec::new();
        let mut candidate_at = Vec::with_capacity(nodes.len());
        let mut acc = 0u32;
        for n in &nodes {
            child_start.push(acc);
            acc += n.children.len() as u32;
            for &(item, node) in &n.children {
                child_item.push(item);
                child_node.push(node);
            }
            candidate_at.push(n.candidate);
        }
        child_start.push(acc);

        CandidateTrie {
            k,
            child_start,
            child_item,
            child_node,
            candidate_at,
            candidates,
        }
    }

    /// Candidate length `k` (0 for an empty trie).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the trie holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidates, in input (= sorted) order.
    pub fn candidates(&self) -> &[Itemset] {
        &self.candidates
    }

    /// Number of trie nodes (observability / tests).
    pub fn num_nodes(&self) -> usize {
        self.candidate_at.len()
    }

    /// Invoke `f(candidate index)` once per candidate contained in the
    /// sorted transaction `t`. Returns the edge-probe count (CPU estimate).
    pub fn for_each_match(&self, t: &[Item], f: &mut dyn FnMut(usize)) -> u64 {
        if self.k == 0 || t.len() < self.k || self.candidates.is_empty() {
            return 0;
        }
        let mut visits = 0u64;
        self.descend(0, t, 0, 0, &mut visits, f);
        visits
    }

    fn descend(
        &self,
        node: u32,
        t: &[Item],
        pos: usize,
        depth: usize,
        visits: &mut u64,
        f: &mut dyn FnMut(usize),
    ) {
        if depth == self.k {
            *visits += 1;
            f(self.candidate_at[node as usize] as usize);
            return;
        }
        // Two-pointer merge of this node's sorted edge labels against the
        // remaining transaction items, leaving enough items to complete a
        // candidate.
        let remaining_needed = self.k - depth;
        let last = t.len() - (remaining_needed - 1);
        let mut ci = self.child_start[node as usize] as usize;
        let ce = self.child_start[node as usize + 1] as usize;
        let mut ti = pos;
        while ci < ce && ti < last {
            *visits += 1;
            match self.child_item[ci].cmp(&t[ti]) {
                std::cmp::Ordering::Less => ci += 1,
                std::cmp::Ordering::Greater => ti += 1,
                std::cmp::Ordering::Equal => {
                    self.descend(self.child_node[ci], t, ti + 1, depth + 1, visits, f);
                    ci += 1;
                    ti += 1;
                }
            }
        }
    }

    /// Brute-force reference: indices of all candidates contained in `t`.
    pub fn matches_naive(&self, t: &[Item]) -> Vec<usize> {
        self.candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_subset_of_sorted(t))
            .map(|(i, _)| i)
            .collect()
    }
}

fn build_rec(
    candidates: &[Itemset],
    lo: usize,
    hi: usize,
    depth: usize,
    node: u32,
    k: usize,
    nodes: &mut Vec<BuildNode>,
) {
    if depth == k {
        debug_assert_eq!(hi, lo + 1, "sorted distinct candidates share no full path");
        nodes[node as usize].candidate = lo as u32;
        return;
    }
    // Candidates are sorted, so equal items at `depth` form contiguous runs
    // (within a shared prefix), giving item-sorted child ranges for free.
    let mut i = lo;
    while i < hi {
        let item = candidates[i].items()[depth];
        let mut j = i + 1;
        while j < hi && candidates[j].items()[depth] == item {
            j += 1;
        }
        let child = nodes.len() as u32;
        nodes.push(BuildNode {
            children: Vec::new(),
            candidate: NO_CANDIDATE,
        });
        nodes[node as usize].children.push((item, child));
        build_rec(candidates, i, j, depth + 1, child, k, nodes);
        i = j;
    }
}

impl CandidateStore for CandidateTrie {
    fn k(&self) -> usize {
        self.k
    }

    fn len(&self) -> usize {
        self.candidates.len()
    }

    fn candidates(&self) -> &[Itemset] {
        &self.candidates
    }

    fn into_candidates(self: Box<Self>) -> Vec<Itemset> {
        self.candidates
    }

    fn for_each_match_dyn(
        &self,
        t: &[Item],
        _scratch: &mut MatchScratch, // unique paths — no stamp bookkeeping
        f: &mut dyn FnMut(usize),
    ) -> u64 {
        self.for_each_match(t, f)
    }

    fn store_bytes(&self) -> u64 {
        self.byte_size()
    }

    fn name(&self) -> &'static str {
        "trie"
    }
}

impl ByteSize for CandidateTrie {
    fn byte_size(&self) -> u64 {
        let cands: u64 = self.candidates.iter().map(ByteSize::byte_size).sum();
        cands
            + 4 * (self.child_start.len()
                + self.child_item.len()
                + self.child_node.len()
                + self.candidate_at.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(raw: &[&[Item]]) -> Vec<Itemset> {
        let mut v: Vec<Itemset> = raw.iter().map(|s| Itemset::new(s.to_vec())).collect();
        v.sort();
        v
    }

    fn matches(trie: &CandidateTrie, t: &[Item]) -> Vec<usize> {
        let mut out = Vec::new();
        trie.for_each_match(t, &mut |i| out.push(i));
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let trie = CandidateTrie::build(Vec::new());
        assert!(trie.is_empty());
        assert_eq!(matches(&trie, &[1, 2, 3]), Vec::<usize>::new());
    }

    #[test]
    fn single_candidate() {
        let trie = CandidateTrie::build(sets(&[&[1, 3]]));
        assert_eq!(matches(&trie, &[1, 2, 3]), vec![0]);
        assert_eq!(matches(&trie, &[1, 2]), Vec::<usize>::new());
        assert_eq!(matches(&trie, &[3]), Vec::<usize>::new());
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let trie = CandidateTrie::build(sets(&[&[1, 2, 3], &[1, 2, 4], &[1, 3, 4]]));
        // root + {1} + {1,2} + {1,2,3} + {1,2,4} + {1,3} + {1,3,4} = 7
        assert_eq!(trie.num_nodes(), 7);
        assert_eq!(matches(&trie, &[1, 2, 3, 4]), vec![0, 1, 2]);
        assert_eq!(matches(&trie, &[1, 3, 4]), vec![2]);
    }

    #[test]
    fn each_candidate_reported_at_most_once() {
        let cands = sets(&[
            &[0, 6, 11],
            &[1, 7, 12],
            &[2, 8, 13],
            &[0, 7, 13],
            &[1, 6, 11],
        ]);
        let n = cands.len();
        let trie = CandidateTrie::build(cands);
        let t: Vec<Item> = (0..15).collect();
        let mut counts = vec![0u32; n];
        trie.for_each_match(&t, &mut |i| counts[i] += 1);
        assert!(counts.iter().all(|&c| c == 1), "counts {counts:?}");
    }

    #[test]
    fn agrees_with_naive_on_random_shapes() {
        let cands: Vec<Itemset> = {
            let mut v: Vec<Itemset> = (0u32..160)
                .map(|i| Itemset::new(vec![i % 11, 11 + (i / 3) % 9, 20 + i % 7, 27 + i % 5]))
                .collect::<std::collections::HashSet<_>>()
                .into_iter()
                .collect();
            v.sort();
            v
        };
        let trie = CandidateTrie::build(cands);
        for seed in 0u32..25 {
            let t: Vec<Item> = (0..32).filter(|x| (x * 5 + seed) % 3 != 0).collect();
            let mut naive = trie.matches_naive(&t);
            naive.sort_unstable();
            assert_eq!(matches(&trie, &t), naive, "seed {seed}");
        }
    }

    #[test]
    fn visits_are_positive_work_estimate() {
        let trie = CandidateTrie::build(sets(&[&[1, 2], &[2, 3]]));
        let visits = trie.for_each_match(&[1, 2, 3], &mut |_| {});
        assert!(visits >= 2, "got {visits}");
        assert_eq!(trie.for_each_match(&[1], &mut |_| {}), 0);
    }

    #[test]
    fn store_trait_round_trip() {
        let cands = sets(&[&[1, 2], &[2, 3]]);
        let boxed: Box<dyn CandidateStore> = Box::new(CandidateTrie::build(cands.clone()));
        assert_eq!(boxed.k(), 2);
        assert_eq!(boxed.len(), 2);
        let mut s = MatchScratch::default();
        let mut out = Vec::new();
        boxed.for_each_match_dyn(&[1, 2, 3], &mut s, &mut |i| out.push(i));
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
        assert!(boxed.store_bytes() > 0);
        assert_eq!(boxed.into_candidates(), cands);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_candidates_rejected() {
        CandidateTrie::build(vec![Itemset::new(vec![2, 3]), Itemset::new(vec![1, 2])]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mixed_length_candidates_rejected() {
        CandidateTrie::build(vec![Itemset::new(vec![1]), Itemset::new(vec![1, 2])]);
    }
}
