//! Association-rule generation on top of a [`MiningResult`].
//!
//! The paper's motivating application (§V.D) mines medical case data "to
//! find the relationship in medicine" — relationships are association rules
//! `A ⇒ B` with their support, confidence and lift. This module derives them
//! from the frequent itemsets any of the miners produced.

use crate::types::{Itemset, MiningResult};

/// One association rule `antecedent ⇒ consequent`.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Left-hand side.
    pub antecedent: Itemset,
    /// Right-hand side (disjoint from the antecedent).
    pub consequent: Itemset,
    /// Support count of `antecedent ∪ consequent`.
    pub support: u64,
    /// `sup(A ∪ B) / sup(A)`.
    pub confidence: f64,
    /// `confidence / (sup(B) / N)` — how much more often B follows A than B
    /// occurs overall. Greater than 1 means positive correlation.
    pub lift: f64,
}

/// Options for rule generation.
#[derive(Clone, Copy, Debug)]
pub struct RuleConfig {
    /// Keep only rules with at least this confidence.
    pub min_confidence: f64,
    /// Keep only rules whose consequent has at most this many items
    /// (0 = unlimited).
    pub max_consequent_len: usize,
}

impl RuleConfig {
    /// Rules at or above `min_confidence`, any consequent size.
    pub fn new(min_confidence: f64) -> Self {
        RuleConfig {
            min_confidence,
            max_consequent_len: 0,
        }
    }
}

/// Generate all rules meeting `config` from `result`, which must have been
/// mined over `n_transactions` transactions (for lift). Rules are sorted by
/// descending confidence, then descending support, then antecedent.
///
/// Panics if a frequent itemset is longer than 20 items (the subset
/// enumeration is bitmask-based; real FIM results are far shorter).
///
/// ```
/// use yafim_core::{apriori, generate_rules, RuleConfig, SequentialConfig, Support};
///
/// let tx = vec![vec![1, 2], vec![1, 2], vec![1, 3]];
/// let result = apriori(&tx, &SequentialConfig::new(Support::Count(2)));
/// let rules = generate_rules(&result, tx.len() as u64, &RuleConfig::new(0.9));
/// // {2} ⇒ {1} holds with confidence 1.0 (2 always co-occurs with 1).
/// assert!(rules.iter().any(|r| r.to_string().starts_with("{2} => {1}")));
/// ```
pub fn generate_rules(
    result: &MiningResult,
    n_transactions: u64,
    config: &RuleConfig,
) -> Vec<Rule> {
    let mut rules = Vec::new();
    for (set, support) in result.iter() {
        let k = set.len();
        if k < 2 {
            continue;
        }
        assert!(k <= 20, "itemsets longer than 20 are not supported");
        let items = set.items();
        // Every non-empty proper subset as antecedent.
        for mask in 1u32..((1 << k) - 1) {
            let mut ante = Vec::new();
            let mut cons = Vec::new();
            for (i, &item) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    ante.push(item);
                } else {
                    cons.push(item);
                }
            }
            if config.max_consequent_len != 0 && cons.len() > config.max_consequent_len {
                continue;
            }
            let ante = Itemset::from_sorted(ante);
            let cons = Itemset::from_sorted(cons);
            let ante_sup = result
                .support_of(&ante)
                .expect("subsets of frequent itemsets are frequent");
            let cons_sup = result
                .support_of(&cons)
                .expect("subsets of frequent itemsets are frequent");
            let confidence = *support as f64 / ante_sup as f64;
            if confidence + 1e-12 < config.min_confidence {
                continue;
            }
            let lift = confidence / (cons_sup as f64 / n_transactions as f64);
            rules.push(Rule {
                antecedent: ante,
                consequent: cons,
                support: *support,
                confidence,
                lift,
            });
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("confidence is finite")
            .then(b.support.cmp(&a.support))
            .then(a.antecedent.cmp(&b.antecedent))
            .then(a.consequent.cmp(&b.consequent))
    });
    rules
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} => {}  (sup={}, conf={:.2}, lift={:.2})",
            self.antecedent, self.consequent, self.support, self.confidence, self.lift
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::{apriori, SequentialConfig};
    use crate::types::Support;

    fn toy_result() -> (MiningResult, u64) {
        let tx = vec![vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]];
        (
            apriori(&tx, &SequentialConfig::new(Support::Count(2))),
            tx.len() as u64,
        )
    }

    #[test]
    fn known_confidences() {
        let (r, n) = toy_result();
        let rules = generate_rules(&r, n, &RuleConfig::new(0.0));
        // {2} ⇒ {5}: sup({2,5})=3, sup({2})=3 → confidence 1.0.
        let rule = rules
            .iter()
            .find(|r| r.antecedent == Itemset::single(2) && r.consequent == Itemset::single(5))
            .expect("rule exists");
        assert_eq!(rule.support, 3);
        assert!((rule.confidence - 1.0).abs() < 1e-12);
        // lift = 1.0 / (3/4) = 4/3.
        assert!((rule.lift - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_confidence_filters() {
        let (r, n) = toy_result();
        let all = generate_rules(&r, n, &RuleConfig::new(0.0));
        let strict = generate_rules(&r, n, &RuleConfig::new(1.0));
        assert!(strict.len() < all.len());
        assert!(strict.iter().all(|r| r.confidence >= 1.0 - 1e-12));
    }

    #[test]
    fn rules_come_from_itemsets_of_len_2_plus() {
        let (r, n) = toy_result();
        let rules = generate_rules(&r, n, &RuleConfig::new(0.0));
        for rule in &rules {
            assert!(!rule.antecedent.is_empty());
            assert!(!rule.consequent.is_empty());
            // Antecedent and consequent are disjoint.
            for item in rule.consequent.items() {
                assert!(!rule.antecedent.contains(*item));
            }
        }
        // A 2-itemset yields 2 rules; count for {2,3,5}: 6 rules.
        let from_triple = rules
            .iter()
            .filter(|r| r.antecedent.len() + r.consequent.len() == 3)
            .count();
        assert_eq!(from_triple, 6);
    }

    #[test]
    fn max_consequent_len_respected() {
        let (r, n) = toy_result();
        let cfg = RuleConfig {
            min_confidence: 0.0,
            max_consequent_len: 1,
        };
        let rules = generate_rules(&r, n, &cfg);
        assert!(rules.iter().all(|r| r.consequent.len() == 1));
    }

    #[test]
    fn sorted_by_confidence_desc() {
        let (r, n) = toy_result();
        let rules = generate_rules(&r, n, &RuleConfig::new(0.0));
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence - 1e-12);
        }
    }

    #[test]
    fn display_is_readable() {
        let (r, n) = toy_result();
        let rules = generate_rules(&r, n, &RuleConfig::new(1.0));
        let s = rules[0].to_string();
        assert!(s.contains("=>"), "{s}");
        assert!(s.contains("conf=1.00"), "{s}");
    }
}
