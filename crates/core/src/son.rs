//! SON on MapReduce — the *one-phase* algorithm family of the paper's
//! related work (§III: "One-phase algorithms need only one phase (e.g., a
//! MapReduce job) to find all frequent k-itemsets"; PSON, Xiao et al. 2011).
//!
//! The Savasere–Omiecinski–Navathe scheme finds *all* frequent itemsets in
//! two jobs, independent of the longest pattern:
//!
//! 1. **Local mining job** — each mapper mines its input split completely
//!    (here with the in-memory Eclat miner) at the proportionally scaled
//!    support threshold, emitting its locally frequent itemsets as global
//!    *candidates*. Any globally frequent itemset must be locally frequent
//!    in at least one split, so the candidate set is complete.
//! 2. **Counting job** — exact global supports of all candidates are counted
//!    over the whole dataset and filtered by the true threshold.
//!
//! The related-work caveat the paper quotes — "the one-phase algorithm needs
//! to generate many redundant itemsets during processing, which may lead
//! \[to\] memory overflow and too much execution time for large data sets" —
//! is observable here: skewed splits at low support explode the local
//! mining step (see the `compare_miners` bench).

use crate::eclat::eclat;
use crate::hashtree::{HashTree, MatchScratch};
use crate::types::{
    parse_transaction, Itemset, MinerRun, MiningResult, PassTiming, Support, JVM_TREE_VISIT_UNITS,
};
use std::sync::Arc;
use yafim_cluster::{slice_bytes, EventKind, SimCluster};
use yafim_mapreduce::{Emitter, MapReduceJob, MrError, MrRunner};

/// Options for a SON run.
#[derive(Clone, Debug)]
pub struct SonConfig {
    /// Minimum support threshold (global).
    pub min_support: Support,
    /// Input split size for the local-mining job (None = HDFS blocks).
    /// Smaller splits → more parallel local miners but more redundant
    /// candidates.
    pub split_size: Option<u64>,
    /// Reduce tasks per job (0 = one per virtual core).
    pub reduce_tasks: usize,
}

impl SonConfig {
    /// Defaults: block-sized splits.
    pub fn new(min_support: Support) -> Self {
        SonConfig {
            min_support,
            split_size: None,
            reduce_tasks: 0,
        }
    }
}

/// The SON miner bound to one virtual cluster.
pub struct Son {
    runner: MrRunner,
    config: SonConfig,
}

impl Son {
    /// A miner over `cluster` with `config`.
    pub fn new(cluster: SimCluster, config: SonConfig) -> Self {
        Son {
            runner: MrRunner::new(cluster),
            config,
        }
    }

    /// Mine the text dataset at `input` on simulated HDFS (two jobs total).
    pub fn mine(&self, input: &str) -> Result<MinerRun, MrError> {
        let cluster = self.runner.cluster().clone();
        let metrics = cluster.metrics().clone();
        let file = cluster.hdfs().get(input)?;
        let total_lines = file.num_lines() as u64;
        let min_sup = self.config.min_support.resolve(total_lines);

        let run_start = metrics.now();

        // ---- job 1: local mining per split ----
        let phase1_start = metrics.now();
        let job1 = MapReduceJob::new_per_split(
            "SON phase 1 (local mining)",
            input,
            move |_off, lines: &[String], em: &mut Emitter<Itemset, u64>, w| {
                let local: Vec<Vec<u32>> = lines.iter().map(|l| parse_transaction(l)).collect();
                // Scale the threshold to the split share, rounding *down* so
                // no globally frequent itemset can be missed.
                let local_sup =
                    ((min_sup as f64) * (local.len() as f64 / total_lines as f64)).floor() as u64;
                let result = eclat(&local, Support::Count(local_sup.max(1)));
                // Local mining cost: roughly one tid-list touch per support
                // unit of every mined itemset.
                let units: u64 = result.iter().map(|(_, sup)| *sup).sum();
                w.add_cpu(units * JVM_TREE_VISIT_UNITS);
                for (set, _) in result.iter() {
                    em.emit(set.clone(), 1);
                }
            },
            // Reducer: deduplicate candidates.
            |k: &Itemset, _vs, em: &mut Emitter<Itemset, u64>, _w| em.emit(k.clone(), 0),
        )
        .with_reduce_tasks(self.config.reduce_tasks);
        let job1 = match self.config.split_size {
            Some(s) => job1.with_split_size(s),
            None => job1,
        };
        let candidates: Vec<Itemset> = self
            .runner
            .run(job1)?
            .pairs
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        metrics.record_span(EventKind::Iteration, "SON phase 1", phase1_start);
        let phase1 = PassTiming {
            pass: 1,
            seconds: metrics.now().since(phase1_start).as_secs(),
            candidates: candidates.len(),
            frequent: 0,
        };

        if candidates.is_empty() {
            return Ok(MinerRun {
                result: MiningResult::default(),
                total_seconds: metrics.now().since(run_start).as_secs(),
                passes: vec![phase1],
            });
        }

        // ---- job 2: exact counting of all candidates at once ----
        let phase2_start = metrics.now();
        let n_candidates = candidates.len();
        let side_bytes = slice_bytes(&candidates);

        // One hash tree per candidate length.
        let max_len = candidates
            .iter()
            .map(Itemset::len)
            .max()
            .expect("non-empty");
        let mut by_len: Vec<Vec<Itemset>> = vec![Vec::new(); max_len];
        for c in candidates {
            by_len[c.len() - 1].push(c);
        }
        let trees: Arc<Vec<HashTree>> = Arc::new(
            by_len
                .into_iter()
                .filter(|l| !l.is_empty())
                .map(HashTree::build)
                .collect(),
        );
        let trees_for_map = Arc::clone(&trees);

        let job2 = MapReduceJob::new(
            "SON phase 2 (global counting)",
            input,
            move |_off, line: &str, em: &mut Emitter<Itemset, u64>, w| {
                let items = parse_transaction(line);
                w.add_cpu(items.len() as u64);
                thread_local! {
                    static SCRATCH: std::cell::RefCell<MatchScratch> =
                        std::cell::RefCell::new(MatchScratch::default());
                }
                SCRATCH.with(|s| {
                    let mut scratch = s.borrow_mut();
                    for tree in trees_for_map.iter() {
                        let visits = tree.for_each_match(&items, &mut scratch, |idx| {
                            em.emit(tree.candidates()[idx].clone(), 1);
                        });
                        w.add_cpu(visits * JVM_TREE_VISIT_UNITS);
                    }
                });
            },
            move |k: &Itemset, vs: Vec<u64>, em: &mut Emitter<Itemset, u64>, _w| {
                let sum: u64 = vs.into_iter().sum();
                if sum >= min_sup {
                    em.emit(k.clone(), sum);
                }
            },
        )
        .with_combiner(|_k: &Itemset, vs: Vec<u64>| vs.into_iter().sum())
        .with_reduce_tasks(self.config.reduce_tasks)
        .with_side_data(side_bytes)
        .with_output(
            format!("{input}.SON"),
            Arc::new(|k: &Itemset, v: &u64| format!("{k} {v}")),
        );
        let result = self.runner.run(job2)?;

        let mut levels: Vec<Vec<(Itemset, u64)>> = vec![Vec::new(); max_len];
        for (set, sup) in result.pairs {
            levels[set.len() - 1].push((set, sup));
        }
        metrics.record_span(EventKind::Iteration, "SON phase 2", phase2_start);
        let found: usize = levels.iter().map(Vec::len).sum();
        let phase2 = PassTiming {
            pass: 2,
            seconds: metrics.now().since(phase2_start).as_secs(),
            candidates: n_candidates,
            frequent: found,
        };

        Ok(MinerRun {
            result: MiningResult::from_levels(levels),
            total_seconds: metrics.now().since(run_start).as_secs(),
            passes: vec![phase1, phase2],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::{apriori, SequentialConfig};
    use yafim_cluster::{ClusterSpec, CostModel};

    fn cluster() -> SimCluster {
        SimCluster::with_threads(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era(), 2)
    }

    fn put(cluster: &SimCluster, tx: &[Vec<u32>]) -> String {
        let lines: Vec<String> = tx
            .iter()
            .map(|t| t.iter().map(u32::to_string).collect::<Vec<_>>().join(" "))
            .collect();
        cluster.hdfs().put_overwrite("son-in.dat", lines);
        "son-in.dat".to_string()
    }

    fn toy() -> Vec<Vec<u32>> {
        vec![vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]
    }

    #[test]
    fn son_matches_sequential_single_split() {
        let c = cluster();
        let path = put(&c, &toy());
        let run = Son::new(c, SonConfig::new(Support::Count(2)))
            .mine(&path)
            .unwrap();
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(run.result, seq);
    }

    #[test]
    fn son_matches_sequential_many_splits() {
        // Repeat the toy data and force tiny splits: local thresholds kick
        // in and the candidate set becomes a strict superset, but the final
        // result must still be exact.
        let tx: Vec<Vec<u32>> = toy().into_iter().cycle().take(40).collect();
        let c = cluster();
        let path = put(&c, &tx);
        let mut cfg = SonConfig::new(Support::Fraction(0.5));
        cfg.split_size = Some(32); // a handful of lines per split
        let run = Son::new(c, cfg).mine(&path).unwrap();
        let seq = apriori(&tx, &SequentialConfig::new(Support::Fraction(0.5)));
        assert_eq!(run.result, seq);
        assert!(
            run.passes[0].candidates >= seq.total(),
            "local mining must produce a candidate superset"
        );
    }

    #[test]
    fn exactly_two_jobs() {
        let c = cluster();
        let path = put(&c, &toy());
        Son::new(c.clone(), SonConfig::new(Support::Count(2)))
            .mine(&path)
            .unwrap();
        assert_eq!(c.metrics().snapshot().jobs, 2, "SON is a two-job scheme");
    }

    #[test]
    fn nothing_frequent() {
        let c = cluster();
        let path = put(&c, &toy());
        let run = Son::new(c, SonConfig::new(Support::Count(50)))
            .mine(&path)
            .unwrap();
        assert_eq!(run.result.total(), 0);
    }

    #[test]
    fn missing_input_errors() {
        assert!(Son::new(cluster(), SonConfig::new(Support::Count(1)))
            .mine("nope")
            .is_err());
    }
}
