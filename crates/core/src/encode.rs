//! Dense re-encoding of transactions after pass 1, plus the triangular
//! pair-index arithmetic used by the specialized pass-2 counter.
//!
//! After the frequent items `L1` are known, every infrequent item is dead
//! weight: it can never occur in a frequent itemset of any later pass
//! (Apriori monotonicity). The [`DenseEncoder`] therefore projects each
//! cached transaction once — dropping infrequent items and remapping the
//! survivors to dense ranks `0..|L1|` — so every later pass streams compact,
//! branch-friendly `u32` ranks instead of the sparse original alphabet.
//!
//! The rank assignment is *monotone* (ranks are assigned in ascending item
//! order), which is what makes the whole optimization invisible to results:
//! sorted transactions stay sorted after encoding, itemset order is
//! preserved under both encode and decode, and `ap_gen`'s prefix join sees
//! the same structure in either alphabet. Mining in rank space and decoding
//! at the end is a bijection on the frequent-itemset lattice.

use crate::types::{Item, Itemset};
use yafim_cluster::ByteSize;

/// Monotone `item ↔ dense rank` dictionary over the frequent items of pass 1.
///
/// ```
/// use yafim_core::encode::DenseEncoder;
///
/// let enc = DenseEncoder::new(vec![3, 8, 40]);
/// assert_eq!(enc.encode(&[2, 3, 9, 40]), vec![0, 2]); // 3 → rank 0, 40 → rank 2
/// assert_eq!(enc.item(2), 40);
/// ```
#[derive(Clone, Debug)]
pub struct DenseEncoder {
    /// Frequent items, strictly ascending; the rank of `items[r]` is `r`.
    items: Vec<Item>,
}

impl DenseEncoder {
    /// Build from the frequent items, which must be strictly ascending
    /// (the order `L1` is produced in).
    pub fn new(items: Vec<Item>) -> Self {
        assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "frequent items must be strictly ascending"
        );
        DenseEncoder { items }
    }

    /// Number of frequent items (the dense alphabet size).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Dense rank of `item`, if frequent.
    pub fn rank(&self, item: Item) -> Option<u32> {
        self.items.binary_search(&item).ok().map(|r| r as u32)
    }

    /// The original item at `rank`.
    pub fn item(&self, rank: Item) -> Item {
        self.items[rank as usize]
    }

    /// Project a sorted transaction: drop infrequent items, map survivors to
    /// ranks. Output is sorted because the rank assignment is monotone.
    pub fn encode(&self, t: &[Item]) -> Vec<Item> {
        let mut out = Vec::with_capacity(t.len().min(self.items.len()));
        let mut lo = 0usize;
        for &item in t {
            // `t` is sorted, so matches can only lie at or after `lo`.
            match self.items[lo..].binary_search(&item) {
                Ok(off) => {
                    out.push((lo + off) as u32);
                    lo += off + 1;
                }
                Err(off) => lo += off,
            }
            if lo >= self.items.len() {
                break;
            }
        }
        out
    }

    /// Map a rank-space itemset back to the original alphabet. Monotonicity
    /// keeps the items sorted.
    pub fn decode_itemset(&self, dense: &Itemset) -> Itemset {
        Itemset::from_sorted(dense.items().iter().map(|&r| self.item(r)).collect())
    }
}

impl ByteSize for DenseEncoder {
    fn byte_size(&self) -> u64 {
        8 + 4 * self.items.len() as u64
    }
}

/// Per-item keep/drop bitmap shipped to the workers for cross-pass
/// trimming (DHP-style): after `L_k` is known, items in no frequent
/// `k`-itemset can never appear in a frequent `(k+1)`-itemset and are
/// dropped from every cached transaction.
#[derive(Clone, Debug)]
pub struct TrimMask {
    /// `keep[rank]` — whether the dense item survives into the next pass.
    pub keep: Vec<bool>,
}

impl TrimMask {
    /// Mask keeping exactly the items that occur in `frequent` (rank space),
    /// over a dense alphabet of `n` items.
    pub fn from_frequent(n: usize, frequent: &[(Itemset, u64)]) -> Self {
        let mut keep = vec![false; n];
        for (set, _) in frequent {
            for &r in set.items() {
                keep[r as usize] = true;
            }
        }
        TrimMask { keep }
    }

    /// How many items survive.
    pub fn alive(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }
}

impl ByteSize for TrimMask {
    // Ships as a bitmap.
    fn byte_size(&self) -> u64 {
        8 + self.keep.len().div_ceil(8) as u64
    }
}

/// Number of cells in the strict upper triangle over `n` items — exactly
/// `|C_2| = n·(n−1)/2`, since every pair of frequent items survives the
/// Apriori prune at `k = 2`.
pub fn tri_len(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// Flat index of the pair `(a, b)` with `a < b < n` in row-major upper
/// triangular order — the same order `ap_gen` emits `C_2` in, so triangle
/// indices and hash-tree candidate indices coincide.
pub fn tri_index(n: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < b && b < n);
    a * (2 * n - a - 1) / 2 + (b - a - 1)
}

/// Inverse of [`tri_index`]: the pair `(a, b)` at `idx`.
pub fn tri_pair(n: usize, mut idx: usize) -> (usize, usize) {
    debug_assert!(idx < tri_len(n));
    let mut a = 0usize;
    loop {
        let row = n - 1 - a;
        if idx < row {
            return (a, a + 1 + idx);
        }
        idx -= row;
        a += 1;
    }
}

/// Largest triangle the specialized pass-2 counter will allocate per task
/// (cells, 8 bytes each). Beyond this, pass 2 falls back to the candidate
/// store — counts are identical either way, only the constant factor moves.
/// The `k ≥ 3` vertical bitmap counter has the same shape of guard over its
/// arena: [`BITMAP_MAX_WORDS`](crate::bitmap::BITMAP_MAX_WORDS).
pub const TRIANGLE_MAX_CELLS: usize = 1 << 24;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_drops_and_remaps_monotonically() {
        let enc = DenseEncoder::new(vec![2, 5, 9, 40]);
        assert_eq!(enc.len(), 4);
        assert_eq!(enc.encode(&[1, 2, 5, 7, 40, 41]), vec![0, 1, 3]);
        assert_eq!(enc.encode(&[3, 4, 6]), Vec::<Item>::new());
        assert_eq!(enc.encode(&[]), Vec::<Item>::new());
        assert_eq!(enc.rank(9), Some(2));
        assert_eq!(enc.rank(10), None);
    }

    #[test]
    fn decode_round_trips() {
        let enc = DenseEncoder::new(vec![10, 20, 30]);
        let dense = Itemset::from_sorted(vec![0, 2]);
        assert_eq!(enc.decode_itemset(&dense), Itemset::new(vec![10, 30]));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_dictionary_rejected() {
        DenseEncoder::new(vec![5, 2]);
    }

    #[test]
    fn tri_index_is_a_bijection() {
        for n in [2usize, 3, 5, 17] {
            let mut seen = vec![false; tri_len(n)];
            for a in 0..n {
                for b in a + 1..n {
                    let idx = tri_index(n, a, b);
                    assert!(!seen[idx], "collision at ({a},{b}) in n={n}");
                    seen[idx] = true;
                    assert_eq!(tri_pair(n, idx), (a, b), "inverse at n={n}");
                }
            }
            assert!(seen.iter().all(|&s| s), "gaps for n={n}");
        }
    }

    #[test]
    fn tri_order_matches_lexicographic_pairs() {
        // ap_gen over singletons emits pairs in lexicographic order; the
        // triangle must index them identically.
        let n = 6;
        let mut pairs = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                pairs.push((a, b));
            }
        }
        for (idx, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(tri_index(n, a, b), idx);
        }
    }

    #[test]
    fn trim_mask_tracks_frequent_items() {
        let lk = vec![
            (Itemset::from_sorted(vec![0, 2]), 5u64),
            (Itemset::from_sorted(vec![2, 3]), 4),
        ];
        let mask = TrimMask::from_frequent(5, &lk);
        assert_eq!(mask.keep, vec![true, false, true, true, false]);
        assert_eq!(mask.alive(), 3);
        assert!(mask.byte_size() < 24);
    }

    #[test]
    fn tri_len_edge_cases() {
        assert_eq!(tri_len(0), 0);
        assert_eq!(tri_len(1), 0);
        assert_eq!(tri_len(2), 1);
        assert_eq!(tri_len(100), 4950);
    }
}
