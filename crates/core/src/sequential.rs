//! Single-node reference Apriori (the paper's Algorithm 1).
//!
//! This is the ground truth every parallel miner is checked against, and the
//! sequential baseline for speedup measurements. It uses the same hash tree
//! and candidate generation as YAFIM, but runs in one thread with no engine
//! underneath.

use crate::candidates::ap_gen;
use crate::hashtree::{HashTree, MatchScratch};
use crate::types::{Item, Itemset, MiningResult, Support};
use yafim_cluster::FxHashMap;

/// Options for the sequential miner.
#[derive(Clone, Debug)]
pub struct SequentialConfig {
    /// Minimum support threshold.
    pub min_support: Support,
    /// Stop after this many passes (0 = run to fixpoint).
    pub max_passes: usize,
}

impl SequentialConfig {
    /// Run to fixpoint with the given support.
    pub fn new(min_support: Support) -> Self {
        SequentialConfig {
            min_support,
            max_passes: 0,
        }
    }
}

/// Mine all frequent itemsets of `transactions` (each a sorted item slice).
///
/// ```
/// use yafim_core::{apriori, Itemset, SequentialConfig, Support};
///
/// let tx = vec![vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]];
/// let result = apriori(&tx, &SequentialConfig::new(Support::Count(2)));
/// assert_eq!(result.level_sizes(), vec![4, 4, 1]);
/// assert_eq!(result.support_of(&Itemset::new(vec![2, 3, 5])), Some(2));
/// ```
pub fn apriori(transactions: &[Vec<Item>], config: &SequentialConfig) -> MiningResult {
    let min_sup = config.min_support.resolve(transactions.len() as u64);
    let mut levels: Vec<Vec<(Itemset, u64)>> = Vec::new();

    // Pass 1: frequent items by direct counting.
    let mut counts: FxHashMap<Item, u64> = FxHashMap::default();
    for t in transactions {
        for &item in t {
            *counts.entry(item).or_insert(0) += 1;
        }
    }
    let mut l1: Vec<(Itemset, u64)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_sup)
        .map(|(i, c)| (Itemset::single(i), c))
        .collect();
    l1.sort_by(|a, b| a.0.cmp(&b.0));
    if l1.is_empty() {
        return MiningResult::default();
    }
    levels.push(l1);

    // Passes k ≥ 2: generate candidates, count with the hash tree, filter.
    let mut pass = 1usize;
    loop {
        if config.max_passes != 0 && pass >= config.max_passes {
            break;
        }
        let prev: Vec<Itemset> = levels
            .last()
            .expect("at least L1 exists")
            .iter()
            .map(|(s, _)| s.clone())
            .collect();
        let (candidates, _work) = ap_gen(&prev);
        if candidates.is_empty() {
            break;
        }

        let tree = HashTree::build(candidates);
        let mut counts = vec![0u64; tree.len()];
        let mut scratch = MatchScratch::default();
        for t in transactions {
            tree.for_each_match(t, &mut scratch, |idx| counts[idx] += 1);
        }

        let mut lk: Vec<(Itemset, u64)> = tree
            .candidates()
            .iter()
            .zip(&counts)
            .filter(|&(_, &c)| c >= min_sup)
            .map(|(s, &c)| (s.clone(), c))
            .collect();
        if lk.is_empty() {
            break;
        }
        lk.sort_by(|a, b| a.0.cmp(&b.0));
        levels.push(lk);
        pass += 1;
    }

    MiningResult::from_levels(levels)
}

/// Exhaustive miner for tests: count *every* subset of every transaction up
/// to length `max_len`. Exponential; only usable on tiny inputs, but
/// obviously correct.
pub fn brute_force(
    transactions: &[Vec<Item>],
    min_support: Support,
    max_len: usize,
) -> MiningResult {
    let min_sup = min_support.resolve(transactions.len() as u64);
    let mut counts: FxHashMap<Itemset, u64> = FxHashMap::default();
    for t in transactions {
        let n = t.len();
        // All non-empty subsets up to max_len via bitmask (n ≤ ~20).
        assert!(n <= 20, "brute_force is for tiny transactions only");
        for mask in 1u32..(1 << n) {
            if (mask.count_ones() as usize) > max_len {
                continue;
            }
            let items: Vec<Item> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| t[i])
                .collect();
            *counts.entry(Itemset::from_sorted(items)).or_insert(0) += 1;
        }
    }
    let mut levels: Vec<Vec<(Itemset, u64)>> = vec![Vec::new(); max_len];
    for (set, c) in counts {
        if c >= min_sup {
            levels[set.len() - 1].push((set, c));
        }
    }
    MiningResult::from_levels(levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example found in most Apriori texts.
    fn toy() -> Vec<Vec<Item>> {
        vec![vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]
    }

    #[test]
    fn toy_dataset_known_answer() {
        let r = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(r.level_sizes(), vec![4, 4, 1]);
        assert_eq!(r.support_of(&Itemset::new(vec![2, 3, 5])), Some(2));
        assert_eq!(r.support_of(&Itemset::new(vec![1, 3])), Some(2));
        assert_eq!(r.support_of(&Itemset::new(vec![4])), None, "support 1 < 2");
    }

    #[test]
    fn agrees_with_brute_force() {
        let tx = vec![
            vec![1, 2, 3],
            vec![1, 2, 4],
            vec![1, 3, 4],
            vec![2, 3, 4, 5],
            vec![1, 2, 3, 4],
            vec![2, 5],
            vec![1, 2],
        ];
        for sup in [2u64, 3, 4] {
            let a = apriori(&tx, &SequentialConfig::new(Support::Count(sup)));
            let b = brute_force(&tx, Support::Count(sup), 6);
            assert_eq!(a, b, "min support {sup}");
        }
    }

    #[test]
    fn empty_database() {
        let r = apriori(&[], &SequentialConfig::new(Support::Count(1)));
        assert_eq!(r.total(), 0);
        assert_eq!(r.max_len(), 0);
    }

    #[test]
    fn support_above_everything_yields_nothing() {
        let r = apriori(&toy(), &SequentialConfig::new(Support::Count(100)));
        assert_eq!(r.total(), 0);
    }

    #[test]
    fn max_passes_truncates() {
        let r = apriori(
            &toy(),
            &SequentialConfig {
                min_support: Support::Count(2),
                max_passes: 2,
            },
        );
        assert_eq!(r.max_len(), 2);
    }

    #[test]
    fn fraction_support() {
        // 50% of 4 transactions = 2.
        let a = apriori(&toy(), &SequentialConfig::new(Support::Fraction(0.5)));
        let b = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(a, b);
    }

    #[test]
    fn monotonicity_holds() {
        // Every subset of a frequent itemset is frequent with ≥ support.
        let r = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        for (set, sup) in r.iter() {
            for sub in set.one_item_removed() {
                if sub.is_empty() {
                    continue;
                }
                let sub_sup = r.support_of(&sub).expect("subset must be frequent");
                assert!(sub_sup >= *sup);
            }
        }
    }
}
