//! The candidate hash tree (Agrawal & Srikant), used by both YAFIM
//! (broadcast to the workers, paper §IV.A Phase II) and the MapReduce
//! baseline to find which candidate `k`-itemsets occur in a transaction
//! without testing every candidate.
//!
//! Interior nodes hash the transaction's items at the current depth; leaves
//! hold candidate itemsets to be verified with a subset test. Because the
//! descent branches on *every* remaining transaction item, the same leaf can
//! be reached along several paths — a per-call leaf stamp prevents double
//! counting.
//!
//! Traversal work is reported as a node-visit count, which the engines feed
//! into the virtual-time cost model.

use crate::types::{Item, Itemset};
use yafim_cluster::{fx_hash64, ByteSize};

/// Default fan-out of interior nodes.
pub const DEFAULT_BRANCHING: usize = 8;
/// Default maximum candidates per leaf before it splits.
pub const DEFAULT_MAX_LEAF: usize = 16;

enum Node {
    Interior { children: Vec<Option<u32>> },
    Leaf { entries: Vec<u32> },
}

/// A hash tree over candidate itemsets, all of the same length `k`.
///
/// ```
/// use yafim_core::{HashTree, Itemset, MatchScratch};
///
/// let tree = HashTree::build(vec![
///     Itemset::new(vec![1, 2]),
///     Itemset::new(vec![2, 3]),
///     Itemset::new(vec![4, 5]),
/// ]);
/// let mut scratch = MatchScratch::default();
/// let mut found = Vec::new();
/// tree.for_each_match(&[1, 2, 3], &mut scratch, |idx| {
///     found.push(tree.candidates()[idx].clone());
/// });
/// found.sort();
/// assert_eq!(found, vec![Itemset::new(vec![1, 2]), Itemset::new(vec![2, 3])]);
/// ```
pub struct HashTree {
    k: usize,
    branching: usize,
    max_leaf: usize,
    nodes: Vec<Node>,
    candidates: Vec<Itemset>,
}

/// Reusable per-caller scratch space for [`HashTree::for_each_match`]
/// (leaf-visit stamps). One per task; never shared across threads.
#[derive(Default)]
pub struct MatchScratch {
    stamp: Vec<u32>,
    version: u32,
}

impl HashTree {
    /// Build a tree over `candidates`, choosing the branching factor
    /// adaptively: interior nodes can only split down to depth `k`, so the
    /// fan-out must satisfy `branching^k ≈ candidates / max_leaf` or leaves
    /// at depth `k` degenerate into long linear scans (acute for the huge
    /// `C2` of sparse datasets like T10I4D100K).
    ///
    /// Every candidate must have the same length; panics otherwise.
    pub fn build(candidates: Vec<Itemset>) -> Self {
        let k = candidates.first().map_or(1, Itemset::len).max(1);
        let target_leaves = (candidates.len() as f64 / DEFAULT_MAX_LEAF as f64).max(1.0);
        let branching = target_leaves
            .powf(1.0 / k as f64)
            .ceil()
            .clamp(DEFAULT_BRANCHING as f64, 512.0) as usize;
        Self::with_params(candidates, branching, DEFAULT_MAX_LEAF)
    }

    /// Build with explicit branching factor and leaf capacity.
    pub fn with_params(candidates: Vec<Itemset>, branching: usize, max_leaf: usize) -> Self {
        assert!(branching >= 2, "branching must be at least 2");
        assert!(max_leaf >= 1, "leaves must hold at least one candidate");
        let k = candidates.first().map_or(0, Itemset::len);
        assert!(
            candidates.iter().all(|c| c.len() == k),
            "all candidates must have equal length"
        );
        let mut tree = HashTree {
            k,
            branching,
            max_leaf,
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
            }],
            candidates,
        };
        for idx in 0..tree.candidates.len() {
            tree.insert(idx as u32, 0, 0);
        }
        tree
    }

    /// Candidate length `k` (0 for an empty tree).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The candidates, in insertion order — match callbacks receive indices
    /// into this slice.
    pub fn candidates(&self) -> &[Itemset] {
        &self.candidates
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the tree holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Number of tree nodes (observability / tests).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn hash_slot(&self, item: Item) -> usize {
        (fx_hash64(&item) % self.branching as u64) as usize
    }

    fn insert(&mut self, cand: u32, node: u32, depth: usize) {
        let is_leaf = matches!(self.nodes[node as usize], Node::Leaf { .. });
        if is_leaf {
            let full = match &mut self.nodes[node as usize] {
                Node::Leaf { entries } => {
                    entries.push(cand);
                    entries.len() > self.max_leaf
                }
                Node::Interior { .. } => unreachable!("checked leaf above"),
            };
            if full && depth < self.k {
                self.split_leaf(node, depth);
            }
            return;
        }

        let item = self.candidates[cand as usize].items()[depth];
        let slot = self.hash_slot(item);
        let existing = match &self.nodes[node as usize] {
            Node::Interior { children } => children[slot],
            Node::Leaf { .. } => unreachable!("checked interior above"),
        };
        let child = match existing {
            Some(c) => c,
            None => {
                let id = self.nodes.len() as u32;
                self.nodes.push(Node::Leaf {
                    entries: Vec::new(),
                });
                match &mut self.nodes[node as usize] {
                    Node::Interior { children } => children[slot] = Some(id),
                    Node::Leaf { .. } => unreachable!("node was interior"),
                }
                id
            }
        };
        self.insert(cand, child, depth + 1);
    }

    fn split_leaf(&mut self, node: u32, depth: usize) {
        let entries = match std::mem::replace(
            &mut self.nodes[node as usize],
            Node::Interior {
                children: vec![None; self.branching],
            },
        ) {
            Node::Leaf { entries } => entries,
            Node::Interior { .. } => unreachable!("split target is a leaf"),
        };
        for cand in entries {
            self.insert(cand, node, depth);
        }
    }

    /// Invoke `f(candidate index)` once for every candidate contained in the
    /// sorted transaction `t`. Returns the number of tree-node visits plus
    /// subset checks performed (the CPU work estimate).
    pub fn for_each_match(
        &self,
        t: &[Item],
        scratch: &mut MatchScratch,
        mut f: impl FnMut(usize),
    ) -> u64 {
        if self.k == 0 || t.len() < self.k {
            return 0;
        }
        scratch.version = scratch.version.wrapping_add(1);
        if scratch.version == 0 {
            // Wrapped: clear stale stamps that would now falsely match.
            scratch.stamp.clear();
            scratch.version = 1;
        }
        scratch.stamp.resize(self.nodes.len(), 0);
        let mut visits = 0u64;
        self.descend(0, t, 0, 1, scratch, &mut visits, &mut f);
        visits
    }

    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        node: u32,
        t: &[Item],
        pos: usize,
        depth: usize, // 1-based: items consumed on the path so far
        scratch: &mut MatchScratch,
        visits: &mut u64,
        f: &mut impl FnMut(usize),
    ) {
        *visits += 1;
        match &self.nodes[node as usize] {
            Node::Leaf { entries } => {
                if scratch.stamp[node as usize] == scratch.version {
                    return; // already checked for this transaction
                }
                scratch.stamp[node as usize] = scratch.version;
                for &cand in entries {
                    *visits += 1;
                    if self.candidates[cand as usize].is_subset_of_sorted(t) {
                        f(cand as usize);
                    }
                }
            }
            Node::Interior { children } => {
                // Descend on every transaction item that could be the
                // `depth`-th item of a candidate, leaving enough items to
                // complete one.
                let remaining_needed = self.k - depth;
                let last = t.len() - remaining_needed;
                for i in pos..last {
                    if let Some(child) = children[self.hash_slot(t[i])] {
                        self.descend(child, t, i + 1, depth + 1, scratch, visits, f);
                    }
                }
            }
        }
    }

    /// Brute-force reference: indices of all candidates contained in `t`.
    /// Used by tests and the hash-tree ablation benchmark.
    pub fn matches_naive(&self, t: &[Item]) -> Vec<usize> {
        self.candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_subset_of_sorted(t))
            .map(|(i, _)| i)
            .collect()
    }
}

impl crate::candidates::CandidateStore for HashTree {
    fn k(&self) -> usize {
        self.k
    }

    fn len(&self) -> usize {
        self.candidates.len()
    }

    fn candidates(&self) -> &[Itemset] {
        &self.candidates
    }

    fn into_candidates(self: Box<Self>) -> Vec<Itemset> {
        self.candidates
    }

    fn for_each_match_dyn(
        &self,
        t: &[Item],
        scratch: &mut MatchScratch,
        f: &mut dyn FnMut(usize),
    ) -> u64 {
        self.for_each_match(t, scratch, f)
    }

    fn store_bytes(&self) -> u64 {
        self.byte_size()
    }

    fn name(&self) -> &'static str {
        "hash tree"
    }
}

impl ByteSize for HashTree {
    fn byte_size(&self) -> u64 {
        let cands: u64 = self.candidates.iter().map(ByteSize::byte_size).sum();
        cands + 16 * self.nodes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(raw: &[&[Item]]) -> Vec<Itemset> {
        raw.iter().map(|s| Itemset::new(s.to_vec())).collect()
    }

    fn sorted_matches(tree: &HashTree, t: &[Item]) -> Vec<usize> {
        let mut s = MatchScratch::default();
        let mut out = Vec::new();
        tree.for_each_match(t, &mut s, |i| out.push(i));
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_tree_matches_nothing() {
        let tree = HashTree::build(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(sorted_matches(&tree, &[1, 2, 3]), Vec::<usize>::new());
    }

    #[test]
    fn single_candidate() {
        let tree = HashTree::build(sets(&[&[1, 3]]));
        assert_eq!(sorted_matches(&tree, &[1, 2, 3]), vec![0]);
        assert_eq!(sorted_matches(&tree, &[1, 2]), Vec::<usize>::new());
        assert_eq!(sorted_matches(&tree, &[3]), Vec::<usize>::new());
    }

    #[test]
    fn matches_agree_with_naive_small() {
        let cands = sets(&[&[1, 2], &[1, 3], &[2, 3], &[2, 4], &[3, 4]]);
        let tree = HashTree::build(cands);
        for t in [
            vec![1, 2, 3],
            vec![2, 3, 4],
            vec![1, 4],
            vec![],
            vec![1, 2, 3, 4, 5],
        ] {
            let mut naive = tree.matches_naive(&t);
            naive.sort_unstable();
            assert_eq!(sorted_matches(&tree, &t), naive, "transaction {t:?}");
        }
    }

    #[test]
    fn no_double_counting_through_multiple_paths() {
        // Small branching forces shared leaves and repeated descents.
        let cands: Vec<Itemset> = (0u32..30)
            .map(|i| Itemset::new(vec![i % 6, 6 + (i % 5), 11 + (i % 4)]))
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        let tree = HashTree::with_params(cands, 2, 2);
        let t: Vec<Item> = (0..15).collect();
        let mut counts = vec![0u32; tree.len()];
        let mut s = MatchScratch::default();
        tree.for_each_match(&t, &mut s, |i| counts[i] += 1);
        for (i, &c) in counts.iter().enumerate() {
            assert!(c <= 1, "candidate {i} counted {c} times");
        }
        let mut found: Vec<usize> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 1)
            .map(|(i, _)| i)
            .collect();
        found.sort_unstable();
        let mut naive = tree.matches_naive(&t);
        naive.sort_unstable();
        assert_eq!(found, naive);
    }

    #[test]
    fn deep_split_tree_still_correct() {
        let cands: Vec<Itemset> = (0u32..200)
            .map(|i| Itemset::new(vec![i % 10, 10 + (i / 10) % 10, 20 + i % 7, 30 + i % 3]))
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        let n = cands.len();
        let tree = HashTree::with_params(cands, 3, 2);
        assert!(tree.num_nodes() > 1, "tree must have split");
        assert_eq!(tree.len(), n);
        for seed in 0u32..20 {
            let t: Vec<Item> = (0..40).filter(|x| (x * 7 + seed) % 3 != 0).collect();
            let mut naive = tree.matches_naive(&t);
            naive.sort_unstable();
            assert_eq!(sorted_matches(&tree, &t), naive, "seed {seed}");
        }
    }

    #[test]
    fn scratch_is_reusable_across_transactions() {
        let tree = HashTree::build(sets(&[&[1, 2], &[3, 4]]));
        let mut s = MatchScratch::default();
        let mut out = Vec::new();
        tree.for_each_match(&[1, 2], &mut s, |i| out.push(i));
        tree.for_each_match(&[3, 4], &mut s, |i| out.push(i));
        tree.for_each_match(&[1, 2, 3, 4], &mut s, |i| out.push(i));
        out.sort_unstable();
        assert_eq!(out, vec![0, 0, 1, 1]);
    }

    #[test]
    fn visits_are_positive_work_estimate() {
        let tree = HashTree::build(sets(&[&[1, 2], &[2, 3]]));
        let mut s = MatchScratch::default();
        let visits = tree.for_each_match(&[1, 2, 3], &mut s, |_| {});
        assert!(visits >= 2, "at least root + leaf checks, got {visits}");
        // Too-short transactions are rejected without any traversal.
        assert_eq!(tree.for_each_match(&[1], &mut s, |_| {}), 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mixed_length_candidates_rejected() {
        HashTree::build(sets(&[&[1], &[1, 2]]));
    }
}
