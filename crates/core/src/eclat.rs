//! Eclat (Zaki et al., the paper's ref \[3\]): vertical-layout frequent
//! itemset mining by tid-list intersection.
//!
//! Included as a single-node comparator (and as an independent oracle in the
//! cross-miner correctness tests): it computes the same answer as Apriori
//! through an entirely different algorithm, so agreement between the two is
//! strong evidence both are right.

use crate::types::{Item, Itemset, MiningResult, Support};
use yafim_cluster::FxHashMap;

/// Mine all frequent itemsets with Eclat.
pub fn eclat(transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
    let min_sup = min_support.resolve(transactions.len() as u64);

    // Vertical layout: item → sorted tid list.
    let mut tidlists: FxHashMap<Item, Vec<u32>> = FxHashMap::default();
    for (tid, t) in transactions.iter().enumerate() {
        for &item in t {
            // Transactions are deduplicated, so each (tid, item) is unique.
            tidlists.entry(item).or_default().push(tid as u32);
        }
    }

    let mut atoms: Vec<(Item, Vec<u32>)> = tidlists
        .into_iter()
        .filter(|(_, tids)| tids.len() as u64 >= min_sup)
        .collect();
    atoms.sort_by_key(|(item, _)| *item);

    let mut found: Vec<(Itemset, u64)> = Vec::new();
    extend(&Itemset::new(Vec::new()), &atoms, min_sup, &mut found);

    let max_len = found.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
    let mut levels: Vec<Vec<(Itemset, u64)>> = vec![Vec::new(); max_len];
    for (set, sup) in found {
        levels[set.len() - 1].push((set, sup));
    }
    MiningResult::from_levels(levels)
}

/// Depth-first search over the equivalence class `atoms` sharing `prefix`.
fn extend(
    prefix: &Itemset,
    atoms: &[(Item, Vec<u32>)],
    min_sup: u64,
    out: &mut Vec<(Itemset, u64)>,
) {
    for (i, (item, tids)) in atoms.iter().enumerate() {
        let set = {
            let mut items = prefix.items().to_vec();
            items.push(*item);
            Itemset::from_sorted(items)
        };
        out.push((set.clone(), tids.len() as u64));

        // Build the next equivalence class by intersecting tid lists.
        let mut next: Vec<(Item, Vec<u32>)> = Vec::new();
        for (other, other_tids) in &atoms[i + 1..] {
            let inter = intersect_sorted(tids, other_tids);
            if inter.len() as u64 >= min_sup {
                next.push((*other, inter));
            }
        }
        if !next.is_empty() {
            extend(&set, &next, min_sup, out);
        }
    }
}

/// Intersection of two sorted tid lists.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::{apriori, SequentialConfig};

    fn toy() -> Vec<Vec<Item>> {
        vec![vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]
    }

    #[test]
    fn intersect_works() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[3]), Vec::<u32>::new());
    }

    #[test]
    fn agrees_with_apriori_on_toy() {
        for sup in [1u64, 2, 3] {
            let e = eclat(&toy(), Support::Count(sup));
            let a = apriori(&toy(), &SequentialConfig::new(Support::Count(sup)));
            assert_eq!(e, a, "support {sup}");
        }
    }

    #[test]
    fn empty_database() {
        assert_eq!(eclat(&[], Support::Count(1)).total(), 0);
    }

    #[test]
    fn deep_itemsets_found() {
        // One transaction repeated: the whole set is frequent at sup 3.
        let tx = vec![vec![1, 2, 3, 4]; 3];
        let r = eclat(&tx, Support::Count(3));
        assert_eq!(r.max_len(), 4);
        assert_eq!(r.total(), 15, "all non-empty subsets of a 4-set");
        assert_eq!(r.support_of(&Itemset::new(vec![1, 2, 3, 4])), Some(3));
    }
}
