//! Vertical TID-bitmap counting — the columnar Phase-II store.
//!
//! The hash tree and the trie are *horizontal*: every pass walks every
//! cached transaction and descends a per-transaction index over `C_k`. The
//! [`ColumnarPartition`] turns the layout 90°: after the dense projection,
//! each partition is materialized **once** as one fixed-width `u64` bitset
//! row per frequent item rank, TIDs local to the partition. Counting a
//! candidate `{a, b, c}` is then three row intersections word-by-word with
//! an accumulated popcount — branch-free, no per-transaction descent, and
//! cost proportional to `|C_k| · words_per_item` instead of
//! `|D| · depth(C_k)`.
//!
//! Two properties make the strategy invisible to results:
//!
//! * transactions are sorted and deduplicated sets, so the popcount of an
//!   intersection of item rows *is* the support of the itemset in the
//!   partition — the same number the store path's subset matching emits;
//! * candidates are counted in `ap_gen`'s sorted order and reported by
//!   index into that order, so the shuffle keys coincide with the store
//!   path's keys exactly.
//!
//! The sorted order also pays for itself: candidates sharing a `(k-1)`-item
//! prefix are adjacent, so the [`BitmapScratch`] keeps the running prefix
//! intersections and `{a, b}`'s AND is computed once for all `{a, b, *}`
//! extensions.

use crate::types::{Item, Itemset};
use yafim_cluster::ByteSize;

/// Largest total bitset arena (in `u64` words, across all partitions) the
/// bitmap strategy will materialize — 2²⁴ words = 128 MiB, mirroring
/// [`TRIANGLE_MAX_CELLS`](crate::encode::TRIANGLE_MAX_CELLS). Beyond this
/// the engine falls back to the trie: counts are identical either way, only
/// the constant factor moves.
pub const BITMAP_MAX_WORDS: usize = 1 << 24;

/// Driver-side density guard: would the columnar projection of `num_lines`
/// transactions over `n_items` dense ranks, split across `partitions`
/// tasks, stay within [`BITMAP_MAX_WORDS`]?
///
/// Uses an upper bound the driver can compute from HDFS metadata alone
/// (`Σ_p n_items · ⌈tids_p / 64⌉ ≤ n_items · (⌈lines / 64⌉ + partitions)`),
/// so the decision is made once, deterministically, before any job runs.
pub fn bitmap_fits(n_items: usize, num_lines: usize, partitions: usize) -> bool {
    let words_bound = (n_items as u64) * (num_lines.div_ceil(64) as u64 + partitions as u64);
    words_bound <= BITMAP_MAX_WORDS as u64
}

/// One partition of the vertical store: a row-major `Vec<u64>` arena with
/// one `words_per_item`-wide bitset row per dense item rank; bit `t` of row
/// `r` is set iff partition-local transaction `t` contains rank `r`.
#[derive(Clone, Debug)]
pub struct ColumnarPartition {
    n_items: usize,
    n_tids: usize,
    words_per_item: usize,
    /// `rows[r * words_per_item .. (r + 1) * words_per_item]` is row `r`.
    rows: Vec<u64>,
    /// Bits set during the build (one per item occurrence), kept for cost
    /// accounting.
    set_bits: u64,
}

impl ColumnarPartition {
    /// Project one partition of dense-rank transactions into bitset rows.
    /// Every rank in `txs` must be `< n_items`.
    pub fn build(n_items: usize, txs: &[Vec<Item>]) -> Self {
        let n_tids = txs.len();
        let words_per_item = n_tids.div_ceil(64);
        let mut rows = vec![0u64; n_items * words_per_item];
        let mut set_bits = 0u64;
        for (tid, t) in txs.iter().enumerate() {
            let (word, bit) = (tid / 64, 1u64 << (tid % 64));
            for &r in t {
                rows[r as usize * words_per_item + word] |= bit;
                set_bits += 1;
            }
        }
        ColumnarPartition {
            n_items,
            n_tids,
            words_per_item,
            rows,
            set_bits,
        }
    }

    /// Dense alphabet size (number of rows).
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Transactions in this partition.
    pub fn n_tids(&self) -> usize {
        self.n_tids
    }

    /// Words per bitset row.
    pub fn words_per_item(&self) -> usize {
        self.words_per_item
    }

    /// Total arena size in words.
    pub fn arena_words(&self) -> usize {
        self.rows.len()
    }

    /// The bitset row for `rank`.
    pub fn row(&self, rank: usize) -> &[u64] {
        &self.rows[rank * self.words_per_item..(rank + 1) * self.words_per_item]
    }

    /// Physical build work: one word zeroed per arena word plus one bit set
    /// per item occurrence (what the build task charges as CPU on top of
    /// the arena's memory traffic).
    pub fn build_cost_units(&self) -> u64 {
        self.rows.len() as u64 + self.set_bits
    }

    /// Count every candidate's support in this partition.
    ///
    /// `candidates` must be sorted (the order `ap_gen` emits) and all of
    /// one length `k ≥ 2`; `f(index, count)` is invoked for each candidate
    /// with a non-zero partition-local count. Returns the number of `u64`
    /// words intersected — the work estimate virtual time is charged from.
    ///
    /// Adjacent candidates share prefix intersections through `scratch`:
    /// level `d` of the scratch holds `row(c[0]) ∧ … ∧ row(c[d+1])` and is
    /// recomputed only from the first position where the candidate departs
    /// from its predecessor.
    pub fn count_candidates(
        &self,
        candidates: &[Itemset],
        scratch: &mut BitmapScratch,
        f: &mut dyn FnMut(usize, u64),
    ) -> u64 {
        let w = self.words_per_item;
        let mut words = 0u64;
        scratch.prev.clear();
        for (ci, cand) in candidates.iter().enumerate() {
            let items = cand.items();
            let k = items.len();
            debug_assert!(k >= 2, "bitmap counting starts at pass 2");
            // Stored prefix levels this candidate needs: level d covers
            // items[0..=d+1], so a k-candidate uses levels 0..k-2 and
            // streams the final intersection without storing it.
            let needed = k - 2;
            if scratch.levels.len() < needed {
                scratch.levels.resize_with(needed, Vec::new);
            }
            // Levels valid from the previous candidate: level d survives
            // iff the first d+2 items are unchanged.
            let common = scratch
                .prev
                .iter()
                .zip(items.iter())
                .take_while(|(a, b)| a == b)
                .count();
            let first_stale = common.saturating_sub(1).min(needed);
            for d in first_stale..needed {
                let (done, rest) = scratch.levels.split_at_mut(d);
                let left: &[u64] = if d == 0 {
                    self.row(items[0] as usize)
                } else {
                    &done[d - 1]
                };
                let right = self.row(items[d + 1] as usize);
                let dst = &mut rest[0];
                dst.clear();
                dst.extend(left.iter().zip(right).map(|(a, b)| a & b));
                words += w as u64;
            }
            let prefix: &[u64] = if needed == 0 {
                self.row(items[0] as usize)
            } else {
                &scratch.levels[needed - 1]
            };
            let last = self.row(items[k - 1] as usize);
            let count: u64 = prefix
                .iter()
                .zip(last)
                .map(|(a, b)| (a & b).count_ones() as u64)
                .sum();
            words += w as u64;
            if count > 0 {
                f(ci, count);
            }
            scratch.prev.clear();
            scratch.prev.extend_from_slice(items);
        }
        words
    }
}

impl ByteSize for ColumnarPartition {
    fn byte_size(&self) -> u64 {
        32 + 8 * self.rows.len() as u64
    }
}

/// Reusable intersection buffers for [`ColumnarPartition::count_candidates`]
/// — one row-width buffer per prefix depth, plus the previous candidate for
/// prefix-run detection. One scratch per task; it grows to the pass's `k`
/// and is reused across every candidate.
#[derive(Default)]
pub struct BitmapScratch {
    levels: Vec<Vec<u64>>,
    prev: Vec<Item>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_naive(txs: &[Vec<Item>], cand: &Itemset) -> u64 {
        txs.iter()
            .filter(|t| cand.items().iter().all(|i| t.binary_search(i).is_ok()))
            .count() as u64
    }

    fn txs() -> Vec<Vec<Item>> {
        // 70 transactions so rows span two words; ranks 0..6.
        (0..70u32)
            .map(|i| {
                let mut t: Vec<Item> = (0..6).filter(|&r| (i + r) % (r + 2) == 0).collect();
                t.push((i % 6) as Item);
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect()
    }

    #[test]
    fn build_sets_the_right_bits() {
        let txs = vec![vec![0, 2], vec![1], vec![0, 1, 2]];
        let col = ColumnarPartition::build(3, &txs);
        assert_eq!(col.n_tids(), 3);
        assert_eq!(col.words_per_item(), 1);
        assert_eq!(col.row(0), &[0b101]);
        assert_eq!(col.row(1), &[0b110]);
        assert_eq!(col.row(2), &[0b101]);
        assert_eq!(col.build_cost_units(), 3 + 6);
        assert_eq!(col.byte_size(), 32 + 24);
    }

    #[test]
    fn counts_match_naive_subset_counting() {
        let txs = txs();
        let col = ColumnarPartition::build(6, &txs);
        assert_eq!(col.words_per_item(), 2);
        for k in [2usize, 3, 4] {
            // Every sorted k-combination of the 6 ranks, in lexicographic
            // (= ap_gen) order.
            let mut cands: Vec<Itemset> = Vec::new();
            fn combos(n: u32, k: usize, start: u32, cur: &mut Vec<u32>, out: &mut Vec<Itemset>) {
                if cur.len() == k {
                    out.push(Itemset::from_sorted(cur.clone()));
                    return;
                }
                for i in start..n {
                    cur.push(i);
                    combos(n, k, i + 1, cur, out);
                    cur.pop();
                }
            }
            combos(6, k, 0, &mut Vec::new(), &mut cands);

            let mut scratch = BitmapScratch::default();
            let mut got = vec![0u64; cands.len()];
            let words = col.count_candidates(&cands, &mut scratch, &mut |i, c| got[i] = c);
            assert!(words > 0);
            for (cand, &c) in cands.iter().zip(&got) {
                assert_eq!(c, count_naive(&txs, cand), "k={k} candidate {cand}");
            }
        }
    }

    #[test]
    fn prefix_reuse_charges_fewer_words_than_rescan() {
        // All C(8,4) candidates share long prefixes; with reuse the charge
        // must be well below the no-reuse bound of k·w per candidate.
        let txs: Vec<Vec<Item>> = (0..64u32).map(|_| (0..8).collect()).collect();
        let col = ColumnarPartition::build(8, &txs);
        let mut cands = Vec::new();
        fn combos(n: u32, k: usize, start: u32, cur: &mut Vec<u32>, out: &mut Vec<Itemset>) {
            if cur.len() == k {
                out.push(Itemset::from_sorted(cur.clone()));
                return;
            }
            for i in start..n {
                cur.push(i);
                combos(n, k, i + 1, cur, out);
                cur.pop();
            }
        }
        combos(8, 4, 0, &mut Vec::new(), &mut cands);
        let mut scratch = BitmapScratch::default();
        let mut hits = 0usize;
        let words = col.count_candidates(&cands, &mut scratch, &mut |_, c| {
            assert_eq!(c, 64);
            hits += 1;
        });
        assert_eq!(hits, cands.len());
        let w = col.words_per_item() as u64;
        let no_reuse = cands.len() as u64 * 3 * w; // k-1 intersections each
        assert!(
            words < no_reuse,
            "prefix reuse must beat rescan: {words} vs {no_reuse}"
        );
    }

    #[test]
    fn empty_partition_counts_nothing() {
        let col = ColumnarPartition::build(4, &[]);
        assert_eq!(col.words_per_item(), 0);
        assert_eq!(col.arena_words(), 0);
        let cands = vec![Itemset::from_sorted(vec![0, 1])];
        let mut scratch = BitmapScratch::default();
        let mut called = false;
        let words = col.count_candidates(&cands, &mut scratch, &mut |_, _| called = true);
        assert_eq!(words, 0);
        assert!(!called, "zero counts are never emitted");
    }

    #[test]
    fn scratch_is_reusable_across_passes() {
        let txs = txs();
        let col = ColumnarPartition::build(6, &txs);
        let mut scratch = BitmapScratch::default();
        let c4 = vec![Itemset::from_sorted(vec![0, 1, 2, 3])];
        let c2 = vec![Itemset::from_sorted(vec![0, 2])];
        let mut a = 0u64;
        col.count_candidates(&c4, &mut scratch, &mut |_, c| a = c);
        let mut b = 0u64;
        col.count_candidates(&c2, &mut scratch, &mut |_, c| b = c);
        assert_eq!(a, count_naive(&txs, &c4[0]));
        assert_eq!(b, count_naive(&txs, &c2[0]));
    }

    #[test]
    fn density_guard_mirrors_triangle_guard() {
        assert!(bitmap_fits(300, 6000, 32));
        assert!(bitmap_fits(0, 0, 0));
        // 2M items × 2M lines would need ~2^31+ words.
        assert!(!bitmap_fits(1 << 21, 1 << 21, 16));
    }
}
