//! Online mining-invariant auditor — the last-line tripwire behind the
//! data-integrity layer.
//!
//! The runtime's checksums catch corrupted *bytes*; this auditor catches
//! corrupted *mining state* that somehow slipped past them. After each
//! Phase-II pass it checks, in `O(|L_k| · k² · log|L_{k-1}|)` driver time,
//! the Apriori invariants that any correct frequent-itemset level must
//! satisfy:
//!
//! * **cardinality** — `|L_k| ≤ |C_k|`: a level cannot hold more frequent
//!   itemsets than candidates were counted;
//! * **downward closure** — every `(k-1)`-subset of every `L_k` member is
//!   itself frequent (a member of `L_{k-1}`);
//! * **support anti-monotonicity** — an itemset's support never exceeds
//!   the support of any of its `(k-1)`-subsets.
//!
//! A violation means the engine was about to return wrong results, so the
//! caller escalates (the YAFIM driver panics with the audit message rather
//! than returning a poisoned [`crate::types::MiningResult`]).

use crate::types::{Itemset, Support};

/// Audit one Phase-II level against its predecessor.
///
/// `prev` is `L_{k-1}` and `lk` is `L_k`, both in the same item space and
/// **sorted by itemset** (the driver sorts every level before recording
/// it); `n_candidates` is `|C_k|` for the pass. Returns `Err` with a
/// human-readable description of the first violated invariant.
pub fn audit_level(
    prev: &[(Itemset, u64)],
    lk: &[(Itemset, u64)],
    n_candidates: usize,
) -> Result<(), String> {
    if lk.len() > n_candidates {
        return Err(format!(
            "|L_k| = {} exceeds |C_k| = {n_candidates}",
            lk.len()
        ));
    }
    for (set, support) in lk {
        let items = set.items();
        let k = items.len();
        if k < 2 {
            continue; // L1 members have no proper subsets to check
        }
        let mut subset = Vec::with_capacity(k - 1);
        for drop in 0..k {
            subset.clear();
            subset.extend(items.iter().enumerate().filter_map(|(i, &it)| {
                if i == drop {
                    None
                } else {
                    Some(it)
                }
            }));
            match prev.binary_search_by(|(s, _)| s.items().cmp(subset.as_slice())) {
                Ok(pos) => {
                    let parent_support = prev[pos].1;
                    if *support > parent_support {
                        return Err(format!(
                            "support {support} of {set:?} exceeds support \
                             {parent_support} of its subset {:?}",
                            prev[pos].0
                        ));
                    }
                }
                Err(_) => {
                    return Err(format!(
                        "downward closure violated: {set:?} is frequent but \
                         its subset {subset:?} is not in L_{}",
                        k - 1
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Audit a complete multi-level mining result (levels in item space, each
/// level sorted). Used by offline checks and tests; the online driver
/// audits level by level as they are produced. `min_sup` additionally
/// bounds every support from below.
pub fn audit_levels(levels: &[Vec<(Itemset, u64)>], min_sup: u64) -> Result<(), String> {
    for (idx, level) in levels.iter().enumerate() {
        if let Some((set, support)) = level.iter().find(|(_, c)| *c < min_sup) {
            return Err(format!(
                "level {}: {set:?} has support {support} below MinSup {min_sup}",
                idx + 1
            ));
        }
        if idx > 0 {
            audit_level(&levels[idx - 1], level, usize::MAX)
                .map_err(|e| format!("level {}: {e}", idx + 1))?;
        }
    }
    Ok(())
}

/// Resolve-and-audit convenience for callers holding a [`Support`].
pub fn audit_levels_with(
    levels: &[Vec<(Itemset, u64)>],
    support: Support,
    num_transactions: u64,
) -> Result<(), String> {
    audit_levels(levels, support.resolve(num_transactions))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u32]) -> Itemset {
        Itemset::from_sorted(items.to_vec())
    }

    fn l1() -> Vec<(Itemset, u64)> {
        vec![(set(&[1]), 3), (set(&[2]), 4), (set(&[3]), 2)]
    }

    #[test]
    fn clean_levels_pass() {
        let l2 = vec![(set(&[1, 2]), 3), (set(&[2, 3]), 2)];
        assert!(audit_level(&l1(), &l2, 3).is_ok());
        assert!(audit_levels(&[l1(), l2], 2).is_ok());
    }

    #[test]
    fn cardinality_violation_caught() {
        let l2 = vec![(set(&[1, 2]), 3), (set(&[2, 3]), 2)];
        let err = audit_level(&l1(), &l2, 1).unwrap_err();
        assert!(err.contains("exceeds |C_k|"), "{err}");
    }

    #[test]
    fn downward_closure_violation_caught() {
        // {1, 4} is "frequent" but {4} is not in L1.
        let l2 = vec![(set(&[1, 4]), 2)];
        let err = audit_level(&l1(), &l2, 10).unwrap_err();
        assert!(err.contains("downward closure"), "{err}");
    }

    #[test]
    fn support_monotonicity_violation_caught() {
        // {1, 2} cannot be more frequent than {1}.
        let l2 = vec![(set(&[1, 2]), 5)];
        let err = audit_level(&l1(), &l2, 10).unwrap_err();
        assert!(err.contains("exceeds support"), "{err}");
    }

    #[test]
    fn min_support_floor_enforced() {
        let err = audit_levels(&[l1()], 3).unwrap_err();
        assert!(err.contains("below MinSup"), "{err}");
    }

    #[test]
    fn fractional_support_resolves() {
        assert!(audit_levels_with(&[l1()], Support::Fraction(0.5), 4).is_ok());
        assert!(audit_levels_with(&[l1()], Support::Fraction(0.9), 4).is_err());
    }
}
