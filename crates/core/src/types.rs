//! Core vocabulary of frequent itemset mining: items, itemsets,
//! transactions, support thresholds and mining results.
//!
//! Following the paper's §II.A: items are drawn from a set
//! `I = {i1 … in}` (here: `u32` ids), a transaction is a subset of `I`, the
//! support of an itemset is the number of transactions containing it, and an
//! itemset is *frequent* when its support reaches `MinSup`.

use std::fmt;
use yafim_cluster::ByteSize;

/// An item identifier.
pub type Item = u32;

/// A set of items, stored sorted and deduplicated.
///
/// The sorted representation makes prefix-based candidate joining
/// (`ap_gen`), subset tests and hash-tree descent all linear scans.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Itemset {
    items: Vec<Item>,
}

impl Itemset {
    /// Build from any item collection (sorts and deduplicates).
    pub fn new(mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        items.dedup();
        Itemset { items }
    }

    /// Build from items already sorted and deduplicated.
    ///
    /// Debug-asserts the invariant; use [`Itemset::new`] when unsure.
    pub fn from_sorted(items: Vec<Item>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly increasing"
        );
        Itemset { items }
    }

    /// A singleton itemset.
    pub fn single(item: Item) -> Self {
        Itemset { items: vec![item] }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the itemset is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items, sorted ascending.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Whether `item` is a member (binary search).
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Whether every item of `self` occurs in the sorted slice `other`
    /// (merge-style subset test, O(|self| + |other|)).
    pub fn is_subset_of_sorted(&self, other: &[Item]) -> bool {
        let mut it = other.iter();
        'outer: for &needed in &self.items {
            for &have in it.by_ref() {
                match have.cmp(&needed) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// All subsets obtained by removing exactly one item (the `k-1`-subsets
    /// used by the Apriori prune step).
    pub fn one_item_removed(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.items.len()).map(move |skip| {
            let mut v = Vec::with_capacity(self.items.len() - 1);
            for (i, &item) in self.items.iter().enumerate() {
                if i != skip {
                    v.push(item);
                }
            }
            Itemset { items: v }
        })
    }

    /// Extend by one item strictly larger than the current maximum.
    /// Panics (debug) otherwise — used by the prefix join, which guarantees
    /// the order.
    pub fn extended_with(&self, item: Item) -> Itemset {
        debug_assert!(self.items.last().is_none_or(|&last| item > last));
        let mut v = self.items.clone();
        v.push(item);
        Itemset { items: v }
    }

    /// Consume into the underlying item vector.
    pub fn into_items(self) -> Vec<Item> {
        self.items
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl ByteSize for Itemset {
    fn byte_size(&self) -> u64 {
        8 + 4 * self.items.len() as u64
    }
}

impl FromIterator<Item> for Itemset {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Self {
        Itemset::new(iter.into_iter().collect())
    }
}

/// Parse one whitespace-separated transaction line (the `.dat` format used
/// by the FIMI / UCI repositories) into a sorted, deduplicated item vector.
/// Unparseable tokens are skipped.
pub fn parse_transaction(line: &str) -> Vec<Item> {
    let mut items: Vec<Item> = line
        .split_whitespace()
        .filter_map(|t| t.parse().ok())
        .collect();
    items.sort_unstable();
    items.dedup();
    items
}

/// A minimum-support threshold, absolute or relative.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Support {
    /// Absolute transaction count.
    Count(u64),
    /// Fraction of the transaction count, in `(0, 1]` — the paper quotes
    /// thresholds this way ("Sup = 35%").
    Fraction(f64),
}

impl Support {
    /// Resolve to an absolute count for a database of `n` transactions
    /// (fractions round up; at least 1).
    pub fn resolve(&self, n: u64) -> u64 {
        match *self {
            Support::Count(c) => c.max(1),
            Support::Fraction(f) => {
                assert!(f > 0.0 && f <= 1.0, "support fraction out of range: {f}");
                ((n as f64 * f).ceil() as u64).max(1)
            }
        }
    }

    /// Convenience constructor from a percentage (e.g. `35.0` → 35 %).
    pub fn percent(p: f64) -> Self {
        Support::Fraction(p / 100.0)
    }
}

/// All frequent itemsets, grouped by size: `levels[k-1]` holds the frequent
/// `k`-itemsets with their supports, sorted by itemset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MiningResult {
    /// `levels[k-1]` = frequent `k`-itemsets, each with its support count.
    pub levels: Vec<Vec<(Itemset, u64)>>,
}

impl MiningResult {
    /// Build from per-level pair lists, dropping empty trailing levels and
    /// sorting each level (so results from different miners compare with
    /// `==`).
    pub fn from_levels(mut levels: Vec<Vec<(Itemset, u64)>>) -> Self {
        while levels.last().is_some_and(|l| l.is_empty()) {
            levels.pop();
        }
        for level in &mut levels {
            level.sort_by(|a, b| a.0.cmp(&b.0));
        }
        MiningResult { levels }
    }

    /// Length of the longest frequent itemset (0 if none).
    pub fn max_len(&self) -> usize {
        self.levels.len()
    }

    /// Total number of frequent itemsets across all sizes.
    pub fn total(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// The frequent `k`-itemsets (empty slice if none).
    pub fn level(&self, k: usize) -> &[(Itemset, u64)] {
        assert!(k >= 1, "levels are 1-indexed by itemset size");
        self.levels.get(k - 1).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Support of a specific itemset, if frequent.
    pub fn support_of(&self, itemset: &Itemset) -> Option<u64> {
        let level = self.levels.get(itemset.len().checked_sub(1)?)?;
        level
            .binary_search_by(|(i, _)| i.cmp(itemset))
            .ok()
            .map(|idx| level[idx].1)
    }

    /// Iterate over every frequent itemset with its support.
    pub fn iter(&self) -> impl Iterator<Item = &(Itemset, u64)> {
        self.levels.iter().flatten()
    }

    /// Per-level sizes, e.g. `[119, 354, …]` — the series a miner logs.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }
}

/// Abstract CPU units charged per hash-tree node visit / leaf subset check.
///
/// The cost model's base unit (`CostModel::cpu_unit`, 100 ns) describes one
/// simple record touch in 2014-era JVM code; a hash-tree visit there is a
/// method call plus hash computation plus boxed comparisons — several times
/// that. Applied identically to YAFIM and the MapReduce baseline, since both
/// ran on the JVM.
pub const JVM_TREE_VISIT_UNITS: u64 = 8;

/// Virtual CPU units per pair touch in the specialized triangular pass-2
/// counter: one add plus one array increment over a flat primitive array —
/// far cheaper than a tree visit, but still above the raw cost-model unit
/// (bounds check + memory traffic on the JVM).
pub const JVM_PAIR_COUNT_UNITS: u64 = 2;

/// Virtual CPU units per `u64` word touched by the vertical bitmap counter:
/// a load, an AND and a popcount over primitive longs — the cheapest loop a
/// JVM can emit, so it gets the raw cost-model unit. Each word covers up to
/// 64 transactions, which is where the strategy's advantage comes from.
pub const JVM_BITMAP_WORD_UNITS: u64 = 1;

/// Timing and size facts about one Apriori pass — one point of the paper's
/// Fig. 3 / Fig. 6 per-iteration series.
#[derive(Clone, Debug, PartialEq)]
pub struct PassTiming {
    /// Pass number (1 = the frequent-items pass).
    pub pass: usize,
    /// Virtual seconds the pass took.
    pub seconds: f64,
    /// Candidates counted in the pass (pass 1: distinct items seen).
    pub candidates: usize,
    /// Frequent itemsets surviving the pass.
    pub frequent: usize,
}

/// A full mining run: the itemsets plus the per-pass timing series.
#[derive(Clone, Debug, Default)]
pub struct MinerRun {
    /// All frequent itemsets.
    pub result: MiningResult,
    /// One entry per executed pass, in order.
    pub passes: Vec<PassTiming>,
    /// Total virtual seconds (sum of passes plus any setup).
    pub total_seconds: f64,
}

impl MinerRun {
    /// Per-pass virtual seconds, in pass order.
    pub fn pass_seconds(&self) -> Vec<f64> {
        self.passes.iter().map(|p| p.seconds).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itemset_sorts_and_dedups() {
        let s = Itemset::new(vec![3, 1, 2, 3, 1]);
        assert_eq!(s.items(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(2));
        assert!(!s.contains(9));
    }

    #[test]
    fn subset_of_sorted() {
        let s = Itemset::new(vec![2, 5]);
        assert!(s.is_subset_of_sorted(&[1, 2, 3, 5, 8]));
        assert!(!s.is_subset_of_sorted(&[1, 2, 3, 8]));
        assert!(!s.is_subset_of_sorted(&[5]));
        assert!(Itemset::new(vec![]).is_subset_of_sorted(&[]));
        assert!(!Itemset::new(vec![1]).is_subset_of_sorted(&[]));
    }

    #[test]
    fn one_item_removed_enumerates_k_minus_1_subsets() {
        let s = Itemset::new(vec![1, 2, 3]);
        let subs: Vec<Itemset> = s.one_item_removed().collect();
        assert_eq!(
            subs,
            vec![
                Itemset::new(vec![2, 3]),
                Itemset::new(vec![1, 3]),
                Itemset::new(vec![1, 2]),
            ]
        );
    }

    #[test]
    fn extended_with_appends() {
        let s = Itemset::new(vec![1, 2]);
        assert_eq!(s.extended_with(7).items(), &[1, 2, 7]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Itemset::new(vec![3, 1]).to_string(), "{1 3}");
        assert_eq!(Itemset::new(vec![]).to_string(), "{}");
    }

    #[test]
    fn parse_transaction_handles_noise() {
        assert_eq!(parse_transaction("5 3 3 1"), vec![1, 3, 5]);
        assert_eq!(parse_transaction("  7  "), vec![7]);
        assert_eq!(parse_transaction(""), Vec::<Item>::new());
        assert_eq!(parse_transaction("2 x 4"), vec![2, 4]);
    }

    #[test]
    fn support_resolution() {
        assert_eq!(Support::Count(5).resolve(100), 5);
        assert_eq!(Support::Count(0).resolve(100), 1);
        assert_eq!(Support::Fraction(0.35).resolve(100), 35);
        assert_eq!(Support::Fraction(0.251).resolve(100), 26, "rounds up");
        assert_eq!(Support::percent(35.0).resolve(8124), 2844);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_fraction_panics() {
        Support::Fraction(1.5).resolve(10);
    }

    #[test]
    fn mining_result_lookup() {
        let r = MiningResult::from_levels(vec![
            vec![(Itemset::single(2), 8), (Itemset::single(1), 9)],
            vec![(Itemset::new(vec![1, 2]), 5)],
            vec![],
        ]);
        assert_eq!(r.max_len(), 2, "trailing empty level dropped");
        assert_eq!(r.total(), 3);
        assert_eq!(r.level(1)[0].0, Itemset::single(1), "levels sorted");
        assert_eq!(r.support_of(&Itemset::new(vec![1, 2])), Some(5));
        assert_eq!(r.support_of(&Itemset::new(vec![1, 3])), None);
        assert_eq!(r.support_of(&Itemset::new(vec![1, 2, 3])), None);
        assert_eq!(r.level_sizes(), vec![2, 1]);
    }

    #[test]
    fn byte_size_scales() {
        assert_eq!(Itemset::new(vec![1, 2, 3]).byte_size(), 8 + 12);
    }
}
