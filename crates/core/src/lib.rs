//! # yafim-core — frequent itemset mining, with YAFIM as the centerpiece
//!
//! This crate implements the paper's contribution and everything it is
//! evaluated against:
//!
//! * [`types`] — items, [`Itemset`], transactions, [`Support`] thresholds,
//!   [`MiningResult`].
//! * [`hashtree`] — the candidate hash tree used for `subset(C_k, t)`.
//! * [`candidates`] — `ap_gen` candidate generation (join + prune).
//! * [`sequential`] — single-node reference Apriori (Algorithm 1).
//! * [`yafim`] — **the paper's algorithm**: Apriori as two phases of RDD
//!   jobs with a cached transactions RDD and broadcast hash trees
//!   (Algorithms 2 and 3, Figs. 1 and 2).
//! * [`mrapriori`] — the MapReduce baseline (PApriori / SPC), one Hadoop job
//!   per pass, plus the FPC and DPC pass-combining variants from related
//!   work (Lin et al.).
//! * [`mod@eclat`] / [`fpgrowth`] — the classic single-node comparators cited by
//!   the paper (its refs 3 and 9).
//! * [`rules`] — association-rule generation on top of a mining result
//!   (used by the medical application example).
//!
//! All miners return a [`MiningResult`]; on the same input and support they
//! return *identical* results (the paper's correctness check), which the
//! test suite enforces across every generator family.

pub mod audit;
pub mod bitmap;
pub mod candidates;
pub mod eclat;
pub mod encode;
pub mod fpgrowth;
pub mod hashtree;
pub mod mrapriori;
pub mod pfp;
pub mod rules;
pub mod sequential;
pub mod son;
pub mod summarize;
pub mod trie;
pub mod types;
pub mod yafim;

pub use audit::{audit_level, audit_levels, audit_levels_with};
pub use bitmap::{bitmap_fits, BitmapScratch, ColumnarPartition, BITMAP_MAX_WORDS};
pub use candidates::{ap_gen, CandidateList, CandidateStore, GenWork};
pub use eclat::eclat;
pub use encode::{DenseEncoder, TrimMask};
pub use fpgrowth::fp_growth;
pub use hashtree::{HashTree, MatchScratch};
pub use mrapriori::{MrApriori, MrAprioriConfig, MrMatching, MrVariant};
pub use pfp::{Pfp, PfpConfig};
pub use rules::{generate_rules, Rule, RuleConfig};
pub use sequential::{apriori, brute_force, SequentialConfig};
pub use son::{Son, SonConfig};
pub use summarize::{closed_itemsets, maximal_itemsets};
pub use trie::CandidateTrie;
pub use types::{parse_transaction, Item, Itemset, MinerRun, MiningResult, PassTiming, Support};
pub use yafim::{mine_in_memory, Matcher, MineError, Phase2Config, Yafim, YafimConfig};
