//! YAFIM — the paper's algorithm (§IV), on the mini-Spark engine.
//!
//! **Phase I** (Algorithm 2, Fig. 1): load the transactional dataset from
//! HDFS into a *cached* RDD, then
//! `flatMap(items) → map(item → (item, 1)) → reduceByKey(+)`, filtering by
//! `MinSup`, to obtain the frequent items `L1`.
//!
//! **Phase II** (Algorithm 3, Fig. 2): iteratively, on the driver, generate
//! candidates `C_{k+1} = ap_gen(L_k)`, build a hash tree over them and
//! *broadcast* it (§IV.C); then over the cached transactions RDD count each
//! candidate's occurrences
//! (`flatMap(subset(C_k, t)) → map(c → (c, 1)) → reduceByKey(+)`) and keep
//! those reaching `MinSup`.
//!
//! The transactions RDD is read from HDFS exactly once and reused from
//! cluster memory in every later pass — the key memory-utilization property
//! of §IV.B that the MapReduce baseline lacks.

use crate::candidates::ap_gen;
use crate::hashtree::{HashTree, MatchScratch};
use crate::types::{parse_transaction, Item, Itemset, MinerRun, MiningResult, PassTiming, Support};
use yafim_cluster::{DfsError, EventKind, SimDuration};
use yafim_rdd::{Context, Rdd};

/// Options for a YAFIM run.
#[derive(Clone, Debug)]
pub struct YafimConfig {
    /// Minimum support threshold.
    pub min_support: Support,
    /// Minimum partitions for the transactions RDD (0 = the context's
    /// default parallelism, 2 tasks per virtual core).
    pub min_partitions: usize,
    /// Stop after this many passes (0 = run to fixpoint).
    pub max_passes: usize,
}

impl YafimConfig {
    /// Defaults: run to fixpoint, default parallelism.
    pub fn new(min_support: Support) -> Self {
        YafimConfig {
            min_support,
            min_partitions: 0,
            max_passes: 0,
        }
    }
}

pub use crate::types::PassTiming as YafimPassTiming;

/// The YAFIM miner bound to one driver [`Context`].
pub struct Yafim {
    ctx: Context,
    config: YafimConfig,
}

impl Yafim {
    /// A miner over `ctx` with `config`.
    pub fn new(ctx: Context, config: YafimConfig) -> Self {
        Yafim { ctx, config }
    }

    /// Mine the text dataset at `input` (one whitespace-separated
    /// transaction per line) on simulated HDFS.
    pub fn mine(&self, input: &str) -> Result<MinerRun, DfsError> {
        let ctx = &self.ctx;
        let metrics = ctx.metrics().clone();
        let cost = ctx.cluster().cost().clone();
        let partitions = if self.config.min_partitions == 0 {
            ctx.config().default_parallelism
        } else {
            self.config.min_partitions
        };

        // The driver knows the dataset size from HDFS metadata; resolve a
        // fractional MinSup without an extra counting job.
        let file = ctx.cluster().hdfs().get(input)?;
        let min_sup = self.config.min_support.resolve(file.num_lines() as u64);

        let run_start = metrics.now();
        let mut passes: Vec<PassTiming> = Vec::new();

        // ---- Phase I: load + cache + frequent items ----
        let pass1_start = metrics.now();
        let transactions: Rdd<Vec<Item>> = ctx
            .text_file(input, partitions)?
            .map(|line| parse_transaction(&line))
            .cache();

        // This narrow chain runs as one fused pipeline per partition: each
        // transaction streams through flatMap and map straight into the
        // shuffle's map-side combiner without intermediate buffers.
        let l1_pairs: Vec<(Item, u64)> = transactions
            .flat_map(|t| t)
            .map(|item| (item, 1u64))
            .reduce_by_key(|a, b| a + b)
            .filter(move |&(_, c)| c >= min_sup)
            .collect();
        let mut l1: Vec<(Itemset, u64)> = l1_pairs
            .iter()
            .map(|&(i, c)| (Itemset::single(i), c))
            .collect();
        l1.sort_by(|a, b| a.0.cmp(&b.0));

        metrics.record_span(EventKind::Iteration, "pass 1", pass1_start);
        passes.push(PassTiming {
            pass: 1,
            seconds: metrics.now().since(pass1_start).as_secs(),
            candidates: l1.len(), // distinct frequent items; C1 is implicit
            frequent: l1.len(),
        });

        if l1.is_empty() {
            transactions.unpersist();
            return Ok(MinerRun {
                result: MiningResult::default(),
                total_seconds: metrics.now().since(run_start).as_secs(),
                passes,
            });
        }

        // ---- Phase II: iterate L_k → C_{k+1} → L_{k+1} ----
        let mut levels: Vec<Vec<(Itemset, u64)>> = vec![l1];
        let mut pass = 2usize;
        loop {
            if self.config.max_passes != 0 && pass > self.config.max_passes {
                break;
            }
            let pass_start = metrics.now();

            // Driver: candidate generation (join + prune), charged as
            // driver CPU.
            let prev: Vec<Itemset> = levels
                .last()
                .expect("levels never empty here")
                .iter()
                .map(|(s, _)| s.clone())
                .collect();
            let (candidates, gen_work) = ap_gen(&prev);
            metrics.advance_with_event(
                cost.cpu(gen_work.units() + candidates.len() as u64),
                EventKind::Driver,
                format!("ap_gen pass {pass}"),
            );
            if candidates.is_empty() {
                break;
            }
            let n_candidates = candidates.len();

            // Driver: build the hash tree and broadcast it to the workers.
            let tree = HashTree::build(candidates);
            metrics.advance_with_event(
                cost.cpu(2 * n_candidates as u64),
                EventKind::Driver,
                format!("build hash tree pass {pass}"),
            );
            let bc = ctx.broadcast(tree);
            let tree_for_tasks = bc.value();
            let tree_bytes = bc.bytes();

            // Workers: count candidate occurrences over the cached
            // transactions. Matches are pre-aggregated per partition (as
            // Spark's reduceByKey map-side combine would), then shuffled.
            let counted: Vec<(u32, u64)> = transactions
                .map_partitions(move |txs, tc| {
                    // Each task reads the broadcast tree (already paid for
                    // once, virtually, at broadcast time).
                    tc.note_broadcast_read(tree_bytes);
                    let mut counts = vec![0u64; n_candidates];
                    let mut scratch = MatchScratch::default();
                    let mut visits = 0u64;
                    for t in txs {
                        visits += tree_for_tasks.for_each_match(t, &mut scratch, |idx| {
                            counts[idx] += 1;
                        });
                    }
                    let matches: u64 = counts.iter().sum();
                    // Tree traversal plus one emission per match — the
                    // flatMap cost of Algorithm 3, lines 4-9.
                    tc.add_cpu(visits * crate::types::JVM_TREE_VISIT_UNITS + matches);
                    counts
                        .into_iter()
                        .enumerate()
                        .filter(|&(_, c)| c > 0)
                        .map(|(i, c)| (i as u32, c))
                        .collect()
                })
                .reduce_by_key(|a, b| a + b)
                .filter(move |&(_, c)| c >= min_sup)
                .collect();

            if counted.is_empty() {
                metrics.record_span(EventKind::Iteration, format!("pass {pass}"), pass_start);
                passes.push(PassTiming {
                    pass,
                    seconds: metrics.now().since(pass_start).as_secs(),
                    candidates: n_candidates,
                    frequent: 0,
                });
                break;
            }

            let mut lk: Vec<(Itemset, u64)> = counted
                .into_iter()
                .map(|(idx, c)| (bc.candidates()[idx as usize].clone(), c))
                .collect();
            lk.sort_by(|a, b| a.0.cmp(&b.0));

            metrics.record_span(EventKind::Iteration, format!("pass {pass}"), pass_start);
            passes.push(PassTiming {
                pass,
                seconds: metrics.now().since(pass_start).as_secs(),
                candidates: n_candidates,
                frequent: lk.len(),
            });
            levels.push(lk);
            pass += 1;
        }

        transactions.unpersist();
        Ok(MinerRun {
            result: MiningResult::from_levels(levels),
            total_seconds: metrics.now().since(run_start).as_secs(),
            passes,
        })
    }
}

/// Convenience: one-call YAFIM over an in-memory transaction list, writing
/// it to the cluster's HDFS first (used by tests and examples).
pub fn mine_in_memory(ctx: &Context, transactions: &[Vec<Item>], config: YafimConfig) -> MinerRun {
    let lines: Vec<String> = transactions
        .iter()
        .map(|t| t.iter().map(u32::to_string).collect::<Vec<_>>().join(" "))
        .collect();
    let path = format!("yafim-inmem-{}.dat", std::process::id());
    ctx.cluster().hdfs().put_overwrite(&path, lines);
    let hdfs_write_cost = ctx.cluster().cost().hdfs_write(
        ctx.cluster()
            .hdfs()
            .get(&path)
            .expect("file just written")
            .bytes(),
    );
    ctx.metrics()
        .advance_with_event(hdfs_write_cost, EventKind::HdfsWrite, path.clone());
    let run = Yafim::new(ctx.clone(), config)
        .mine(&path)
        .expect("file exists");
    let _ = ctx.cluster().hdfs().delete(&path);
    // Dropping the input is instantaneous metadata work.
    ctx.metrics().advance(SimDuration::ZERO);
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::{apriori, SequentialConfig};
    use yafim_cluster::{ClusterSpec, CostModel, SimCluster};

    fn ctx() -> Context {
        Context::new(SimCluster::with_threads(
            ClusterSpec::new(4, 2, 1 << 30),
            CostModel::hadoop_era(),
            4,
        ))
    }

    fn toy() -> Vec<Vec<Item>> {
        vec![vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]
    }

    #[test]
    fn matches_sequential_on_toy() {
        let run = mine_in_memory(&ctx(), &toy(), YafimConfig::new(Support::Count(2)));
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(run.result, seq);
        assert_eq!(run.result.level_sizes(), vec![4, 4, 1]);
    }

    #[test]
    fn pass_timings_recorded() {
        let run = mine_in_memory(&ctx(), &toy(), YafimConfig::new(Support::Count(2)));
        // Passes 1..=3 produce itemsets; pass 4 generates no candidates
        // (single L3 itemset), so exactly 3 timed passes.
        assert_eq!(run.passes.len(), 3);
        assert!(run.passes.iter().all(|p| p.seconds > 0.0));
        assert_eq!(run.passes[0].pass, 1);
        assert!(run.total_seconds >= run.passes.iter().map(|p| p.seconds).sum::<f64>());
    }

    #[test]
    fn empty_result_when_support_too_high() {
        let run = mine_in_memory(&ctx(), &toy(), YafimConfig::new(Support::Count(50)));
        assert_eq!(run.result.total(), 0);
        assert_eq!(run.passes.len(), 1, "only the L1 pass runs");
    }

    #[test]
    fn max_passes_truncates() {
        let cfg = YafimConfig {
            min_support: Support::Count(2),
            min_partitions: 0,
            max_passes: 2,
        };
        let run = mine_in_memory(&ctx(), &toy(), cfg);
        assert_eq!(run.result.max_len(), 2);
    }

    #[test]
    fn fractional_support_resolves_against_dataset() {
        let run = mine_in_memory(&ctx(), &toy(), YafimConfig::new(Support::Fraction(0.5)));
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(run.result, seq);
    }

    #[test]
    fn missing_input_errors() {
        let c = ctx();
        let miner = Yafim::new(c, YafimConfig::new(Support::Count(1)));
        assert!(miner.mine("no-such-file.dat").is_err());
    }

    #[test]
    fn later_passes_cheaper_than_first() {
        // With caching, pass 2+ skips the HDFS load; on a non-trivial
        // dataset the first pass dominates.
        let tx: Vec<Vec<Item>> = (0..2000)
            .map(|i| {
                let mut t = vec![1, 2, 3];
                t.push(4 + (i % 7));
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let run = mine_in_memory(&ctx(), &tx, YafimConfig::new(Support::Fraction(0.9)));
        assert!(run.passes.len() >= 2);
        let last = run.passes.last().expect("has passes");
        assert!(
            last.seconds < run.passes[0].seconds * 2.0,
            "later passes must not blow up: {:?}",
            run.pass_seconds()
        );
    }
}
