//! YAFIM — the paper's algorithm (§IV), on the mini-Spark engine.
//!
//! **Phase I** (Algorithm 2, Fig. 1): load the transactional dataset from
//! HDFS into a *cached* RDD, then
//! `flatMap(items) → map(item → (item, 1)) → reduceByKey(+)`, filtering by
//! `MinSup`, to obtain the frequent items `L1`.
//!
//! **Phase II** (Algorithm 3, Fig. 2): iteratively, on the driver, generate
//! candidates `C_{k+1} = ap_gen(L_k)`, build a candidate store over them and
//! *broadcast* it (§IV.C); then over the cached transactions RDD count each
//! candidate's occurrences
//! (`flatMap(subset(C_k, t)) → map(c → (c, 1)) → reduceByKey(+)`) and keep
//! those reaching `MinSup`.
//!
//! The transactions RDD is read from HDFS exactly once and reused from
//! cluster memory in every later pass — the key memory-utilization property
//! of §IV.B that the MapReduce baseline lacks.
//!
//! # The Phase-II hot path ([`Phase2Config`])
//!
//! All iterative cost lives in subset-matching every cached transaction
//! against `C_k`. On top of the paper-faithful engine (hash tree, raw
//! alphabet, untrimmed RDD) this module implements three independently
//! switchable optimizations, all invisible to results:
//!
//! * **dense projection** — after pass 1, re-encode the cached transactions
//!   once ([`DenseEncoder`]): drop infrequent items, remap survivors to
//!   dense ranks `0..|L1|`, drop now-short transactions, and re-cache. The
//!   projection is a narrow `map → filter` that fuses into pass 2's
//!   pipeline, and the re-cache keeps §IV.B's memory property.
//! * **specialized pass 2** — `|C_2| = |L1|·(|L1|−1)/2` makes pass 2 the
//!   dominant iteration; over dense ranks it needs no candidate store at
//!   all, just a flat triangular count array indexed by item pair.
//! * **trie matching + cross-pass trimming** — for `k ≥ 3`, an
//!   arena-allocated prefix trie ([`CandidateTrie`]) replaces the hash
//!   tree, and after each `L_k` a DHP-style trim drops items that occur in
//!   no frequent `k`-itemset plus transactions too short to hold a
//!   `(k+1)`-candidate, re-caching the shrunken RDD (and unpersisting the
//!   one it replaces) so later passes stream monotonically less data.
//! * **vertical bitmap counting** ([`Matcher::Bitmap`]) — project each
//!   partition once into a [`ColumnarPartition`] (one `u64` bitset row per
//!   dense rank) and count every `k ≥ 3` candidate by word-wise AND +
//!   popcount over its item rows, with no per-transaction store descent at
//!   all. Guarded by [`BITMAP_MAX_WORDS`](crate::bitmap::BITMAP_MAX_WORDS);
//!   too-large alphabets fall back to the trie.

use crate::bitmap::{bitmap_fits, BitmapScratch, ColumnarPartition};
use crate::candidates::{ap_gen, CandidateList, CandidateStore};
use crate::encode::{tri_index, tri_len, tri_pair, DenseEncoder, TrimMask, TRIANGLE_MAX_CELLS};
use crate::hashtree::{HashTree, MatchScratch};
use crate::trie::CandidateTrie;
use crate::types::{
    parse_transaction, Item, Itemset, MinerRun, MiningResult, PassTiming, Support,
    JVM_BITMAP_WORD_UNITS, JVM_PAIR_COUNT_UNITS, JVM_TREE_VISIT_UNITS,
};
use std::sync::Arc;
use yafim_cluster::{
    memgov, ByteSize, DfsError, EventKind, RecoveryCounters, SimDuration, SPILL_GRANULE,
};
use yafim_rdd::{Context, ExecError, Rdd};

/// Why a mining run could not complete. [`Yafim::mine`] panics on the
/// `Exec` side (faults are exceptional for the classic entry point);
/// [`Yafim::try_mine`] surfaces both as typed errors so chaos harnesses
/// and callers with fault plans can match on them.
#[derive(Debug)]
pub enum MineError {
    /// The input path is missing from simulated HDFS.
    Dfs(DfsError),
    /// The engine failed under the active fault plan: a stage aborted, a
    /// corruption proved unrepairable, a task exhausted its OOM retry
    /// ladder, or admission control refused the job's memory footprint.
    Exec(ExecError),
}

impl std::fmt::Display for MineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MineError::Dfs(e) => write!(f, "{e}"),
            MineError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MineError::Dfs(e) => Some(e),
            MineError::Exec(e) => Some(e),
        }
    }
}

impl From<DfsError> for MineError {
    fn from(e: DfsError) -> Self {
        MineError::Dfs(e)
    }
}

impl From<ExecError> for MineError {
    fn from(e: ExecError) -> Self {
        MineError::Exec(e)
    }
}

/// Driver-side footprint estimates for the memory-degradation ladder.
/// Deliberately coarse: they only need to rank the counting structures
/// (bitmap arena ≥ trie ≥ hash tree) and catch order-of-magnitude
/// overflows *before* a pass runs — the task-side governor still enforces
/// the real reservations.
fn triangle_footprint(n_dense: usize) -> u64 {
    8 * tri_len(n_dense) as u64
}

/// Per-task columnar arena estimate: one `u64` bitset row per dense rank
/// over the partition's share of the transactions.
fn bitmap_footprint(n_dense: usize, lines: usize, partitions: usize) -> u64 {
    let row_words = (lines / partitions.max(1)) as u64 / 64 + 1;
    8 * n_dense as u64 * row_words
}

/// Trie arena (≤ one node per candidate item, ~16 bytes each) plus the
/// per-task count array.
fn trie_footprint(n_candidates: usize, k: usize) -> u64 {
    (n_candidates * k) as u64 * 16 + 8 * n_candidates as u64
}

/// Which counting strategy Phase II uses for passes `k ≥ 3`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Matcher {
    /// The paper's candidate hash tree (Agrawal & Srikant) — the
    /// paper-faithful reference.
    HashTree,
    /// Contiguous-arena prefix trie: merge-based descent, unique paths.
    Trie,
    /// Vertical TID bitmaps: project each partition once into a
    /// [`ColumnarPartition`] and count candidates by word-wise AND +
    /// popcount of item rows — no broadcast store, no per-transaction
    /// descent. Requires [`Phase2Config::project`] and an alphabet within
    /// [`BITMAP_MAX_WORDS`](crate::bitmap::BITMAP_MAX_WORDS); otherwise the
    /// engine counts with the trie and bumps the `bitmap.fallbacks` counter.
    Bitmap,
}

/// Phase-II hot-path switches. Every combination returns byte-identical
/// mining results; only the cost of getting there moves.
#[derive(Clone, Debug)]
pub struct Phase2Config {
    /// Re-encode the cached transactions to dense ranks after pass 1.
    pub project: bool,
    /// Count pass 2 with a triangular pair array instead of a candidate
    /// store. Requires `project` (dense ranks bound the triangle); falls
    /// back to the store when `|L1|` would need more than
    /// [`TRIANGLE_MAX_CELLS`] cells.
    pub triangle_pass2: bool,
    /// Candidate store for passes `k ≥ 3`.
    pub matcher: Matcher,
    /// DHP-style cross-pass trimming of the cached RDD. Requires `project`.
    pub trim: bool,
    /// Checkpoint the work RDD to replicated HDFS blocks every this many
    /// completed Phase-II passes, truncating its lineage (0 = never). When
    /// 0, an active [`yafim_cluster::FaultPlan`] with a nonzero
    /// `checkpoint_interval` supplies the cadence instead. Invisible to
    /// results; after a node loss, recovery replays at most this many
    /// passes of projection/trim work instead of the chain back to HDFS.
    pub checkpoint_interval: usize,
}

impl Phase2Config {
    /// The paper's Phase II exactly: hash tree, raw alphabet, untrimmed RDD.
    pub fn paper() -> Self {
        Phase2Config {
            project: false,
            triangle_pass2: false,
            matcher: Matcher::HashTree,
            trim: false,
            checkpoint_interval: 0,
        }
    }

    /// Everything on: dense projection, triangular pass 2, trie matching,
    /// cross-pass trimming.
    pub fn optimized() -> Self {
        Phase2Config {
            project: true,
            triangle_pass2: true,
            matcher: Matcher::Trie,
            trim: true,
            checkpoint_interval: 0,
        }
    }

    /// Like [`Phase2Config::optimized`], but `k ≥ 3` passes count through
    /// the vertical TID bitmaps instead of the trie. One DHP trim may still
    /// run after pass 2 (it shrinks the columnar build); once the columnar
    /// store exists further trims are skipped — the bitmap counter never
    /// rescans transactions, so there is nothing left for them to save.
    pub fn bitmap() -> Self {
        Phase2Config {
            matcher: Matcher::Bitmap,
            ..Phase2Config::optimized()
        }
    }
}

/// Options for a YAFIM run.
#[derive(Clone, Debug)]
pub struct YafimConfig {
    /// Minimum support threshold.
    pub min_support: Support,
    /// Minimum partitions for the transactions RDD (0 = the context's
    /// default parallelism, 2 tasks per virtual core).
    pub min_partitions: usize,
    /// Stop after this many passes (0 = run to fixpoint).
    pub max_passes: usize,
    /// Phase-II hot-path configuration.
    pub phase2: Phase2Config,
    /// Scheduler pool this run's jobs are attributed to (multi-job
    /// scheduling; see `yafim_cluster::JobQueue`).
    pub pool: String,
}

impl YafimConfig {
    /// Defaults: run to fixpoint, default parallelism, the paper's Phase II.
    pub fn new(min_support: Support) -> Self {
        YafimConfig {
            min_support,
            min_partitions: 0,
            max_passes: 0,
            phase2: Phase2Config::paper(),
            pool: "default".to_string(),
        }
    }

    /// Like [`YafimConfig::new`] but with every Phase-II optimization on.
    pub fn optimized(min_support: Support) -> Self {
        YafimConfig {
            phase2: Phase2Config::optimized(),
            ..YafimConfig::new(min_support)
        }
    }

    /// Like [`YafimConfig::optimized`] but counting `k ≥ 3` passes through
    /// the vertical TID bitmaps ([`Phase2Config::bitmap`]).
    pub fn bitmap(min_support: Support) -> Self {
        YafimConfig {
            phase2: Phase2Config::bitmap(),
            ..YafimConfig::new(min_support)
        }
    }
}

pub use crate::types::PassTiming as YafimPassTiming;

/// Outcome of one counting pass: `(|C_k|, surviving count, L_k in work
/// space)`; `None` when no candidates could be generated.
type PassOutcome = Option<(usize, usize, Vec<(Itemset, u64)>)>;

/// The YAFIM miner bound to one driver [`Context`].
pub struct Yafim {
    ctx: Context,
    config: YafimConfig,
}

impl Yafim {
    /// A miner over `ctx` with `config`.
    pub fn new(ctx: Context, config: YafimConfig) -> Self {
        Yafim { ctx, config }
    }

    /// Mine the text dataset at `input` (one whitespace-separated
    /// transaction per line) on simulated HDFS. Panics if the engine fails
    /// under an active fault plan (stage abort, unrepairable corruption,
    /// out-of-memory); use [`Yafim::try_mine`] to receive those as typed
    /// errors instead.
    pub fn mine(&self, input: &str) -> Result<MinerRun, DfsError> {
        match self.try_mine(input) {
            Ok(run) => Ok(run),
            Err(MineError::Dfs(e)) => Err(e),
            Err(MineError::Exec(e)) => panic!("{e}"),
        }
    }

    /// Like [`Yafim::mine`], but engine failures under an active fault plan
    /// surface as [`MineError::Exec`] instead of panics — including the
    /// memory governor's typed refusal when the job's smallest viable
    /// footprint cannot fit the execution budget.
    pub fn try_mine(&self, input: &str) -> Result<MinerRun, MineError> {
        let ctx = &self.ctx;
        // Attribute the whole run to its scheduler pool; the guard reports
        // completion to any bound JobQueue ticket when dropped.
        let _job = ctx.cluster().acquire_job(&self.config.pool, "yafim");
        let metrics = ctx.metrics().clone();
        let cost = ctx.cluster().cost().clone();
        let p2 = self.config.phase2.clone();
        let partitions = if self.config.min_partitions == 0 {
            ctx.config().default_parallelism
        } else {
            self.config.min_partitions
        };

        // The driver knows the dataset size from HDFS metadata; resolve a
        // fractional MinSup without an extra counting job.
        let file = ctx.cluster().hdfs().get(input)?;
        let min_sup = self.config.min_support.resolve(file.num_lines() as u64);

        // ---- Admission control (degradation ladder, last rung) ----
        //
        // The smallest viable footprint of any pass is one spill granule of
        // combine buffer per pass-1 task: below that a task cannot make
        // progress even by streaming through disk, so running the job could
        // only end in OOM kills. Refuse it up front, typed — never a wrong
        // or silently-partial result.
        if let Some(budget) = ctx.cluster().memory_budget() {
            if let Err(refusal) = budget.admit(SPILL_GRANULE) {
                return Err(MineError::Exec(ExecError::MemoryRefused { refusal }));
            }
        }

        let run_start = metrics.now();
        let mut passes: Vec<PassTiming> = Vec::new();

        // ---- Phase I: load + cache + frequent items ----
        let pass1_start = metrics.now();
        let transactions: Rdd<Vec<Item>> = ctx
            .text_file(input, partitions)?
            .map(|line| parse_transaction(&line))
            .cache();

        // This narrow chain runs as one fused pipeline per partition: each
        // transaction streams through flatMap and map straight into the
        // shuffle's map-side combiner without intermediate buffers.
        let l1_pairs: Vec<(Item, u64)> = transactions
            .flat_map(|t| t)
            .map(|item| (item, 1u64))
            .reduce_by_key(|a, b| a + b)
            .filter(move |&(_, c)| c >= min_sup)
            .try_collect()?;
        let mut l1: Vec<(Itemset, u64)> = l1_pairs
            .iter()
            .map(|&(i, c)| (Itemset::single(i), c))
            .collect();
        l1.sort_by(|a, b| a.0.cmp(&b.0));

        metrics.record_span(EventKind::Iteration, "pass 1", pass1_start);
        passes.push(PassTiming {
            pass: 1,
            seconds: metrics.now().since(pass1_start).as_secs(),
            candidates: l1.len(), // distinct frequent items; C1 is implicit
            frequent: l1.len(),
        });

        if l1.is_empty() {
            transactions.unpersist();
            return Ok(MinerRun {
                result: MiningResult::default(),
                total_seconds: metrics.now().since(run_start).as_secs(),
                passes,
            });
        }

        // ---- Projection: re-encode the cached RDD to dense ranks ----
        //
        // `work` is the transactions RDD every counting job runs on, in
        // "work space": dense ranks when projecting, the raw alphabet
        // otherwise. `replaced` holds the RDD the current `work` supersedes;
        // it stays cached until the job that materializes (and re-caches)
        // its successor has run, then is unpersisted — the §IV.B memory
        // property with correct cache accounting for replaced RDDs.
        let mut replaced: Option<Rdd<Vec<Item>>> = None;
        let (work, encoder) = if p2.project {
            let encoder = Arc::new(DenseEncoder::new(
                l1.iter().map(|(s, _)| s.items()[0]).collect(),
            ));
            metrics.advance_with_event(
                cost.cpu(encoder.len() as u64),
                EventKind::Projection,
                "build dense dictionary",
            );
            let bc_enc = ctx.broadcast(DenseEncoder::clone(&encoder));
            let enc = bc_enc.value();
            // A narrow map → filter chain: it fuses into the next pass's
            // pipeline and materializes only at its own cache insert.
            let dense = transactions
                .map(move |t| enc.encode(&t))
                .filter(|t| t.len() >= 2)
                .cache();
            replaced = Some(transactions.clone());
            (dense, Some(encoder))
        } else {
            (transactions.clone(), None)
        };
        let mut work = work;

        // Work-space L1: ranks 0..n when projecting (l1 is item-sorted, so
        // rank order equals item order and counts carry over positionally).
        let l1_work: Vec<(Itemset, u64)> = match &encoder {
            Some(_) => l1
                .iter()
                .enumerate()
                .map(|(r, &(_, c))| (Itemset::single(r as u32), c))
                .collect(),
            None => l1,
        };

        // ---- Phase II: iterate L_k → C_{k+1} → L_{k+1}, in work space ----
        //
        // Checkpoint cadence: the explicit Phase-II knob wins; with it at 0,
        // an active fault plan may still request one (chaos runs flip
        // checkpointing on without touching the miner config).
        let ckpt_every = if p2.checkpoint_interval != 0 {
            p2.checkpoint_interval
        } else {
            ctx.cluster().faults().plan().checkpoint_interval
        };
        let mut passes_since_ckpt = 0usize;
        let mut checkpointed: Option<Rdd<Vec<Item>>> = None;

        // Bitmap density guard, decided once from driver-side metadata
        // (mirrors the pass-2 triangle guard): the columnar projection must
        // fit BITMAP_MAX_WORDS across all partitions, and needs dense
        // ranks to bound the row count. Otherwise the trie counts instead.
        let n_dense_total = encoder.as_ref().map_or(0, |e| e.len());
        let use_bitmap = p2.matcher == Matcher::Bitmap
            && p2.project
            && bitmap_fits(n_dense_total, file.num_lines(), partitions);
        if p2.matcher == Matcher::Bitmap && !use_bitmap {
            ctx.cluster().registry().counter("bitmap.fallbacks").inc(1);
        }
        // The columnar store, built lazily by the first bitmap-counted pass
        // and reused (from cache) by every later one.
        let mut columnar: Option<Rdd<ColumnarPartition>> = None;

        // Per-task budget cap, fixed for the whole run when the governor is
        // armed: the driver checks each pass's preferred counting structure
        // against it and steps down (ladder rung 2) *before* the pass runs.
        let task_limit = ctx.cluster().memory_budget().map(|b| b.per_task_limit);

        let mut levels: Vec<Vec<(Itemset, u64)>> = vec![l1_work];
        let mut pass = 2usize;
        loop {
            if self.config.max_passes != 0 && pass > self.config.max_passes {
                break;
            }
            let pass_start = metrics.now();

            let n_dense = encoder.as_ref().map_or(0, |e| e.len());
            let mut use_triangle = pass == 2
                && p2.project
                && p2.triangle_pass2
                && tri_len(n_dense) <= TRIANGLE_MAX_CELLS;
            if use_triangle && task_limit.is_some_and(|l| triangle_footprint(n_dense) > l) {
                self.note_degradation(pass, "triangle array -> candidate store");
                use_triangle = false;
            }

            let (n_candidates, counted, mut lk) = if use_triangle {
                match self.pass2_triangle(&work, n_dense, min_sup)? {
                    Some(v) => v,
                    None => break, // |L1| < 2: no pairs to count
                }
            } else {
                let prev: Vec<Itemset> = levels
                    .last()
                    .expect("levels never empty here")
                    .iter()
                    .map(|(s, _)| s.clone())
                    .collect();
                // An armed governor steps the bitmap down to the trie when
                // its columnar arena cannot fit the per-task budget (the
                // arena already built and cached keeps serving — only its
                // construction is budgeted).
                let bitmap_fits_budget = columnar.is_some()
                    || !task_limit.is_some_and(|l| {
                        bitmap_footprint(n_dense, file.num_lines(), partitions) > l
                    });
                let outcome = if use_bitmap && bitmap_fits_budget {
                    self.pass_bitmap(&work, &mut columnar, n_dense, &prev, pass, min_sup)?
                } else {
                    if use_bitmap {
                        self.note_degradation(pass, "bitmap arena -> trie matcher");
                    }
                    self.pass_with_store(&work, &prev, &p2, pass, min_sup)?
                };
                match outcome {
                    Some(v) => v,
                    None => break, // ap_gen produced no candidates
                }
            };

            // The job above materialized (and cached) `work`; whatever it
            // replaced can now release its cluster memory.
            if let Some(old) = replaced.take() {
                old.unpersist();
            }

            if counted == 0 {
                metrics.record_span(EventKind::Iteration, format!("pass {pass}"), pass_start);
                passes.push(PassTiming {
                    pass,
                    seconds: metrics.now().since(pass_start).as_secs(),
                    candidates: n_candidates,
                    frequent: 0,
                });
                break;
            }
            lk.sort_by(|a, b| a.0.cmp(&b.0));

            // Last-line tripwire behind the storage integrity layer: if a
            // corrupted partition somehow produced counts that slipped past
            // every checksum, the Apriori invariants catch it here, before
            // the level is recorded — wrong results must never be returned.
            if let Err(violation) = crate::audit::audit_level(
                levels.last().expect("levels never empty here"),
                &lk,
                n_candidates,
            ) {
                panic!("mining-invariant audit failed after pass {pass}: {violation}");
            }

            metrics.record_span(EventKind::Iteration, format!("pass {pass}"), pass_start);
            passes.push(PassTiming {
                pass,
                seconds: metrics.now().since(pass_start).as_secs(),
                candidates: n_candidates,
                frequent: lk.len(),
            });

            // ---- Cross-pass trimming (DHP-style) ----
            //
            // Any item in no frequent k-itemset is in no frequent
            // (k+1)-itemset (monotonicity), and a transaction with fewer
            // than k+1 surviving items holds no (k+1)-candidate — so both
            // can be dropped from the cached RDD without changing a single
            // later count. The trimmed RDD re-caches during the next pass's
            // job; its predecessor is unpersisted right after.
            //
            // Once the columnar bitmap store exists, trimming is skipped:
            // the bitmap counter never rescans the transactions RDD, so a
            // trim would cost a job and save nothing (pass-2's trim still
            // runs with the bitmap — it shrinks the columnar build itself).
            if p2.trim && p2.project && columnar.is_none() {
                let mask = TrimMask::from_frequent(n_dense, &lk);
                metrics.advance_with_event(
                    cost.cpu((lk.len() * (pass)) as u64 + n_dense as u64),
                    EventKind::Projection,
                    format!(
                        "trim plan pass {pass} ({} of {} items live)",
                        mask.alive(),
                        n_dense
                    ),
                );
                let bc_mask = ctx.broadcast(mask);
                let keep = bc_mask.value();
                let min_len = pass + 1;
                let trimmed = work
                    .map(move |mut t| {
                        t.retain(|&r| keep.keep[r as usize]);
                        t
                    })
                    .filter(move |t| t.len() >= min_len)
                    .cache();
                replaced = Some(work);
                work = trimmed;
            }

            // ---- Checkpoint: truncate lineage every `ckpt_every` passes --
            //
            // The checkpoint job materializes `work` into replicated HDFS
            // blocks and swaps in a reader whose lineage is one level deep.
            // A node loss in a later pass then re-reads the blocks instead
            // of replaying every projection/trim back to the input file —
            // recovery work is bounded by the checkpoint interval.
            if ckpt_every != 0 {
                passes_since_ckpt += 1;
                if passes_since_ckpt >= ckpt_every {
                    passes_since_ckpt = 0;
                    let cp = work.try_checkpoint()?.cache();
                    // The checkpoint job materialized `work`; it and
                    // whatever it superseded can release cluster memory, and
                    // the previous checkpoint's blocks are now stale.
                    if let Some(old) = replaced.take() {
                        old.unpersist();
                    }
                    work.unpersist();
                    if let Some(prev) = checkpointed.replace(cp.clone()) {
                        prev.discard_checkpoint();
                    }
                    work = cp;
                }
            }

            levels.push(lk);
            pass += 1;
        }

        // Unpersist every RDD still holding cluster memory (the final work
        // RDD, the columnar bitmap store, plus a replaced RDD whose
        // successor never ran a job).
        if let Some(old) = replaced.take() {
            old.unpersist();
        }
        if let Some(col) = columnar.take() {
            col.unpersist();
        }
        work.unpersist();
        transactions.unpersist();
        if let Some(cp) = checkpointed.take() {
            cp.discard_checkpoint();
        }

        // Decode rank-space results back to the original alphabet; the
        // monotone encoding preserves itemset order, so per-level sort
        // order survives the decode.
        let levels = match &encoder {
            Some(enc) => levels
                .into_iter()
                .map(|level| {
                    level
                        .into_iter()
                        .map(|(s, c)| (enc.decode_itemset(&s), c))
                        .collect()
                })
                .collect(),
            None => levels,
        };

        Ok(MinerRun {
            result: MiningResult::from_levels(levels),
            total_seconds: metrics.now().since(run_start).as_secs(),
            passes,
        })
    }

    /// Specialized pass 2 over dense ranks: a flat triangular count array
    /// indexed by item pair — no candidate store, no broadcast, no
    /// per-candidate allocation. Triangle cell `tri_index(a, b)` coincides
    /// with `ap_gen(L1)`'s candidate index for `{a, b}`, so counts (and the
    /// reported candidate total) are identical to the store path.
    ///
    /// Record one driver-side counting-structure step-down (ladder rung 2):
    /// bump `mem.degradations` in the registry and the run's recovery
    /// block, and log the decision as a zero-cost event.
    fn note_degradation(&self, pass: usize, what: &str) {
        let mut rec = RecoveryCounters::default();
        rec.mem.degradations = 1;
        self.ctx.metrics().note_recovery(&rec);
        self.ctx
            .cluster()
            .registry()
            .counter("mem.degradations")
            .inc(1);
        self.ctx.metrics().advance_with_event(
            SimDuration::ZERO,
            EventKind::Other,
            format!("memory step-down pass {pass}: {what}"),
        );
    }

    /// Hard per-task memory cap when the governor is armed.
    fn task_limit(&self) -> Option<u64> {
        self.ctx.cluster().memory_budget().map(|b| b.per_task_limit)
    }

    /// Returns `(|C2|, surviving count, L2 in rank space)`, or `None` when
    /// there are no pairs to count.
    fn pass2_triangle(
        &self,
        work: &Rdd<Vec<Item>>,
        n_dense: usize,
        min_sup: u64,
    ) -> Result<PassOutcome, ExecError> {
        let metrics = self.ctx.metrics().clone();
        let cost = self.ctx.cluster().cost().clone();
        let n_candidates = tri_len(n_dense);
        if n_candidates == 0 {
            return Ok(None);
        }
        metrics.advance_with_event(
            cost.cpu(n_dense as u64),
            EventKind::Driver,
            format!("pass 2 triangle setup ({n_candidates} pairs)"),
        );

        let counted: Vec<(u32, u64)> = work
            .map_partitions(move |txs, tc| {
                // The triangle is this task's execution memory; an injected
                // (or real) denial kills the attempt into the retry ladder.
                tc.try_reserve(8 * n_candidates as u64, memgov::site::TRIANGLE, false);
                let mut counts = vec![0u64; n_candidates];
                let mut pairs = 0u64;
                for t in txs {
                    for i in 0..t.len().saturating_sub(1) {
                        let base = tri_index(n_dense, t[i] as usize, t[i] as usize + 1);
                        for &b in &t[i + 1..] {
                            // Row-relative addressing keeps the inner loop a
                            // single add + increment.
                            counts[base + (b - t[i]) as usize - 1] += 1;
                        }
                    }
                    pairs += (t.len() * t.len().saturating_sub(1) / 2) as u64;
                }
                // One cheap array touch per pair, plus one emission per
                // nonzero cell — no tree descent, no subset checks.
                tc.add_cpu(pairs * JVM_PAIR_COUNT_UNITS);
                let mut out = Vec::new();
                for (i, &c) in counts.iter().enumerate() {
                    if c > 0 {
                        out.push((i as u32, c));
                    }
                }
                tc.add_cpu(out.len() as u64);
                out
            })
            .reduce_by_key(|a, b| a + b)
            .filter(move |&(_, c)| c >= min_sup)
            .try_collect()?;

        let mut counted = counted;
        counted.sort_unstable_by_key(|&(i, _)| i);
        let lk: Vec<(Itemset, u64)> = counted
            .iter()
            .map(|&(idx, c)| {
                let (a, b) = tri_pair(n_dense, idx as usize);
                (Itemset::from_sorted(vec![a as u32, b as u32]), c)
            })
            .collect();
        Ok(Some((n_candidates, lk.len(), lk)))
    }

    /// One Phase-II pass through a broadcast [`CandidateStore`] (hash tree
    /// or trie, per config) — the generic path for `k ≥ 3`, and for pass 2
    /// when the triangle is disabled or would not fit.
    ///
    /// Returns `(|C_k|, surviving count, L_k in work space)`, or `None`
    /// when candidate generation comes up empty.
    fn pass_with_store(
        &self,
        work: &Rdd<Vec<Item>>,
        prev: &[Itemset],
        p2: &Phase2Config,
        pass: usize,
        min_sup: u64,
    ) -> Result<PassOutcome, ExecError> {
        let ctx = &self.ctx;
        let metrics = ctx.metrics().clone();
        let cost = ctx.cluster().cost().clone();

        // Driver: candidate generation (join + prune), charged as driver
        // CPU.
        let (candidates, gen_work) = ap_gen(prev);
        metrics.advance_with_event(
            cost.cpu(gen_work.units() + candidates.len() as u64),
            EventKind::Driver,
            format!("ap_gen pass {pass}"),
        );
        if candidates.is_empty() {
            return Ok(None);
        }
        let n_candidates = candidates.len();

        // Driver: build the candidate store and broadcast it to the workers.
        // Matcher::Bitmap lands here only when the density guard (or the
        // memory governor) refused the columnar projection; the trie is its
        // fallback store. An armed governor steps a trie whose arena would
        // overflow the per-task budget down to the smaller hash tree.
        let store: Box<dyn CandidateStore> = match p2.matcher {
            Matcher::HashTree => Box::new(HashTree::build(candidates)),
            Matcher::Trie | Matcher::Bitmap => {
                if self
                    .task_limit()
                    .is_some_and(|l| trie_footprint(n_candidates, pass) > l)
                {
                    self.note_degradation(pass, "trie -> hash tree");
                    Box::new(HashTree::build(candidates))
                } else {
                    Box::new(CandidateTrie::build(candidates))
                }
            }
        };
        metrics.advance_with_event(
            cost.cpu(2 * n_candidates as u64),
            EventKind::Driver,
            format!("build {} pass {pass}", store.name()),
        );
        let bc = ctx.broadcast(store);
        let store_for_tasks = bc.value();
        let store_bytes = bc.bytes();

        // Workers: count candidate occurrences over the cached
        // transactions. Matches are pre-aggregated per partition (as
        // Spark's reduceByKey map-side combine would), then shuffled.
        let counted: Vec<(u32, u64)> = work
            .map_partitions(move |txs, tc| {
                // Each task reads the broadcast store (already paid for
                // once, virtually, at broadcast time).
                tc.note_broadcast_read(store_bytes);
                // The deserialized store plus the count array are this
                // task's execution memory.
                tc.try_reserve(
                    store_bytes + 8 * n_candidates as u64,
                    memgov::site::CANDIDATE_STORE,
                    false,
                );
                let mut counts = vec![0u64; n_candidates];
                let mut scratch = MatchScratch::default();
                let mut visits = 0u64;
                for t in txs {
                    visits += store_for_tasks.for_each_match_dyn(t, &mut scratch, &mut |idx| {
                        counts[idx] += 1;
                    });
                }
                let matches: u64 = counts.iter().sum();
                // Store traversal plus one emission per match — the
                // flatMap cost of Algorithm 3, lines 4-9.
                tc.add_cpu(visits * JVM_TREE_VISIT_UNITS + matches);
                counts
                    .into_iter()
                    .enumerate()
                    .filter(|&(_, c)| c > 0)
                    .map(|(i, c)| (i as u32, c))
                    .collect()
            })
            .reduce_by_key(|a, b| a + b)
            .filter(move |&(_, c)| c >= min_sup)
            .try_collect()?;

        // Resolve surviving indices against the store exactly once per
        // pass. The tasks have dropped their broadcast handles by now, so
        // the driver usually holds the last reference and can drain the
        // candidate list by value — no per-frequent-itemset clone.
        let mut counted = counted;
        counted.sort_unstable_by_key(|&(i, _)| i);
        let lk: Vec<(Itemset, u64)> = match Arc::try_unwrap(bc.into_value()) {
            Ok(store) => {
                let mut wanted = counted.iter().copied();
                let mut next = wanted.next();
                let mut out = Vec::with_capacity(counted.len());
                for (i, cand) in store.into_candidates().into_iter().enumerate() {
                    match next {
                        Some((idx, c)) if idx as usize == i => {
                            out.push((cand, c));
                            next = wanted.next();
                        }
                        _ => {}
                    }
                }
                out
            }
            // Something (e.g. an in-flight recompute) still shares the
            // store; fall back to indexing the shared slice.
            Err(store) => counted
                .iter()
                .map(|&(idx, c)| (store.candidates()[idx as usize].clone(), c))
                .collect(),
        };
        Ok(Some((n_candidates, lk.len(), lk)))
    }

    /// Project `work` into the cached columnar bitmap store: one job,
    /// one [`ColumnarPartition`] element per partition, build bytes and CPU
    /// charged to the tasks and the arena registered with the cache manager
    /// like any other cached block (checksummed, evictable, recomputable
    /// from lineage).
    fn build_columnar(&self, work: &Rdd<Vec<Item>>, n_dense: usize) -> Rdd<ColumnarPartition> {
        let ctx = &self.ctx;
        let metrics = ctx.metrics().clone();
        let cost = ctx.cluster().cost().clone();
        metrics.advance_with_event(
            cost.cpu(n_dense as u64),
            EventKind::Projection,
            format!("columnar bitmap projection plan ({n_dense} rows)"),
        );
        let built = ctx.cluster().registry().counter("bitmap.partitions_built");
        let bytes = ctx.cluster().registry().counter("bitmap.build_bytes");
        work.map_partitions(move |txs, tc| {
            let col = ColumnarPartition::build(n_dense, txs);
            // The arena is execution memory while it is being built (it
            // only becomes a budgeted cache block once inserted).
            tc.try_reserve(
                8 * col.arena_words() as u64,
                memgov::site::BITMAP_ARENA,
                false,
            );
            // Physical build: write the arena once, touch one bit per item
            // occurrence.
            tc.add_mem_read(8 * col.arena_words() as u64);
            tc.add_cpu(col.build_cost_units());
            built.inc(1);
            bytes.inc(col.byte_size());
            vec![col]
        })
        .cache()
    }

    /// One Phase-II pass counted through the vertical TID bitmaps — the
    /// `k ≥ 3` path when [`Matcher::Bitmap`] passed its density guard. The
    /// columnar store is built (and cached) by the first such pass and
    /// reused from cluster memory afterwards; only the bare candidate list
    /// is broadcast.
    ///
    /// Returns `(|C_k|, surviving count, L_k in work space)`, or `None`
    /// when candidate generation comes up empty.
    fn pass_bitmap(
        &self,
        work: &Rdd<Vec<Item>>,
        columnar: &mut Option<Rdd<ColumnarPartition>>,
        n_dense: usize,
        prev: &[Itemset],
        pass: usize,
        min_sup: u64,
    ) -> Result<PassOutcome, ExecError> {
        let ctx = &self.ctx;
        let metrics = ctx.metrics().clone();
        let cost = ctx.cluster().cost().clone();

        // Driver: candidate generation (join + prune), charged as driver
        // CPU — identical to the store path, so pass metadata agrees.
        let (candidates, gen_work) = ap_gen(prev);
        metrics.advance_with_event(
            cost.cpu(gen_work.units() + candidates.len() as u64),
            EventKind::Driver,
            format!("ap_gen pass {pass}"),
        );
        if candidates.is_empty() {
            return Ok(None);
        }
        let n_candidates = candidates.len();

        // First bitmap pass: materialize the columnar store.
        let columnar_rdd = match columnar {
            Some(c) => c.clone(),
            None => {
                let built = self.build_columnar(work, n_dense);
                *columnar = Some(built.clone());
                built
            }
        };

        // Driver: no store to build — just assemble and broadcast the
        // sorted candidate list (indices into it are the shuffle keys,
        // exactly as with the stores).
        metrics.advance_with_event(
            cost.cpu(n_candidates as u64),
            EventKind::Driver,
            format!("broadcast candidate list pass {pass}"),
        );
        let registry = ctx.cluster().registry();
        registry.counter("bitmap.passes").inc(1);
        registry
            .counter("bitmap.candidates_counted")
            .inc(n_candidates as u64);
        let words_counter = registry.counter("bitmap.words_intersected");
        let bc = ctx.broadcast(CandidateList(candidates));
        let cands_for_tasks = bc.value();
        let cand_bytes = bc.bytes();

        // Workers: word-wise AND + popcount per candidate over the cached
        // bitset rows. Within a partition every candidate is counted at
        // most once, so the emitted pairs are already combined map-side.
        let counted: Vec<(u32, u64)> = columnar_rdd
            .map_partitions(move |cols, tc| {
                tc.note_broadcast_read(cand_bytes);
                let mut scratch = BitmapScratch::default();
                let mut out: Vec<(u32, u64)> = Vec::new();
                let mut words = 0u64;
                for col in cols {
                    words += col.count_candidates(&cands_for_tasks.0, &mut scratch, &mut |i, c| {
                        out.push((i as u32, c));
                    });
                }
                // One AND+popcount per word, one emission per nonzero
                // count — the whole per-task cost of the pass.
                tc.add_cpu(words * JVM_BITMAP_WORD_UNITS + out.len() as u64);
                words_counter.inc(words);
                out
            })
            .reduce_by_key(|a, b| a + b)
            .filter(move |&(_, c)| c >= min_sup)
            .try_collect()?;

        // Resolve surviving indices against the broadcast list once per
        // pass, draining it by value when the driver holds the last
        // reference (the mirror of the store path's drain).
        let mut counted = counted;
        counted.sort_unstable_by_key(|&(i, _)| i);
        let lk: Vec<(Itemset, u64)> = match Arc::try_unwrap(bc.into_value()) {
            Ok(list) => {
                let mut wanted = counted.iter().copied();
                let mut next = wanted.next();
                let mut out = Vec::with_capacity(counted.len());
                for (i, cand) in list.0.into_iter().enumerate() {
                    match next {
                        Some((idx, c)) if idx as usize == i => {
                            out.push((cand, c));
                            next = wanted.next();
                        }
                        _ => {}
                    }
                }
                out
            }
            Err(list) => counted
                .iter()
                .map(|&(idx, c)| (list.0[idx as usize].clone(), c))
                .collect(),
        };
        Ok(Some((n_candidates, lk.len(), lk)))
    }
}

/// Convenience: one-call YAFIM over an in-memory transaction list, writing
/// it to the cluster's HDFS first (used by tests and examples).
pub fn mine_in_memory(ctx: &Context, transactions: &[Vec<Item>], config: YafimConfig) -> MinerRun {
    let lines: Vec<String> = transactions
        .iter()
        .map(|t| t.iter().map(u32::to_string).collect::<Vec<_>>().join(" "))
        .collect();
    let path = format!("yafim-inmem-{}.dat", std::process::id());
    ctx.cluster().hdfs().put_overwrite(&path, lines);
    let hdfs_write_cost = ctx.cluster().cost().hdfs_write(
        ctx.cluster()
            .hdfs()
            .get(&path)
            .expect("file just written")
            .bytes(),
    );
    ctx.metrics()
        .advance_with_event(hdfs_write_cost, EventKind::HdfsWrite, path.clone());
    let run = Yafim::new(ctx.clone(), config)
        .mine(&path)
        .expect("file exists");
    let _ = ctx.cluster().hdfs().delete(&path);
    // Dropping the input is instantaneous metadata work.
    ctx.metrics().advance(SimDuration::ZERO);
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::{apriori, SequentialConfig};
    use yafim_cluster::{ClusterSpec, CostModel, SimCluster};

    fn ctx() -> Context {
        Context::new(SimCluster::with_threads(
            ClusterSpec::new(4, 2, 1 << 30),
            CostModel::hadoop_era(),
            4,
        ))
    }

    fn toy() -> Vec<Vec<Item>> {
        vec![vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]
    }

    #[test]
    fn matches_sequential_on_toy() {
        let run = mine_in_memory(&ctx(), &toy(), YafimConfig::new(Support::Count(2)));
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(run.result, seq);
        assert_eq!(run.result.level_sizes(), vec![4, 4, 1]);
    }

    #[test]
    fn optimized_phase2_matches_sequential_on_toy() {
        let run = mine_in_memory(&ctx(), &toy(), YafimConfig::optimized(Support::Count(2)));
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(run.result, seq);
        assert_eq!(run.result.level_sizes(), vec![4, 4, 1]);
    }

    #[test]
    fn every_phase2_combination_agrees_on_toy() {
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        for project in [false, true] {
            for triangle in [false, true] {
                for matcher in [Matcher::HashTree, Matcher::Trie, Matcher::Bitmap] {
                    for trim in [false, true] {
                        let mut cfg = YafimConfig::new(Support::Count(2));
                        cfg.phase2 = Phase2Config {
                            project,
                            triangle_pass2: triangle,
                            matcher,
                            trim,
                            checkpoint_interval: 0,
                        };
                        let run = mine_in_memory(&ctx(), &toy(), cfg);
                        assert_eq!(
                            run.result, seq,
                            "project={project} triangle={triangle} \
                             matcher={matcher:?} trim={trim}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn checkpointing_is_invisible_to_results() {
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        for interval in [1, 2] {
            for optimized in [false, true] {
                let mut cfg = if optimized {
                    YafimConfig::optimized(Support::Count(2))
                } else {
                    YafimConfig::new(Support::Count(2))
                };
                cfg.phase2.checkpoint_interval = interval;
                let c = ctx();
                let run = mine_in_memory(&c, &toy(), cfg);
                assert_eq!(run.result, seq, "interval={interval} optimized={optimized}");
                let rec = c.metrics().snapshot().recovery;
                assert!(
                    rec.checkpoint_writes > 0,
                    "interval={interval}: checkpoints must have been written"
                );
                assert_eq!(
                    c.cluster().hdfs().checkpoint_stats().0,
                    0,
                    "stale checkpoint blocks released at run end"
                );
                let stats = c.cache().stats();
                assert_eq!(stats.entries, 0, "no leaked cached partitions");
            }
        }
    }

    #[test]
    fn fault_plan_supplies_checkpoint_cadence() {
        use yafim_cluster::FaultPlan;
        let c = ctx();
        c.cluster()
            .faults()
            .set_plan(FaultPlan::seeded(3).with_checkpoint_interval(1));
        let run = mine_in_memory(&c, &toy(), YafimConfig::new(Support::Count(2)));
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(run.result, seq);
        assert!(
            c.metrics().snapshot().recovery.checkpoint_writes > 0,
            "plan-driven cadence must checkpoint without touching the miner config"
        );
    }

    #[test]
    fn pass_timings_recorded() {
        let run = mine_in_memory(&ctx(), &toy(), YafimConfig::new(Support::Count(2)));
        // Passes 1..=3 produce itemsets; pass 4 generates no candidates
        // (single L3 itemset), so exactly 3 timed passes.
        assert_eq!(run.passes.len(), 3);
        assert!(run.passes.iter().all(|p| p.seconds > 0.0));
        assert_eq!(run.passes[0].pass, 1);
        assert!(run.total_seconds >= run.passes.iter().map(|p| p.seconds).sum::<f64>());
    }

    #[test]
    fn optimized_pass_metadata_matches_paper_engine() {
        let paper = mine_in_memory(&ctx(), &toy(), YafimConfig::new(Support::Count(2)));
        let opt = mine_in_memory(&ctx(), &toy(), YafimConfig::optimized(Support::Count(2)));
        assert_eq!(paper.passes.len(), opt.passes.len());
        for (p, o) in paper.passes.iter().zip(&opt.passes) {
            assert_eq!(
                (p.pass, p.candidates, p.frequent),
                (o.pass, o.candidates, o.frequent)
            );
        }
    }

    #[test]
    fn empty_result_when_support_too_high() {
        let run = mine_in_memory(&ctx(), &toy(), YafimConfig::new(Support::Count(50)));
        assert_eq!(run.result.total(), 0);
        assert_eq!(run.passes.len(), 1, "only the L1 pass runs");
    }

    #[test]
    fn max_passes_truncates() {
        let cfg = YafimConfig {
            max_passes: 2,
            ..YafimConfig::new(Support::Count(2))
        };
        let run = mine_in_memory(&ctx(), &toy(), cfg);
        assert_eq!(run.result.max_len(), 2);
    }

    #[test]
    fn max_passes_truncates_optimized() {
        let cfg = YafimConfig {
            max_passes: 2,
            ..YafimConfig::optimized(Support::Count(2))
        };
        let run = mine_in_memory(&ctx(), &toy(), cfg);
        assert_eq!(run.result.max_len(), 2);
    }

    #[test]
    fn fractional_support_resolves_against_dataset() {
        let run = mine_in_memory(&ctx(), &toy(), YafimConfig::new(Support::Fraction(0.5)));
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(run.result, seq);
    }

    #[test]
    fn missing_input_errors() {
        let c = ctx();
        let miner = Yafim::new(c, YafimConfig::new(Support::Count(1)));
        assert!(miner.mine("no-such-file.dat").is_err());
    }

    #[test]
    fn single_frequent_item_stops_cleanly_when_optimized() {
        // |L1| = 1: the triangle has no cells and Phase II must exit
        // without running a job (and without leaking cached partitions).
        let tx = vec![vec![7], vec![7, 9], vec![7], vec![7]];
        let c = ctx();
        let run = mine_in_memory(&c, &tx, YafimConfig::optimized(Support::Count(3)));
        assert_eq!(run.result.level_sizes(), vec![1]);
        assert_eq!(
            c.cache().stats().entries,
            0,
            "all cached partitions released"
        );
    }

    #[test]
    fn optimized_run_releases_all_cache_memory() {
        let c = ctx();
        let run = mine_in_memory(&c, &toy(), YafimConfig::optimized(Support::Count(2)));
        assert!(run.result.total() > 0);
        let stats = c.cache().stats();
        assert_eq!(stats.entries, 0, "projection/trim replacements unpersisted");
        assert_eq!(stats.used_bytes, 0);
    }

    #[test]
    fn bitmap_run_matches_sequential_and_releases_cache() {
        let c = ctx();
        let run = mine_in_memory(&c, &toy(), YafimConfig::bitmap(Support::Count(2)));
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(run.result, seq);
        let reg = c.cluster().registry();
        assert!(
            reg.counter("bitmap.partitions_built").get() > 0,
            "the k=3 pass must have built the columnar store"
        );
        assert!(reg.counter("bitmap.words_intersected").get() > 0);
        assert_eq!(reg.counter("bitmap.fallbacks").get(), 0);
        let stats = c.cache().stats();
        assert_eq!(stats.entries, 0, "columnar blocks unpersisted at run end");
        assert_eq!(stats.used_bytes, 0);
    }

    #[test]
    fn bitmap_pass_metadata_matches_paper_engine() {
        let paper = mine_in_memory(&ctx(), &toy(), YafimConfig::new(Support::Count(2)));
        let bm = mine_in_memory(&ctx(), &toy(), YafimConfig::bitmap(Support::Count(2)));
        assert_eq!(paper.passes.len(), bm.passes.len());
        for (p, b) in paper.passes.iter().zip(&bm.passes) {
            assert_eq!(
                (p.pass, p.candidates, p.frequent),
                (b.pass, b.candidates, b.frequent)
            );
        }
    }

    #[test]
    fn bitmap_without_projection_falls_back_to_the_trie() {
        let c = ctx();
        let mut cfg = YafimConfig::bitmap(Support::Count(2));
        cfg.phase2.project = false;
        cfg.phase2.triangle_pass2 = false;
        cfg.phase2.trim = false;
        let run = mine_in_memory(&c, &toy(), cfg);
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(run.result, seq, "fallback still byte-identical");
        let reg = c.cluster().registry();
        assert_eq!(reg.counter("bitmap.fallbacks").get(), 1);
        assert_eq!(
            reg.counter("bitmap.partitions_built").get(),
            0,
            "no columnar store without dense ranks"
        );
    }

    #[test]
    fn bitmap_virtual_time_not_slower_than_trie_on_dense_data() {
        // A dense workload with deep passes: every k >= 3 pass is pure
        // word-wise counting, which the cost model must see as cheaper
        // than trie descent per transaction.
        let tx: Vec<Vec<Item>> = (0..400)
            .map(|i| {
                let mut t: Vec<Item> = (0..10).map(|j| ((i + j * 3) % 14) as u32).collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let trie = mine_in_memory(&ctx(), &tx, YafimConfig::optimized(Support::Fraction(0.05)));
        let bm = mine_in_memory(&ctx(), &tx, YafimConfig::bitmap(Support::Fraction(0.05)));
        assert_eq!(trie.result, bm.result);
        assert!(
            bm.result.max_len() >= 3,
            "workload must exercise bitmap passes"
        );
        assert!(
            bm.total_seconds <= trie.total_seconds,
            "bitmap {} s vs trie {} s",
            bm.total_seconds,
            trie.total_seconds
        );
    }

    #[test]
    fn later_passes_cheaper_than_first() {
        // With caching, pass 2+ skips the HDFS load; on a non-trivial
        // dataset the first pass dominates.
        let tx: Vec<Vec<Item>> = (0..2000)
            .map(|i| {
                let mut t = vec![1, 2, 3];
                t.push(4 + (i % 7));
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let run = mine_in_memory(&ctx(), &tx, YafimConfig::new(Support::Fraction(0.9)));
        assert!(run.passes.len() >= 2);
        let last = run.passes.last().expect("has passes");
        assert!(
            last.seconds < run.passes[0].seconds * 2.0,
            "later passes must not blow up: {:?}",
            run.pass_seconds()
        );
    }

    #[test]
    fn optimized_virtual_time_not_slower_than_paper_engine() {
        // On a pass-2-heavy workload the dense/triangle/trim path must pay
        // off in virtual time too (the cost model sees fewer, cheaper
        // touches).
        let tx: Vec<Vec<Item>> = (0..800)
            .map(|i| {
                let mut t: Vec<Item> = (0..6).map(|j| ((i * 7 + j * 13) % 40) as u32).collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let paper = mine_in_memory(&ctx(), &tx, YafimConfig::new(Support::Fraction(0.02)));
        let opt = mine_in_memory(&ctx(), &tx, YafimConfig::optimized(Support::Fraction(0.02)));
        assert_eq!(paper.result, opt.result);
        assert!(
            opt.total_seconds <= paper.total_seconds,
            "optimized {} s vs paper {} s",
            opt.total_seconds,
            paper.total_seconds
        );
    }
}
