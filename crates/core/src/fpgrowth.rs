//! FP-Growth (Han, Pei & Yin, the paper's ref \[9\]): frequent itemset mining
//! without candidate generation, via the FP-tree.
//!
//! Third independent oracle for the cross-miner tests, and the classic
//! single-node alternative the paper's related-work section discusses.

use crate::types::{Item, Itemset, MiningResult, Support};
use yafim_cluster::FxHashMap;

#[derive(Clone, Debug)]
struct FpNode {
    item: Item,
    count: u64,
    parent: usize,
    children: Vec<usize>,
}

/// A prefix tree of (reordered) transactions with per-item node links.
struct FpTree {
    nodes: Vec<FpNode>,
    /// item → indices of every node carrying that item.
    header: FxHashMap<Item, Vec<usize>>,
}

const ROOT: usize = 0;

impl FpTree {
    /// Build from weighted transactions, keeping only items in `order` and
    /// sorting each transaction by descending global frequency (`rank`).
    fn build(transactions: &[(Vec<Item>, u64)], rank: &FxHashMap<Item, usize>) -> Self {
        let mut tree = FpTree {
            nodes: vec![FpNode {
                item: 0,
                count: 0,
                parent: ROOT,
                children: Vec::new(),
            }],
            header: FxHashMap::default(),
        };
        for (items, weight) in transactions {
            let mut filtered: Vec<Item> = items
                .iter()
                .copied()
                .filter(|i| rank.contains_key(i))
                .collect();
            filtered.sort_by_key(|i| rank[i]);
            tree.insert(&filtered, *weight);
        }
        tree
    }

    fn insert(&mut self, items: &[Item], weight: u64) {
        let mut node = ROOT;
        for &item in items {
            let child = self.nodes[node]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].item == item);
            node = match child {
                Some(c) => {
                    self.nodes[c].count += weight;
                    c
                }
                None => {
                    let id = self.nodes.len();
                    self.nodes.push(FpNode {
                        item,
                        count: weight,
                        parent: node,
                        children: Vec::new(),
                    });
                    self.nodes[node].children.push(id);
                    self.header.entry(item).or_default().push(id);
                    id
                }
            };
        }
    }

    /// The conditional pattern base of `item`: for every node carrying it,
    /// the path to the root with the node's count.
    fn pattern_base(&self, item: Item) -> Vec<(Vec<Item>, u64)> {
        let mut base = Vec::new();
        for &node in self.header.get(&item).map(Vec::as_slice).unwrap_or(&[]) {
            let count = self.nodes[node].count;
            let mut path = Vec::new();
            let mut cur = self.nodes[node].parent;
            while cur != ROOT {
                path.push(self.nodes[cur].item);
                cur = self.nodes[cur].parent;
            }
            path.reverse();
            if !path.is_empty() {
                base.push((path, count));
            }
        }
        base
    }

    fn item_support(&self, item: Item) -> u64 {
        self.header
            .get(&item)
            .map(|nodes| nodes.iter().map(|&n| self.nodes[n].count).sum())
            .unwrap_or(0)
    }
}

/// Mine all frequent itemsets with FP-Growth.
pub fn fp_growth(transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
    let min_sup = min_support.resolve(transactions.len() as u64);

    let mut counts: FxHashMap<Item, u64> = FxHashMap::default();
    for t in transactions {
        for &i in t {
            *counts.entry(i).or_insert(0) += 1;
        }
    }
    let rank = ranking(&counts, min_sup);

    let weighted: Vec<(Vec<Item>, u64)> = transactions.iter().map(|t| (t.clone(), 1)).collect();
    let tree = FpTree::build(&weighted, &rank);

    let mut found: Vec<(Itemset, u64)> = Vec::new();
    mine(&tree, &rank, &[], min_sup, &mut found);

    let max_len = found.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
    let mut levels: Vec<Vec<(Itemset, u64)>> = vec![Vec::new(); max_len];
    for (set, sup) in found {
        levels[set.len() - 1].push((set, sup));
    }
    MiningResult::from_levels(levels)
}

/// Frequency rank over frequent items (most frequent first; ties broken by
/// item id for determinism).
fn ranking(counts: &FxHashMap<Item, u64>, min_sup: u64) -> FxHashMap<Item, usize> {
    let mut items: Vec<(Item, u64)> = counts
        .iter()
        .filter(|&(_, &c)| c >= min_sup)
        .map(|(&i, &c)| (i, c))
        .collect();
    items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    items
        .into_iter()
        .enumerate()
        .map(|(rank, (item, _))| (item, rank))
        .collect()
}

/// Recursive FP-Growth over conditional trees.
fn mine(
    tree: &FpTree,
    rank: &FxHashMap<Item, usize>,
    suffix: &[Item],
    min_sup: u64,
    out: &mut Vec<(Itemset, u64)>,
) {
    // Process items bottom-up (least frequent first).
    let mut items: Vec<Item> = rank.keys().copied().collect();
    items.sort_by_key(|i| std::cmp::Reverse(rank[i]));

    for item in items {
        let support = tree.item_support(item);
        if support < min_sup {
            continue;
        }
        let mut set: Vec<Item> = suffix.to_vec();
        set.push(item);
        out.push((Itemset::new(set.clone()), support));

        let base = tree.pattern_base(item);
        if base.is_empty() {
            continue;
        }
        // Conditional frequent items and tree.
        let mut cond_counts: FxHashMap<Item, u64> = FxHashMap::default();
        for (path, w) in &base {
            for &i in path {
                *cond_counts.entry(i).or_insert(0) += w;
            }
        }
        let cond_rank = ranking(&cond_counts, min_sup);
        if cond_rank.is_empty() {
            continue;
        }
        let cond_tree = FpTree::build(&base, &cond_rank);
        mine(&cond_tree, &cond_rank, &set, min_sup, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eclat::eclat;
    use crate::sequential::{apriori, SequentialConfig};

    fn toy() -> Vec<Vec<Item>> {
        vec![vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]
    }

    #[test]
    fn agrees_with_apriori_and_eclat() {
        for sup in [1u64, 2, 3] {
            let f = fp_growth(&toy(), Support::Count(sup));
            let a = apriori(&toy(), &SequentialConfig::new(Support::Count(sup)));
            let e = eclat(&toy(), Support::Count(sup));
            assert_eq!(f, a, "vs apriori, support {sup}");
            assert_eq!(f, e, "vs eclat, support {sup}");
        }
    }

    #[test]
    fn textbook_example() {
        // Han & Kamber's canonical FP-growth example (minsup 3).
        let tx = vec![
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ];
        let r = fp_growth(&tx, Support::Count(2));
        let a = apriori(&tx, &SequentialConfig::new(Support::Count(2)));
        assert_eq!(r, a);
        assert_eq!(r.support_of(&Itemset::new(vec![1, 2, 5])), Some(2));
        assert_eq!(r.support_of(&Itemset::new(vec![1, 2, 3])), Some(2));
    }

    #[test]
    fn empty_database() {
        assert_eq!(fp_growth(&[], Support::Count(1)).total(), 0);
    }

    #[test]
    fn single_path_tree() {
        let tx = vec![vec![1, 2, 3]; 5];
        let r = fp_growth(&tx, Support::Count(5));
        assert_eq!(r.total(), 7, "all non-empty subsets of {{1,2,3}}");
    }
}
