//! PFP — Parallel FP-Growth on the RDD engine (Li et al. 2008; the scheme
//! behind Spark MLlib's `FPGrowth`).
//!
//! The paper's related work contrasts Apriori-based miners with FP-Growth
//! ("mining frequent patterns without candidate generation", ref \[9\]); PFP
//! is its standard parallelization and serves here as the extension miner
//! showing that the `yafim-rdd` engine carries algorithms beyond YAFIM:
//!
//! 1. count item frequencies (one `reduceByKey` job), keep the frequent
//!    items, and rank them by descending frequency;
//! 2. partition the frequent items into `G` groups (`group = rank mod G`);
//! 3. re-express every transaction as *group-dependent shards*: for each
//!    group present in the (rank-sorted) transaction, ship the prefix ending
//!    at that group's last item — `groupByKey` gathers each group's shard;
//! 4. run local in-memory FP-Growth per group, keeping only patterns whose
//!    least-frequent item belongs to the group (each pattern is thus
//!    produced by exactly one group, with its exact global support);
//! 5. collect.
//!
//! Identical results to every Apriori-family miner in this crate, via a
//! completely different parallel decomposition — the strongest correctness
//! oracle in the cross-miner test suite.

use crate::fpgrowth::fp_growth;
use crate::types::{
    parse_transaction, Item, Itemset, MinerRun, MiningResult, PassTiming, Support,
    JVM_TREE_VISIT_UNITS,
};
use yafim_cluster::{DfsError, EventKind, FxHashMap};
use yafim_rdd::{Context, Rdd};

/// Options for a PFP run.
#[derive(Clone, Debug)]
pub struct PfpConfig {
    /// Minimum support threshold.
    pub min_support: Support,
    /// Number of item groups (0 = one per default-parallelism slot, capped
    /// by the frequent-item count).
    pub groups: usize,
    /// Minimum partitions for the transactions RDD (0 = context default).
    pub min_partitions: usize,
}

impl PfpConfig {
    /// Defaults: automatic group count, default parallelism.
    pub fn new(min_support: Support) -> Self {
        PfpConfig {
            min_support,
            groups: 0,
            min_partitions: 0,
        }
    }
}

/// The PFP miner bound to one driver [`Context`].
pub struct Pfp {
    ctx: Context,
    config: PfpConfig,
}

impl Pfp {
    /// A miner over `ctx` with `config`.
    pub fn new(ctx: Context, config: PfpConfig) -> Self {
        Pfp { ctx, config }
    }

    /// Mine the text dataset at `input` on simulated HDFS.
    pub fn mine(&self, input: &str) -> Result<MinerRun, DfsError> {
        let ctx = &self.ctx;
        let metrics = ctx.metrics().clone();
        let partitions = if self.config.min_partitions == 0 {
            ctx.config().default_parallelism
        } else {
            self.config.min_partitions
        };
        let file = ctx.cluster().hdfs().get(input)?;
        let min_sup = self.config.min_support.resolve(file.num_lines() as u64);

        let run_start = metrics.now();

        // ---- step 1: frequent items and ranking ----
        let count_start = metrics.now();
        let transactions: Rdd<Vec<Item>> = ctx
            .text_file(input, partitions)?
            .map(|line| parse_transaction(&line))
            .cache();
        let mut counts: Vec<(Item, u64)> = transactions
            .flat_map(|t| t)
            .map(|i| (i, 1u64))
            .reduce_by_key(|a, b| a + b)
            .filter(move |&(_, c)| c >= min_sup)
            .collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let ranking: Vec<(Item, u32)> = counts
            .iter()
            .enumerate()
            .map(|(rank, &(item, _))| (item, rank as u32))
            .collect();
        metrics.record_span(EventKind::Iteration, "PFP count", count_start);
        let count_pass = PassTiming {
            pass: 1,
            seconds: metrics.now().since(count_start).as_secs(),
            candidates: ranking.len(),
            frequent: ranking.len(),
        };

        if ranking.is_empty() {
            transactions.unpersist();
            return Ok(MinerRun {
                result: MiningResult::default(),
                total_seconds: metrics.now().since(run_start).as_secs(),
                passes: vec![count_pass],
            });
        }

        let groups = if self.config.groups == 0 {
            ctx.config().default_parallelism.min(ranking.len()).max(1)
        } else {
            self.config.groups.min(ranking.len()).max(1)
        } as u32;

        // ---- step 2+3: group-dependent shards ----
        let mine_start = metrics.now();
        let bc = ctx.broadcast(ranking);
        let rank_for_shards = bc.value();
        let shards: Rdd<(u32, Vec<Item>)> = transactions.map_partitions(move |txs, tc| {
            let rank: FxHashMap<Item, u32> = rank_for_shards.iter().copied().collect();
            let mut out = Vec::new();
            let mut work = 0u64;
            for t in txs {
                let mut sorted: Vec<Item> =
                    t.iter().copied().filter(|i| rank.contains_key(i)).collect();
                sorted.sort_by_key(|i| rank[i]);
                work += sorted.len() as u64;
                let mut emitted = yafim_cluster::FxHashSet::default();
                for i in (0..sorted.len()).rev() {
                    let g = rank[&sorted[i]] % groups;
                    if emitted.insert(g) {
                        out.push((g, sorted[..=i].to_vec()));
                    }
                }
            }
            tc.add_cpu(work * 2);
            out
        });

        // ---- step 4: per-group local FP-Growth ----
        let rank_for_mining = bc.value();
        let mined: Rdd<(Itemset, u64)> =
            shards.group_by_key().map_partitions(move |entries, tc| {
                let rank: FxHashMap<Item, u32> = rank_for_mining.iter().copied().collect();
                let mut out = Vec::new();
                for (g, shard) in entries {
                    let local = fp_growth(shard, Support::Count(min_sup));
                    // FP-tree construction + mining effort estimate.
                    let volume: u64 = shard.iter().map(|t| t.len() as u64).sum();
                    tc.add_cpu((volume + local.total() as u64) * JVM_TREE_VISIT_UNITS);
                    for (set, sup) in local.iter() {
                        let bottom = set
                            .items()
                            .iter()
                            .map(|i| rank[i])
                            .max()
                            .expect("itemsets are non-empty");
                        if bottom % groups == *g {
                            out.push((set.clone(), *sup));
                        }
                    }
                }
                out
            });

        let all = mined.collect();
        transactions.unpersist();

        let max_len = all.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
        let mut levels: Vec<Vec<(Itemset, u64)>> = vec![Vec::new(); max_len];
        for (set, sup) in all {
            levels[set.len() - 1].push((set, sup));
        }
        metrics.record_span(EventKind::Iteration, "PFP mine", mine_start);
        let result = MiningResult::from_levels(levels);
        let mine_pass = PassTiming {
            pass: 2,
            seconds: metrics.now().since(mine_start).as_secs(),
            candidates: result.total(),
            frequent: result.total(),
        };

        Ok(MinerRun {
            result,
            total_seconds: metrics.now().since(run_start).as_secs(),
            passes: vec![count_pass, mine_pass],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::{apriori, SequentialConfig};
    use yafim_cluster::{ClusterSpec, CostModel, SimCluster};
    use yafim_rdd::Context;

    fn ctx() -> Context {
        Context::new(SimCluster::with_threads(
            ClusterSpec::new(4, 2, 1 << 30),
            CostModel::hadoop_era(),
            2,
        ))
    }

    fn put(ctx: &Context, tx: &[Vec<u32>]) -> String {
        let lines: Vec<String> = tx
            .iter()
            .map(|t| t.iter().map(u32::to_string).collect::<Vec<_>>().join(" "))
            .collect();
        ctx.cluster().hdfs().put_overwrite("pfp-in.dat", lines);
        "pfp-in.dat".to_string()
    }

    fn toy() -> Vec<Vec<u32>> {
        vec![vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]
    }

    #[test]
    fn pfp_matches_sequential_on_toy() {
        let c = ctx();
        let path = put(&c, &toy());
        let run = Pfp::new(c, PfpConfig::new(Support::Count(2)))
            .mine(&path)
            .unwrap();
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(run.result, seq);
    }

    #[test]
    fn pfp_group_count_does_not_change_results() {
        let tx: Vec<Vec<u32>> = toy().into_iter().cycle().take(60).collect();
        let seq = apriori(&tx, &SequentialConfig::new(Support::Fraction(0.4)));
        for groups in [1usize, 2, 3, 7] {
            let c = ctx();
            let path = put(&c, &tx);
            let mut cfg = PfpConfig::new(Support::Fraction(0.4));
            cfg.groups = groups;
            let run = Pfp::new(c, cfg).mine(&path).unwrap();
            assert_eq!(run.result, seq, "groups = {groups}");
        }
    }

    #[test]
    fn nothing_frequent() {
        let c = ctx();
        let path = put(&c, &toy());
        let run = Pfp::new(c, PfpConfig::new(Support::Count(50)))
            .mine(&path)
            .unwrap();
        assert_eq!(run.result.total(), 0);
    }

    #[test]
    fn missing_input_errors() {
        assert!(Pfp::new(ctx(), PfpConfig::new(Support::Count(1)))
            .mine("nope")
            .is_err());
    }
}
