//! MR-Apriori — the MapReduce baseline the paper compares YAFIM against.
//!
//! The default variant, [`MrVariant::Spc`], is the PApriori / SPC scheme
//! (Li et al. 2012; Lin et al. 2012, refs \[16\]/\[17\]): **one MapReduce job per
//! Apriori pass**. Every job re-reads the full transactional dataset from
//! HDFS, ships the candidate set to the mappers through the distributed
//! cache, counts occurrences, and commits the frequent itemsets back to
//! HDFS — the per-iteration I/O round trip whose cost YAFIM's evaluation
//! quantifies.
//!
//! Candidate matching defaults to the classic Apriori hash tree — the
//! paper's MR baseline is overhead-bound, not matching-bound, on every
//! dataset (its per-pass floor sits around 34 s regardless of workload), so
//! it clearly used an efficient `subset(C_k, t)`. A naive
//! scan-the-candidate-list matcher ([`MrMatching::NaiveScan`]) is kept as a
//! config option for the matching ablation bench.
//!
//! Two pass-combining variants from Lin et al. are included for the
//! ablation benches:
//!
//! * [`MrVariant::Fpc`] — *fixed passes combined*: each job counts `p`
//!   consecutive candidate levels at once (candidates of level `k+1`
//!   generated from the level-`k` *candidates*, keeping completeness).
//! * [`MrVariant::Dpc`] — *dynamic passes combined*: keep adding levels to a
//!   job while the combined candidate count stays under a threshold.

use crate::candidates::ap_gen;
use crate::hashtree::{HashTree, MatchScratch};
use crate::types::{
    parse_transaction, Item, Itemset, MinerRun, MiningResult, PassTiming, Support,
    JVM_TREE_VISIT_UNITS,
};
use std::sync::Arc;
use yafim_cluster::{slice_bytes, EventKind, FxHashSet, SimCluster};
use yafim_mapreduce::{Emitter, MapReduceJob, MrError, MrRunner};

/// Abstract CPU units per naive candidate subset-check (a short merge scan
/// over two sorted lists in the Java baseline).
const NAIVE_CHECK_UNITS: u64 = 6;

/// How candidate occurrences are found in a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MrMatching {
    /// The classic Apriori hash tree (default — see module docs).
    #[default]
    HashTree,
    /// Scan the candidate list per transaction (pair enumeration at
    /// `k = 2`); the matching ablation's slow path.
    NaiveScan,
}

/// A built matcher for one candidate level.
enum LevelMatcher {
    /// Hash-tree descent.
    Tree(HashTree),
    /// `k = 2` naive: enumerate item pairs and probe a set.
    Pairs(FxHashSet<(Item, Item)>),
    /// `k ≥ 3` naive: linear scan with subset tests.
    Scan(Vec<Itemset>),
}

impl LevelMatcher {
    fn new(candidates: Vec<Itemset>, matching: MrMatching) -> Self {
        match matching {
            MrMatching::HashTree => LevelMatcher::Tree(HashTree::build(candidates)),
            MrMatching::NaiveScan => {
                if candidates.first().is_some_and(|c| c.len() == 2) {
                    LevelMatcher::Pairs(
                        candidates
                            .into_iter()
                            .map(|c| (c.items()[0], c.items()[1]))
                            .collect(),
                    )
                } else {
                    LevelMatcher::Scan(candidates)
                }
            }
        }
    }

    /// Emit every contained candidate; returns the CPU units spent.
    fn match_into(
        &self,
        t: &[Item],
        scratch: &mut MatchScratch,
        em: &mut Emitter<Itemset, u64>,
    ) -> u64 {
        match self {
            LevelMatcher::Tree(tree) => {
                let visits = tree.for_each_match(t, scratch, |idx| {
                    em.emit(tree.candidates()[idx].clone(), 1);
                });
                visits * JVM_TREE_VISIT_UNITS
            }
            LevelMatcher::Pairs(pairs) => {
                let mut units = 0;
                for i in 0..t.len() {
                    for j in i + 1..t.len() {
                        units += 2;
                        if pairs.contains(&(t[i], t[j])) {
                            em.emit(Itemset::from_sorted(vec![t[i], t[j]]), 1);
                        }
                    }
                }
                units
            }
            LevelMatcher::Scan(candidates) => {
                for c in candidates {
                    if c.is_subset_of_sorted(t) {
                        em.emit(c.clone(), 1);
                    }
                }
                candidates.len() as u64 * NAIVE_CHECK_UNITS
            }
        }
    }
}

/// Which job-combining scheme to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MrVariant {
    /// One job per pass (PApriori / SPC) — the paper's baseline.
    Spc,
    /// Combine a fixed number of consecutive passes per job (≥ 1).
    Fpc {
        /// Passes per job after the first.
        passes_per_job: usize,
    },
    /// Combine passes while the job's total candidate count stays below the
    /// threshold.
    Dpc {
        /// Maximum combined candidates per job.
        max_candidates: usize,
    },
}

/// Options for an MR-Apriori run.
#[derive(Clone, Debug)]
pub struct MrAprioriConfig {
    /// Minimum support threshold.
    pub min_support: Support,
    /// Reduce tasks per job (0 = one per virtual core).
    pub reduce_tasks: usize,
    /// Input split size override (None = HDFS block-sized splits).
    pub split_size: Option<u64>,
    /// Stop after this many passes (0 = run to fixpoint).
    pub max_passes: usize,
    /// Job-combining scheme.
    pub variant: MrVariant,
    /// Candidate-matching strategy.
    pub matching: MrMatching,
    /// Scheduler pool this run's jobs are attributed to (multi-job
    /// scheduling; see `yafim_cluster::JobQueue`).
    pub pool: String,
}

impl MrAprioriConfig {
    /// The paper's baseline setup: SPC, block splits, auto reduce tasks.
    pub fn new(min_support: Support) -> Self {
        MrAprioriConfig {
            min_support,
            reduce_tasks: 0,
            split_size: None,
            max_passes: 0,
            variant: MrVariant::Spc,
            matching: MrMatching::HashTree,
            pool: "default".to_string(),
        }
    }
}

/// The MR-Apriori miner bound to one virtual cluster.
pub struct MrApriori {
    runner: MrRunner,
    config: MrAprioriConfig,
}

impl MrApriori {
    /// A miner over `cluster` with `config`.
    pub fn new(cluster: SimCluster, config: MrAprioriConfig) -> Self {
        MrApriori {
            runner: MrRunner::new(cluster),
            config,
        }
    }

    /// Mine the text dataset at `input` on simulated HDFS.
    pub fn mine(&self, input: &str) -> Result<MinerRun, MrError> {
        let cluster = self.runner.cluster().clone();
        // Attribute the whole run to its scheduler pool; the guard reports
        // completion to any bound JobQueue ticket when dropped.
        let _job = cluster.acquire_job(&self.config.pool, "mr-apriori");
        let metrics = cluster.metrics().clone();
        let cost = cluster.cost().clone();
        let file = cluster.hdfs().get(input)?;
        let min_sup = self.config.min_support.resolve(file.num_lines() as u64);

        let run_start = metrics.now();
        let mut passes: Vec<PassTiming> = Vec::new();

        // ---- pass 1: frequent items, one job ----
        let pass1_start = metrics.now();
        let job = MapReduceJob::new(
            "MR-Apriori pass 1",
            input,
            |_off, line: &str, em: &mut Emitter<Itemset, u64>, w| {
                let items = parse_transaction(line);
                w.add_cpu(items.len() as u64);
                for item in items {
                    em.emit(Itemset::single(item), 1);
                }
            },
            move |k: &Itemset, vs: Vec<u64>, em: &mut Emitter<Itemset, u64>, _w| {
                let sum: u64 = vs.into_iter().sum();
                if sum >= min_sup {
                    em.emit(k.clone(), sum);
                }
            },
        )
        .with_combiner(|_k: &Itemset, vs: Vec<u64>| vs.into_iter().sum())
        .with_reduce_tasks(self.config.reduce_tasks)
        .with_output(
            format!("{input}.L1"),
            Arc::new(|k: &Itemset, v: &u64| format!("{k} {v}")),
        );
        let job = match self.config.split_size {
            Some(s) => job.with_split_size(s),
            None => job,
        };
        let result = self.runner.run(job)?;

        let mut l1: Vec<(Itemset, u64)> = result.pairs;
        l1.sort_by(|a, b| a.0.cmp(&b.0));
        metrics.record_span(EventKind::Iteration, "pass 1", pass1_start);
        passes.push(PassTiming {
            pass: 1,
            seconds: metrics.now().since(pass1_start).as_secs(),
            candidates: l1.len(),
            frequent: l1.len(),
        });

        if l1.is_empty() {
            return Ok(MinerRun {
                result: MiningResult::default(),
                total_seconds: metrics.now().since(run_start).as_secs(),
                passes,
            });
        }

        // ---- passes ≥ 2 ----
        let mut levels: Vec<Vec<(Itemset, u64)>> = vec![l1];
        let mut next_pass = 2usize;
        loop {
            if self.config.max_passes != 0 && next_pass > self.config.max_passes {
                break;
            }

            let pass_start = metrics.now();

            // Driver: generate the candidate levels this job will count.
            let seed: Vec<Itemset> = levels
                .last()
                .expect("levels never empty here")
                .iter()
                .map(|(s, _)| s.clone())
                .collect();
            let (level_candidates, gen_units) = self.job_candidates(&seed, next_pass);
            metrics.advance_with_event(
                cost.cpu(gen_units),
                EventKind::Driver,
                format!("ap_gen pass {next_pass}"),
            );
            if level_candidates.is_empty() {
                break;
            }
            let n_levels = level_candidates.len();
            let total_candidates: usize = level_candidates.iter().map(Vec::len).sum();

            // Driver: the candidate lists ship to the mappers via the
            // distributed cache, as serialized itemset text (PApriori).
            let side_bytes: u64 = level_candidates.iter().map(|l| slice_bytes(l)).sum();
            let matching = self.config.matching;
            let matchers: Arc<Vec<LevelMatcher>> = Arc::new(
                level_candidates
                    .into_iter()
                    .map(|c| LevelMatcher::new(c, matching))
                    .collect(),
            );
            let matchers_for_map = Arc::clone(&matchers);

            let label = if n_levels == 1 {
                format!("MR-Apriori pass {next_pass}")
            } else {
                format!(
                    "MR-Apriori passes {}-{}",
                    next_pass,
                    next_pass + n_levels - 1
                )
            };

            let job = MapReduceJob::new(
                label,
                input,
                move |_off, line: &str, em: &mut Emitter<Itemset, u64>, w| {
                    let items = parse_transaction(line);
                    w.add_cpu(items.len() as u64);
                    // One scratch per worker thread: the stamp buffer is the
                    // hot allocation of hash-tree matching.
                    thread_local! {
                        static SCRATCH: std::cell::RefCell<MatchScratch> =
                            std::cell::RefCell::new(MatchScratch::default());
                    }
                    SCRATCH.with(|s| {
                        let mut scratch = s.borrow_mut();
                        for matcher in matchers_for_map.iter() {
                            let units = matcher.match_into(&items, &mut scratch, em);
                            w.add_cpu(units);
                        }
                    });
                },
                move |k: &Itemset, vs: Vec<u64>, em: &mut Emitter<Itemset, u64>, _w| {
                    let sum: u64 = vs.into_iter().sum();
                    if sum >= min_sup {
                        em.emit(k.clone(), sum);
                    }
                },
            )
            .with_combiner(|_k: &Itemset, vs: Vec<u64>| vs.into_iter().sum())
            .with_reduce_tasks(self.config.reduce_tasks)
            .with_side_data(side_bytes)
            .with_output(
                format!("{input}.L{next_pass}"),
                Arc::new(|k: &Itemset, v: &u64| format!("{k} {v}")),
            );
            let job = match self.config.split_size {
                Some(s) => job.with_split_size(s),
                None => job,
            };
            let result = self.runner.run(job)?;

            // Split the job's output back into per-length levels.
            let mut new_levels: Vec<Vec<(Itemset, u64)>> = vec![Vec::new(); n_levels];
            for (set, c) in result.pairs {
                let slot = set.len() - next_pass;
                new_levels[slot].push((set, c));
            }
            let found: usize = new_levels.iter().map(Vec::len).sum();

            metrics.record_span(
                EventKind::Iteration,
                format!("pass {next_pass}"),
                pass_start,
            );
            passes.push(PassTiming {
                pass: next_pass,
                seconds: metrics.now().since(pass_start).as_secs(),
                candidates: total_candidates,
                frequent: found,
            });

            // Append levels until the first empty one; everything after an
            // empty level is unreachable by monotonicity.
            let mut stop = false;
            for level in new_levels {
                if level.is_empty() {
                    stop = true;
                    break;
                }
                let mut level = level;
                level.sort_by(|a, b| a.0.cmp(&b.0));
                levels.push(level);
            }
            if stop || found == 0 {
                break;
            }
            next_pass = levels
                .last()
                .expect("non-empty")
                .first()
                .expect("non-empty")
                .0
                .len()
                + 1;
        }

        Ok(MinerRun {
            result: MiningResult::from_levels(levels),
            total_seconds: metrics.now().since(run_start).as_secs(),
            passes,
        })
    }

    /// Candidate levels for one job, per the configured variant: level `k`
    /// from the frequent `(k-1)`-itemsets, further levels (FPC/DPC) chained
    /// from the previous *candidate* level (which preserves completeness —
    /// candidates are a superset of the frequent sets).
    fn job_candidates(&self, seed: &[Itemset], first_pass: usize) -> (Vec<Vec<Itemset>>, u64) {
        let max_levels = match self.config.variant {
            MrVariant::Spc => 1,
            MrVariant::Fpc { passes_per_job } => passes_per_job.max(1),
            MrVariant::Dpc { .. } => usize::MAX,
        };
        let mut units = 0u64;
        let mut out: Vec<Vec<Itemset>> = Vec::new();
        let mut current = seed.to_vec();
        let mut total = 0usize;
        for level in 0..max_levels {
            if self.config.max_passes != 0 && first_pass + level > self.config.max_passes {
                break;
            }
            let (cands, work) = ap_gen(&current);
            units += work.units();
            if cands.is_empty() {
                break;
            }
            if let MrVariant::Dpc { max_candidates } = self.config.variant {
                if !out.is_empty() && total + cands.len() > max_candidates {
                    break;
                }
            }
            total += cands.len();
            current = cands.clone();
            out.push(cands);
        }
        (out, units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::{apriori, SequentialConfig};
    use crate::types::Item;
    use yafim_cluster::{ClusterSpec, CostModel};

    fn cluster() -> SimCluster {
        SimCluster::with_threads(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era(), 4)
    }

    fn toy() -> Vec<Vec<Item>> {
        vec![vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]
    }

    fn put(cluster: &SimCluster, tx: &[Vec<Item>]) -> String {
        let lines: Vec<String> = tx
            .iter()
            .map(|t| t.iter().map(u32::to_string).collect::<Vec<_>>().join(" "))
            .collect();
        cluster.hdfs().put_overwrite("mr-in.dat", lines);
        "mr-in.dat".to_string()
    }

    #[test]
    fn spc_matches_sequential() {
        let c = cluster();
        let path = put(&c, &toy());
        let run = MrApriori::new(c, MrAprioriConfig::new(Support::Count(2)))
            .mine(&path)
            .unwrap();
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(run.result, seq);
        assert_eq!(
            run.passes.len(),
            3,
            "pass 4 generates no candidates, so no job runs"
        );
    }

    #[test]
    fn each_pass_is_one_job_under_spc() {
        let c = cluster();
        let path = put(&c, &toy());
        let run = MrApriori::new(c.clone(), MrAprioriConfig::new(Support::Count(2)))
            .mine(&path)
            .unwrap();
        assert_eq!(c.metrics().snapshot().jobs as usize, run.passes.len());
        // Each job pays the Hadoop fixed overhead.
        for p in &run.passes {
            assert!(p.seconds >= c.cost().mr_job_overhead, "pass {p:?}");
        }
    }

    #[test]
    fn intermediate_results_committed_to_hdfs() {
        let c = cluster();
        let path = put(&c, &toy());
        MrApriori::new(c.clone(), MrAprioriConfig::new(Support::Count(2)))
            .mine(&path)
            .unwrap();
        assert!(c.hdfs().exists("mr-in.dat.L1"));
        assert!(c.hdfs().exists("mr-in.dat.L2"));
        assert!(c.hdfs().exists("mr-in.dat.L3"));
    }

    #[test]
    fn fpc_matches_spc_results_with_fewer_jobs() {
        let c_spc = cluster();
        let c_fpc = cluster();
        let path_spc = put(&c_spc, &toy());
        let path_fpc = put(&c_fpc, &toy());

        let spc = MrApriori::new(c_spc.clone(), MrAprioriConfig::new(Support::Count(2)))
            .mine(&path_spc)
            .unwrap();
        let mut cfg = MrAprioriConfig::new(Support::Count(2));
        cfg.variant = MrVariant::Fpc { passes_per_job: 3 };
        let fpc = MrApriori::new(c_fpc.clone(), cfg).mine(&path_fpc).unwrap();

        assert_eq!(spc.result, fpc.result);
        assert!(
            c_fpc.metrics().snapshot().jobs < c_spc.metrics().snapshot().jobs,
            "FPC must run fewer jobs"
        );
    }

    #[test]
    fn dpc_matches_spc_results() {
        let c = cluster();
        let path = put(&c, &toy());
        let mut cfg = MrAprioriConfig::new(Support::Count(2));
        cfg.variant = MrVariant::Dpc {
            max_candidates: 100,
        };
        let dpc = MrApriori::new(c, cfg).mine(&path).unwrap();
        let seq = apriori(&toy(), &SequentialConfig::new(Support::Count(2)));
        assert_eq!(dpc.result, seq);
    }

    #[test]
    fn max_passes_truncates() {
        let c = cluster();
        let path = put(&c, &toy());
        let mut cfg = MrAprioriConfig::new(Support::Count(2));
        cfg.max_passes = 2;
        let run = MrApriori::new(c, cfg).mine(&path).unwrap();
        assert_eq!(run.result.max_len(), 2);
    }

    #[test]
    fn nothing_frequent() {
        let c = cluster();
        let path = put(&c, &toy());
        let run = MrApriori::new(c, MrAprioriConfig::new(Support::Count(50)))
            .mine(&path)
            .unwrap();
        assert_eq!(run.result.total(), 0);
        assert_eq!(run.passes.len(), 1);
    }

    #[test]
    fn missing_input_errors() {
        let miner = MrApriori::new(cluster(), MrAprioriConfig::new(Support::Count(1)));
        assert!(miner.mine("nope.dat").is_err());
    }
}
