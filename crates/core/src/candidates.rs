//! Candidate generation — `ap_gen` in the paper's Algorithm 3, line 2.
//!
//! `C_k = { a ∪ {b} | a ∈ L_{k-1}, b ∈ L_{k-1}, a and b share their first
//! k-2 items }`, followed by the monotonicity prune: drop any candidate with
//! an infrequent `(k-1)`-subset (Apriori's key search-space reduction,
//! Algorithm 1 line 5 / §II.A).

use crate::hashtree::MatchScratch;
use crate::types::{Item, Itemset};
use yafim_cluster::{ByteSize, FxHashSet};

/// A broadcastable candidate index answering `subset(C_k, t)` — which
/// candidates occur in a transaction. Implemented by the classic
/// [`HashTree`](crate::hashtree::HashTree) (the paper-faithful reference,
/// §IV.C) and the arena [`CandidateTrie`](crate::trie::CandidateTrie);
/// [`YafimConfig`](crate::yafim::YafimConfig) selects which one Phase II
/// broadcasts. Both report matches as indices into the same sorted candidate
/// list, so the engines are byte-identical across stores.
pub trait CandidateStore: Send + Sync {
    /// Candidate length `k` (0 for an empty store).
    fn k(&self) -> usize;

    /// Number of candidates.
    fn len(&self) -> usize;

    /// Whether the store holds no candidates.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The candidates, in insertion (= sorted) order; match callbacks
    /// receive indices into this slice.
    fn candidates(&self) -> &[Itemset];

    /// Consume the store, handing back the candidate list without cloning —
    /// how the driver drains the broadcast store once per pass.
    fn into_candidates(self: Box<Self>) -> Vec<Itemset>;

    /// Invoke `f(candidate index)` once per candidate contained in the
    /// sorted transaction `t`. Returns the node-visit/probe count (the
    /// virtual CPU work estimate).
    fn for_each_match_dyn(
        &self,
        t: &[Item],
        scratch: &mut MatchScratch,
        f: &mut dyn FnMut(usize),
    ) -> u64;

    /// Serialized size for broadcast accounting.
    fn store_bytes(&self) -> u64;

    /// Short label for span/report attribution (`"hash tree"`, `"trie"`).
    fn name(&self) -> &'static str;
}

impl ByteSize for Box<dyn CandidateStore> {
    fn byte_size(&self) -> u64 {
        self.store_bytes()
    }
}

/// A bare sorted candidate list, broadcastable as-is — what the vertical
/// bitmap strategy ships instead of a [`CandidateStore`]: the columnar
/// layout needs no per-transaction index, only the candidates themselves in
/// `ap_gen` order (indices into this list are the shuffle keys, exactly as
/// with the stores).
pub struct CandidateList(pub Vec<Itemset>);

impl ByteSize for CandidateList {
    fn byte_size(&self) -> u64 {
        8 + self.0.iter().map(ByteSize::byte_size).sum::<u64>()
    }
}

/// Work performed by one candidate-generation call, for driver-side CPU
/// accounting in the engines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GenWork {
    /// Join pairs examined.
    pub join_comparisons: u64,
    /// Subset lookups performed by the prune step.
    pub prune_checks: u64,
}

impl GenWork {
    /// Total abstract CPU units.
    pub fn units(&self) -> u64 {
        self.join_comparisons + self.prune_checks
    }
}

/// Generate the pruned candidate `(k+1)`-itemsets from the frequent
/// `k`-itemsets. `frequent` need not be sorted.
///
/// Returns the candidates (sorted) and the work counters.
///
/// ```
/// use yafim_core::{ap_gen, Itemset};
///
/// let l2: Vec<Itemset> = [[1, 2], [1, 3], [2, 3], [2, 4]]
///     .into_iter()
///     .map(|s| Itemset::new(s.to_vec()))
///     .collect();
/// let (c3, _work) = ap_gen(&l2);
/// // {1,2,3} joins and survives the prune; {2,3,4} dies ({3,4} infrequent).
/// assert_eq!(c3, vec![Itemset::new(vec![1, 2, 3])]);
/// ```
pub fn ap_gen(frequent: &[Itemset]) -> (Vec<Itemset>, GenWork) {
    let mut work = GenWork::default();
    if frequent.is_empty() {
        return (Vec::new(), work);
    }
    let k = frequent[0].len();
    debug_assert!(frequent.iter().all(|s| s.len() == k));

    let mut sorted: Vec<&Itemset> = frequent.iter().collect();
    sorted.sort();

    let lookup: FxHashSet<&Itemset> = frequent.iter().collect();

    let mut out = Vec::new();
    // Sorted order groups itemsets sharing a (k-1)-prefix contiguously.
    let mut i = 0;
    while i < sorted.len() {
        // Find the prefix-equal run [i, j).
        let prefix = &sorted[i].items()[..k - 1];
        let mut j = i + 1;
        while j < sorted.len() && &sorted[j].items()[..k - 1] == prefix {
            j += 1;
        }
        // Join every ordered pair within the run.
        for a in i..j {
            for b in a + 1..j {
                work.join_comparisons += 1;
                let last = sorted[b].items()[k - 1];
                let cand = sorted[a].extended_with(last);

                // Prune: every k-subset must be frequent. The two subsets
                // that produced the join are frequent by construction.
                let mut keep = true;
                for sub in cand.one_item_removed() {
                    work.prune_checks += 1;
                    if !lookup.contains(&sub) {
                        keep = false;
                        break;
                    }
                }
                if keep {
                    out.push(cand);
                }
            }
        }
        i = j;
    }
    out.sort();
    (out, work)
}

/// Reference implementation for tests: enumerate all `(k+1)`-itemsets over
/// the items appearing in `frequent` and keep those whose every `k`-subset
/// is frequent. Exponentially slower, obviously correct.
pub fn ap_gen_naive(frequent: &[Itemset]) -> Vec<Itemset> {
    if frequent.is_empty() {
        return Vec::new();
    }
    let k = frequent[0].len();
    let lookup: FxHashSet<&Itemset> = frequent.iter().collect();
    let mut items: Vec<u32> = frequent
        .iter()
        .flat_map(|s| s.items().iter().copied())
        .collect();
    items.sort_unstable();
    items.dedup();

    let mut out = Vec::new();
    let mut choice = vec![0usize; k + 1];
    // Enumerate strictly increasing index tuples of length k+1.
    fn rec(
        items: &[u32],
        choice: &mut Vec<usize>,
        depth: usize,
        start: usize,
        k1: usize,
        lookup: &FxHashSet<&Itemset>,
        out: &mut Vec<Itemset>,
    ) {
        if depth == k1 {
            let cand = Itemset::from_sorted(choice.iter().map(|&i| items[i]).collect());
            if cand.one_item_removed().all(|s| lookup.contains(&s)) {
                out.push(cand);
            }
            return;
        }
        for i in start..items.len() {
            choice[depth] = i;
            rec(items, choice, depth + 1, i + 1, k1, lookup, out);
        }
    }
    rec(&items, &mut choice, 0, 0, k + 1, &lookup, &mut out);
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(raw: &[&[u32]]) -> Vec<Itemset> {
        raw.iter().map(|s| Itemset::new(s.to_vec())).collect()
    }

    #[test]
    fn join_from_singletons() {
        let (c, w) = ap_gen(&sets(&[&[1], &[2], &[3]]));
        assert_eq!(c, sets(&[&[1, 2], &[1, 3], &[2, 3]]));
        assert_eq!(w.join_comparisons, 3);
    }

    #[test]
    fn prune_removes_candidates_with_infrequent_subsets() {
        // {1,2},{1,3},{2,3},{2,4}: join gives {1,2,3} (all subsets frequent)
        // and {2,3,4} (subset {3,4} missing → pruned).
        let (c, _) = ap_gen(&sets(&[&[1, 2], &[1, 3], &[2, 3], &[2, 4]]));
        assert_eq!(c, sets(&[&[1, 2, 3]]));
    }

    #[test]
    fn empty_input() {
        let (c, w) = ap_gen(&[]);
        assert!(c.is_empty());
        assert_eq!(w.units(), 0);
    }

    #[test]
    fn single_itemset_generates_nothing() {
        let (c, _) = ap_gen(&sets(&[&[1, 2]]));
        assert!(c.is_empty());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let (a, _) = ap_gen(&sets(&[&[3], &[1], &[2]]));
        let (b, _) = ap_gen(&sets(&[&[1], &[2], &[3]]));
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_with_naive_reference() {
        let frequents = [
            sets(&[&[1], &[2], &[4], &[7]]),
            sets(&[&[1, 2], &[1, 3], &[1, 4], &[2, 3], &[2, 4], &[3, 4]]),
            sets(&[&[1, 2, 3], &[1, 2, 4], &[1, 3, 4], &[2, 3, 4], &[2, 3, 5]]),
        ];
        for f in &frequents {
            let (fast, _) = ap_gen(f);
            assert_eq!(fast, ap_gen_naive(f), "input {f:?}");
        }
    }

    #[test]
    fn full_l2_joins_to_full_c3() {
        // All six 2-subsets of {1..4} frequent → all four 3-subsets survive.
        let (c, _) = ap_gen(&sets(&[
            &[1, 2],
            &[1, 3],
            &[1, 4],
            &[2, 3],
            &[2, 4],
            &[3, 4],
        ]));
        assert_eq!(c, sets(&[&[1, 2, 3], &[1, 2, 4], &[1, 3, 4], &[2, 3, 4]]));
    }
}
