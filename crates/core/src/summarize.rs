//! Condensed representations of a mining result: **maximal** and **closed**
//! frequent itemsets.
//!
//! The paper's related work cites Bayardo's long-pattern mining (ref \[2\]),
//! whose central idea is that the full frequent-itemset collection is
//! hugely redundant: it is determined by its maximal elements, and exact
//! supports are determined by the closed ones. These utilities post-process
//! any [`MiningResult`] into either condensed form — useful when presenting
//! mined relationships (the medical example reports closed sets to avoid
//! drowning the reader in subsets).

use crate::types::{Itemset, MiningResult};

/// The maximal frequent itemsets: those with no frequent superset.
/// Returned largest-first, each with its support.
pub fn maximal_itemsets(result: &MiningResult) -> Vec<(Itemset, u64)> {
    let mut out: Vec<(Itemset, u64)> = Vec::new();
    // Walk levels from the longest down; an itemset is maximal iff no
    // already-accepted (longer) itemset contains it.
    for k in (1..=result.max_len()).rev() {
        for (set, sup) in result.level(k) {
            let covered = out
                .iter()
                .any(|(bigger, _)| set.is_subset_of_sorted(bigger.items()));
            if !covered {
                out.push((set.clone(), *sup));
            }
        }
    }
    out
}

/// The closed frequent itemsets: those with no superset of *equal* support.
/// Returned largest-first, each with its support.
pub fn closed_itemsets(result: &MiningResult) -> Vec<(Itemset, u64)> {
    let mut out = Vec::new();
    for k in 1..=result.max_len() {
        for (set, sup) in result.level(k) {
            // Closed iff no (k+1)-superset has the same support. By
            // monotonicity a superset's support never exceeds the subset's,
            // so checking the next level suffices.
            let absorbed = result
                .level(k + 1)
                .iter()
                .any(|(bigger, bsup)| bsup == sup && set.is_subset_of_sorted(bigger.items()));
            if !absorbed {
                out.push((set.clone(), *sup));
            }
        }
    }
    out.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::{apriori, SequentialConfig};
    use crate::types::Support;

    fn toy_result() -> MiningResult {
        // {1,3,4}, {2,3,5}, {1,2,3,5}, {2,5} at minsup 2.
        let tx = vec![vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]];
        apriori(&tx, &SequentialConfig::new(Support::Count(2)))
    }

    #[test]
    fn maximal_sets_cover_everything() {
        let r = toy_result();
        let max = maximal_itemsets(&r);
        // Every frequent itemset is a subset of some maximal one.
        for (set, _) in r.iter() {
            assert!(
                max.iter().any(|(m, _)| set.is_subset_of_sorted(m.items())),
                "{set} not covered"
            );
        }
        // No maximal set contains another.
        for (i, (a, _)) in max.iter().enumerate() {
            for (j, (b, _)) in max.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset_of_sorted(b.items()), "{a} ⊆ {b}");
                }
            }
        }
        // The known answer: {2,3,5}, {1,3} and {1,2}/{1,5}-family members.
        assert!(max.iter().any(|(m, _)| m == &Itemset::new(vec![2, 3, 5])));
        assert!(max.len() < r.total());
    }

    #[test]
    fn closed_sets_preserve_all_supports() {
        let r = toy_result();
        let closed = closed_itemsets(&r);
        // Every frequent itemset's support equals the max support of a
        // closed superset (the defining property of the closed condensate).
        for (set, sup) in r.iter() {
            let derived = closed
                .iter()
                .filter(|(c, _)| set.is_subset_of_sorted(c.items()))
                .map(|(_, s)| *s)
                .max();
            assert_eq!(derived, Some(*sup), "support of {set} not derivable");
        }
        assert!(closed.len() <= r.total());
    }

    #[test]
    fn maximal_is_subset_of_closed() {
        // Every maximal itemset is closed (no superset at all, let alone an
        // equal-support one).
        let r = toy_result();
        let closed = closed_itemsets(&r);
        for (m, sup) in maximal_itemsets(&r) {
            assert!(
                closed.iter().any(|(c, cs)| *c == m && *cs == sup),
                "maximal {m} missing from closed"
            );
        }
    }

    #[test]
    fn empty_result() {
        let r = MiningResult::default();
        assert!(maximal_itemsets(&r).is_empty());
        assert!(closed_itemsets(&r).is_empty());
    }

    #[test]
    fn single_level_all_maximal() {
        let tx: Vec<Vec<u32>> = (0..4).map(|i| vec![i]).collect();
        let r = apriori(&tx, &SequentialConfig::new(Support::Count(1)));
        assert_eq!(maximal_itemsets(&r).len(), 4);
        assert_eq!(closed_itemsets(&r).len(), 4);
    }
}
