//! # yafim-rdd — a mini-Spark over the virtual cluster
//!
//! The YAFIM paper is an algorithm *on Spark*; reproducing it without Spark
//! means building the part of Spark it relies on. This crate implements that
//! part, from scratch, over the [`yafim_cluster`] substrate:
//!
//! * **Typed RDDs with lineage** ([`Rdd`]): `map`, `flat_map`, `filter`,
//!   `map_partitions`, `union`, `reduce_by_key`, and the `collect`/`count`
//!   actions — the exact operator set in the paper's Fig. 1 and Fig. 2
//!   lineage graphs.
//! * **A DAG scheduler** (internal): jobs split into stages at shuffle
//!   boundaries; shuffle map stages run bottom-up before their consumers.
//! * **In-memory caching** ([`Rdd::cache`]): partitions persist on their home
//!   node's memory budget with LRU eviction; lost/evicted partitions are
//!   recomputed through the lineage (fault tolerance without replication,
//!   §II.B of the paper).
//! * **Broadcast variables** ([`Context::broadcast`]): torrent-style per-node
//!   distribution, plus the naive per-task mode the paper contrasts it with
//!   in §IV.C.
//!
//! Execution is real (tasks run on a thread pool and process actual data);
//! *time* is virtual and deterministic — every task's work counters are
//! converted to a duration by the cluster's cost model and list-scheduled
//! onto the virtual cores.
//!
//! Within a stage, narrow-operator chains run as **fused iterator
//! pipelines** (Spark's whole-stage pipelining): partition buffers exist
//! only at pipeline breakers — shuffle map-side writes, cache
//! inserts/reads, and driver fetches. [`ExecMode::Eager`] retains the
//! naive per-operator evaluator as a cross-checking reference.
//!
//! ```
//! use yafim_cluster::SimCluster;
//! use yafim_rdd::Context;
//!
//! let ctx = Context::new(SimCluster::paper_cluster());
//! let counts = ctx
//!     .parallelize(vec!["a b", "b c", "c b"].into_iter().map(String::from).collect())
//!     .flat_map(|line: String| {
//!         line.split_whitespace().map(str::to_string).collect::<Vec<_>>()
//!     })
//!     .map(|w| (w, 1u64))
//!     .reduce_by_key(|a, b| a + b)
//!     .collect();
//! let b = counts.iter().find(|(w, _)| w == "b").unwrap();
//! assert_eq!(b.1, 3);
//! ```

mod cache;
mod context;
mod exec;
mod ops;
mod rdd;
mod shuffle;
mod task;

pub use cache::{CacheManager, CacheStats, CacheTier, StorageLevel};
pub use context::{Broadcast, BroadcastMode, Context, ExecMode, RddConfig};
pub use exec::{ExecError, FaultInjection, NodeLossReport};
pub use rdd::{Data, Rdd};
pub use task::TaskContext;

#[cfg(test)]
mod tests {
    use super::*;
    use yafim_cluster::{ClusterSpec, CostModel, EventKind, SimCluster};

    fn small_cluster() -> SimCluster {
        SimCluster::with_threads(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era(), 4)
    }

    fn ctx() -> Context {
        Context::new(small_cluster())
    }

    #[test]
    fn parallelize_collect_roundtrip() {
        let c = ctx();
        let data: Vec<u32> = (0..1000).collect();
        let rdd = c.parallelize_with_partitions(data.clone(), 7);
        assert_eq!(rdd.num_partitions(), 7);
        assert_eq!(rdd.collect(), data);
    }

    #[test]
    fn map_filter_chain() {
        let c = ctx();
        let out = c
            .parallelize((0u32..100).collect())
            .map(|x| x * 2)
            .filter(|x| x % 3 == 0)
            .collect();
        let expected: Vec<u32> = (0..100).map(|x| x * 2).filter(|x| x % 3 == 0).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn flat_map_expands() {
        let c = ctx();
        let out = c
            .parallelize(vec![1u32, 2, 3])
            .flat_map(|x| vec![x; x as usize])
            .count();
        assert_eq!(out, 6);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let c = ctx();
        let rdd = c.parallelize_with_partitions((0u32..10).collect(), 2);
        let sums = rdd.map_partitions(|part, tc| {
            tc.add_cpu(part.len() as u64);
            vec![part.iter().sum::<u32>()]
        });
        let total: u32 = sums.collect().iter().sum();
        assert_eq!(total, 45);
    }

    #[test]
    fn reduce_by_key_counts_words() {
        let c = ctx();
        let words: Vec<String> = "a b a c b a".split_whitespace().map(String::from).collect();
        let mut out = c
            .parallelize_with_partitions(words, 3)
            .map(|w| (w, 1u64))
            .reduce_by_key(|x, y| x + y)
            .collect();
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
    }

    #[test]
    fn reduce_by_key_equals_hash_group_fold() {
        let c = ctx();
        let pairs: Vec<(u32, u64)> = (0..500).map(|i| (i % 17, (i % 5 + 1) as u64)).collect();
        let mut expected = std::collections::HashMap::new();
        for (k, v) in &pairs {
            *expected.entry(*k).or_insert(0u64) += v;
        }
        let out = c
            .parallelize_with_partitions(pairs, 9)
            .reduce_by_key_with_partitions(|a, b| a + b, 4)
            .collect();
        assert_eq!(out.len(), expected.len());
        for (k, v) in out {
            assert_eq!(expected[&k], v, "key {k}");
        }
    }

    #[test]
    fn union_concatenates() {
        let c = ctx();
        let a = c.parallelize_with_partitions(vec![1u32, 2], 2);
        let b = c.parallelize_with_partitions(vec![3u32, 4, 5], 2);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 4);
        assert_eq!(u.collect(), vec![1, 2, 3, 4, 5]);
        assert_eq!(u.count(), 5);
    }

    #[test]
    fn take_truncates() {
        let c = ctx();
        let rdd = c.parallelize((0u32..50).collect());
        assert_eq!(rdd.take(3), vec![0, 1, 2]);
    }

    #[test]
    fn text_file_reads_hdfs() {
        let cluster = small_cluster();
        let lines: Vec<String> = (0..100).map(|i| format!("t{i}")).collect();
        cluster.hdfs().put("in.txt", lines.clone()).unwrap();
        let c = Context::new(cluster);
        let rdd = c.text_file("in.txt", 8).unwrap();
        assert!(rdd.num_partitions() >= 8);
        assert_eq!(rdd.collect(), lines);
    }

    #[test]
    fn text_file_missing_errors() {
        let c = ctx();
        assert!(c.text_file("missing", 1).is_err());
    }

    #[test]
    fn actions_advance_virtual_clock() {
        let c = ctx();
        let rdd = c.parallelize((0u32..100).collect());
        let before = c.metrics().now();
        rdd.count();
        let after = c.metrics().now();
        assert!(after > before, "count must cost virtual time");
        assert!(c.metrics().snapshot().jobs >= 1);
        assert!(c.metrics().snapshot().stages >= 1);
    }

    #[test]
    fn caching_makes_second_action_cheaper() {
        let c = ctx();
        let rdd = c
            .parallelize_with_partitions((0u64..200_000).collect(), 8)
            .map(|x| x + 1)
            .cache();
        let t0 = c.metrics().now();
        rdd.count();
        let t1 = c.metrics().now();
        rdd.count();
        let t2 = c.metrics().now();
        let first = t1.since(t0);
        let second = t2.since(t1);
        assert!(
            second < first,
            "cached re-read ({second:?}) should beat recompute ({first:?})"
        );
        assert!(c.cache().stats().hits >= 8);
    }

    #[test]
    fn memory_and_disk_spills_under_pressure() {
        // A cache far too small for the data: MemoryOnly recomputes,
        // MemoryAndDisk serves from the disk tier.
        let cluster = small_cluster();
        let mut cfg = RddConfig::for_cluster(&cluster);
        cfg.cache_capacity_per_node = Some(64); // bytes!
        let c = Context::with_config(cluster, cfg);
        let rdd = c
            .parallelize_with_partitions((0u64..10_000).collect(), 8)
            .persist(StorageLevel::MemoryAndDisk);
        let first = rdd.collect();
        let second = rdd.collect();
        assert_eq!(first, second);
        let stats = c.cache().stats();
        assert!(
            stats.disk_hits >= 8,
            "second pass served from disk: {stats:?}"
        );
        assert_eq!(stats.hits, 0, "nothing fit in 64 bytes of memory");
        // And the disk tier is still cheaper than the lineage (virtual I/O
        // differs, correctness identical).
        rdd.unpersist();
        assert_eq!(c.cache().stats().disk_entries, 0);
    }

    #[test]
    fn spilled_partitions_on_lost_node_drop_and_recompute() {
        use yafim_cluster::NodeId;
        // Everything spills: the disk tier holds all 8 partitions, spread
        // round-robin over the nodes' local disks. Losing a node must drop
        // exactly its spilled partitions; the next action recomputes them
        // via lineage with identical results.
        let cluster = small_cluster();
        let mut cfg = RddConfig::for_cluster(&cluster);
        cfg.cache_capacity_per_node = Some(64); // bytes!
        let c = Context::with_config(cluster, cfg);
        let rdd = c
            .parallelize_with_partitions((0u64..10_000).collect(), 8)
            .map(|x| x * 7)
            .persist(StorageLevel::MemoryAndDisk);
        let baseline = rdd.collect();
        let before = c.cache().stats();
        assert!(
            before.disk_entries > 0 && before.disk_bytes > 0,
            "partitions must have spilled: {before:?}"
        );

        let report = c.lose_node(NodeId(1));
        assert!(
            report.cached_partitions_dropped > 0,
            "node 1 held spilled partitions"
        );
        let after = c.cache().stats();
        assert!(
            after.disk_entries < before.disk_entries,
            "the lost node's spilled partitions must be gone"
        );
        assert!(after.disk_bytes < before.disk_bytes);

        assert_eq!(
            rdd.collect(),
            baseline,
            "lineage recompute must be identical"
        );

        rdd.unpersist();
        let end = c.cache().stats();
        assert_eq!(
            (end.disk_entries, end.disk_bytes),
            (0, 0),
            "disk tier must drain to zero"
        );
    }

    #[test]
    fn unpersist_drops_cache() {
        let c = ctx();
        let rdd = c.parallelize((0u32..100).collect()).cache();
        rdd.count();
        assert!(c.cache().stats().entries > 0);
        rdd.unpersist();
        assert_eq!(c.cache().stats().entries, 0);
        // Still computes correctly via lineage.
        assert_eq!(rdd.count(), 100);
    }

    #[test]
    fn lost_cached_partition_recomputes_identically() {
        let c = ctx();
        let rdd = c
            .parallelize_with_partitions((0u32..100).collect(), 5)
            .map(|x| x * 3)
            .cache();
        let first = rdd.collect();
        assert!(c.drop_cached_partition(rdd.id(), 2));
        let second = rdd.collect();
        assert_eq!(first, second, "lineage recompute must be identical");
    }

    #[test]
    fn lost_shuffle_recomputes_identically() {
        let c = ctx();
        let rdd = c
            .parallelize_with_partitions((0u32..300).map(|i| (i % 7, 1u64)).collect(), 6)
            .reduce_by_key(|a, b| a + b);
        let first = rdd.collect();
        assert_eq!(c.materialized_shuffles(), 1);
        assert!(c.drop_shuffle(rdd.id()));
        assert_eq!(c.materialized_shuffles(), 0);
        let second = rdd.collect();
        assert_eq!(first, second);
        assert_eq!(c.materialized_shuffles(), 1, "map stage re-ran");
    }

    #[test]
    fn lost_node_invalidates_cache_and_shuffle_and_recovers() {
        use yafim_cluster::NodeId;
        let c = ctx();
        let cached = c
            .parallelize_with_partitions((0u32..400).collect(), 8)
            .map(|x| x / 2)
            .cache();
        let reduced = cached.map(|x| (x % 5, 1u64)).reduce_by_key(|a, b| a + b);
        let baseline_cached = cached.collect();
        let baseline_reduced = reduced.collect();

        let report = c.lose_node(NodeId(1));
        assert_eq!(report.node, NodeId(1));
        assert!(
            report.cached_partitions_dropped > 0,
            "node 1 held cached partitions"
        );
        assert!(
            report.map_outputs_lost > 0,
            "node 1 held shuffle map outputs"
        );
        // The shuffle stays registered — only the dead node's map outputs
        // are holed, to be resubmitted by the next consumer.
        assert_eq!(c.materialized_shuffles(), 1);

        let stages_before = c.metrics().snapshot().stages;
        assert_eq!(cached.collect(), baseline_cached);
        assert_eq!(reduced.collect(), baseline_reduced);
        let snap = c.metrics().snapshot();
        assert!(
            snap.stages > stages_before + 1,
            "a map resubmission stage must run in addition to the final stages"
        );
        assert_eq!(snap.recovery.nodes_lost, 1);
        assert_eq!(
            snap.recovery.fetch_failures as usize,
            report.map_outputs_lost
        );
        assert!(snap.recovery.recomputed_partitions > 0);

        // Killing the same node again is a no-op.
        let again = c.lose_node(NodeId(1));
        assert_eq!(again.cached_partitions_dropped, 0);
        assert_eq!(again.map_outputs_lost, 0);
    }

    #[test]
    fn planned_node_loss_mid_job_keeps_results_identical() {
        use yafim_cluster::{FaultPlan, NodeId, SimDuration, SimInstant};
        let job = |c: &Context| {
            c.parallelize_with_partitions((0u32..500).map(|i| (i % 11, 1u64)).collect(), 10)
                .reduce_by_key(|a, b| a + b)
                .collect()
        };
        let healthy = ctx();
        let expected = job(&healthy);
        let healthy_time = healthy.metrics().now();

        let c = ctx();
        c.cluster().faults().set_plan(
            FaultPlan::seeded(7)
                .lose_node_at(NodeId(2), SimInstant::EPOCH + SimDuration::from_secs(0.05)),
        );
        assert_eq!(job(&c), expected, "node loss must not change results");
        let snap = c.metrics().snapshot();
        assert_eq!(snap.recovery.nodes_lost, 1);
        assert!(
            c.metrics().now() >= healthy_time,
            "recovery can only add virtual time"
        );
    }

    #[test]
    fn exhausted_retries_abort_with_descriptive_error() {
        use yafim_cluster::FaultPlan;
        let c = ctx();
        c.cluster()
            .faults()
            .set_plan(FaultPlan::seeded(3).crash_tasks(1.0));
        let err = c
            .parallelize((0u32..100).collect())
            .map(|x| x + 1)
            .try_collect()
            .expect_err("every attempt crashes, the job must abort");
        let msg = err.to_string();
        assert!(msg.contains("max_task_failures"), "got: {msg}");
        assert!(msg.contains("aborted"), "got: {msg}");
    }

    #[test]
    fn shuffle_reused_across_actions() {
        let c = ctx();
        let rdd = c
            .parallelize((0u32..100).map(|i| (i % 3, 1u64)).collect())
            .reduce_by_key(|a, b| a + b);
        rdd.count();
        let stages_after_first = c.metrics().snapshot().stages;
        rdd.count();
        let stages_after_second = c.metrics().snapshot().stages;
        // Second action re-runs only the final stage, not the map stage.
        assert_eq!(stages_after_second - stages_after_first, 1);
    }

    #[test]
    fn broadcast_charges_time_and_derefs() {
        let c = ctx();
        let before = c.metrics().now();
        let b = c.broadcast(vec![1u32; 100_000]);
        assert!(c.metrics().now() > before);
        assert_eq!(b.len(), 100_000);
        assert_eq!(b.bytes(), 8 + 400_000);
        assert_eq!(c.metrics().events_of(EventKind::Broadcast).len(), 1);
    }

    #[test]
    fn naive_broadcast_costs_more() {
        let cluster_a = small_cluster();
        let cluster_b = small_cluster();
        let torrent = Context::new(cluster_a);
        let mut cfg = RddConfig::for_cluster(torrent.cluster());
        cfg.broadcast = BroadcastMode::NaivePerTask;
        let naive = Context::with_config(cluster_b, cfg);

        let payload: Vec<u32> = vec![0; 1_000_000];
        torrent.broadcast(payload.clone());
        naive.broadcast(payload);
        assert!(
            naive.metrics().now() > torrent.metrics().now(),
            "per-task shipping must cost more than torrent broadcast"
        );
    }

    #[test]
    fn empty_rdd_works() {
        let c = ctx();
        let rdd = c.parallelize(Vec::<u32>::new());
        assert_eq!(rdd.collect(), Vec::<u32>::new());
        assert_eq!(rdd.count(), 0);
        let reduced = rdd.map(|x| (x, 1u64)).reduce_by_key(|a, b| a + b);
        assert_eq!(reduced.count(), 0);
    }

    #[test]
    fn union_of_two_branches_over_one_shuffle_prepares_it_once() {
        let c = ctx();
        let reduced = c
            .parallelize((0u32..60).map(|i| (i % 6, 1u64)).collect())
            .reduce_by_key(|a, b| a + b);
        // Two independent branches over the same shuffle, then a union: the
        // executor must deduplicate the shared dependency.
        let evens = reduced.filter(|(k, _)| k % 2 == 0);
        let odds = reduced.filter(|(k, _)| k % 2 == 1);
        let mut out = evens.union(&odds).collect();
        out.sort();
        assert_eq!(out, (0u32..6).map(|k| (k, 10u64)).collect::<Vec<_>>());
        assert_eq!(c.materialized_shuffles(), 1, "one shuffle, prepared once");
    }

    #[test]
    fn chained_shuffles() {
        let c = ctx();
        // Two shuffles in one lineage: count pairs, then count counts.
        let out = c
            .parallelize((0u32..100).map(|i| (i % 10, 1u64)).collect())
            .reduce_by_key(|a, b| a + b) // 10 keys, each 10
            .map(|(_, v)| (v, 1u64))
            .reduce_by_key(|a, b| a + b) // one key: (10, 10)
            .collect();
        assert_eq!(out, vec![(10, 10)]);
    }
}
