//! The block-manager equivalent: storage for cached RDD partitions.
//!
//! Each cached partition lives on its home node and counts against that
//! node's memory budget. When a node's budget is exceeded the least recently
//! used partition on that node is evicted; what eviction *means* depends on
//! the partition's [`StorageLevel`]:
//!
//! * [`StorageLevel::MemoryOnly`] (Spark's default, and what the paper's
//!   YAFIM uses) — the partition is dropped and a later read recomputes it
//!   through the lineage;
//! * [`StorageLevel::MemoryAndDisk`] — the partition is demoted to the
//!   node-local disk tier; later reads pay a disk scan instead of a
//!   recompute.
//!
//! The cache is also a *pipeline breaker*: a cache insert materializes the
//! partition into an `Arc<Vec<T>>`, and a cache hit hands that shared buffer
//! straight to the reader's fused pipeline without cloning it.
//!
//! This is what makes the "memory utilization" discussion of the paper's
//! §IV.B (and the cache ablation bench) observable.

use std::any::Any;
use std::sync::Arc;
use yafim_cluster::sync::Mutex;
use yafim_cluster::{ClusterSpec, FxHashMap, FxHashSet};

/// How a cached partition behaves under memory pressure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StorageLevel {
    /// Keep in memory; evict = drop (recompute later). Spark's default.
    #[default]
    MemoryOnly,
    /// Keep in memory; evict = spill to node-local disk.
    MemoryAndDisk,
}

/// Where a cache hit was served from (drives the virtual I/O charge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheTier {
    /// In-memory hit: charged as a memory scan.
    Memory,
    /// Disk-tier hit: charged as a node-local disk read.
    Disk,
}

/// Statistics over the lifetime of a cache manager.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Successful in-memory lookups.
    pub hits: u64,
    /// Successful disk-tier lookups.
    pub disk_hits: u64,
    /// Lookups that missed entirely (never stored, or dropped).
    pub misses: u64,
    /// Partitions evicted from memory (dropped or spilled).
    pub evictions: u64,
    /// Partitions currently in memory.
    pub entries: usize,
    /// Partitions currently on the disk tier.
    pub disk_entries: usize,
    /// Bytes currently held in memory across all nodes.
    pub used_bytes: u64,
    /// Bytes currently held on the disk tier across all nodes.
    pub disk_bytes: u64,
    /// High-water mark of in-memory bytes across all nodes — what the
    /// cluster actually had to provision for this workload (replaced RDDs
    /// count until unpersisted).
    pub peak_bytes: u64,
}

struct Entry {
    data: Arc<dyn Any + Send + Sync>,
    bytes: u64,
    node: usize,
    last_use: u64,
    level: StorageLevel,
}

struct DiskEntry {
    data: Arc<dyn Any + Send + Sync>,
    bytes: u64,
    /// Node whose local disk holds the spilled partition (node loss drops
    /// the disk tier too).
    node: usize,
}

struct Inner {
    entries: FxHashMap<(u64, usize), Entry>,
    disk: FxHashMap<(u64, usize), DiskEntry>,
    used: Vec<u64>,
    disk_used: u64,
    tick: u64,
    hits: u64,
    disk_hits: u64,
    misses: u64,
    evictions: u64,
    peak_bytes: u64,
    /// Partitions dropped by a node loss and not yet re-read. The next
    /// cache miss on one of these is a genuine lineage *replay*, which the
    /// recovery counters attribute with its replay depth.
    lost: FxHashSet<(u64, usize)>,
}

/// Thread-safe cache of `(rdd id, partition) → Arc<Vec<T>>`.
pub struct CacheManager {
    inner: Mutex<Inner>,
    capacity_per_node: u64,
    nodes: usize,
}

impl CacheManager {
    /// Cache sized from the cluster spec (a fraction of node memory is
    /// reserved for execution, as in Spark; storage gets the default 60%).
    pub fn new(spec: &ClusterSpec) -> Self {
        Self::with_fraction(spec, yafim_cluster::jobs::DEFAULT_STORAGE_FRACTION)
    }

    /// Cache sized as `storage_fraction` of node memory — the scheduler
    /// config's storage/execution split. The 0.6 default reproduces the
    /// historical `* 6 / 10` integer math bit-for-bit (see
    /// [`yafim_cluster::storage_capacity`]).
    pub fn with_fraction(spec: &ClusterSpec, storage_fraction: f64) -> Self {
        Self::with_capacity(
            spec.nodes as usize,
            yafim_cluster::storage_capacity(spec.memory_per_node, storage_fraction),
        )
    }

    /// Explicit per-node capacity (tests and the cache-pressure ablation).
    pub fn with_capacity(nodes: usize, capacity_per_node: u64) -> Self {
        CacheManager {
            inner: Mutex::new(Inner {
                entries: FxHashMap::default(),
                disk: FxHashMap::default(),
                used: vec![0; nodes],
                disk_used: 0,
                tick: 0,
                hits: 0,
                disk_hits: 0,
                misses: 0,
                evictions: 0,
                peak_bytes: 0,
                lost: FxHashSet::default(),
            }),
            capacity_per_node,
            nodes,
        }
    }

    /// Look up a cached partition in memory, then on the disk tier. Returns
    /// the shared data, its byte size, and the tier that served it.
    pub fn get<T: Send + Sync + 'static>(
        &self,
        rdd: u64,
        part: usize,
    ) -> Option<(Arc<Vec<T>>, u64, CacheTier)> {
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        if let Some(e) = g.entries.get_mut(&(rdd, part)) {
            e.last_use = tick;
            let data = Arc::clone(&e.data)
                .downcast::<Vec<T>>()
                .expect("cached partition type mismatch");
            let bytes = e.bytes;
            g.hits += 1;
            return Some((data, bytes, CacheTier::Memory));
        }
        if let Some(e) = g.disk.get(&(rdd, part)) {
            let data = Arc::clone(&e.data)
                .downcast::<Vec<T>>()
                .expect("cached partition type mismatch");
            let bytes = e.bytes;
            g.disk_hits += 1;
            return Some((data, bytes, CacheTier::Disk));
        }
        g.misses += 1;
        None
    }

    /// Store a partition on `node`'s memory budget at the given level,
    /// evicting LRU entries on that node as needed (drop or spill according
    /// to each victim's own level). Returns `false` (and stores nothing in
    /// memory) if the partition alone exceeds the node budget — except that
    /// a `MemoryAndDisk` partition then goes straight to disk and `true` is
    /// returned.
    pub fn put<T: Send + Sync + 'static>(
        &self,
        rdd: u64,
        part: usize,
        node: usize,
        data: Arc<Vec<T>>,
        bytes: u64,
        level: StorageLevel,
    ) -> bool {
        assert!(node < self.nodes, "node out of range");
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;

        // Replacing an existing entry frees its bytes first.
        if let Some(old) = g.entries.remove(&(rdd, part)) {
            g.used[old.node] -= old.bytes;
        }
        if let Some(old) = g.disk.remove(&(rdd, part)) {
            g.disk_used -= old.bytes;
        }

        if bytes > self.capacity_per_node {
            return match level {
                StorageLevel::MemoryOnly => false,
                StorageLevel::MemoryAndDisk => {
                    g.disk_used += bytes;
                    g.disk.insert((rdd, part), DiskEntry { data, bytes, node });
                    true
                }
            };
        }

        while g.used[node] + bytes > self.capacity_per_node {
            // Evict the least recently used entry on this node.
            let victim = g
                .entries
                .iter()
                .filter(|(_, e)| e.node == node)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    let e = g.entries.remove(&k).expect("victim exists");
                    g.used[e.node] -= e.bytes;
                    g.evictions += 1;
                    if e.level == StorageLevel::MemoryAndDisk {
                        g.disk_used += e.bytes;
                        g.disk.insert(
                            k,
                            DiskEntry {
                                data: e.data,
                                bytes: e.bytes,
                                node: e.node,
                            },
                        );
                    }
                }
                None => break, // nothing left to evict; shouldn't happen given the size guard
            }
        }

        g.used[node] += bytes;
        let total: u64 = g.used.iter().sum();
        g.peak_bytes = g.peak_bytes.max(total);
        g.entries.insert(
            (rdd, part),
            Entry {
                data,
                bytes,
                node,
                last_use: tick,
                level,
            },
        );
        true
    }

    /// Drop one cached partition from every tier (fault injection /
    /// unpersist). Returns whether it was present anywhere.
    pub fn evict(&self, rdd: u64, part: usize) -> bool {
        let mut g = self.inner.lock();
        let mut found = false;
        if let Some(e) = g.entries.remove(&(rdd, part)) {
            g.used[e.node] -= e.bytes;
            found = true;
        }
        if let Some(e) = g.disk.remove(&(rdd, part)) {
            g.disk_used -= e.bytes;
            found = true;
        }
        found
    }

    /// Drop every partition held on one node, both tiers — what losing the
    /// node's executor and its local disk means for the block manager.
    /// Returns how many partitions were lost (each will be recomputed
    /// through its lineage on the next read).
    pub fn evict_node(&self, node: usize) -> usize {
        let mut g = self.inner.lock();
        let mem_keys: Vec<_> = g
            .entries
            .iter()
            .filter(|(_, e)| e.node == node)
            .map(|(k, _)| *k)
            .collect();
        for k in &mem_keys {
            let e = g.entries.remove(k).expect("key just listed");
            g.used[e.node] -= e.bytes;
        }
        let disk_keys: Vec<_> = g
            .disk
            .iter()
            .filter(|(_, e)| e.node == node)
            .map(|(k, _)| *k)
            .collect();
        for k in &disk_keys {
            let e = g.disk.remove(k).expect("key just listed");
            g.disk_used -= e.bytes;
        }
        for k in mem_keys.iter().chain(&disk_keys) {
            g.lost.insert(*k);
        }
        mem_keys.len() + disk_keys.len()
    }

    /// Whether `(rdd, part)` was dropped by a node loss and not yet
    /// recomputed. Clears the mark — the first recomputation after the loss
    /// is the lineage replay; later misses are ordinary cache churn.
    pub fn take_lost(&self, rdd: u64, part: usize) -> bool {
        self.inner.lock().lost.remove(&(rdd, part))
    }

    /// Drop every cached partition of an RDD, both tiers (unpersist).
    pub fn evict_rdd(&self, rdd: u64) -> usize {
        let mut g = self.inner.lock();
        let mem_keys: Vec<_> = g
            .entries
            .keys()
            .filter(|(r, _)| *r == rdd)
            .copied()
            .collect();
        for k in &mem_keys {
            let e = g.entries.remove(k).expect("key just listed");
            g.used[e.node] -= e.bytes;
        }
        let disk_keys: Vec<_> = g.disk.keys().filter(|(r, _)| *r == rdd).copied().collect();
        for k in &disk_keys {
            let e = g.disk.remove(k).expect("key just listed");
            g.disk_used -= e.bytes;
        }
        // An unpersisted RDD's pending replay marks are moot.
        g.lost.retain(|(r, _)| *r != rdd);
        mem_keys.len() + disk_keys.len()
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let g = self.inner.lock();
        CacheStats {
            hits: g.hits,
            disk_hits: g.disk_hits,
            misses: g.misses,
            evictions: g.evictions,
            entries: g.entries.len(),
            disk_entries: g.disk.len(),
            used_bytes: g.used.iter().sum(),
            disk_bytes: g.disk_used,
            peak_bytes: g.peak_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(cap: u64) -> CacheManager {
        CacheManager::with_capacity(2, cap)
    }

    fn mem_put(c: &CacheManager, rdd: u64, part: usize, node: usize, bytes: u64) -> bool {
        c.put(
            rdd,
            part,
            node,
            Arc::new(vec![0u8]),
            bytes,
            StorageLevel::MemoryOnly,
        )
    }

    #[test]
    fn put_get_roundtrip() {
        let c = mgr(1000);
        assert!(c.put(
            1,
            0,
            0,
            Arc::new(vec![1u32, 2, 3]),
            12,
            StorageLevel::MemoryOnly
        ));
        let (data, bytes, tier) = c.get::<u32>(1, 0).expect("hit");
        assert_eq!(*data, vec![1, 2, 3]);
        assert_eq!(bytes, 12);
        assert_eq!(tier, CacheTier::Memory);
        assert!(c.get::<u32>(1, 1).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn oversized_memory_only_partition_is_rejected() {
        let c = mgr(10);
        assert!(!mem_put(&c, 1, 0, 0, 100));
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn oversized_memory_and_disk_partition_goes_to_disk() {
        let c = mgr(10);
        assert!(c.put(
            1,
            0,
            0,
            Arc::new(vec![7u8]),
            100,
            StorageLevel::MemoryAndDisk
        ));
        let (_, _, tier) = c.get::<u8>(1, 0).expect("disk hit");
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(c.stats().disk_entries, 1);
        assert_eq!(c.stats().disk_bytes, 100);
    }

    #[test]
    fn lru_eviction_per_node() {
        let c = mgr(100);
        assert!(mem_put(&c, 1, 0, 0, 60));
        assert!(mem_put(&c, 1, 1, 0, 30));
        // Touch (1,0) so (1,1) becomes LRU.
        c.get::<u8>(1, 0);
        assert!(mem_put(&c, 1, 2, 0, 30));
        assert!(c.get::<u8>(1, 1).is_none(), "LRU MemoryOnly entry dropped");
        assert!(c.get::<u8>(1, 0).is_some(), "recently used survives");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn memory_and_disk_spills_instead_of_dropping() {
        let c = mgr(100);
        assert!(c.put(
            1,
            0,
            0,
            Arc::new(vec![1u8]),
            60,
            StorageLevel::MemoryAndDisk
        ));
        assert!(c.put(
            1,
            1,
            0,
            Arc::new(vec![2u8]),
            60,
            StorageLevel::MemoryAndDisk
        ));
        // (1,0) was evicted to disk.
        let (_, _, tier0) = c.get::<u8>(1, 0).expect("spilled, not lost");
        assert_eq!(tier0, CacheTier::Disk);
        let (_, _, tier1) = c.get::<u8>(1, 1).expect("resident");
        assert_eq!(tier1, CacheTier::Memory);
        let s = c.stats();
        assert_eq!((s.entries, s.disk_entries, s.evictions), (1, 1, 1));
    }

    #[test]
    fn nodes_have_independent_budgets() {
        let c = mgr(100);
        assert!(mem_put(&c, 1, 0, 0, 80));
        assert!(mem_put(&c, 1, 1, 1, 80));
        assert_eq!(c.stats().entries, 2);
        assert_eq!(c.stats().used_bytes, 160);
    }

    #[test]
    fn peak_bytes_is_a_high_water_mark() {
        let c = mgr(100);
        assert!(mem_put(&c, 1, 0, 0, 40));
        assert!(mem_put(&c, 2, 0, 1, 50));
        assert_eq!(c.stats().peak_bytes, 90);
        c.evict_rdd(1);
        assert_eq!(c.stats().used_bytes, 50);
        // The peak remembers the overlap even after eviction.
        assert_eq!(c.stats().peak_bytes, 90);
        assert!(mem_put(&c, 3, 0, 0, 10));
        assert_eq!(c.stats().peak_bytes, 90);
    }

    #[test]
    fn replacing_entry_frees_old_bytes() {
        let c = mgr(100);
        assert!(mem_put(&c, 1, 0, 0, 90));
        assert!(mem_put(&c, 1, 0, 0, 90));
        assert_eq!(c.stats().used_bytes, 90);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn evict_rdd_clears_both_tiers() {
        let c = mgr(100);
        for p in 0..3 {
            c.put(
                7,
                p,
                0,
                Arc::new(vec![p as u32]),
                60,
                StorageLevel::MemoryAndDisk,
            );
        }
        mem_put(&c, 8, 0, 1, 4);
        assert_eq!(c.evict_rdd(7), 3, "one resident + two spilled");
        let s = c.stats();
        assert_eq!((s.entries, s.disk_entries), (1, 0));
        assert!(c.get::<u8>(8, 0).is_some());
    }

    #[test]
    fn evict_node_drops_both_tiers_on_that_node_only() {
        let c = mgr(100);
        // Node 0: one resident, one spilled (second put evicts the first to
        // disk, both on node 0). Node 1: untouched resident.
        c.put(
            1,
            0,
            0,
            Arc::new(vec![1u32]),
            60,
            StorageLevel::MemoryAndDisk,
        );
        c.put(
            1,
            1,
            0,
            Arc::new(vec![2u32]),
            60,
            StorageLevel::MemoryAndDisk,
        );
        assert!(mem_put(&c, 2, 0, 1, 10));
        assert_eq!(c.evict_node(0), 2, "resident + spilled on node 0");
        assert!(c.get::<u32>(1, 0).is_none());
        assert!(c.get::<u32>(1, 1).is_none());
        assert!(c.get::<u8>(2, 0).is_some(), "node 1 untouched");
        let s = c.stats();
        assert_eq!((s.entries, s.disk_entries, s.disk_bytes), (1, 0, 0));
        assert_eq!(c.evict_node(0), 0, "idempotent");
    }

    #[test]
    fn node_loss_marks_partitions_lost_once() {
        let c = mgr(100);
        assert!(mem_put(&c, 1, 0, 0, 10));
        assert!(mem_put(&c, 1, 1, 1, 10));
        c.evict_node(0);
        assert!(c.take_lost(1, 0), "dropped by the loss");
        assert!(!c.take_lost(1, 0), "replay attributed once");
        assert!(!c.take_lost(1, 1), "node 1 survived");
        // LRU eviction is ordinary churn, never a replay.
        let c2 = mgr(10);
        assert!(mem_put(&c2, 1, 0, 0, 8));
        assert!(mem_put(&c2, 1, 1, 0, 8)); // evicts (1,0)
        assert!(!c2.take_lost(1, 0));
        // Unpersist clears pending marks.
        let c3 = mgr(100);
        assert!(mem_put(&c3, 2, 0, 0, 10));
        c3.evict_node(0);
        c3.evict_rdd(2);
        assert!(!c3.take_lost(2, 0));
    }

    #[test]
    fn explicit_evict_clears_both_tiers() {
        let c = mgr(100);
        c.put(
            1,
            0,
            0,
            Arc::new(vec![1u32]),
            60,
            StorageLevel::MemoryAndDisk,
        );
        c.put(
            1,
            1,
            0,
            Arc::new(vec![2u32]),
            60,
            StorageLevel::MemoryAndDisk,
        );
        assert!(c.evict(1, 0), "spilled entry evictable");
        assert!(!c.evict(1, 0));
        assert!(c.get::<u32>(1, 0).is_none());
        assert_eq!(c.stats().disk_bytes, 0);
    }
}
