//! Shuffle machinery: `reduceByKey` and the registry of materialized map
//! outputs.
//!
//! A [`ReduceByKeyRdd`] is both an RDD (its partitions are the reduce side)
//! and a [`ShuffleStage`] (the map side that must run first). The executor
//! collects the shuffle stages in a lineage, prepares them bottom-up, and
//! only then computes the consuming stage — exactly Spark's DAG scheduler
//! split at shuffle boundaries.
//!
//! The shuffle carries *real* data: map tasks hash-partition their map-side
//! combined output into buckets held in the [`ShuffleRegistry`]; reduce tasks
//! merge the buckets. Virtual costs: map side pays serialization plus a local
//! shuffle-file write; reduce side pays fetch (1/nodes local disk, the rest
//! network), deserialization, and the merge CPU.
//!
//! Map output is kept *per map task*, tagged with the node the winning
//! attempt ran on. When that node dies the registry marks just those map
//! outputs lost (a reduce task would hit a fetch failure); the next
//! `prepare` resubmits only the missing map partitions — Spark's
//! partial-stage resubmission — and patches them back in. Reduce tasks read
//! buckets in map-task order, so a patched shuffle is byte-identical to one
//! materialized in a single healthy run.

use crate::context::Context;
use crate::exec::{self, ExecError};
use crate::rdd::{materialize, Data, Pipe, RddImpl, RddMeta};
use crate::task::TaskContext;
use std::any::Any;
use std::collections::BTreeSet;
use std::hash::Hash;
use std::sync::{Arc, Weak};
use yafim_cluster::sync::Mutex;
use yafim_cluster::{
    bucket_of, fx_hash64, memgov, slice_bytes, EventKind, FxHashMap, IntegrityCounters,
    IntegrityTier, NodeId, RecoveryCounters, TransientKind,
};

/// A shuffle's map side, to be run before any stage that reads it.
pub(crate) trait ShuffleStage: Send + Sync {
    /// Shuffle id (equals the owning RDD's id).
    fn shuffle_id(&self) -> u64;
    /// Run ancestor shuffles, then this shuffle's map stage (or just its
    /// lost map partitions), unless already complete.
    fn prepare(&self) -> Result<(), ExecError>;
}

/// Materialized map output of one shuffle, kept per map task so individual
/// map outputs can be invalidated and recomputed.
pub(crate) struct Materialized<K, V> {
    /// `per_map[m][r]` = the bucket map task `m` produced for reduce
    /// partition `r`, in deterministic (map-task, key-hash) order.
    pub per_map: Vec<Vec<Vec<(K, V)>>>,
    /// Serialized byte estimate per reduce partition (summed over maps).
    pub bucket_bytes: Vec<u64>,
}

impl<K: Data, V: Data> Materialized<K, V> {
    /// Iterate reduce partition `part`'s records in map-task order — the
    /// same sequence the pre-loss concatenated layout produced.
    pub fn bucket_iter(&self, part: usize) -> impl Iterator<Item = &(K, V)> {
        self.per_map.iter().flat_map(move |m| m[part].iter())
    }

    fn recount_bytes(&mut self) {
        let reduces = self.per_map.first().map_or(0, |m| m.len());
        self.bucket_bytes = (0..reduces)
            .map(|r| self.per_map.iter().map(|m| slice_bytes(&m[r])).sum())
            .collect();
    }
}

/// A recomputed map output: `(map partition, its per-reduce buckets, node
/// the resubmitted attempt ran on)`.
pub(crate) type RecomputedMap<K, V> = (usize, Vec<Vec<(K, V)>>, NodeId);

/// One registered shuffle: the typed map output plus provenance — which node
/// produced each map task's output, and which outputs are currently lost.
struct ShuffleEntry {
    data: Arc<dyn Any + Send + Sync>,
    /// Node the winning attempt of each map task ran on.
    map_nodes: Vec<NodeId>,
    /// Map partitions whose output died with their node. Non-empty ⇒ a
    /// reduce task would hit a fetch failure; `prepare` resubmits them.
    lost: BTreeSet<usize>,
}

/// Registry of materialized shuffles, keyed by shuffle id.
pub(crate) struct ShuffleRegistry {
    inner: Mutex<FxHashMap<u64, ShuffleEntry>>,
}

impl ShuffleRegistry {
    pub(crate) fn new() -> Self {
        ShuffleRegistry {
            inner: Mutex::new(FxHashMap::default()),
        }
    }

    pub(crate) fn has(&self, id: u64) -> bool {
        self.inner.lock().contains_key(&id)
    }

    /// Materialized *and* no map outputs lost.
    pub(crate) fn is_complete(&self, id: u64) -> bool {
        self.inner
            .lock()
            .get(&id)
            .is_some_and(|e| e.lost.is_empty())
    }

    /// Map partitions whose output is currently lost (ascending order).
    pub(crate) fn lost_maps(&self, id: u64) -> Vec<usize> {
        self.inner
            .lock()
            .get(&id)
            .map(|e| e.lost.iter().copied().collect())
            .unwrap_or_default()
    }

    pub(crate) fn get<K, V>(&self, id: u64) -> Option<Arc<Materialized<K, V>>>
    where
        K: Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        self.inner.lock().get(&id).map(|e| {
            Arc::clone(&e.data)
                .downcast::<Materialized<K, V>>()
                .expect("shuffle type mismatch")
        })
    }

    pub(crate) fn insert<K, V>(&self, id: u64, mat: Materialized<K, V>, map_nodes: Vec<NodeId>)
    where
        K: Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        assert_eq!(mat.per_map.len(), map_nodes.len());
        self.inner.lock().insert(
            id,
            ShuffleEntry {
                data: Arc::new(mat),
                map_nodes,
                lost: BTreeSet::new(),
            },
        );
    }

    /// Replace the lost map outputs of shuffle `id` with freshly recomputed
    /// ones and record their new home nodes. Clears the lost set.
    pub(crate) fn patch<K, V>(&self, id: u64, recomputed: Vec<RecomputedMap<K, V>>)
    where
        K: Data,
        V: Data,
    {
        let mut g = self.inner.lock();
        let entry = g
            .get_mut(&id)
            .expect("patching a shuffle that was never materialized");
        let old = Arc::clone(&entry.data)
            .downcast::<Materialized<K, V>>()
            .expect("shuffle type mismatch");
        let mut per_map = old.per_map.clone();
        let mut map_nodes = entry.map_nodes.clone();
        for (m, buckets, node) in recomputed {
            per_map[m] = buckets;
            map_nodes[m] = node;
        }
        let mut mat = Materialized {
            per_map,
            bucket_bytes: Vec::new(),
        };
        mat.recount_bytes();
        entry.data = Arc::new(mat);
        entry.map_nodes = map_nodes;
        entry.lost.clear();
    }

    /// Drop a materialized shuffle (fault injection): the next action that
    /// needs it re-runs the whole map stage through the lineage.
    pub(crate) fn invalidate(&self, id: u64) -> bool {
        self.inner.lock().remove(&id).is_some()
    }

    /// Mark every map output produced on `node` as lost, across all
    /// registered shuffles. Returns how many map outputs were newly lost.
    pub(crate) fn mark_node_lost(&self, node: NodeId) -> usize {
        let mut g = self.inner.lock();
        let mut newly = 0;
        for e in g.values_mut() {
            for (m, n) in e.map_nodes.iter().enumerate() {
                if *n == node && e.lost.insert(m) {
                    newly += 1;
                }
            }
        }
        newly
    }

    /// Number of materialized shuffles.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().len()
    }
}

/// The `reduceByKey` operator node.
pub(crate) struct ReduceByKeyRdd<K, V>
where
    K: Data + Hash + Eq,
    V: Data,
{
    meta: RddMeta,
    parent: Arc<dyn RddImpl<(K, V)>>,
    reducer: Arc<dyn Fn(V, V) -> V + Send + Sync>,
    partitions: usize,
    weak_self: Weak<Self>,
}

impl<K, V> ReduceByKeyRdd<K, V>
where
    K: Data + Hash + Eq,
    V: Data,
{
    pub(crate) fn new(
        ctx: &Context,
        parent: Arc<dyn RddImpl<(K, V)>>,
        reducer: Arc<dyn Fn(V, V) -> V + Send + Sync>,
        partitions: usize,
    ) -> Arc<Self> {
        Arc::new_cyclic(|weak| ReduceByKeyRdd {
            meta: RddMeta::new(ctx),
            parent,
            reducer,
            partitions,
            weak_self: weak.clone(),
        })
    }

    fn ctx(&self) -> &Context {
        &self.meta.ctx
    }

    /// Run the map side: map-side combine each parent partition, hash-
    /// partition into buckets, register the per-map buckets. With
    /// `only = Some(lost)`, recompute just those map partitions and patch
    /// them into the existing entry (partial stage resubmission).
    fn run_map_stage(&self, only: Option<&[usize]>) -> Result<(), ExecError> {
        let ctx = self.ctx().clone();
        let parent = Arc::clone(&self.parent);
        let reducer = Arc::clone(&self.reducer);
        let out_parts = self.partitions;

        // Which original map partitions this stage computes: all of them on
        // a fresh run, just the lost ones on a resubmission.
        let map_parts: Vec<usize> = match only {
            Some(lost) => lost.to_vec(),
            None => (0..parent.num_partitions()).collect(),
        };
        let label = match only {
            Some(_) => format!("shuffle {} map (resubmit)", self.meta.id),
            None => format!("shuffle {} map", self.meta.id),
        };
        let preferred: Vec<Option<NodeId>> = map_parts
            .iter()
            .map(|&p| parent.preferred_node(p))
            .collect();

        type MapOut<K, V> = Vec<Vec<(K, V)>>;
        let task_parts = map_parts.clone();
        let faults = ctx.cluster().faults().clone();
        let cost = ctx.cluster().cost().clone();
        let (results, executed_on): (Vec<MapOut<K, V>>, Vec<NodeId>) = exec::try_run_stage(
            &ctx,
            label,
            EventKind::Shuffle,
            Some(self.meta.id),
            map_parts.len(),
            preferred,
            Arc::new(move |idx: usize, tc: &TaskContext| {
                let part = task_parts[idx];

                // Map-side combine (Spark's aggregator): the parent's fused
                // pipeline streams straight into the combiner — the shuffle
                // write is the first pipeline breaker in the stage, so no
                // intermediate partition buffer exists. Deterministic
                // because stream order and the Fx hasher are deterministic.
                let mut records_in = 0u64;
                let mut combined: FxHashMap<K, V> = FxHashMap::default();
                for (k, v) in materialize(&parent, part, tc) {
                    records_in += 1;
                    match combined.remove(&k) {
                        Some(prev) => {
                            combined.insert(k, reducer(prev, v));
                        }
                        None => {
                            combined.insert(k, v);
                        }
                    }
                }
                tc.add_records_in(records_in);

                let mut buckets: MapOut<K, V> = (0..out_parts).map(|_| Vec::new()).collect();
                for (k, v) in combined {
                    buckets[bucket_of(&k, out_parts)].push((k, v));
                }
                // Deterministic bucket contents regardless of hash-map
                // iteration details would require an order; the Fx map with
                // deterministic insertion already iterates deterministically,
                // but sorting by insertion is not available — so the engine
                // sorts by key hash to pin the order down completely.
                for b in &mut buckets {
                    b.sort_by_key(|(k, _)| yafim_cluster::fx_hash64(k));
                }

                let mut total_records = 0u64;
                let mut total_bytes = 0u64;
                for b in &buckets {
                    total_records += b.len() as u64;
                    total_bytes += slice_bytes(b);
                }
                // The combine buffer is execution memory; when the governor
                // denies it (budget overflow or injected OOM) the buffer
                // spills through local disk — `try_reserve` charges the
                // extra round trip, results are unchanged.
                tc.try_reserve(total_bytes, memgov::site::SHUFFLE_COMBINE, true);
                tc.add_records_out(total_records);
                tc.add_ser(total_bytes);
                tc.add_disk_write(total_bytes); // shuffle file write
                if faults.integrity_active() {
                    // Checksum the shuffle file at write time so reduce-side
                    // fetches can verify it.
                    tc.add_stall_micros((cost.checksum(total_bytes).as_secs() * 1e6) as u64);
                }
                tc.note_shuffle_write(total_bytes);
                tc.note_records_written(total_records);
                tc.note_materialized(total_bytes);

                buckets
            }),
        )?;

        match only {
            Some(_) => {
                let recomputed = map_parts
                    .iter()
                    .zip(results)
                    .zip(executed_on)
                    .map(|((&m, buckets), node)| (m, buckets, node))
                    .collect();
                self.ctx().shuffles().patch(self.meta.id, recomputed);
            }
            None => {
                let mut mat = Materialized {
                    per_map: results,
                    bucket_bytes: Vec::new(),
                };
                mat.recount_bytes();
                self.ctx().shuffles().insert(self.meta.id, mat, executed_on);
            }
        }
        Ok(())
    }
}

impl<K, V> ReduceByKeyRdd<K, V>
where
    K: Data + Hash + Eq,
    V: Data,
{
    /// Walk the seeded transient-fetch ladder for every reduce partition of
    /// a freshly materialized shuffle. An *escalated* outcome means some map
    /// output stayed unfetchable after every retry: the driver reacts as it
    /// does to a fetch failure — it resubmits the (deterministically chosen)
    /// victim map task, patching its output back in like a node-loss hole.
    /// Runs once per materialization, right after the initial map stage;
    /// resubmissions and later hole repairs never re-roll the ladder.
    fn apply_transient_escalations(&self) -> Result<(), ExecError> {
        let faults = self.ctx().cluster().faults().clone();
        let maps = self.parent.num_partitions();
        if maps == 0 {
            return Ok(());
        }
        let mut lost: BTreeSet<usize> = BTreeSet::new();
        let mut escalations = 0u64;
        for r in 0..self.partitions {
            let t = faults.transient(TransientKind::ShuffleFetch, self.meta.id, r);
            if t.escalated {
                escalations += 1;
                lost.insert(fx_hash64(&(self.meta.id, r as u64, 0x5e5cu64)) as usize % maps);
            }
        }
        if lost.is_empty() {
            return Ok(());
        }
        let lost: Vec<usize> = lost.into_iter().collect();
        self.ctx().metrics().note_recovery(&RecoveryCounters {
            fetch_failures: escalations,
            recomputed_partitions: lost.len() as u64,
            ..RecoveryCounters::default()
        });
        self.run_map_stage(Some(&lost))
    }

    /// Verify every reduce partition's map outputs against their write-time
    /// checksums. A mismatch means a shuffle file silently rotted on disk:
    /// the driver reacts as it does to a fetch failure — it resubmits the
    /// (deterministically chosen) victim map task, rewriting the rotten
    /// file clean. Runs at shuffle preparation; the controller's healed set
    /// guarantees each rotten copy is detected (and counted) exactly once,
    /// so later preparations of the same shuffle verify clean.
    fn apply_corruption_repairs(&self) -> Result<(), ExecError> {
        let faults = self.ctx().cluster().faults().clone();
        if !faults.integrity_active() {
            return Ok(());
        }
        let maps = self.parent.num_partitions();
        if maps == 0 {
            return Ok(());
        }
        let mut lost: BTreeSet<usize> = BTreeSet::new();
        let mut detected = 0u64;
        for r in 0..self.partitions {
            if faults.take_corruption(IntegrityTier::Shuffle, self.meta.id, r, 0) {
                detected += 1;
                lost.insert(fx_hash64(&(self.meta.id, r as u64, 0xbaddu64)) as usize % maps);
            }
        }
        if lost.is_empty() {
            return Ok(());
        }
        let lost: Vec<usize> = lost.into_iter().collect();
        self.ctx().metrics().note_recovery(&RecoveryCounters {
            recomputed_partitions: lost.len() as u64,
            integrity: IntegrityCounters {
                corruptions_injected: detected,
                corruptions_detected: detected,
                corruptions_repaired: detected,
                repaired_via_resubmit: detected,
                ..IntegrityCounters::default()
            },
            ..RecoveryCounters::default()
        });
        self.run_map_stage(Some(&lost))
    }
}

impl<K, V> ShuffleStage for ReduceByKeyRdd<K, V>
where
    K: Data + Hash + Eq,
    V: Data,
{
    fn shuffle_id(&self) -> u64 {
        self.meta.id
    }

    fn prepare(&self) -> Result<(), ExecError> {
        if self.ctx().shuffles().is_complete(self.meta.id) {
            return Ok(());
        }
        // Ancestors first (deduplicated by the completeness check above).
        let mut deps: Vec<Arc<dyn ShuffleStage>> = Vec::new();
        self.parent.collect_shuffle_deps(&mut deps);
        for d in deps {
            d.prepare()?;
        }

        if self.ctx().shuffles().has(self.meta.id) {
            // Materialized but holed: a node died and took some map outputs
            // with it. A reduce task would fetch-fail on each hole — charge
            // the failures and resubmit just the missing map partitions.
            let lost = self.ctx().shuffles().lost_maps(self.meta.id);
            if !lost.is_empty() {
                self.ctx().metrics().note_recovery(&RecoveryCounters {
                    fetch_failures: lost.len() as u64,
                    recomputed_partitions: lost.len() as u64,
                    ..RecoveryCounters::default()
                });
                self.run_map_stage(Some(&lost))?;
            }
            return self.apply_corruption_repairs();
        }
        self.run_map_stage(None)?;
        self.apply_transient_escalations()?;
        self.apply_corruption_repairs()
    }
}

impl<K, V> RddImpl<(K, V)> for ReduceByKeyRdd<K, V>
where
    K: Data + Hash + Eq,
    V: Data,
{
    fn meta(&self) -> &RddMeta {
        &self.meta
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }

    fn preferred_node(&self, _part: usize) -> Option<NodeId> {
        None
    }

    fn compute<'a>(&'a self, part: usize, tc: &'a TaskContext) -> Pipe<'a, (K, V)> {
        let mat = self
            .ctx()
            .shuffles()
            .get::<K, V>(self.meta.id)
            .expect("shuffle map stage must run before reduce tasks");

        // Fetch cost: with map outputs spread evenly over the cluster,
        // 1/nodes of the bytes are node-local shuffle files, the rest
        // crosses the network. Everything is deserialized.
        let bytes = mat.bucket_bytes[part];
        let nodes = self.ctx().cluster().spec().nodes as u64;
        let local = bytes / nodes.max(1);
        tc.add_disk_read(local);
        tc.add_net(bytes - local);
        tc.add_ser(bytes);
        if self.ctx().cluster().faults().integrity_active() {
            // Read-time verification of the fetched buckets. Rotten shuffle
            // files were already detected and rewritten at preparation
            // (`apply_corruption_repairs`), so by fetch time every copy
            // verifies clean — this charges the verification itself.
            tc.add_stall_micros(crate::rdd::checksum_micros(self.ctx(), bytes));
        }
        tc.note_shuffle_read(bytes);

        // Seeded transient-fetch ladder: each retry re-fetches the
        // partition's buckets, the accumulated backoff stalls the task, and
        // an escalation pays one more full fetch after the driver
        // resubmitted the victim map task (the resubmission itself is
        // charged in `prepare`). Data is never wrong — only time grows.
        let t = self.ctx().cluster().faults().transient(
            TransientKind::ShuffleFetch,
            self.meta.id,
            part,
        );
        if t.any() {
            for _ in 0..t.retries {
                tc.add_disk_read(local);
                tc.add_net(bytes - local);
            }
            tc.add_stall_micros(t.backoff_micros);
            if t.escalated {
                tc.add_disk_read(local);
                tc.add_net(bytes - local);
            }
            self.ctx().metrics().note_recovery(&RecoveryCounters {
                fetch_retries: t.retries,
                backoff_micros: t.backoff_micros,
                ..RecoveryCounters::default()
            });
            let registry = self.ctx().cluster().registry();
            registry.counter("shuffle.fetch_retries").inc(t.retries);
            registry
                .counter("shuffle.fetch_backoff_micros")
                .inc(t.backoff_micros);
        }

        let mut records = 0u64;
        let mut agg: FxHashMap<K, V> = FxHashMap::default();
        for (k, v) in mat.bucket_iter(part) {
            records += 1;
            match agg.remove(k) {
                Some(prev) => {
                    agg.insert(k.clone(), (self.reducer)(prev, v.clone()));
                }
                None => {
                    agg.insert(k.clone(), v.clone());
                }
            }
        }
        tc.add_records_in(records);
        tc.note_records_read(records);
        let mut out: Vec<(K, V)> = agg.into_iter().collect();
        // Pin down output order for run-to-run determinism. The sort makes
        // the reduce output a genuine pipeline breaker: it owns one
        // materialized buffer, which downstream narrow operators then
        // stream out of.
        out.sort_by_key(|(k, _)| yafim_cluster::fx_hash64(k));
        tc.add_records_out(out.len() as u64);
        tc.note_materialized(slice_bytes(&out));
        Pipe::Owned(out)
    }

    fn collect_shuffle_deps(&self, out: &mut Vec<Arc<dyn ShuffleStage>>) {
        let me = self
            .weak_self
            .upgrade()
            .expect("RDD alive while collecting deps");
        out.push(me as Arc<dyn ShuffleStage>);
    }

    fn shuffle_read_id(&self) -> Option<u64> {
        // A stage whose pipeline starts at this RDD fetches this shuffle's
        // map output.
        Some(self.meta.id)
    }

    fn preflight(&self) -> Result<(), ExecError> {
        self.parent.preflight()
    }
}
