//! Shuffle machinery: `reduceByKey` and the registry of materialized map
//! outputs.
//!
//! A [`ReduceByKeyRdd`] is both an RDD (its partitions are the reduce side)
//! and a [`ShuffleStage`] (the map side that must run first). The executor
//! collects the shuffle stages in a lineage, prepares them bottom-up, and
//! only then computes the consuming stage — exactly Spark's DAG scheduler
//! split at shuffle boundaries.
//!
//! The shuffle carries *real* data: map tasks hash-partition their map-side
//! combined output into buckets held in the [`ShuffleRegistry`]; reduce tasks
//! merge the buckets. Virtual costs: map side pays serialization plus a local
//! shuffle-file write; reduce side pays fetch (1/nodes local disk, the rest
//! network), deserialization, and the merge CPU.

use crate::context::Context;
use crate::exec;
use crate::rdd::{materialize, Data, RddImpl, RddMeta};
use crate::task::TaskContext;
use std::any::Any;
use std::hash::Hash;
use std::sync::{Arc, Weak};
use yafim_cluster::sync::Mutex;
use yafim_cluster::{bucket_of, slice_bytes, EventKind, FxHashMap, NodeId};

/// A shuffle's map side, to be run before any stage that reads it.
pub(crate) trait ShuffleStage: Send + Sync {
    /// Shuffle id (equals the owning RDD's id).
    fn shuffle_id(&self) -> u64;
    /// Run ancestor shuffles, then this shuffle's map stage, unless already
    /// materialized.
    fn prepare(&self);
}

/// Materialized map output of one shuffle.
pub(crate) struct Materialized<K, V> {
    /// One bucket per reduce partition, in deterministic (map-task, key)
    /// order.
    pub buckets: Vec<Vec<(K, V)>>,
    /// Serialized byte estimate per bucket.
    pub bucket_bytes: Vec<u64>,
}

/// Registry of materialized shuffles, keyed by shuffle id.
pub(crate) struct ShuffleRegistry {
    inner: Mutex<FxHashMap<u64, Arc<dyn Any + Send + Sync>>>,
}

impl ShuffleRegistry {
    pub(crate) fn new() -> Self {
        ShuffleRegistry {
            inner: Mutex::new(FxHashMap::default()),
        }
    }

    pub(crate) fn has(&self, id: u64) -> bool {
        self.inner.lock().contains_key(&id)
    }

    pub(crate) fn get<K, V>(&self, id: u64) -> Option<Arc<Materialized<K, V>>>
    where
        K: Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        self.inner.lock().get(&id).map(|a| {
            Arc::clone(a)
                .downcast::<Materialized<K, V>>()
                .expect("shuffle type mismatch")
        })
    }

    pub(crate) fn insert<K, V>(&self, id: u64, mat: Materialized<K, V>)
    where
        K: Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        self.inner.lock().insert(id, Arc::new(mat));
    }

    /// Drop a materialized shuffle (fault injection): the next action that
    /// needs it re-runs the map stage through the lineage.
    pub(crate) fn invalidate(&self, id: u64) -> bool {
        self.inner.lock().remove(&id).is_some()
    }

    /// Number of materialized shuffles.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().len()
    }
}

/// The `reduceByKey` operator node.
pub(crate) struct ReduceByKeyRdd<K, V>
where
    K: Data + Hash + Eq,
    V: Data,
{
    meta: RddMeta,
    parent: Arc<dyn RddImpl<(K, V)>>,
    reducer: Arc<dyn Fn(V, V) -> V + Send + Sync>,
    partitions: usize,
    weak_self: Weak<Self>,
}

impl<K, V> ReduceByKeyRdd<K, V>
where
    K: Data + Hash + Eq,
    V: Data,
{
    pub(crate) fn new(
        ctx: &Context,
        parent: Arc<dyn RddImpl<(K, V)>>,
        reducer: Arc<dyn Fn(V, V) -> V + Send + Sync>,
        partitions: usize,
    ) -> Arc<Self> {
        Arc::new_cyclic(|weak| ReduceByKeyRdd {
            meta: RddMeta::new(ctx),
            parent,
            reducer,
            partitions,
            weak_self: weak.clone(),
        })
    }

    fn ctx(&self) -> &Context {
        &self.meta.ctx
    }

    /// Run the map side: map-side combine each parent partition, hash-
    /// partition into buckets, register the concatenated buckets.
    fn run_map_stage(&self) {
        let ctx = self.ctx().clone();
        let parent = Arc::clone(&self.parent);
        let reducer = Arc::clone(&self.reducer);
        let out_parts = self.partitions;
        let map_parts = parent.num_partitions();
        let preferred: Vec<Option<NodeId>> =
            (0..map_parts).map(|p| parent.preferred_node(p)).collect();

        type MapOut<K, V> = Vec<Vec<(K, V)>>;
        let results: Vec<MapOut<K, V>> = exec::run_stage(
            &ctx,
            format!("shuffle {} map", self.meta.id),
            EventKind::Shuffle,
            Some(self.meta.id),
            map_parts,
            preferred,
            Arc::new(move |part: usize, tc: &mut TaskContext| {
                let input = materialize(&parent, part, tc);
                tc.add_records_in(input.len() as u64);

                // Map-side combine (Spark's aggregator): deterministic
                // because input order and the Fx hasher are deterministic.
                let mut combined: FxHashMap<K, V> = FxHashMap::default();
                for (k, v) in input.iter() {
                    match combined.remove(k) {
                        Some(prev) => {
                            combined.insert(k.clone(), reducer(prev, v.clone()));
                        }
                        None => {
                            combined.insert(k.clone(), v.clone());
                        }
                    }
                }

                let mut buckets: MapOut<K, V> = (0..out_parts).map(|_| Vec::new()).collect();
                for (k, v) in combined {
                    buckets[bucket_of(&k, out_parts)].push((k, v));
                }
                // Deterministic bucket contents regardless of hash-map
                // iteration details would require an order; the Fx map with
                // deterministic insertion already iterates deterministically,
                // but sorting by insertion is not available — so the engine
                // sorts by key hash to pin the order down completely.
                for b in &mut buckets {
                    b.sort_by_key(|(k, _)| yafim_cluster::fx_hash64(k));
                }

                let mut total_records = 0u64;
                let mut total_bytes = 0u64;
                for b in &buckets {
                    total_records += b.len() as u64;
                    total_bytes += slice_bytes(b);
                }
                tc.add_records_out(total_records);
                tc.add_ser(total_bytes);
                tc.add_disk_write(total_bytes); // shuffle file write
                tc.note_shuffle_write(total_bytes);

                buckets
            }),
        );

        // Concatenate per-reduce-partition buckets in map-task order.
        let mut buckets: Vec<Vec<(K, V)>> = (0..out_parts).map(|_| Vec::new()).collect();
        for map_out in results {
            for (i, b) in map_out.into_iter().enumerate() {
                buckets[i].extend(b);
            }
        }
        let bucket_bytes = buckets.iter().map(|b| slice_bytes(b)).collect();
        self.ctx().shuffles().insert(
            self.meta.id,
            Materialized {
                buckets,
                bucket_bytes,
            },
        );
    }
}

impl<K, V> ShuffleStage for ReduceByKeyRdd<K, V>
where
    K: Data + Hash + Eq,
    V: Data,
{
    fn shuffle_id(&self) -> u64 {
        self.meta.id
    }

    fn prepare(&self) {
        if self.ctx().shuffles().has(self.meta.id) {
            return;
        }
        // Ancestors first (deduplicated by the registry check above).
        let mut deps: Vec<Arc<dyn ShuffleStage>> = Vec::new();
        self.parent.collect_shuffle_deps(&mut deps);
        for d in deps {
            d.prepare();
        }
        self.run_map_stage();
    }
}

impl<K, V> RddImpl<(K, V)> for ReduceByKeyRdd<K, V>
where
    K: Data + Hash + Eq,
    V: Data,
{
    fn meta(&self) -> &RddMeta {
        &self.meta
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }

    fn preferred_node(&self, _part: usize) -> Option<NodeId> {
        None
    }

    fn compute(&self, part: usize, tc: &mut TaskContext) -> Vec<(K, V)> {
        let mat = self
            .ctx()
            .shuffles()
            .get::<K, V>(self.meta.id)
            .expect("shuffle map stage must run before reduce tasks");

        // Fetch cost: with map outputs spread evenly over the cluster,
        // 1/nodes of the bytes are node-local shuffle files, the rest
        // crosses the network. Everything is deserialized.
        let bytes = mat.bucket_bytes[part];
        let nodes = self.ctx().cluster().spec().nodes as u64;
        let local = bytes / nodes.max(1);
        tc.add_disk_read(local);
        tc.add_net(bytes - local);
        tc.add_ser(bytes);
        tc.note_shuffle_read(bytes);

        let bucket = &mat.buckets[part];
        tc.add_records_in(bucket.len() as u64);

        let mut agg: FxHashMap<K, V> = FxHashMap::default();
        for (k, v) in bucket.iter() {
            match agg.remove(k) {
                Some(prev) => {
                    agg.insert(k.clone(), (self.reducer)(prev, v.clone()));
                }
                None => {
                    agg.insert(k.clone(), v.clone());
                }
            }
        }
        let mut out: Vec<(K, V)> = agg.into_iter().collect();
        // Pin down output order for run-to-run determinism.
        out.sort_by_key(|(k, _)| yafim_cluster::fx_hash64(k));
        tc.add_records_out(out.len() as u64);
        out
    }

    fn collect_shuffle_deps(&self, out: &mut Vec<Arc<dyn ShuffleStage>>) {
        let me = self
            .weak_self
            .upgrade()
            .expect("RDD alive while collecting deps");
        out.push(me as Arc<dyn ShuffleStage>);
    }

    fn shuffle_read_id(&self) -> Option<u64> {
        // A stage whose pipeline starts at this RDD fetches this shuffle's
        // map output.
        Some(self.meta.id)
    }
}
