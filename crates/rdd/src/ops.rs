//! Extended operator set: the rest of the classic RDD API surface —
//! `distinct`, `sample`, `coalesce`, pair-RDD helpers (`map_values`, `keys`,
//! `values`, `group_by_key`, `join`) and the aggregate actions (`reduce`,
//! `fold`, `first`).
//!
//! The paper's YAFIM only needs the Fig. 1/Fig. 2 operators (in
//! [`crate::rdd`]); these complete the engine to the level a downstream user
//! of a "mini-Spark" expects, and the extension miners (parallel FP-Growth,
//! SON) are built on them.

use crate::rdd::{materialize, CountProduced, CountPulled, Data, Pipe, Rdd, RddImpl, RddMeta};
use crate::shuffle::ShuffleStage;
use crate::task::TaskContext;
use std::hash::Hash;
use std::sync::Arc;
use yafim_cluster::{fx_hash64, ByteSize, NodeId};

impl<T: Data> Rdd<T> {
    /// Deterministic Bernoulli sample of roughly `fraction` of the elements
    /// (seeded; same seed → same sample, independent of partitioning of the
    /// *execution*, dependent only on element positions).
    pub fn sample(&self, fraction: f64, seed: u64) -> Rdd<T> {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
        let imp = Arc::new(SampleRdd {
            meta: RddMeta::new(&self.ctx),
            parent: Arc::clone(&self.imp),
            fraction,
            seed,
        });
        Rdd::from_impl(self.ctx.clone(), imp)
    }

    /// Merge partitions down to at most `n` (contiguous ranges; a narrow
    /// dependency, like Spark's `coalesce` without shuffle).
    pub fn coalesce(&self, n: usize) -> Rdd<T> {
        let n = n.max(1).min(self.num_partitions().max(1));
        let imp = Arc::new(CoalesceRdd {
            meta: RddMeta::new(&self.ctx),
            parent: Arc::clone(&self.imp),
            partitions: n,
        });
        Rdd::from_impl(self.ctx.clone(), imp)
    }

    /// Action: combine all elements with `f` (`None` on an empty RDD).
    /// `f` must be associative and commutative, as in Spark.
    pub fn reduce(&self, f: impl Fn(T, T) -> T + Send + Sync + 'static) -> Option<T> {
        let f = Arc::new(f);
        let g = Arc::clone(&f);
        let partials = self
            .map_partitions(move |part, _tc| {
                part.iter()
                    .cloned()
                    .reduce(|a, b| g(a, b))
                    .into_iter()
                    .collect()
            })
            .collect();
        partials.into_iter().reduce(|a, b| f(a, b))
    }

    /// Action: fold all elements starting from `zero` per partition, then
    /// across partitions (so `zero` must be an identity of `f`).
    pub fn fold(&self, zero: T, f: impl Fn(T, T) -> T + Send + Sync + 'static) -> T {
        let f = Arc::new(f);
        let g = Arc::clone(&f);
        let z = zero.clone();
        let partials = self
            .map_partitions(move |part, _tc| {
                vec![part.iter().cloned().fold(z.clone(), |a, b| g(a, b))]
            })
            .collect();
        partials.into_iter().fold(zero, |a, b| f(a, b))
    }

    /// Action: the first element in partition order (`None` if empty).
    pub fn first(&self) -> Option<T> {
        self.take(1).into_iter().next()
    }
}

impl<T> Rdd<T>
where
    T: Data + Hash + Eq,
{
    /// Remove duplicates (one shuffle, like Spark's `distinct`).
    pub fn distinct(&self) -> Rdd<T> {
        self.map(|t| (t, ()))
            .reduce_by_key(|a, _b| a)
            .map(|(t, ())| t)
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Data + Hash + Eq,
    V: Data,
{
    /// Transform values, keeping keys (narrow).
    pub fn map_values<W: Data>(&self, f: impl Fn(V) -> W + Send + Sync + 'static) -> Rdd<(K, W)> {
        self.map(move |(k, v)| (k, f(v)))
    }

    /// Project keys (narrow).
    pub fn keys(&self) -> Rdd<K> {
        self.map(|(k, _)| k)
    }

    /// Project values (narrow).
    pub fn values(&self) -> Rdd<V> {
        self.map(|(_, v)| v)
    }

    /// Group all values per key (one shuffle). Value order within a group is
    /// deterministic (map-task order, as this engine's shuffle is).
    pub fn group_by_key(&self) -> Rdd<(K, Vec<V>)> {
        self.map(|(k, v)| (k, vec![v]))
            .reduce_by_key(|mut a, mut b| {
                a.append(&mut b);
                a
            })
    }

    /// Inner join on the key (one shuffle over both sides). For each key,
    /// every pair of a left and a right value is produced.
    pub fn join<W: Data>(&self, other: &Rdd<(K, W)>) -> Rdd<(K, (V, W))> {
        let left = self.map(|(k, v)| (k, JoinSide::Left(v)));
        let right = other.map(|(k, w)| (k, JoinSide::Right(w)));
        left.union(&right)
            .group_by_key()
            .flat_map(|(k, sides): (K, Vec<JoinSide<V, W>>)| {
                let mut ls = Vec::new();
                let mut rs = Vec::new();
                for s in sides {
                    match s {
                        JoinSide::Left(v) => ls.push(v),
                        JoinSide::Right(w) => rs.push(w),
                    }
                }
                let mut out = Vec::with_capacity(ls.len() * rs.len());
                for l in &ls {
                    for r in &rs {
                        out.push((k.clone(), (l.clone(), r.clone())));
                    }
                }
                out
            })
    }

    /// Action: collect into per-key counts — `count_by_key` (drives the
    /// Phase I frequency table in user code).
    pub fn count_by_key(&self) -> Vec<(K, u64)> {
        self.map(|(k, _)| (k, 1u64))
            .reduce_by_key(|a, b| a + b)
            .collect()
    }
}

/// Tag for the two sides of a join while they travel one shuffle together.
#[derive(Clone)]
enum JoinSide<V, W> {
    Left(V),
    Right(W),
}

impl<V: ByteSize, W: ByteSize> ByteSize for JoinSide<V, W> {
    fn byte_size(&self) -> u64 {
        1 + match self {
            JoinSide::Left(v) => v.byte_size(),
            JoinSide::Right(w) => w.byte_size(),
        }
    }
}

// ---------------------------------------------------------------------------
// Operator nodes
// ---------------------------------------------------------------------------

struct SampleRdd<T: Data> {
    meta: RddMeta,
    parent: Arc<dyn RddImpl<T>>,
    fraction: f64,
    seed: u64,
}

impl<T: Data> RddImpl<T> for SampleRdd<T> {
    fn meta(&self) -> &RddMeta {
        &self.meta
    }

    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn preferred_node(&self, part: usize) -> Option<NodeId> {
        self.parent.preferred_node(part)
    }

    fn compute<'a>(&'a self, part: usize, tc: &'a TaskContext) -> Pipe<'a, T> {
        // Position-keyed hash → uniform in [0,1), fully deterministic: the
        // streamed element positions are the same positions the eager
        // evaluator enumerates, so the sample is identical.
        let threshold = (self.fraction * u64::MAX as f64) as u64;
        let seed = self.seed;
        let inp = CountPulled::new(materialize(&self.parent, part, tc).into_iter(), tc);
        Pipe::Iter(Box::new(CountProduced::new(
            inp.enumerate()
                .filter(move |(i, _)| fx_hash64(&(seed, part as u64, *i as u64)) <= threshold)
                .map(|(_, t)| t),
            tc,
        )))
    }

    fn collect_shuffle_deps(&self, out: &mut Vec<Arc<dyn ShuffleStage>>) {
        self.parent.collect_shuffle_deps(out);
    }
}

struct CoalesceRdd<T: Data> {
    meta: RddMeta,
    parent: Arc<dyn RddImpl<T>>,
    partitions: usize,
}

impl<T: Data> CoalesceRdd<T> {
    /// Contiguous range of parent partitions backing output partition `i`.
    fn parent_range(&self, i: usize) -> std::ops::Range<usize> {
        let total = self.parent.num_partitions();
        let per = total.div_ceil(self.partitions);
        let start = i * per;
        start..(start + per).min(total)
    }
}

impl<T: Data> RddImpl<T> for CoalesceRdd<T> {
    fn meta(&self) -> &RddMeta {
        &self.meta
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }

    fn preferred_node(&self, part: usize) -> Option<NodeId> {
        self.parent_range(part)
            .next()
            .and_then(|p| self.parent.preferred_node(p))
    }

    fn compute<'a>(&'a self, part: usize, tc: &'a TaskContext) -> Pipe<'a, T> {
        // Chain the parent partitions lazily: a later parent partition is
        // only materialized when the pipeline actually reaches it (an
        // incremental `take` that fills up early never computes it).
        let parent = &self.parent;
        let it = self
            .parent_range(part)
            .flat_map(move |p| CountPulled::new(materialize(parent, p, tc).into_iter(), tc));
        Pipe::Iter(Box::new(CountProduced::new(it, tc)))
    }

    fn collect_shuffle_deps(&self, out: &mut Vec<Arc<dyn ShuffleStage>>) {
        self.parent.collect_shuffle_deps(out);
    }
}

#[cfg(test)]
mod tests {
    use crate::Context;
    use yafim_cluster::{ClusterSpec, CostModel, SimCluster};

    fn ctx() -> Context {
        Context::new(SimCluster::with_threads(
            ClusterSpec::new(4, 2, 1 << 30),
            CostModel::hadoop_era(),
            2,
        ))
    }

    #[test]
    fn distinct_removes_duplicates() {
        let c = ctx();
        let mut out = c
            .parallelize_with_partitions(vec![1u32, 2, 2, 3, 1, 3, 3], 3)
            .distinct()
            .collect();
        out.sort();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn sample_is_deterministic_and_roughly_sized() {
        let c = ctx();
        let rdd = c.parallelize_with_partitions((0u32..10_000).collect(), 8);
        let a = rdd.sample(0.3, 42).collect();
        let b = rdd.sample(0.3, 42).collect();
        assert_eq!(a, b, "same seed, same sample");
        let frac = a.len() as f64 / 10_000.0;
        assert!((0.25..0.35).contains(&frac), "got fraction {frac}");
        let other = rdd.sample(0.3, 43).collect();
        assert_ne!(a, other, "different seed, different sample");
    }

    #[test]
    fn sample_edges() {
        let c = ctx();
        let rdd = c.parallelize((0u32..100).collect());
        assert_eq!(rdd.sample(0.0, 1).count(), 0);
        assert_eq!(rdd.sample(1.0, 1).count(), 100);
    }

    #[test]
    fn coalesce_preserves_order_and_contents() {
        let c = ctx();
        let data: Vec<u32> = (0..97).collect();
        let rdd = c.parallelize_with_partitions(data.clone(), 13).coalesce(4);
        assert_eq!(rdd.num_partitions(), 4);
        assert_eq!(rdd.collect(), data);
        // Coalescing below 1 clamps.
        assert_eq!(
            c.parallelize_with_partitions(data.clone(), 5)
                .coalesce(0)
                .num_partitions(),
            1
        );
    }

    #[test]
    fn reduce_and_fold() {
        let c = ctx();
        let rdd = c.parallelize_with_partitions((1u64..=100).collect(), 7);
        assert_eq!(rdd.reduce(|a, b| a + b), Some(5050));
        assert_eq!(rdd.fold(0, |a, b| a + b), 5050);
        let empty = c.parallelize(Vec::<u64>::new());
        assert_eq!(empty.reduce(|a, b| a + b), None);
        // As in Spark, `zero` is applied once per partition plus once at the
        // driver, so it must be an identity of `f` for a meaningful result.
        assert_eq!(empty.fold(0, |a, b| a + b), 0);
        assert_eq!(empty.fold(7, |a, b| a.max(b)), 7);
    }

    #[test]
    fn first_in_partition_order() {
        let c = ctx();
        assert_eq!(c.parallelize(vec![9u32, 1, 5]).first(), Some(9));
        assert_eq!(c.parallelize(Vec::<u32>::new()).first(), None);
    }

    #[test]
    fn map_values_keys_values() {
        let c = ctx();
        let rdd = c.parallelize(vec![(1u32, 10u64), (2, 20)]);
        assert_eq!(rdd.map_values(|v| v + 1).collect(), vec![(1, 11), (2, 21)]);
        assert_eq!(rdd.keys().collect(), vec![1, 2]);
        assert_eq!(rdd.values().collect(), vec![10, 20]);
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let c = ctx();
        let pairs: Vec<(u32, u32)> = vec![(1, 1), (2, 9), (1, 2), (1, 3), (2, 8)];
        let mut grouped = c
            .parallelize_with_partitions(pairs, 3)
            .group_by_key()
            .collect();
        grouped.sort();
        assert_eq!(grouped.len(), 2);
        let (k1, mut v1) = grouped[0].clone();
        v1.sort();
        assert_eq!((k1, v1), (1, vec![1, 2, 3]));
        let (k2, mut v2) = grouped[1].clone();
        v2.sort();
        assert_eq!((k2, v2), (2, vec![8, 9]));
    }

    #[test]
    fn join_is_inner_product_per_key() {
        let c = ctx();
        let left = c.parallelize(vec![(1u32, "a"), (1, "b"), (2, "c"), (3, "d")]);
        let right = c.parallelize(vec![(1u32, 10u32), (2, 20), (2, 21), (4, 40)]);
        let mut out = left.join(&right).collect();
        out.sort();
        assert_eq!(
            out,
            vec![
                (1, ("a", 10)),
                (1, ("b", 10)),
                (2, ("c", 20)),
                (2, ("c", 21)),
            ]
        );
    }

    #[test]
    fn count_by_key_counts() {
        let c = ctx();
        let mut out = c
            .parallelize((0u32..30).map(|i| (i % 3, ())).collect())
            .count_by_key();
        out.sort();
        assert_eq!(out, vec![(0, 10), (1, 10), (2, 10)]);
    }

    #[test]
    fn distinct_then_count_pipeline() {
        let c = ctx();
        let n = c
            .parallelize((0u32..1000).map(|i| i % 50).collect())
            .distinct()
            .count();
        assert_eq!(n, 50);
    }
}
