//! Per-task execution context.

use yafim_cluster::{NodeId, WorkCounters};

/// Handed to every task closure. Carries the task's identity and the work
//  counters that drive virtual-time accounting.
pub struct TaskContext {
    /// Partition index this task computes.
    pub partition: usize,
    /// Virtual node the task runs on (locality decision made by the driver).
    pub node: NodeId,
    work: WorkCounters,
}

impl TaskContext {
    /// New context for `partition` running on `node`.
    pub fn new(partition: usize, node: NodeId) -> Self {
        TaskContext {
            partition,
            node,
            work: WorkCounters::new(),
        }
    }

    /// Record `n` records flowing into an operator.
    pub fn add_records_in(&mut self, n: u64) {
        self.work.add_records_in(n);
    }

    /// Record `n` records produced by an operator.
    pub fn add_records_out(&mut self, n: u64) {
        self.work.add_records_out(n);
    }

    /// Record extra CPU work units (hash-tree visits, comparisons…).
    pub fn add_cpu(&mut self, units: u64) {
        self.work.add_cpu(units);
    }

    /// Record a node-local disk read.
    pub fn add_disk_read(&mut self, bytes: u64) {
        self.work.add_disk_read(bytes);
    }

    /// Record a node-local disk write.
    pub fn add_disk_write(&mut self, bytes: u64) {
        self.work.add_disk_write(bytes);
    }

    /// Record a scan of cached in-memory data.
    pub fn add_mem_read(&mut self, bytes: u64) {
        self.work.add_mem_read(bytes);
    }

    /// Record a network fetch.
    pub fn add_net(&mut self, bytes: u64) {
        self.work.add_net(bytes);
    }

    /// Record bytes crossing a serialization boundary.
    pub fn add_ser(&mut self, bytes: u64) {
        self.work.add_ser(bytes);
    }

    /// Snapshot of the accumulated counters.
    pub fn work(&self) -> &WorkCounters {
        &self.work
    }

    /// Consume the context, yielding the final counters.
    pub fn into_work(self) -> WorkCounters {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut tc = TaskContext::new(3, NodeId(1));
        tc.add_records_in(2);
        tc.add_cpu(10);
        tc.add_mem_read(100);
        assert_eq!(tc.partition, 3);
        assert_eq!(tc.work().records_in, 2);
        assert_eq!(tc.work().cpu_units, 12);
        let w = tc.into_work();
        assert_eq!(w.mem_read_bytes, 100);
    }
}
