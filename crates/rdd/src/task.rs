//! Per-task execution context.

use std::cell::Cell;
use yafim_cluster::{
    MemGrant, MemoryBudget, NodeId, OomAbort, TaskMemory, TaskProfile, WorkCounters,
};

/// Handed to every task closure. Carries the task's identity and the work
//  counters that drive virtual-time accounting, plus attribution counters
//  (shuffle/broadcast bytes, cache behaviour, pipeline records) for the
//  observability layer.
///
/// Counters live behind a [`Cell`] so a fused iterator pipeline — whose
/// adapters each borrow the context for the whole stage — can keep charging
/// work through a shared `&TaskContext` while elements stream through.
pub struct TaskContext {
    /// Partition index this task computes.
    pub partition: usize,
    /// Virtual node the task runs on (locality decision made by the driver).
    pub node: NodeId,
    profile: Cell<TaskProfile>,
    /// Execution-memory ledger (inert unless the fault plan arms the
    /// governor).
    memory: TaskMemory,
}

impl TaskContext {
    /// New context for `partition` running on `node`, without an armed
    /// memory governor.
    pub fn new(partition: usize, node: NodeId) -> Self {
        Self::with_memory(partition, node, None, 0)
    }

    /// New context carrying the stage's execution-memory budget (`None`
    /// keeps the governor inert). `stage_key` seeds the OOM rolls so one
    /// plan always denies the same acquisitions of the same stage.
    pub fn with_memory(
        partition: usize,
        node: NodeId,
        budget: Option<MemoryBudget>,
        stage_key: u64,
    ) -> Self {
        TaskContext {
            partition,
            node,
            profile: Cell::new(TaskProfile::new()),
            memory: TaskMemory::new(budget, stage_key, partition),
        }
    }

    /// Reserve `bytes` of execution memory for the structure tagged `site`
    /// (see [`yafim_cluster::memgov::site`]). Applies the governor's
    /// deterministic effects — counters, pressure stalls, spill disk I/O —
    /// to this task's profile and returns the grant decision. A free
    /// [`MemGrant::Granted`] no-op when the governor is unarmed.
    pub fn try_reserve(&self, bytes: u64, site: u64, degradable: bool) -> MemGrant {
        if !self.memory.armed() {
            return MemGrant::Granted;
        }
        let (grant, fx) = self.memory.try_reserve(bytes, site, degradable);
        self.update(|p| {
            p.mem.merge(&fx.mem);
            if fx.stall_micros > 0 {
                p.work.add_stall_micros(fx.stall_micros);
            }
            if fx.spill_disk_bytes > 0 {
                p.work.add_disk_write(fx.spill_disk_bytes);
                p.work.add_disk_read(fx.spill_disk_bytes);
            }
        });
        grant
    }

    /// Return previously reserved execution bytes (a structure was
    /// dropped before the task finished).
    pub fn release_memory(&self, bytes: u64) {
        self.memory.release(bytes);
    }

    /// Whether some reservation exhausted its OOM retry ladder: the stage
    /// must abort with a typed out-of-memory error.
    pub fn oom_abort(&self) -> Option<OomAbort> {
        self.memory.abort()
    }

    fn update(&self, f: impl FnOnce(&mut TaskProfile)) {
        let mut p = self.profile.get();
        f(&mut p);
        self.profile.set(p);
    }

    /// Record `n` records flowing into an operator.
    pub fn add_records_in(&self, n: u64) {
        self.update(|p| p.work.add_records_in(n));
    }

    /// Record `n` records produced by an operator.
    pub fn add_records_out(&self, n: u64) {
        self.update(|p| p.work.add_records_out(n));
    }

    /// Record extra CPU work units (hash-tree visits, comparisons…).
    pub fn add_cpu(&self, units: u64) {
        self.update(|p| p.work.add_cpu(units));
    }

    /// Record a node-local disk read.
    pub fn add_disk_read(&self, bytes: u64) {
        self.update(|p| p.work.add_disk_read(bytes));
    }

    /// Record a node-local disk write.
    pub fn add_disk_write(&self, bytes: u64) {
        self.update(|p| p.work.add_disk_write(bytes));
    }

    /// Record a scan of cached in-memory data.
    pub fn add_mem_read(&self, bytes: u64) {
        self.update(|p| p.work.add_mem_read(bytes));
    }

    /// Record a network fetch.
    pub fn add_net(&self, bytes: u64) {
        self.update(|p| p.work.add_net(bytes));
    }

    /// Record bytes crossing a serialization boundary.
    pub fn add_ser(&self, bytes: u64) {
        self.update(|p| p.work.add_ser(bytes));
    }

    /// Record virtual time the task spent stalled waiting (transient-fetch
    /// retry backoff), in integer microseconds.
    pub fn add_stall_micros(&self, micros: u64) {
        self.update(|p| p.work.add_stall_micros(micros));
    }

    /// Attribute bytes already charged to the physical counters as a
    /// shuffle fetch (local + remote).
    pub fn note_shuffle_read(&self, bytes: u64) {
        self.update(|p| p.shuffle_read_bytes += bytes);
    }

    /// Attribute bytes already charged to the physical counters as a
    /// map-side shuffle-file write.
    pub fn note_shuffle_write(&self, bytes: u64) {
        self.update(|p| p.shuffle_write_bytes += bytes);
    }

    /// Attribute bytes already charged to the physical counters as a read
    /// of a broadcast variable.
    pub fn note_broadcast_read(&self, bytes: u64) {
        self.update(|p| p.broadcast_read_bytes += bytes);
    }

    /// Count a partition read served from the cache (any tier).
    pub fn note_cache_hit(&self) {
        self.update(|p| p.cache_hits += 1);
    }

    /// Count a partition read that missed the cache and recomputed.
    pub fn note_cache_miss(&self) {
        self.update(|p| p.cache_misses += 1);
    }

    /// Attribute `n` records entering the pipeline from a stable input
    /// (source partition, cache hit, shuffle fetch). Time-neutral.
    pub fn note_records_read(&self, n: u64) {
        self.update(|p| p.records_read += n);
    }

    /// Attribute `n` records leaving the pipeline through a breaker
    /// (shuffle write, cache insert, driver fetch). Time-neutral.
    pub fn note_records_written(&self, n: u64) {
        self.update(|p| p.records_written += n);
    }

    /// Attribute `bytes` buffered into a `Vec` at a pipeline breaker (or,
    /// in the eager reference evaluator, at every operator). Time-neutral:
    /// the physical cost of moving those bytes is charged separately.
    pub fn note_materialized(&self, bytes: u64) {
        self.update(|p| p.bytes_materialized += bytes);
    }

    /// Snapshot of the accumulated physical counters.
    pub fn work(&self) -> WorkCounters {
        self.profile.get().work
    }

    /// Snapshot of the full profile (physical + attribution).
    pub fn profile(&self) -> TaskProfile {
        self.profile.get()
    }

    /// Consume the context, yielding the final physical counters.
    pub fn into_work(self) -> WorkCounters {
        self.profile.get().work
    }

    /// Consume the context, yielding the full profile.
    pub fn into_profile(self) -> TaskProfile {
        self.profile.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let tc = TaskContext::new(3, NodeId(1));
        tc.add_records_in(2);
        tc.add_cpu(10);
        tc.add_mem_read(100);
        assert_eq!(tc.partition, 3);
        assert_eq!(tc.work().records_in, 2);
        assert_eq!(tc.work().cpu_units, 12);
        let w = tc.into_work();
        assert_eq!(w.mem_read_bytes, 100);
    }

    #[test]
    fn attribution_never_touches_physical_counters() {
        let tc = TaskContext::new(0, NodeId(0));
        tc.note_shuffle_read(100);
        tc.note_shuffle_write(200);
        tc.note_broadcast_read(300);
        tc.note_cache_hit();
        tc.note_cache_miss();
        tc.note_records_read(5);
        tc.note_records_written(4);
        tc.note_materialized(64);
        let p = tc.into_profile();
        assert_eq!(p.shuffle_read_bytes, 100);
        assert_eq!(p.shuffle_write_bytes, 200);
        assert_eq!(p.broadcast_read_bytes, 300);
        assert_eq!(p.cache_hits, 1);
        assert_eq!(p.cache_misses, 1);
        assert_eq!(p.records_read, 5);
        assert_eq!(p.records_written, 4);
        assert_eq!(p.bytes_materialized, 64);
        assert_eq!(p.work, WorkCounters::new(), "attribution is time-neutral");
    }

    #[test]
    fn unarmed_context_reserves_for_free() {
        let tc = TaskContext::new(0, NodeId(0));
        assert_eq!(
            tc.try_reserve(u64::MAX, yafim_cluster::memgov::site::TRIANGLE, false),
            MemGrant::Granted
        );
        assert!(tc.oom_abort().is_none());
        let p = tc.into_profile();
        assert_eq!(p, TaskProfile::new(), "inert governor leaves no trace");
    }

    #[test]
    fn armed_context_applies_governor_effects_to_the_profile() {
        use yafim_cluster::{ClusterSpec, CostModel, FaultPlan};
        let plan = FaultPlan::seeded(0).with_mem_budget(1000);
        let budget = MemoryBudget::from_plan(
            &ClusterSpec::new(1, 1, yafim_cluster::spec::GIB),
            0.6,
            &CostModel::default(),
            &plan,
        );
        let tc = TaskContext::with_memory(0, NodeId(0), budget, 1);
        // Fits the 400-byte execution slice: peak tracked, nothing else.
        assert_eq!(
            tc.try_reserve(100, yafim_cluster::memgov::site::TRIANGLE, false),
            MemGrant::Granted
        );
        // A 5000-byte combine buffer cannot fit: spills through disk.
        assert_eq!(
            tc.try_reserve(5000, yafim_cluster::memgov::site::SHUFFLE_COMBINE, true),
            MemGrant::Spill
        );
        let p = tc.into_profile();
        assert_eq!(p.mem.peak_execution_bytes, 100);
        assert_eq!(p.mem.spills, 1);
        assert_eq!(p.mem.spill_bytes, 5000);
        assert_eq!(p.work.disk_write_bytes, 5000, "spill round trip charged");
        assert_eq!(p.work.disk_read_bytes, 5000);
    }

    #[test]
    fn shared_reference_charges_through_cell() {
        // A fused pipeline holds one `&TaskContext` in several adapters at
        // once; charging through any of them must be visible to all.
        let tc = TaskContext::new(0, NodeId(0));
        let a: &TaskContext = &tc;
        let b: &TaskContext = &tc;
        a.add_records_in(1);
        b.add_records_out(2);
        assert_eq!(tc.work().records_in, 1);
        assert_eq!(tc.work().records_out, 2);
        assert_eq!(tc.work().cpu_units, 3);
    }
}
