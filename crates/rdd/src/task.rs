//! Per-task execution context.

use yafim_cluster::{NodeId, TaskProfile, WorkCounters};

/// Handed to every task closure. Carries the task's identity and the work
//  counters that drive virtual-time accounting, plus attribution counters
//  (shuffle/broadcast bytes, cache behaviour) for the observability layer.
pub struct TaskContext {
    /// Partition index this task computes.
    pub partition: usize,
    /// Virtual node the task runs on (locality decision made by the driver).
    pub node: NodeId,
    profile: TaskProfile,
}

impl TaskContext {
    /// New context for `partition` running on `node`.
    pub fn new(partition: usize, node: NodeId) -> Self {
        TaskContext {
            partition,
            node,
            profile: TaskProfile::new(),
        }
    }

    /// Record `n` records flowing into an operator.
    pub fn add_records_in(&mut self, n: u64) {
        self.profile.work.add_records_in(n);
    }

    /// Record `n` records produced by an operator.
    pub fn add_records_out(&mut self, n: u64) {
        self.profile.work.add_records_out(n);
    }

    /// Record extra CPU work units (hash-tree visits, comparisons…).
    pub fn add_cpu(&mut self, units: u64) {
        self.profile.work.add_cpu(units);
    }

    /// Record a node-local disk read.
    pub fn add_disk_read(&mut self, bytes: u64) {
        self.profile.work.add_disk_read(bytes);
    }

    /// Record a node-local disk write.
    pub fn add_disk_write(&mut self, bytes: u64) {
        self.profile.work.add_disk_write(bytes);
    }

    /// Record a scan of cached in-memory data.
    pub fn add_mem_read(&mut self, bytes: u64) {
        self.profile.work.add_mem_read(bytes);
    }

    /// Record a network fetch.
    pub fn add_net(&mut self, bytes: u64) {
        self.profile.work.add_net(bytes);
    }

    /// Record bytes crossing a serialization boundary.
    pub fn add_ser(&mut self, bytes: u64) {
        self.profile.work.add_ser(bytes);
    }

    /// Attribute bytes already charged to the physical counters as a
    /// shuffle fetch (local + remote).
    pub fn note_shuffle_read(&mut self, bytes: u64) {
        self.profile.shuffle_read_bytes += bytes;
    }

    /// Attribute bytes already charged to the physical counters as a
    /// map-side shuffle-file write.
    pub fn note_shuffle_write(&mut self, bytes: u64) {
        self.profile.shuffle_write_bytes += bytes;
    }

    /// Attribute bytes already charged to the physical counters as a read
    /// of a broadcast variable.
    pub fn note_broadcast_read(&mut self, bytes: u64) {
        self.profile.broadcast_read_bytes += bytes;
    }

    /// Count a partition read served from the cache (any tier).
    pub fn note_cache_hit(&mut self) {
        self.profile.cache_hits += 1;
    }

    /// Count a partition read that missed the cache and recomputed.
    pub fn note_cache_miss(&mut self) {
        self.profile.cache_misses += 1;
    }

    /// Snapshot of the accumulated physical counters.
    pub fn work(&self) -> &WorkCounters {
        &self.profile.work
    }

    /// Snapshot of the full profile (physical + attribution).
    pub fn profile(&self) -> &TaskProfile {
        &self.profile
    }

    /// Consume the context, yielding the final physical counters.
    pub fn into_work(self) -> WorkCounters {
        self.profile.work
    }

    /// Consume the context, yielding the full profile.
    pub fn into_profile(self) -> TaskProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut tc = TaskContext::new(3, NodeId(1));
        tc.add_records_in(2);
        tc.add_cpu(10);
        tc.add_mem_read(100);
        assert_eq!(tc.partition, 3);
        assert_eq!(tc.work().records_in, 2);
        assert_eq!(tc.work().cpu_units, 12);
        let w = tc.into_work();
        assert_eq!(w.mem_read_bytes, 100);
    }

    #[test]
    fn attribution_never_touches_physical_counters() {
        let mut tc = TaskContext::new(0, NodeId(0));
        tc.note_shuffle_read(100);
        tc.note_shuffle_write(200);
        tc.note_broadcast_read(300);
        tc.note_cache_hit();
        tc.note_cache_miss();
        let p = tc.into_profile();
        assert_eq!(p.shuffle_read_bytes, 100);
        assert_eq!(p.shuffle_write_bytes, 200);
        assert_eq!(p.broadcast_read_bytes, 300);
        assert_eq!(p.cache_hits, 1);
        assert_eq!(p.cache_misses, 1);
        assert_eq!(p.work, WorkCounters::new(), "attribution is time-neutral");
    }
}
