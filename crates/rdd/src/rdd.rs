//! The typed RDD and its narrow operators, executed as fused iterator
//! pipelines.
//!
//! An [`Rdd<T>`] is a handle to an immutable, partitioned, lazily-computed
//! dataset. Transformations build a lineage graph of operator nodes; actions
//! ([`Rdd::collect`], [`Rdd::count`]) hand the graph to the executor in
//! [`crate::exec`], which first materializes any shuffle dependencies
//! (stages) and then computes the final stage.
//!
//! Within one stage, narrow operators do **not** materialize intermediate
//! partitions: [`RddImpl::compute`] returns a [`Pipe`] — a streaming
//! partition that composes `map`/`flat_map`/`filter`/`sample`/`coalesce`/
//! `union` chains into a single pass, exactly like Spark's whole-stage
//! iterator pipelining. Partition buffers exist only at the true pipeline
//! breakers:
//!
//! * **shuffle map-side writes** ([`crate::shuffle`]) — buckets must be
//!   registered for the reduce side,
//! * **cache inserts and reads** ([`crate::cache`]) — a stored partition is
//!   a `Vec` behind an `Arc`; a hit streams straight out of that `Arc`
//!   without copying it,
//! * **driver-fetch actions** ([`crate::exec`]) — results are serialized
//!   and shipped to the driver.
//!
//! The retained naive-eager reference evaluator
//! ([`crate::ExecMode::Eager`]) instead collapses the pipe at *every*
//! operator boundary — one fresh partition buffer per operator, the
//! pre-fusion engine's allocation pattern — and exists to cross-check the
//! fused engine's results and byte accounting, and to measure what fusion
//! saves.
//!
//! Lineage is also the fault-tolerance story, exactly as in the paper's
//! description of Spark: a lost cached partition is simply recomputed from
//! its parents, through the same pipeline path.

use crate::cache::{CacheTier, StorageLevel};
use crate::context::{Context, ExecMode};
use crate::exec;
use crate::shuffle::{ReduceByKeyRdd, ShuffleStage};
use crate::task::TaskContext;
use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use yafim_cluster::{
    slice_bytes, ByteSize, DfsFile, IntegrityCounters, IntegrityTier, NodeId, RecoveryCounters,
    Split, TransientKind,
};

// Persistence state encoding for `RddMeta::persist_level`.
const PERSIST_NONE: u8 = 0;
const PERSIST_MEMORY: u8 = 1;
const PERSIST_MEMORY_AND_DISK: u8 = 2;

/// Marker bound for RDD element types: cheap to clone, shareable across the
/// worker pool, and byte-sizeable for shuffle/cache accounting.
pub trait Data: Clone + Send + Sync + ByteSize + 'static {}
impl<T: Clone + Send + Sync + ByteSize + 'static> Data for T {}

// ---------------------------------------------------------------------------
// The pipeline
// ---------------------------------------------------------------------------

/// One partition's data as it flows through a stage: either already
/// materialized (shared or owned) or a lazy iterator chain borrowing the
/// operator nodes and the [`TaskContext`] for the duration of the task.
pub(crate) enum Pipe<'a, T: Data> {
    /// A stable buffer shared with the cache or the driver (cache hits,
    /// `parallelize` chunks). Elements are cloned lazily as they are pulled.
    Shared(Arc<Vec<T>>),
    /// A buffer this task owns (breaker outputs like the shuffle reduce
    /// side, or `map_partitions` closure results). Elements move out.
    Owned(Vec<T>),
    /// A fused chain of narrow operators: nothing is computed until the
    /// consumer pulls.
    Iter(Box<dyn Iterator<Item = T> + 'a>),
}

impl<'a, T: Data> Pipe<'a, T> {
    /// Drain into a fresh `Vec`, charging `bytes_materialized` whenever the
    /// engine copies elements into a new buffer (a lazy chain collapsing, or
    /// a shared buffer being deep-cloned by the eager reference evaluator).
    /// An owned buffer passes through for free — no copy happens.
    pub(crate) fn into_vec(self, tc: &TaskContext) -> Vec<T> {
        match self {
            Pipe::Shared(a) => {
                let v: Vec<T> = a.iter().cloned().collect();
                tc.note_materialized(slice_bytes(&v));
                v
            }
            Pipe::Owned(v) => v,
            Pipe::Iter(it) => {
                let v: Vec<T> = it.collect();
                tc.note_materialized(slice_bytes(&v));
                v
            }
        }
    }

    /// Collapse to a shared partition buffer (a breaker), reusing the
    /// allocation when the data is already materialized.
    pub(crate) fn into_arc(self, tc: &TaskContext) -> Arc<Vec<T>> {
        match self {
            Pipe::Shared(a) => a,
            Pipe::Owned(v) => Arc::new(v),
            Pipe::Iter(it) => {
                let v: Vec<T> = it.collect();
                tc.note_materialized(slice_bytes(&v));
                Arc::new(v)
            }
        }
    }

    /// Hand the whole partition to `f` as a slice (for `map_partitions`).
    /// Zero-copy when the data is already materialized — in particular, a
    /// cache hit passes the cached buffer itself, which is the YAFIM Phase
    /// II hot path.
    pub(crate) fn with_slice<R>(self, tc: &TaskContext, f: impl FnOnce(&[T]) -> R) -> R {
        match self {
            Pipe::Shared(a) => f(&a),
            Pipe::Owned(v) => f(&v),
            Pipe::Iter(it) => {
                let v: Vec<T> = it.collect();
                tc.note_materialized(slice_bytes(&v));
                f(&v)
            }
        }
    }

    /// Number of elements, consuming the pipe. Already-materialized buffers
    /// answer without touching elements; a lazy chain is drained (the
    /// upstream work still runs, and still gets counted).
    pub(crate) fn count(self) -> u64 {
        match self {
            Pipe::Shared(a) => a.len() as u64,
            Pipe::Owned(v) => v.len() as u64,
            Pipe::Iter(it) => it.count() as u64,
        }
    }
}

/// Streaming element source for a [`Pipe`].
pub(crate) enum PipeIter<'a, T: Data> {
    Shared(Arc<Vec<T>>, usize),
    Owned(std::vec::IntoIter<T>),
    Boxed(Box<dyn Iterator<Item = T> + 'a>),
}

impl<'a, T: Data> IntoIterator for Pipe<'a, T> {
    type Item = T;
    type IntoIter = PipeIter<'a, T>;
    fn into_iter(self) -> PipeIter<'a, T> {
        match self {
            Pipe::Shared(a) => PipeIter::Shared(a, 0),
            Pipe::Owned(v) => PipeIter::Owned(v.into_iter()),
            Pipe::Iter(b) => PipeIter::Boxed(b),
        }
    }
}

impl<T: Data> Iterator for PipeIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        match self {
            PipeIter::Shared(a, i) => {
                let item = a.get(*i).cloned();
                if item.is_some() {
                    *i += 1;
                }
                item
            }
            PipeIter::Owned(it) => it.next(),
            PipeIter::Boxed(it) => it.next(),
        }
    }
}

/// Counts elements pulled from the upstream pipe and flushes the count as
/// this operator's `records_in` when the pipeline is dropped (end of task).
/// Totals match the eager evaluator's bulk `add_records_in(len)` whenever
/// the pipe is fully drained; an incremental `take` legitimately counts
/// fewer — only what it actually pulled.
pub(crate) struct CountPulled<'a, I> {
    inner: I,
    tc: &'a TaskContext,
    n: u64,
}

impl<'a, I> CountPulled<'a, I> {
    pub(crate) fn new(inner: I, tc: &'a TaskContext) -> Self {
        CountPulled { inner, tc, n: 0 }
    }
}

impl<I: Iterator> Iterator for CountPulled<'_, I> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        let item = self.inner.next();
        if item.is_some() {
            self.n += 1;
        }
        item
    }
}

impl<I> Drop for CountPulled<'_, I> {
    fn drop(&mut self) {
        self.tc.add_records_in(self.n);
    }
}

/// Counts elements an operator emits downstream and flushes the count as
/// its `records_out` on drop. See [`CountPulled`].
pub(crate) struct CountProduced<'a, I> {
    inner: I,
    tc: &'a TaskContext,
    n: u64,
}

impl<'a, I> CountProduced<'a, I> {
    pub(crate) fn new(inner: I, tc: &'a TaskContext) -> Self {
        CountProduced { inner, tc, n: 0 }
    }
}

impl<I: Iterator> Iterator for CountProduced<'_, I> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        let item = self.inner.next();
        if item.is_some() {
            self.n += 1;
        }
        item
    }
}

impl<I> Drop for CountProduced<'_, I> {
    fn drop(&mut self) {
        self.tc.add_records_out(self.n);
    }
}

/// Identity and bookkeeping shared by every operator node.
pub(crate) struct RddMeta {
    pub(crate) id: u64,
    pub(crate) ctx: Context,
    persist_level: AtomicU8,
}

impl RddMeta {
    pub(crate) fn new(ctx: &Context) -> Self {
        RddMeta {
            id: ctx.new_id(),
            ctx: ctx.clone(),
            persist_level: AtomicU8::new(PERSIST_NONE),
        }
    }

    fn level(&self) -> Option<StorageLevel> {
        match self.persist_level.load(Ordering::Relaxed) {
            PERSIST_MEMORY => Some(StorageLevel::MemoryOnly),
            PERSIST_MEMORY_AND_DISK => Some(StorageLevel::MemoryAndDisk),
            _ => None,
        }
    }

    fn set_level(&self, level: Option<StorageLevel>) {
        let v = match level {
            None => PERSIST_NONE,
            Some(StorageLevel::MemoryOnly) => PERSIST_MEMORY,
            Some(StorageLevel::MemoryAndDisk) => PERSIST_MEMORY_AND_DISK,
        };
        self.persist_level.store(v, Ordering::Relaxed);
    }
}

/// Internal operator-node interface. One implementation per operator.
pub(crate) trait RddImpl<T: Data>: Send + Sync + 'static {
    /// Identity/bookkeeping.
    fn meta(&self) -> &RddMeta;
    /// Number of partitions.
    fn num_partitions(&self) -> usize;
    /// Locality preference for a partition, if any.
    fn preferred_node(&self, part: usize) -> Option<NodeId>;
    /// Produce one partition as a streaming pipe, from scratch (never
    /// consults the cache — that is [`materialize`]'s job). Narrow
    /// operators return a lazy chain over their parent's pipe; breakers
    /// return materialized buffers.
    fn compute<'a>(&'a self, part: usize, tc: &'a TaskContext) -> Pipe<'a, T>;
    /// Append the shuffle stages this lineage depends on (nearest only; each
    /// stage pulls in its own ancestors when prepared).
    fn collect_shuffle_deps(&self, out: &mut Vec<Arc<dyn ShuffleStage>>);
    /// Id of the shuffle whose output the stage computing this RDD reads,
    /// if any. Narrow operators delegate to their parent (they pipeline into
    /// the same stage); shuffle boundaries and sources stop the walk.
    fn shuffle_read_id(&self) -> Option<u64> {
        None
    }
    /// Number of operator nodes a from-scratch recomputation of this RDD
    /// replays within its stage: 1 for sources and stage boundaries
    /// (shuffle reads, checkpoint reads — recovery restarts from their
    /// materialized output), parent + 1 for narrow operators. This is the
    /// "lineage replay depth" the recovery counters report, and what
    /// checkpointing truncates.
    fn lineage_len(&self) -> u64 {
        1
    }
    /// Verify, before a job runs, that a clean copy of every replicated
    /// source partition is reachable under the active corruption plan.
    /// Replicated sources (HDFS files, checkpoint blocks) check that at
    /// least one replica per partition passes checksum verification; narrow
    /// operators delegate to their parents. When every replica of a
    /// partition is poisoned and the lineage was truncated there is nothing
    /// left to replay — the job must fail typed
    /// ([`crate::exec::ExecError::IntegrityFailure`]) rather than ever
    /// return wrong results. Driver-resident sources have nothing to check.
    fn preflight(&self) -> Result<(), crate::exec::ExecError> {
        Ok(())
    }
}

/// The node a partition's task runs on: its locality preference, or its
/// round-robin home.
pub(crate) fn node_for<T: Data>(imp: &Arc<dyn RddImpl<T>>, part: usize) -> NodeId {
    imp.preferred_node(part)
        .unwrap_or_else(|| imp.meta().ctx.cluster().spec().home_node(part))
}

/// Integer microseconds to fx-hash64-checksum `bytes` under the cluster's
/// cost model. Integrity overhead (write-time checksumming, read-time
/// verification, repair) only exists when a corruption plan is active, so
/// it is charged as task stall time and lands in the `fault_stall`
/// critical-path bucket — fault-free timelines stay byte-identical.
pub(crate) fn checksum_micros(ctx: &Context, bytes: u64) -> u64 {
    (ctx.cluster().cost().checksum(bytes).as_secs() * 1e6) as u64
}

/// Produce a partition's pipe, going through the cache when the RDD is
/// marked cached: hit → charge a memory scan and stream out of the stored
/// `Arc` without copying it; miss → compute via lineage, collapse the pipe
/// (a cache insert is a breaker), and store on the partition's home node
/// (possibly evicting LRU entries).
///
/// Under [`ExecMode::Eager`] the pipe is additionally collapsed to a fresh
/// buffer at *this* operator boundary, reproducing the pre-fusion engine's
/// per-operator allocation pattern.
pub(crate) fn materialize<'a, T: Data>(
    imp: &'a Arc<dyn RddImpl<T>>,
    part: usize,
    tc: &'a TaskContext,
) -> Pipe<'a, T> {
    let meta = imp.meta();
    let eager = meta.ctx.exec_mode() == ExecMode::Eager;
    let Some(level) = meta.level() else {
        let pipe = imp.compute(part, tc);
        return if eager {
            Pipe::Shared(Arc::new(pipe.into_vec(tc)))
        } else {
            pipe
        };
    };
    if let Some((data, bytes, tier)) = meta.ctx.cache().get::<T>(meta.id, part) {
        let faults = meta.ctx.cluster().faults();
        let rotten = if faults.integrity_active() {
            // Verify the stored block's checksum before trusting it.
            tc.add_stall_micros(checksum_micros(&meta.ctx, bytes));
            faults.take_corruption(IntegrityTier::Cache, meta.id, part, 0)
        } else {
            false
        };
        match tier {
            CacheTier::Memory => tc.add_mem_read(bytes),
            CacheTier::Disk => tc.add_disk_read(bytes),
        }
        if !rotten {
            tc.note_cache_hit();
            tc.note_records_read(data.len() as u64);
            return Pipe::Shared(data);
        }
        // Checksum mismatch on a cached/spilled partition. Cached blocks
        // have no replicas, so the cheapest (and only) repair is lineage
        // recompute: evict the poisoned entry and fall through to the miss
        // path below, which recomputes and re-caches a clean copy.
        meta.ctx.cache().evict(meta.id, part);
        meta.ctx.metrics().note_recovery(&RecoveryCounters {
            recomputed_partitions: 1,
            integrity: IntegrityCounters {
                corruptions_injected: 1,
                corruptions_detected: 1,
                corruptions_repaired: 1,
                repaired_via_recompute: 1,
                ..IntegrityCounters::default()
            },
            ..RecoveryCounters::default()
        });
    }
    tc.note_cache_miss();
    if meta.ctx.cache().take_lost(meta.id, part) {
        // This miss recomputes a partition a node loss destroyed: the whole
        // narrow chain down to the nearest stable input (source, shuffle or
        // checkpoint) replays. Report how deep that replay went.
        meta.ctx.metrics().note_recovery(&RecoveryCounters {
            max_replay_depth: imp.lineage_len(),
            ..RecoveryCounters::default()
        });
    }
    let data = Arc::new(imp.compute(part, tc).into_vec(tc));
    tc.note_records_written(data.len() as u64);
    let bytes = 8 + slice_bytes(&data);
    let node = node_for(imp, part).index();
    meta.ctx
        .cache()
        .put(meta.id, part, node, Arc::clone(&data), bytes, level);
    if meta.ctx.cluster().faults().integrity_active() {
        // Checksum the block at write time so later reads can verify it.
        tc.add_stall_micros(checksum_micros(&meta.ctx, bytes));
    }
    Pipe::Shared(data)
}

/// A resilient distributed dataset: the public handle. Cheap to clone.
pub struct Rdd<T: Data> {
    pub(crate) ctx: Context,
    pub(crate) imp: Arc<dyn RddImpl<T>>,
}

impl<T: Data> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            ctx: self.ctx.clone(),
            imp: Arc::clone(&self.imp),
        }
    }
}

impl<T: Data> Rdd<T> {
    pub(crate) fn from_impl(ctx: Context, imp: Arc<dyn RddImpl<T>>) -> Self {
        Rdd { ctx, imp }
    }

    /// Unique id of this RDD in its context (used by fault injection).
    pub fn id(&self) -> u64 {
        self.imp.meta().id
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.imp.num_partitions()
    }

    /// The driver context this RDD belongs to.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Mark this RDD for in-memory caching: the first materialization of
    /// each partition stores it on the partition's home node; later reads
    /// hit memory instead of recomputing the lineage. Equivalent to
    /// `persist(StorageLevel::MemoryOnly)` (Spark's default, what the paper
    /// uses for the transactions RDD).
    pub fn cache(&self) -> Rdd<T> {
        self.persist(StorageLevel::MemoryOnly)
    }

    /// Mark this RDD for persistence at an explicit [`StorageLevel`].
    pub fn persist(&self, level: StorageLevel) -> Rdd<T> {
        self.imp.meta().set_level(Some(level));
        self.clone()
    }

    /// Drop cached partitions (both tiers) and stop caching.
    pub fn unpersist(&self) {
        self.imp.meta().set_level(None);
        self.ctx.cache().evict_rdd(self.id());
    }

    /// Materialize this RDD to replicated simulated HDFS and return a new
    /// RDD reading from the checkpoint, with its lineage truncated: the
    /// returned RDD has no ancestors, so recovery after a node loss re-reads
    /// the replicated blocks instead of replaying the chain that produced
    /// them. This is Spark's *eager* `checkpoint()` (compute-now, as
    /// `localCheckpoint`/`checkpoint`+action does), run as one job whose
    /// write stage is attributed to `EventKind::Checkpoint`.
    ///
    /// Panics if the checkpoint job aborts under an active fault plan; use
    /// [`Rdd::try_checkpoint`] for the fallible variant.
    pub fn checkpoint(&self) -> Rdd<T> {
        self.try_checkpoint().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Rdd::checkpoint`]; see [`Rdd::try_collect`].
    pub fn try_checkpoint(&self) -> Result<Rdd<T>, crate::exec::ExecError> {
        exec::try_checkpoint(self)
    }

    /// Drop this RDD's checkpoint blocks from simulated HDFS (cleanup once
    /// a newer checkpoint supersedes it). A no-op for RDDs that are not
    /// checkpoint readers.
    pub fn discard_checkpoint(&self) -> usize {
        self.ctx
            .cluster()
            .hdfs()
            .checkpoint_remove(self.imp.meta().id)
    }

    /// Transform every element.
    pub fn map<U: Data>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Rdd<U> {
        let imp = Arc::new(MapRdd {
            meta: RddMeta::new(&self.ctx),
            parent: Arc::clone(&self.imp),
            f: Arc::new(f),
        });
        Rdd::from_impl(self.ctx.clone(), imp)
    }

    /// Transform every element into zero or more elements.
    pub fn flat_map<U: Data, I>(&self, f: impl Fn(T) -> I + Send + Sync + 'static) -> Rdd<U>
    where
        I: IntoIterator<Item = U>,
    {
        let g = move |t: T| f(t).into_iter().collect::<Vec<U>>();
        let imp = Arc::new(FlatMapRdd {
            meta: RddMeta::new(&self.ctx),
            parent: Arc::clone(&self.imp),
            f: Arc::new(g),
        });
        Rdd::from_impl(self.ctx.clone(), imp)
    }

    /// Keep only elements satisfying the predicate.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        let imp = Arc::new(FilterRdd {
            meta: RddMeta::new(&self.ctx),
            parent: Arc::clone(&self.imp),
            f: Arc::new(f),
        });
        Rdd::from_impl(self.ctx.clone(), imp)
    }

    /// Transform a whole partition at once, with access to the
    /// [`TaskContext`] for custom CPU-work accounting (YAFIM uses this for
    /// hash-tree traversal counting). The closure sees the partition as one
    /// slice, so this operator collapses a lazy upstream chain — but a
    /// cached parent streams its stored buffer in zero-copy.
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(&[T], &TaskContext) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        let imp = Arc::new(MapPartitionsRdd {
            meta: RddMeta::new(&self.ctx),
            parent: Arc::clone(&self.imp),
            f: Arc::new(f),
        });
        Rdd::from_impl(self.ctx.clone(), imp)
    }

    /// Concatenate two RDDs (partitions of `self` first).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        let imp = Arc::new(UnionRdd {
            meta: RddMeta::new(&self.ctx),
            parents: vec![Arc::clone(&self.imp), Arc::clone(&other.imp)],
        });
        Rdd::from_impl(self.ctx.clone(), imp)
    }

    /// Action: gather every element to the driver, in partition order.
    ///
    /// Panics if the job aborts under an active fault plan; use
    /// [`Rdd::try_collect`] to handle that case.
    pub fn collect(&self) -> Vec<T> {
        self.try_collect().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible `collect`: a job can abort when an active
    /// [`yafim_cluster::FaultPlan`] exhausts a task's retry budget.
    pub fn try_collect(&self) -> Result<Vec<T>, crate::exec::ExecError> {
        exec::try_collect(self)
    }

    /// Action: number of elements.
    ///
    /// Panics if the job aborts under an active fault plan; use
    /// [`Rdd::try_count`] to handle that case.
    pub fn count(&self) -> u64 {
        self.try_count().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible `count`; see [`Rdd::try_collect`].
    pub fn try_count(&self) -> Result<u64, crate::exec::ExecError> {
        exec::try_count(self)
    }

    /// Action: the first `n` elements in partition order, computed
    /// incrementally: each task stops pulling from its partition's pipeline
    /// once `n` elements are gathered, and later partitions are only
    /// scheduled (in exponentially growing batches, as in Spark) when the
    /// earlier ones under-fill.
    ///
    /// Panics if the job aborts under an active fault plan; use
    /// [`Rdd::try_take`] for the fallible variant.
    pub fn take(&self, n: usize) -> Vec<T> {
        self.try_take(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible `take`; see [`Rdd::try_collect`].
    pub fn try_take(&self, n: usize) -> Result<Vec<T>, crate::exec::ExecError> {
        exec::try_take(self, n)
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Data + Hash + Eq,
    V: Data,
{
    /// Shuffle: combine values per key with `f`, map-side combining first.
    /// Output has as many partitions as the parent.
    pub fn reduce_by_key(&self, f: impl Fn(V, V) -> V + Send + Sync + 'static) -> Rdd<(K, V)> {
        self.reduce_by_key_with_partitions(f, self.num_partitions())
    }

    /// [`Rdd::reduce_by_key`] with an explicit reduce-partition count.
    pub fn reduce_by_key_with_partitions(
        &self,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
        partitions: usize,
    ) -> Rdd<(K, V)> {
        let imp = ReduceByKeyRdd::new(
            &self.ctx,
            Arc::clone(&self.imp),
            Arc::new(f),
            partitions.max(1),
        );
        Rdd::from_impl(self.ctx.clone(), imp)
    }
}

// ---------------------------------------------------------------------------
// Operator nodes
// ---------------------------------------------------------------------------

/// Source: an in-memory collection pre-chunked on the driver. Each chunk is
/// behind its own `Arc`, so computing a partition shares the driver's buffer
/// with the pipeline instead of cloning it.
pub(crate) struct ParallelizeRdd<T: Data> {
    pub(crate) meta: RddMeta,
    pub(crate) chunks: Vec<Arc<Vec<T>>>,
}

impl<T: Data> RddImpl<T> for ParallelizeRdd<T> {
    fn meta(&self) -> &RddMeta {
        &self.meta
    }

    fn num_partitions(&self) -> usize {
        self.chunks.len()
    }

    fn preferred_node(&self, _part: usize) -> Option<NodeId> {
        None
    }

    fn compute<'a>(&'a self, part: usize, tc: &'a TaskContext) -> Pipe<'a, T> {
        let chunk = &self.chunks[part];
        // The driver ships the whole chunk to the worker on every compute,
        // regardless of how much of it the pipeline ends up pulling.
        tc.add_net(slice_bytes(chunk));
        tc.add_records_out(chunk.len() as u64);
        tc.note_records_read(chunk.len() as u64);
        Pipe::Shared(Arc::clone(chunk))
    }

    fn collect_shuffle_deps(&self, _out: &mut Vec<Arc<dyn ShuffleStage>>) {}
}

/// Walk the seeded transient ladder for an HDFS-backed partition read
/// (text-file split or checkpoint block). Each retry re-fetches the full
/// `bytes` from a replica over the network, the accumulated backoff stalls
/// the task, and an escalation pays one final read from a *different*
/// replica. Failure here never loses data — replication absorbs it — so
/// nothing is recomputed; the ladder only costs virtual time.
pub(crate) fn charge_transient_hdfs_read(
    ctx: &Context,
    tc: &TaskContext,
    id: u64,
    part: usize,
    bytes: u64,
) {
    let t = ctx
        .cluster()
        .faults()
        .transient(TransientKind::HdfsRead, id, part);
    if !t.any() {
        return;
    }
    for _ in 0..t.retries {
        tc.add_net(bytes);
    }
    tc.add_stall_micros(t.backoff_micros);
    if t.escalated {
        tc.add_net(bytes);
    }
    ctx.metrics().note_recovery(&RecoveryCounters {
        fetch_retries: t.retries,
        backoff_micros: t.backoff_micros,
        fetch_failures: if t.escalated { 1 } else { 0 },
        ..RecoveryCounters::default()
    });
}

/// Source: a text file in simulated HDFS, one element per line. Streams the
/// split's lines straight out of the DFS block, cloning per pulled line.
pub(crate) struct HdfsTextRdd {
    pub(crate) meta: RddMeta,
    pub(crate) file: DfsFile,
    pub(crate) splits: Vec<Split>,
}

impl HdfsTextRdd {
    /// Replica count of the block enclosing `split` — the copies a
    /// verifying reader can fall back to when one fails its checksum.
    fn split_replicas(&self, split: &Split) -> u32 {
        self.file
            .blocks()
            .iter()
            .find(|b| b.lines.start <= split.lines.start && split.lines.start < b.lines.end)
            .map(|b| b.replicas.len())
            .unwrap_or(1)
            .max(1) as u32
    }
}

impl RddImpl<String> for HdfsTextRdd {
    fn meta(&self) -> &RddMeta {
        &self.meta
    }

    fn num_partitions(&self) -> usize {
        self.splits.len()
    }

    fn preferred_node(&self, part: usize) -> Option<NodeId> {
        Some(self.splits[part].preferred_node)
    }

    fn compute<'a>(&'a self, part: usize, tc: &'a TaskContext) -> Pipe<'a, String> {
        let split = &self.splits[part];
        if split.preferred_node == tc.node {
            tc.add_disk_read(split.bytes);
        } else {
            // Non-local read: the bytes cross the network from a replica.
            tc.add_net(split.bytes);
        }
        charge_transient_hdfs_read(&self.meta.ctx, tc, self.meta.id, part, split.bytes);
        let faults = self.meta.ctx.cluster().faults();
        if faults.integrity_active() {
            // Verify the fetched replica's checksum; a mismatch repairs by
            // re-fetching from the next replica (and rewriting the rotten
            // copy clean), walking the replica set until one verifies.
            // Preflight guarantees at least one clean copy exists.
            for copy in 0..self.split_replicas(split) {
                tc.add_stall_micros(checksum_micros(&self.meta.ctx, split.bytes));
                if faults.take_corruption(IntegrityTier::Hdfs, self.meta.id, part, copy) {
                    tc.add_net(split.bytes);
                    self.meta.ctx.metrics().note_recovery(&RecoveryCounters {
                        integrity: IntegrityCounters {
                            corruptions_injected: 1,
                            corruptions_detected: 1,
                            corruptions_repaired: 1,
                            repaired_via_replica: 1,
                            ..IntegrityCounters::default()
                        },
                        ..RecoveryCounters::default()
                    });
                } else {
                    break;
                }
            }
        }
        let lines = &self.file.lines()[split.lines.clone()];
        tc.add_records_out(lines.len() as u64);
        tc.note_records_read(lines.len() as u64);
        Pipe::Iter(Box::new(lines.iter().cloned()))
    }

    fn collect_shuffle_deps(&self, _out: &mut Vec<Arc<dyn ShuffleStage>>) {}

    fn preflight(&self) -> Result<(), crate::exec::ExecError> {
        let faults = self.meta.ctx.cluster().faults();
        if !faults.integrity_active() {
            return Ok(());
        }
        for (part, split) in self.splits.iter().enumerate() {
            let replicas = self.split_replicas(split);
            let all_rotten = (0..replicas)
                .all(|copy| faults.corrupted(IntegrityTier::Hdfs, self.meta.id, part, copy));
            if all_rotten {
                return Err(crate::exec::ExecError::IntegrityFailure {
                    detail: format!(
                        "hdfs file `{}` rdd{} split {part}: all {replicas} replicas failed \
                         checksum verification — no clean copy reachable",
                        self.file.name(),
                        self.meta.id
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Source: an RDD materialized to simulated HDFS by [`Rdd::checkpoint`].
/// Its partitions are read back from replicated checkpoint blocks, and its
/// lineage is *empty* — `collect_shuffle_deps` reports nothing and
/// `lineage_len` is 1, so recovery after a loss re-reads the checkpoint
/// instead of replaying the ancestor chain. This is the truncation.
pub(crate) struct CheckpointRdd<T: Data> {
    pub(crate) meta: RddMeta,
    partitions: usize,
    _elem: PhantomData<fn() -> T>,
}

impl<T: Data> CheckpointRdd<T> {
    pub(crate) fn new(ctx: &Context, partitions: usize) -> Self {
        CheckpointRdd {
            meta: RddMeta::new(ctx),
            partitions,
            _elem: PhantomData,
        }
    }
}

impl<T: Data> RddImpl<T> for CheckpointRdd<T> {
    fn meta(&self) -> &RddMeta {
        &self.meta
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }

    fn preferred_node(&self, part: usize) -> Option<NodeId> {
        // The primary replica — wherever it lives *now* (a node loss can
        // drop the original primary, promoting the next replica).
        self.meta
            .ctx
            .cluster()
            .hdfs()
            .checkpoint_get(self.meta.id, part)
            .and_then(|b| b.replicas.first().copied())
    }

    fn compute<'a>(&'a self, part: usize, tc: &'a TaskContext) -> Pipe<'a, T> {
        let ctx = &self.meta.ctx;
        let block = ctx
            .cluster()
            .hdfs()
            .checkpoint_get(self.meta.id, part)
            .unwrap_or_else(|| {
                panic!(
                    "checkpoint rdd{} partition {part}: all replicas lost \
                     (lineage was truncated, nothing left to replay)",
                    self.meta.id
                )
            });
        let data: Arc<Vec<T>> = match block.data.downcast() {
            Ok(d) => d,
            Err(_) => panic!(
                "checkpoint rdd{} partition {part}: type mismatch",
                self.meta.id
            ),
        };
        if block.replicas.contains(&tc.node) {
            tc.add_disk_read(block.bytes);
        } else {
            tc.add_net(block.bytes);
        }
        tc.add_ser(block.bytes); // deserialize the stored block
        charge_transient_hdfs_read(ctx, tc, self.meta.id, part, block.bytes);
        let faults = ctx.cluster().faults();
        if faults.integrity_active() {
            // Verify the fetched replica; on mismatch re-fetch from the
            // next replica (rewriting the rotten copy clean) until one
            // verifies. Preflight guarantees a clean copy exists — the
            // all-poisoned case fails the job typed before this stage runs.
            for copy in 0..block.replicas.len().max(1) as u32 {
                tc.add_stall_micros(checksum_micros(ctx, block.bytes));
                if faults.take_corruption(IntegrityTier::Hdfs, self.meta.id, part, copy) {
                    tc.add_net(block.bytes);
                    ctx.metrics().note_recovery(&RecoveryCounters {
                        integrity: IntegrityCounters {
                            corruptions_injected: 1,
                            corruptions_detected: 1,
                            corruptions_repaired: 1,
                            repaired_via_replica: 1,
                            ..IntegrityCounters::default()
                        },
                        ..RecoveryCounters::default()
                    });
                } else {
                    break;
                }
            }
        }
        ctx.metrics().note_recovery(&RecoveryCounters {
            checkpoint_reads: 1,
            ..RecoveryCounters::default()
        });
        tc.add_records_out(data.len() as u64);
        tc.note_records_read(data.len() as u64);
        Pipe::Shared(data)
    }

    fn collect_shuffle_deps(&self, _out: &mut Vec<Arc<dyn ShuffleStage>>) {}

    fn preflight(&self) -> Result<(), crate::exec::ExecError> {
        let faults = self.meta.ctx.cluster().faults();
        if !faults.integrity_active() {
            return Ok(());
        }
        let hdfs = self.meta.ctx.cluster().hdfs();
        for part in 0..self.partitions {
            // A missing block (every replica's node died) keeps its existing
            // panic-on-read behaviour; preflight only vets blocks that are
            // still present but may be silently rotten.
            let Some(block) = hdfs.checkpoint_get(self.meta.id, part) else {
                continue;
            };
            let replicas = block.replicas.len().max(1) as u32;
            let all_rotten = (0..replicas)
                .all(|copy| faults.corrupted(IntegrityTier::Hdfs, self.meta.id, part, copy));
            if all_rotten {
                return Err(crate::exec::ExecError::IntegrityFailure {
                    detail: format!(
                        "checkpoint rdd{} partition {part}: all {replicas} replicas failed \
                         checksum verification and lineage was truncated — nothing left to \
                         replay",
                        self.meta.id
                    ),
                });
            }
        }
        Ok(())
    }
}

pub(crate) struct MapRdd<P: Data, T: Data> {
    meta: RddMeta,
    parent: Arc<dyn RddImpl<P>>,
    f: Arc<dyn Fn(P) -> T + Send + Sync>,
}

impl<P: Data, T: Data> RddImpl<T> for MapRdd<P, T> {
    fn meta(&self) -> &RddMeta {
        &self.meta
    }

    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn preferred_node(&self, part: usize) -> Option<NodeId> {
        self.parent.preferred_node(part)
    }

    fn compute<'a>(&'a self, part: usize, tc: &'a TaskContext) -> Pipe<'a, T> {
        let f = Arc::clone(&self.f);
        let inp = CountPulled::new(materialize(&self.parent, part, tc).into_iter(), tc);
        Pipe::Iter(Box::new(CountProduced::new(inp.map(move |p| f(p)), tc)))
    }

    fn collect_shuffle_deps(&self, out: &mut Vec<Arc<dyn ShuffleStage>>) {
        self.parent.collect_shuffle_deps(out);
    }

    fn shuffle_read_id(&self) -> Option<u64> {
        self.parent.shuffle_read_id()
    }

    fn lineage_len(&self) -> u64 {
        self.parent.lineage_len() + 1
    }

    fn preflight(&self) -> Result<(), crate::exec::ExecError> {
        self.parent.preflight()
    }
}

pub(crate) struct FlatMapRdd<P: Data, T: Data> {
    meta: RddMeta,
    parent: Arc<dyn RddImpl<P>>,
    f: Arc<dyn Fn(P) -> Vec<T> + Send + Sync>,
}

impl<P: Data, T: Data> RddImpl<T> for FlatMapRdd<P, T> {
    fn meta(&self) -> &RddMeta {
        &self.meta
    }

    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn preferred_node(&self, part: usize) -> Option<NodeId> {
        self.parent.preferred_node(part)
    }

    fn compute<'a>(&'a self, part: usize, tc: &'a TaskContext) -> Pipe<'a, T> {
        let f = Arc::clone(&self.f);
        let inp = CountPulled::new(materialize(&self.parent, part, tc).into_iter(), tc);
        Pipe::Iter(Box::new(CountProduced::new(
            inp.flat_map(move |p| f(p)),
            tc,
        )))
    }

    fn collect_shuffle_deps(&self, out: &mut Vec<Arc<dyn ShuffleStage>>) {
        self.parent.collect_shuffle_deps(out);
    }

    fn shuffle_read_id(&self) -> Option<u64> {
        self.parent.shuffle_read_id()
    }

    fn lineage_len(&self) -> u64 {
        self.parent.lineage_len() + 1
    }

    fn preflight(&self) -> Result<(), crate::exec::ExecError> {
        self.parent.preflight()
    }
}

pub(crate) struct FilterRdd<T: Data> {
    meta: RddMeta,
    parent: Arc<dyn RddImpl<T>>,
    f: Arc<dyn Fn(&T) -> bool + Send + Sync>,
}

impl<T: Data> RddImpl<T> for FilterRdd<T> {
    fn meta(&self) -> &RddMeta {
        &self.meta
    }

    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn preferred_node(&self, part: usize) -> Option<NodeId> {
        self.parent.preferred_node(part)
    }

    fn compute<'a>(&'a self, part: usize, tc: &'a TaskContext) -> Pipe<'a, T> {
        let f = Arc::clone(&self.f);
        let inp = CountPulled::new(materialize(&self.parent, part, tc).into_iter(), tc);
        Pipe::Iter(Box::new(CountProduced::new(inp.filter(move |t| f(t)), tc)))
    }

    fn collect_shuffle_deps(&self, out: &mut Vec<Arc<dyn ShuffleStage>>) {
        self.parent.collect_shuffle_deps(out);
    }

    fn shuffle_read_id(&self) -> Option<u64> {
        self.parent.shuffle_read_id()
    }

    fn lineage_len(&self) -> u64 {
        self.parent.lineage_len() + 1
    }

    fn preflight(&self) -> Result<(), crate::exec::ExecError> {
        self.parent.preflight()
    }
}

pub(crate) struct MapPartitionsRdd<P: Data, T: Data> {
    meta: RddMeta,
    parent: Arc<dyn RddImpl<P>>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(&[P], &TaskContext) -> Vec<T> + Send + Sync>,
}

impl<P: Data, T: Data> RddImpl<T> for MapPartitionsRdd<P, T> {
    fn meta(&self) -> &RddMeta {
        &self.meta
    }

    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn preferred_node(&self, part: usize) -> Option<NodeId> {
        self.parent.preferred_node(part)
    }

    fn compute<'a>(&'a self, part: usize, tc: &'a TaskContext) -> Pipe<'a, T> {
        let input = materialize(&self.parent, part, tc);
        let out = input.with_slice(tc, |s| {
            tc.add_records_in(s.len() as u64);
            (self.f)(s, tc)
        });
        tc.add_records_out(out.len() as u64);
        Pipe::Owned(out)
    }

    fn collect_shuffle_deps(&self, out: &mut Vec<Arc<dyn ShuffleStage>>) {
        self.parent.collect_shuffle_deps(out);
    }

    fn shuffle_read_id(&self) -> Option<u64> {
        self.parent.shuffle_read_id()
    }

    fn lineage_len(&self) -> u64 {
        self.parent.lineage_len() + 1
    }

    fn preflight(&self) -> Result<(), crate::exec::ExecError> {
        self.parent.preflight()
    }
}

pub(crate) struct UnionRdd<T: Data> {
    meta: RddMeta,
    parents: Vec<Arc<dyn RddImpl<T>>>,
}

impl<T: Data> UnionRdd<T> {
    /// Map a union partition index to `(parent, parent-local partition)`.
    fn locate(&self, part: usize) -> (&Arc<dyn RddImpl<T>>, usize) {
        let mut p = part;
        for parent in &self.parents {
            if p < parent.num_partitions() {
                return (parent, p);
            }
            p -= parent.num_partitions();
        }
        panic!("union partition {part} out of range");
    }
}

impl<T: Data> RddImpl<T> for UnionRdd<T> {
    fn meta(&self) -> &RddMeta {
        &self.meta
    }

    fn num_partitions(&self) -> usize {
        self.parents.iter().map(|p| p.num_partitions()).sum()
    }

    fn preferred_node(&self, part: usize) -> Option<NodeId> {
        let (parent, local) = self.locate(part);
        parent.preferred_node(local)
    }

    fn compute<'a>(&'a self, part: usize, tc: &'a TaskContext) -> Pipe<'a, T> {
        let (parent, local) = self.locate(part);
        Pipe::Iter(Box::new(CountPulled::new(
            materialize(parent, local, tc).into_iter(),
            tc,
        )))
    }

    fn collect_shuffle_deps(&self, out: &mut Vec<Arc<dyn ShuffleStage>>) {
        for p in &self.parents {
            p.collect_shuffle_deps(out);
        }
    }

    fn lineage_len(&self) -> u64 {
        self.parents
            .iter()
            .map(|p| p.lineage_len())
            .max()
            .unwrap_or(0)
            + 1
    }

    fn preflight(&self) -> Result<(), crate::exec::ExecError> {
        for p in &self.parents {
            p.preflight()?;
        }
        Ok(())
    }
}
