//! The driver context — the `SparkContext` equivalent.

use crate::cache::CacheManager;
use crate::rdd::{HdfsTextRdd, ParallelizeRdd, Rdd, RddMeta};
use crate::shuffle::ShuffleRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use yafim_cluster::{ByteSize, DfsError, EventKind, Metrics, SimCluster};

/// How shared data reaches the workers (paper §IV.C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BroadcastMode {
    /// Spark's broadcast variables: each node receives the data once,
    /// BitTorrent-style (logarithmic rounds).
    Torrent,
    /// The naive default the paper warns about: the driver ships the data
    /// with *every task*, serialized through its single uplink.
    NaivePerTask,
}

/// How a stage evaluates its narrow-operator chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Fused iterator pipelines (the default): narrow operators compose
    /// lazily and partition buffers exist only at pipeline breakers
    /// (shuffle writes, cache inserts, driver fetches) — Spark's
    /// whole-stage pipelining.
    Fused,
    /// The naive-eager reference evaluator: the pipe is collapsed into a
    /// fresh partition buffer at *every* operator boundary, reproducing the
    /// pre-fusion engine's allocation pattern. Mining results, virtual
    /// time, and shuffle/cache byte accounting are identical to `Fused`;
    /// only wall-clock speed and `bytes_materialized` differ.
    Eager,
}

/// Tunables of one driver context.
#[derive(Clone, Debug)]
pub struct RddConfig {
    /// Broadcast strategy.
    pub broadcast: BroadcastMode,
    /// Default number of partitions for `parallelize` and the default
    /// task-count estimate for naive broadcast (Spark uses 2–3 tasks per
    /// core).
    pub default_parallelism: usize,
    /// Override the per-node cache capacity in bytes (for the memory
    /// pressure ablation). `None` uses 60 % of node memory.
    pub cache_capacity_per_node: Option<u64>,
    /// Stage evaluation strategy (fused pipelines by default; the eager
    /// reference evaluator exists for cross-checking and benchmarks).
    pub exec_mode: ExecMode,
}

impl RddConfig {
    /// Defaults for a given cluster.
    pub fn for_cluster(cluster: &SimCluster) -> Self {
        RddConfig {
            broadcast: BroadcastMode::Torrent,
            default_parallelism: cluster.spec().total_cores() as usize * 2,
            cache_capacity_per_node: None,
            exec_mode: ExecMode::Fused,
        }
    }
}

pub(crate) struct CtxInner {
    pub(crate) cluster: SimCluster,
    pub(crate) cache: CacheManager,
    pub(crate) shuffles: ShuffleRegistry,
    pub(crate) config: RddConfig,
    next_id: AtomicU64,
}

/// Driver handle: creates RDDs and broadcast variables over one cluster.
/// Cheap to clone.
#[derive(Clone)]
pub struct Context {
    pub(crate) inner: Arc<CtxInner>,
}

impl Context {
    /// A context with default configuration.
    pub fn new(cluster: SimCluster) -> Self {
        let config = RddConfig::for_cluster(&cluster);
        Self::with_config(cluster, config)
    }

    /// A context with explicit configuration.
    pub fn with_config(cluster: SimCluster, config: RddConfig) -> Self {
        let cache = match config.cache_capacity_per_node {
            Some(cap) => CacheManager::with_capacity(cluster.spec().nodes as usize, cap),
            None => CacheManager::with_fraction(
                cluster.spec(),
                cluster.scheduler_config().storage_fraction,
            ),
        };
        Context {
            inner: Arc::new(CtxInner {
                cache,
                shuffles: ShuffleRegistry::new(),
                config,
                next_id: AtomicU64::new(1),
                cluster,
            }),
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &SimCluster {
        &self.inner.cluster
    }

    /// The cluster's metrics sink (virtual clock, event log).
    pub fn metrics(&self) -> &Metrics {
        self.inner.cluster.metrics()
    }

    /// The configuration this context was created with.
    pub fn config(&self) -> &RddConfig {
        &self.inner.config
    }

    /// The partition cache (exposed for stats and fault injection).
    pub fn cache(&self) -> &CacheManager {
        &self.inner.cache
    }

    pub(crate) fn new_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn shuffles(&self) -> &ShuffleRegistry {
        &self.inner.shuffles
    }

    /// Stage evaluation strategy (fused pipelines or the eager reference).
    pub(crate) fn exec_mode(&self) -> ExecMode {
        self.inner.config.exec_mode
    }

    /// Total bytes shipped through [`Context::broadcast`] so far — the
    /// basis for the re-fetch charge when a node (and its torrent blocks)
    /// is lost. Kept in the cluster's typed registry rather than an ad-hoc
    /// field, so manifests and reports see the same number the fault path
    /// uses.
    pub(crate) fn broadcast_bytes(&self) -> u64 {
        self.inner
            .cluster
            .registry()
            .counter("broadcast.ship_bytes")
            .get()
    }

    /// Distribute an in-memory collection as an RDD with
    /// `config.default_parallelism` partitions.
    pub fn parallelize<T: crate::rdd::Data>(&self, data: Vec<T>) -> Rdd<T> {
        self.parallelize_with_partitions(data, self.inner.config.default_parallelism)
    }

    /// Distribute an in-memory collection with an explicit partition count.
    pub fn parallelize_with_partitions<T: crate::rdd::Data>(
        &self,
        data: Vec<T>,
        partitions: usize,
    ) -> Rdd<T> {
        let partitions = partitions.max(1);
        let n = data.len();
        let chunk = n.div_ceil(partitions).max(1);
        // One `Arc` per chunk: computing a partition shares the driver's
        // buffer with the task's pipeline instead of cloning it.
        let mut chunks: Vec<Arc<Vec<T>>> = Vec::with_capacity(partitions);
        let mut it = data.into_iter();
        for _ in 0..partitions {
            chunks.push(Arc::new(it.by_ref().take(chunk).collect()));
        }
        let imp = Arc::new(ParallelizeRdd {
            meta: RddMeta::new(self),
            chunks,
        });
        Rdd::from_impl(self.clone(), imp)
    }

    /// Read a text file from the cluster's simulated HDFS, one element per
    /// line, with at least `min_splits` partitions (Spark's
    /// `textFile(path, minPartitions)`).
    pub fn text_file(&self, path: &str, min_splits: usize) -> Result<Rdd<String>, DfsError> {
        let file = self.inner.cluster.hdfs().get(path)?;
        let splits = file.splits(min_splits.max(1));
        let imp = Arc::new(HdfsTextRdd {
            meta: RddMeta::new(self),
            file,
            splits,
        });
        Ok(Rdd::from_impl(self.clone(), imp))
    }

    /// Ship `value` to the workers as a read-only broadcast variable,
    /// charging virtual time according to [`BroadcastMode`].
    pub fn broadcast<T: ByteSize + Send + Sync>(&self, value: T) -> Broadcast<T> {
        let bytes = value.byte_size();
        let cluster = &self.inner.cluster;
        let cost = match self.inner.config.broadcast {
            BroadcastMode::Torrent => cluster
                .cost()
                .broadcast_torrent(bytes, cluster.spec().nodes),
            BroadcastMode::NaivePerTask => cluster
                .cost()
                .broadcast_naive(bytes, self.inner.config.default_parallelism),
        };
        cluster.metrics().advance_with_event(
            cost,
            EventKind::Broadcast,
            format!("broadcast {bytes}B"),
        );
        cluster
            .registry()
            .counter("broadcast.ship_bytes")
            .inc(bytes);
        cluster.registry().counter("broadcast.variables").inc(1);
        Broadcast {
            value: Arc::new(value),
            bytes,
        }
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("cluster", &self.inner.cluster)
            .field("config", &self.inner.config)
            .finish()
    }
}

/// A read-only value shared with every worker. Dereferences to the value.
#[derive(Clone)]
pub struct Broadcast<T> {
    value: Arc<T>,
    bytes: u64,
}

impl<T> Broadcast<T> {
    /// Serialized size charged when the broadcast was created.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Shared handle to the value (for moving into task closures).
    pub fn value(&self) -> Arc<T> {
        Arc::clone(&self.value)
    }

    /// Consume the handle, yielding the shared value. When every task
    /// closure has been dropped this is the last reference, letting the
    /// driver reclaim the value with `Arc::try_unwrap` instead of cloning
    /// out of it.
    pub fn into_value(self) -> Arc<T> {
        self.value
    }
}

impl<T> std::ops::Deref for Broadcast<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}
