//! The executor: runs stages on the real thread pool and charges virtual
//! time for them.
//!
//! An action is one *job*. A job is: per-job driver overhead, then every
//! shuffle stage in the lineage (bottom-up, deduplicated), then the final
//! stage, then the cost of fetching results to the driver.
//!
//! Each stage runs its tasks for real (pool-parallel), gathers per-task
//! [`yafim_cluster::WorkCounters`], converts them into virtual durations
//! under the cost model, list-schedules those durations onto the virtual
//! cluster, and advances the shared virtual clock by the stage overhead plus
//! the makespan.

use crate::context::Context;
use crate::rdd::{materialize, node_for, Data, Rdd, RddImpl};
use crate::shuffle::ShuffleStage;
use crate::task::TaskContext;
use std::sync::Arc;
use yafim_cluster::{
    slice_bytes, EventKind, NodeId, SimDuration, StageExecution, TaskExecution, TaskProfile,
    TaskSpec,
};

/// A task body: partition index + task context → per-partition result.
pub(crate) type TaskFn<R> = Arc<dyn Fn(usize, &mut TaskContext) -> R + Send + Sync>;

/// Run one stage: `task` once per partition, real execution on the pool,
/// virtual time charged to the cluster clock. Every task is placed on a
/// virtual node/core by the scheduler and recorded as a task span, parented
/// to this stage (and to the enclosing job, if any). Returns per-partition
/// results in partition order.
pub(crate) fn run_stage<R: Send + 'static>(
    ctx: &Context,
    label: String,
    kind: EventKind,
    shuffle_id: Option<u64>,
    partitions: usize,
    preferred: Vec<Option<NodeId>>,
    task: TaskFn<R>,
) -> Vec<R> {
    assert_eq!(preferred.len(), partitions);
    let cluster = ctx.cluster().clone();
    let spec = cluster.spec().clone();

    let preferred_for_tasks = preferred.clone();
    let outcomes: Vec<(R, TaskProfile)> =
        cluster
            .pool()
            .map((0..partitions).collect::<Vec<usize>>(), move |_, part| {
                let node = preferred_for_tasks[part].unwrap_or_else(|| spec.home_node(part));
                let mut tc = TaskContext::new(part, node);
                let r = task(part, &mut tc);
                (r, tc.into_profile())
            });

    let cost = cluster.cost();
    let specs: Vec<TaskSpec> = outcomes
        .iter()
        .zip(&preferred)
        .map(|((_, profile), pref)| TaskSpec {
            duration: SimDuration::from_secs(cost.spark_task_overhead)
                + profile.work.data_time(cost),
            preferred_node: *pref,
        })
        .collect();

    let detailed = cluster.scheduler().schedule_detailed(&specs);
    let tasks: Vec<TaskExecution> = detailed
        .placements
        .iter()
        .zip(&outcomes)
        .enumerate()
        .map(|(part, (placement, (_, profile)))| TaskExecution {
            partition: part,
            node: placement.node,
            core: placement.core,
            start: placement.start,
            duration: placement.duration,
            profile: *profile,
        })
        .collect();

    cluster.metrics().record_stage(StageExecution {
        label,
        kind,
        shuffle_id,
        overhead: SimDuration::from_secs(cost.spark_stage_overhead),
        trailing: SimDuration::ZERO,
        tasks,
    });

    outcomes.into_iter().map(|(r, _)| r).collect()
}

/// Prepare (run) every shuffle stage the lineage of `imp` depends on.
fn prepare_shuffles<T: Data>(imp: &Arc<dyn RddImpl<T>>) {
    let mut deps: Vec<Arc<dyn ShuffleStage>> = Vec::new();
    imp.collect_shuffle_deps(&mut deps);
    // The same shuffle can appear twice in one lineage (e.g. a union of two
    // branches over the same reduced RDD); prepare it once.
    let mut seen = std::collections::HashSet::new();
    for d in deps {
        if seen.insert(d.shuffle_id()) {
            d.prepare();
        }
    }
}

/// Run the final stage of a job, materializing each partition of `rdd`.
fn run_final_stage<T: Data>(rdd: &Rdd<T>, label: String) -> Vec<Arc<Vec<T>>> {
    let imp = Arc::clone(&rdd.imp);
    let partitions = imp.num_partitions();
    let preferred: Vec<Option<NodeId>> = (0..partitions)
        .map(|p| imp.preferred_node(p).or_else(|| Some(node_for(&imp, p))))
        .collect();
    let shuffle_read = imp.shuffle_read_id();
    run_stage(
        &rdd.ctx,
        label,
        EventKind::Stage,
        shuffle_read,
        partitions,
        preferred,
        Arc::new(move |part, tc| materialize(&imp, part, tc)),
    )
}

/// The `collect` action.
pub(crate) fn collect<T: Data>(rdd: &Rdd<T>) -> Vec<T> {
    let ctx = &rdd.ctx;
    let metrics = ctx.metrics().clone();
    let job = metrics.begin_job(format!("collect rdd{}", rdd.id()));
    metrics.advance(SimDuration::from_secs(
        ctx.cluster().cost().spark_job_overhead,
    ));

    prepare_shuffles(&rdd.imp);
    let parts = run_final_stage(rdd, format!("collect rdd{}", rdd.id()));

    // Results are serialized on the workers and fetched to the driver.
    let result_bytes: u64 = parts.iter().map(|p| slice_bytes(p)).sum();
    let cost = ctx.cluster().cost();
    metrics.advance(cost.serialize(result_bytes) + cost.net_transfer(result_bytes));

    metrics.end_job(job);

    let mut out = Vec::new();
    for p in parts {
        out.extend(p.iter().cloned());
    }
    out
}

/// The `count` action: computes every partition but only its length crosses
/// the network.
pub(crate) fn count<T: Data>(rdd: &Rdd<T>) -> u64 {
    let ctx = &rdd.ctx;
    let metrics = ctx.metrics().clone();
    let job = metrics.begin_job(format!("count rdd{}", rdd.id()));
    metrics.advance(SimDuration::from_secs(
        ctx.cluster().cost().spark_job_overhead,
    ));

    prepare_shuffles(&rdd.imp);
    let parts = run_final_stage(rdd, format!("count rdd{}", rdd.id()));

    metrics.end_job(job);

    parts.iter().map(|p| p.len() as u64).sum()
}

/// Fault injection helpers, exposed on [`Context`] via an extension trait so
/// tests and the fault-tolerance example can knock pieces out mid-run.
pub trait FaultInjection {
    /// Drop one cached partition, as if its executor was lost. Returns
    /// whether anything was dropped. The next read recomputes via lineage.
    fn drop_cached_partition(&self, rdd_id: u64, partition: usize) -> bool;

    /// Drop a materialized shuffle output. The next action that reads it
    /// re-runs the map stage. Returns whether anything was dropped.
    fn drop_shuffle(&self, shuffle_id: u64) -> bool;

    /// Number of currently materialized shuffles (observability for tests).
    fn materialized_shuffles(&self) -> usize;
}

impl FaultInjection for Context {
    fn drop_cached_partition(&self, rdd_id: u64, partition: usize) -> bool {
        self.cache().evict(rdd_id, partition)
    }

    fn drop_shuffle(&self, shuffle_id: u64) -> bool {
        self.shuffles().invalidate(shuffle_id)
    }

    fn materialized_shuffles(&self) -> usize {
        self.shuffles().len()
    }
}
