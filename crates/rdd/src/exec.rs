//! The executor: runs stages on the real thread pool and charges virtual
//! time for them.
//!
//! An action is one *job*. A job is: per-job driver overhead, then every
//! shuffle stage in the lineage (bottom-up, deduplicated), then the final
//! stage, then the cost of fetching results to the driver.
//!
//! Each stage runs its tasks for real (pool-parallel), gathers per-task
//! [`yafim_cluster::WorkCounters`], converts them into virtual durations
//! under the cost model, list-schedules those durations onto the virtual
//! cluster, and advances the shared virtual clock by the stage overhead plus
//! the makespan.
//!
//! When a [`yafim_cluster::FaultPlan`] is active on the cluster, scheduling
//! goes through the fault-aware path instead: task attempts can crash or die
//! with their node and are retried (bounded by `max_task_failures`),
//! stragglers on slow nodes get speculative copies, and the stage's
//! [`yafim_cluster::RecoveryCounters`] are attached to its span. Real
//! execution still happens exactly once per partition, so results are
//! byte-identical to a fault-free run — only virtual time grows. Node losses
//! additionally invalidate data *between* stages: cached partitions are
//! evicted (recomputed through lineage on the next read), shuffle map
//! outputs are marked lost (resubmitted by the next consumer), and broadcast
//! blocks are re-fetched.

use crate::context::Context;
use crate::rdd::{materialize, node_for, CheckpointRdd, Data, Rdd, RddImpl};
use crate::shuffle::ShuffleStage;
use crate::task::TaskContext;
use std::sync::Arc;
use yafim_cluster::{
    fx_hash64, memgov, slice_bytes, EventKind, FaultError, MemoryRefusal, NodeId, RecoveryCounters,
    SimDuration, StageExecution, TaskExecution, TaskProfile, TaskSpec,
};

/// A job could not complete under the active fault plan.
#[derive(Clone, Debug)]
pub enum ExecError {
    /// A stage aborted: some task exhausted its retry budget or no healthy
    /// node was left to run it.
    StageAborted {
        /// Label of the stage that aborted.
        stage: String,
        /// The underlying scheduler failure.
        source: FaultError,
    },
    /// A corrupted block could not be repaired: every replica is poisoned
    /// and lineage was truncated, so no clean copy is reachable. The engine
    /// refuses to return possibly-wrong results.
    IntegrityFailure {
        /// What was corrupted and why it is unrepairable.
        detail: String,
    },
    /// A task exhausted its OOM retry ladder: even the whole-node memory
    /// slice (each retry doubles the grant, modelling reduced concurrency)
    /// could not satisfy an acquisition. The job is killed rather than
    /// returning a partial result.
    OutOfMemory {
        /// Label of the stage whose task died.
        stage: String,
        /// Partition whose task exhausted its retries.
        partition: usize,
        /// Acquisition site that overflowed (see
        /// [`yafim_cluster::memgov::site`]).
        site: u64,
        /// Bytes the failing acquisition asked for.
        bytes: u64,
        /// Attempts consumed (first run plus retries).
        attempts: u32,
    },
    /// Driver-side admission control refused the job before running it:
    /// its smallest viable per-task footprint cannot fit the execution
    /// budget even with full borrowing from storage.
    MemoryRefused {
        /// Required vs available bytes per task.
        refusal: MemoryRefusal,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::StageAborted { stage, source } => {
                write!(f, "stage `{stage}` aborted: {source}")
            }
            ExecError::IntegrityFailure { detail } => {
                write!(f, "data integrity failure: {detail}")
            }
            ExecError::OutOfMemory {
                stage,
                partition,
                site,
                bytes,
                attempts,
            } => write!(
                f,
                "stage `{stage}` out of memory: partition {partition} could not \
                 acquire {bytes} bytes for its {} after {attempts} attempts",
                memgov::site::name(*site)
            ),
            ExecError::MemoryRefused { refusal } => write!(f, "{refusal}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::StageAborted { source, .. } => Some(source),
            ExecError::IntegrityFailure { .. }
            | ExecError::OutOfMemory { .. }
            | ExecError::MemoryRefused { .. } => None,
        }
    }
}

/// What one node loss took with it (returned by
/// [`FaultInjection::lose_node`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeLossReport {
    /// The node that died.
    pub node: NodeId,
    /// Cached partitions (memory + disk tier) the node held; each will be
    /// recomputed through its lineage on the next read.
    pub cached_partitions_dropped: usize,
    /// Shuffle map outputs the node held; the next consumer resubmits just
    /// those map tasks.
    pub map_outputs_lost: usize,
}

/// A task body: partition index + task context → per-partition result. The
/// context is shared (`&TaskContext`): a fused pipeline's adapters all hold
/// it while elements stream through, charging work via interior mutability.
pub(crate) type TaskFn<R> = Arc<dyn Fn(usize, &TaskContext) -> R + Send + Sync>;

/// Run one stage: `task` once per partition, real execution on the pool,
/// virtual time charged to the cluster clock. Every task is placed on a
/// virtual node/core by the scheduler and recorded as a task span, parented
/// to this stage (and to the enclosing job, if any). Returns per-partition
/// results in partition order, plus the node each task's *winning* attempt
/// ran on (shuffle map-output provenance).
///
/// With an active fault plan, placement goes through
/// [`yafim_cluster::FaultController::schedule_stage`]; pending node losses
/// are applied before the stage starts.
pub(crate) fn try_run_stage<R: Send + 'static>(
    ctx: &Context,
    label: String,
    kind: EventKind,
    shuffle_id: Option<u64>,
    partitions: usize,
    preferred: Vec<Option<NodeId>>,
    task: TaskFn<R>,
) -> Result<(Vec<R>, Vec<NodeId>), ExecError> {
    assert_eq!(preferred.len(), partitions);
    let cluster = ctx.cluster().clone();
    let spec = cluster.spec().clone();

    sync_node_losses(ctx);

    // One memory budget and OOM hash key per stage: every task reserves
    // against the same deterministic slice, and rolls are keyed by
    // (stage, partition, attempt) so a given plan always denies the same
    // acquisitions regardless of host-thread interleaving.
    let budget = cluster.memory_budget();
    let stage_key = fx_hash64(&(label.as_str(), cluster.metrics().now().as_secs().to_bits()));

    let preferred_for_tasks = preferred.clone();
    let outcomes: Vec<(R, TaskProfile, Option<yafim_cluster::OomAbort>)> =
        cluster
            .pool()
            .map((0..partitions).collect::<Vec<usize>>(), move |_, part| {
                let node = preferred_for_tasks[part].unwrap_or_else(|| spec.home_node(part));
                let tc = TaskContext::with_memory(part, node, budget, stage_key);
                let r = task(part, &tc);
                let abort = tc.oom_abort();
                (r, tc.into_profile(), abort)
            });

    // A task that exhausted its OOM retry ladder kills the whole job with a
    // typed error; partial results never escape. Scanned in partition order
    // so the reported task is deterministic.
    if let Some(abort) = outcomes.iter().find_map(|(_, _, a)| *a) {
        return Err(ExecError::OutOfMemory {
            stage: label,
            partition: abort.partition,
            site: abort.site,
            bytes: abort.bytes,
            attempts: abort.attempts,
        });
    }

    let cost = cluster.cost();
    let specs: Vec<TaskSpec> = outcomes
        .iter()
        .zip(&preferred)
        .map(|((_, profile, _), pref)| TaskSpec {
            duration: SimDuration::from_secs(cost.spark_task_overhead)
                + profile.work.data_time(cost),
            preferred_node: *pref,
        })
        .collect();

    // Admit the stage through the multi-job scheduler: the returned
    // scheduler is restricted to this job's executor grant (and dynamic
    // allocation's current ramp), and `queue` is any FIFO pool wait to
    // charge to this stage.
    let (queue, scheduler) = cluster.stage_admission();

    // Skew-aware splitting: the prior same-family stage's durations
    // estimate this one's; straggler tasks are split into pieces for
    // *placement only*, so real execution (and results) are untouched.
    let family: String = label.chars().filter(|c| !c.is_ascii_digit()).collect();
    let durs: Vec<SimDuration> = specs.iter().map(|s| s.duration).collect();
    let splits = cluster.plan_skew_splits(&family, &durs);
    let skew_splits: u64 = splits.iter().map(|&k| (k - 1) as u64).sum();
    let mut owner: Vec<usize> = Vec::with_capacity(specs.len());
    let sched_specs: Vec<TaskSpec> = if skew_splits > 0 {
        let mut v = Vec::new();
        for (part, (spec, &k)) in specs.iter().zip(&splits).enumerate() {
            let piece = SimDuration::from_secs(spec.duration.as_secs() / k as f64);
            for _ in 0..k {
                v.push(TaskSpec {
                    duration: piece,
                    preferred_node: spec.preferred_node,
                });
                owner.push(part);
            }
            if k > 1 {
                cluster.metrics().advance_with_event(
                    SimDuration::ZERO,
                    EventKind::Other,
                    format!("skew split: {label} partition {part} x{k}"),
                );
            }
        }
        v
    } else {
        owner.extend(0..specs.len());
        specs
    };

    let faults = cluster.faults();
    let (detailed, mut recovery, trailing) = if faults.active() {
        // Node-loss instants are absolute; anchor them to this stage's task
        // window (stage start + queue wait + overhead).
        let window_start =
            cluster.metrics().now() + queue + SimDuration::from_secs(cost.spark_stage_overhead);
        let fs = faults
            .schedule_stage(&scheduler, &sched_specs, None, window_start)
            .map_err(|source| ExecError::StageAborted {
                stage: label.clone(),
                source,
            })?;
        let pad = fs.trailing_pad();
        (fs.schedule, fs.recovery, pad)
    } else {
        (
            scheduler.schedule_detailed(&sched_specs),
            RecoveryCounters::default(),
            SimDuration::ZERO,
        )
    };

    // The governor's per-task outcomes roll up into the stage's recovery
    // block (peak merges with max, the rest sum), so reports, manifests and
    // the critical path see memory pressure next to the other fault counters.
    for (_, profile, _) in &outcomes {
        recovery.mem.merge(&profile.mem);
    }

    // Map piece placements back to partitions: a partition ran where its
    // first piece ran; only the first piece carries the real profile so
    // aggregate attribution stays exact.
    let mut first_node: Vec<Option<NodeId>> = vec![None; partitions];
    for (i, p) in detailed.placements.iter().enumerate() {
        let part = owner[i];
        if first_node[part].is_none() {
            first_node[part] = Some(p.node);
        }
    }
    let executed_on: Vec<NodeId> = first_node.into_iter().map(|n| n.expect("piece")).collect();
    let mut carries_profile = vec![true; partitions];
    let tasks: Vec<TaskExecution> = detailed
        .placements
        .iter()
        .enumerate()
        .map(|(i, placement)| {
            let part = owner[i];
            let profile = if std::mem::replace(&mut carries_profile[part], false) {
                outcomes[part].1
            } else {
                TaskProfile::new()
            };
            TaskExecution {
                partition: part,
                node: placement.node,
                core: placement.core,
                start: placement.start,
                duration: placement.duration,
                profile,
            }
        })
        .collect();

    feed_registry(ctx, &tasks, &recovery, budget.map_or(0, |b| b.node_limit));

    cluster.metrics().record_stage_with_recovery(
        StageExecution {
            label,
            kind,
            shuffle_id,
            queue,
            overhead: SimDuration::from_secs(cost.spark_stage_overhead),
            trailing,
            tasks,
        },
        recovery,
    );
    // After the clock advanced past the stage: the admission bookkeeping
    // (idle-timeout reference point) and the sched.* attribution.
    cluster.record_sched_stage(
        queue,
        detailed.decision_units,
        faults.drain_shared_hits(),
        skew_splits,
    );

    Ok((
        outcomes.into_iter().map(|(r, _, _)| r).collect(),
        executed_on,
    ))
}

/// Feed the cluster's typed metrics registry from one finished stage: task
/// counts and duration/wait distributions, attribution byte counters from
/// the merged profile, recovery counters, and current cache occupancy.
/// Every metric is created even when zero, so manifests carry a stable name
/// set; histograms are observed in partition order on the driver thread, so
/// their float sums are deterministic.
fn feed_registry(
    ctx: &Context,
    tasks: &[TaskExecution],
    recovery: &RecoveryCounters,
    task_budget_bytes: u64,
) {
    let registry = ctx.cluster().registry();
    registry.counter("executor.stages").inc(1);
    registry.counter("executor.tasks").inc(tasks.len() as u64);
    let durations = registry.histogram("executor.task_seconds");
    let waits = registry.histogram("executor.queue_wait_seconds");
    let mut merged = TaskProfile::new();
    for t in tasks {
        durations.observe(t.duration.as_secs());
        waits.observe(t.start.as_secs());
        merged.merge(&t.profile);
    }
    for (name, v) in [
        ("shuffle.read_bytes", merged.shuffle_read_bytes),
        ("shuffle.write_bytes", merged.shuffle_write_bytes),
        ("broadcast.read_bytes", merged.broadcast_read_bytes),
        ("cache.hits", merged.cache_hits),
        ("cache.misses", merged.cache_misses),
        ("executor.records_read", merged.records_read),
        ("executor.records_written", merged.records_written),
        ("executor.bytes_materialized", merged.bytes_materialized),
        ("fault.task_failures", recovery.task_failures),
        ("fault.task_retries", recovery.task_retries),
        ("fault.speculative_launched", recovery.speculative_launched),
        ("fault.speculative_wins", recovery.speculative_wins),
        (
            "integrity.corruptions_injected",
            recovery.integrity.corruptions_injected,
        ),
        (
            "integrity.corruptions_detected",
            recovery.integrity.corruptions_detected,
        ),
        (
            "integrity.corruptions_repaired",
            recovery.integrity.corruptions_repaired,
        ),
        (
            "integrity.repaired_via_replica",
            recovery.integrity.repaired_via_replica,
        ),
        (
            "integrity.repaired_via_recompute",
            recovery.integrity.repaired_via_recompute,
        ),
        (
            "integrity.repaired_via_resubmit",
            recovery.integrity.repaired_via_resubmit,
        ),
        ("mem.spills", recovery.mem.spills),
        ("mem.spill_bytes", recovery.mem.spill_bytes),
        ("mem.degradations", recovery.mem.degradations),
        ("mem.oom_injected", recovery.mem.oom_injected),
        ("mem.oom_killed", recovery.mem.oom_killed),
        (
            "mem.oom_survived_by_degradation",
            recovery.mem.oom_survived_by_degradation,
        ),
    ] {
        registry.counter(name).inc(v);
    }
    // High-water marks, not sums: the run's peak is the max over stages.
    let peak = registry.gauge("mem.peak_execution_bytes");
    if recovery.mem.peak_execution_bytes as f64 > peak.get() {
        peak.set(recovery.mem.peak_execution_bytes as f64);
    }
    // The hard per-task cap a fully-backed-off retry may grow into (the
    // node's evictable memory): per-task peaks can never exceed it, which
    // the bench gate checks as a coherence rule.
    let budget_gauge = registry.gauge("mem.task_budget_bytes");
    if task_budget_bytes as f64 > budget_gauge.get() {
        budget_gauge.set(task_budget_bytes as f64);
    }
    let stats = ctx.cache().stats();
    registry
        .gauge("cache.used_bytes")
        .set(stats.used_bytes as f64);
    registry
        .gauge("cache.disk_bytes")
        .set(stats.disk_bytes as f64);
    registry
        .gauge("cache.peak_bytes")
        .set(stats.peak_bytes as f64);
    registry
        .gauge("cache.entries")
        .set((stats.entries + stats.disk_entries) as f64);
}

/// Apply the data-loss side effects of every planned node loss whose virtual
/// instant has passed (each exactly once): evict the node's cached
/// partitions, mark its shuffle map outputs lost, charge the broadcast
/// re-fetch. Returns one report per newly-applied loss.
pub(crate) fn sync_node_losses(ctx: &Context) -> Vec<NodeLossReport> {
    let faults = ctx.cluster().faults().clone();
    if !faults.active() {
        return Vec::new();
    }
    let now = ctx.metrics().now();
    faults
        .take_new_losses(now)
        .into_iter()
        .map(|node| apply_node_loss(ctx, node))
        .collect()
}

/// Invalidate everything `node` held and charge the recovery traffic. The
/// lost data is *not* recomputed here — lineage does that lazily: the next
/// cache read recomputes the partition, the next shuffle consumer resubmits
/// the lost map tasks.
pub(crate) fn apply_node_loss(ctx: &Context, node: NodeId) -> NodeLossReport {
    let cached = ctx.cache().evict_node(node.index());
    let map_lost = ctx.shuffles().mark_node_lost(node);
    // Checkpoint replicas on the node are gone too; remaining replicas keep
    // serving reads (a block only disappears when every replica is lost).
    ctx.cluster().hdfs().checkpoint_drop_node(node);
    let metrics = ctx.metrics().clone();
    let cost = ctx.cluster().cost().clone();

    let mut rec = RecoveryCounters {
        nodes_lost: 1,
        recomputed_partitions: cached as u64,
        ..RecoveryCounters::default()
    };

    // Torrent blocks the dead executor served are re-replicated from the
    // survivors: charge the dead node's share of all broadcast bytes.
    let bcast = ctx.broadcast_bytes();
    let nodes = ctx.cluster().spec().nodes as u64;
    let refetch = bcast / nodes.max(1);
    if refetch > 0 {
        metrics.advance_with_event(
            cost.net_transfer(refetch),
            EventKind::Broadcast,
            format!("broadcast re-fetch after {node} loss ({refetch}B)"),
        );
        rec.broadcast_refetches = 1;
    }

    metrics.advance_with_event(
        SimDuration::ZERO,
        EventKind::Other,
        format!(
            "{node} lost: {cached} cached partitions dropped, \
             {map_lost} shuffle map outputs lost"
        ),
    );
    metrics.note_recovery(&rec);
    let registry = ctx.cluster().registry();
    registry.counter("fault.nodes_lost").inc(1);
    registry
        .counter("fault.cached_partitions_dropped")
        .inc(cached as u64);
    registry
        .counter("fault.map_outputs_lost")
        .inc(map_lost as u64);
    registry
        .counter("fault.broadcast_refetch_bytes")
        .inc(refetch);
    NodeLossReport {
        node,
        cached_partitions_dropped: cached,
        map_outputs_lost: map_lost,
    }
}

/// Prepare (run) every shuffle stage the lineage of `imp` depends on, and
/// keep repairing until all of them are complete: preparing advances the
/// virtual clock, so a planned node loss can trigger *while* preparing and
/// invalidate map outputs just produced.
fn prepare_shuffles<T: Data>(ctx: &Context, imp: &Arc<dyn RddImpl<T>>) -> Result<(), ExecError> {
    loop {
        let mut deps: Vec<Arc<dyn ShuffleStage>> = Vec::new();
        imp.collect_shuffle_deps(&mut deps);
        // The same shuffle can appear twice in one lineage (e.g. a union of
        // two branches over the same reduced RDD); prepare it once.
        let mut seen = std::collections::HashSet::new();
        for d in &deps {
            if seen.insert(d.shuffle_id()) {
                d.prepare()?;
            }
        }
        let no_new_losses = sync_node_losses(ctx).is_empty();
        let all_complete = deps
            .iter()
            .all(|d| ctx.shuffles().is_complete(d.shuffle_id()));
        if no_new_losses && all_complete {
            return Ok(());
        }
    }
}

/// Run the final stage of a job, collapsing each partition's pipeline into
/// a buffer for the driver fetch (the job's last pipeline breaker).
fn run_final_stage<T: Data>(rdd: &Rdd<T>, label: String) -> Result<Vec<Arc<Vec<T>>>, ExecError> {
    let imp = Arc::clone(&rdd.imp);
    let partitions = imp.num_partitions();
    let preferred: Vec<Option<NodeId>> = (0..partitions)
        .map(|p| imp.preferred_node(p).or_else(|| Some(node_for(&imp, p))))
        .collect();
    let shuffle_read = imp.shuffle_read_id();
    try_run_stage(
        &rdd.ctx,
        label,
        EventKind::Stage,
        shuffle_read,
        partitions,
        preferred,
        Arc::new(move |part, tc: &TaskContext| {
            let data = materialize(&imp, part, tc).into_arc(tc);
            tc.note_records_written(data.len() as u64);
            data
        }),
    )
    .map(|(parts, _)| parts)
}

/// Run the final stage of a `count` job: each partition's pipeline is
/// drained without buffering — only the lengths reach the driver.
fn run_count_stage<T: Data>(rdd: &Rdd<T>, label: String) -> Result<Vec<u64>, ExecError> {
    let imp = Arc::clone(&rdd.imp);
    let partitions = imp.num_partitions();
    let preferred: Vec<Option<NodeId>> = (0..partitions)
        .map(|p| imp.preferred_node(p).or_else(|| Some(node_for(&imp, p))))
        .collect();
    let shuffle_read = imp.shuffle_read_id();
    try_run_stage(
        &rdd.ctx,
        label,
        EventKind::Stage,
        shuffle_read,
        partitions,
        preferred,
        Arc::new(move |part, tc: &TaskContext| materialize(&imp, part, tc).count()),
    )
    .map(|(lens, _)| lens)
}

/// The `collect` action.
pub(crate) fn try_collect<T: Data>(rdd: &Rdd<T>) -> Result<Vec<T>, ExecError> {
    let ctx = &rdd.ctx;
    let metrics = ctx.metrics().clone();
    let job = metrics.begin_job(format!("collect rdd{}", rdd.id()));
    metrics.advance(SimDuration::from_secs(
        ctx.cluster().cost().spark_job_overhead,
    ));

    let result = (|| {
        rdd.imp.preflight()?;
        prepare_shuffles(ctx, &rdd.imp)?;
        let parts = run_final_stage(rdd, format!("collect rdd{}", rdd.id()))?;

        // Results are serialized on the workers and fetched to the driver.
        let result_bytes: u64 = parts.iter().map(|p| slice_bytes(p)).sum();
        let cost = ctx.cluster().cost();
        metrics.advance(cost.serialize(result_bytes) + cost.net_transfer(result_bytes));

        // Losses that triggered during the final stage surface inside this
        // job rather than lingering until the next action.
        sync_node_losses(ctx);
        Ok(parts)
    })();
    metrics.end_job(job);

    let parts = result?;
    let mut out = Vec::new();
    for p in parts {
        out.extend(p.iter().cloned());
    }
    Ok(out)
}

/// The `checkpoint` action: materialize every partition of `rdd` to
/// replicated blocks in simulated HDFS and return a [`CheckpointRdd`] that
/// reads them back. One job, one write stage attributed to
/// [`EventKind::Checkpoint`]; each task serializes its partition, writes the
/// primary replica to local disk and ships the remaining replicas over the
/// network (pipelined, like an HDFS block write).
pub(crate) fn try_checkpoint<T: Data>(rdd: &Rdd<T>) -> Result<Rdd<T>, ExecError> {
    let ctx = &rdd.ctx;
    let metrics = ctx.metrics().clone();
    let job = metrics.begin_job(format!("checkpoint rdd{}", rdd.id()));
    metrics.advance(SimDuration::from_secs(
        ctx.cluster().cost().spark_job_overhead,
    ));

    let result = (|| {
        rdd.imp.preflight()?;
        prepare_shuffles(ctx, &rdd.imp)?;
        let imp = Arc::clone(&rdd.imp);
        let partitions = imp.num_partitions();
        let cp = CheckpointRdd::<T>::new(ctx, partitions);
        let cp_id = cp.meta.id;
        let preferred: Vec<Option<NodeId>> = (0..partitions)
            .map(|p| imp.preferred_node(p).or_else(|| Some(node_for(&imp, p))))
            .collect();
        let shuffle_read = imp.shuffle_read_id();
        let cluster = ctx.cluster().clone();
        let replication = cluster.hdfs().replication() as u64;
        try_run_stage(
            ctx,
            format!("checkpoint rdd{} -> rdd{cp_id}", rdd.id()),
            EventKind::Checkpoint,
            shuffle_read,
            partitions,
            preferred,
            Arc::new(move |part, tc: &TaskContext| {
                let data = materialize(&imp, part, tc).into_arc(tc);
                let bytes = slice_bytes(&data);
                tc.add_ser(bytes); // serialize the block for stable storage
                tc.add_disk_write(bytes); // primary replica, node-local
                tc.add_net(bytes * replication.saturating_sub(1)); // pipeline to the others
                if cluster.faults().integrity_active() {
                    // Checksum the block at write time so replica reads can
                    // verify it.
                    tc.add_stall_micros((cluster.cost().checksum(bytes).as_secs() * 1e6) as u64);
                }
                tc.note_records_written(data.len() as u64);
                cluster
                    .hdfs()
                    .checkpoint_put(cp_id, part, data, bytes, tc.node);
            }),
        )?;
        metrics.note_recovery(&RecoveryCounters {
            checkpoint_writes: partitions as u64,
            ..RecoveryCounters::default()
        });
        sync_node_losses(ctx);
        Ok(Rdd::from_impl(ctx.clone(), Arc::new(cp)))
    })();
    metrics.end_job(job);
    result
}

/// The `count` action: computes every partition but only its length crosses
/// the network.
pub(crate) fn try_count<T: Data>(rdd: &Rdd<T>) -> Result<u64, ExecError> {
    let ctx = &rdd.ctx;
    let metrics = ctx.metrics().clone();
    let job = metrics.begin_job(format!("count rdd{}", rdd.id()));
    metrics.advance(SimDuration::from_secs(
        ctx.cluster().cost().spark_job_overhead,
    ));

    let result = (|| {
        rdd.imp.preflight()?;
        prepare_shuffles(ctx, &rdd.imp)?;
        let lens = run_count_stage(rdd, format!("count rdd{}", rdd.id()))?;
        sync_node_losses(ctx);
        Ok(lens)
    })();
    metrics.end_job(job);

    Ok(result?.iter().sum())
}

/// The `take` action: incremental over the fused pipelines. Partitions run
/// in exponentially growing batches (1, 4, 16, …) and each task stops
/// pulling from its partition's pipeline once `n` elements are gathered —
/// later partitions are never computed when earlier ones fill the quota.
pub(crate) fn try_take<T: Data>(rdd: &Rdd<T>, n: usize) -> Result<Vec<T>, ExecError> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let ctx = &rdd.ctx;
    let metrics = ctx.metrics().clone();
    let job = metrics.begin_job(format!("take({n}) rdd{}", rdd.id()));
    metrics.advance(SimDuration::from_secs(
        ctx.cluster().cost().spark_job_overhead,
    ));

    let result = (|| {
        rdd.imp.preflight()?;
        prepare_shuffles(ctx, &rdd.imp)?;
        let imp = Arc::clone(&rdd.imp);
        let total = imp.num_partitions();
        let shuffle_read = imp.shuffle_read_id();
        let mut out: Vec<T> = Vec::new();
        let mut next = 0usize;
        let mut batch = 1usize;
        while out.len() < n && next < total {
            let hi = (next + batch).min(total);
            let parts: Vec<usize> = (next..hi).collect();
            let remaining = n - out.len();
            let preferred: Vec<Option<NodeId>> = parts
                .iter()
                .map(|&p| imp.preferred_node(p).or_else(|| Some(node_for(&imp, p))))
                .collect();
            let stage_imp = Arc::clone(&imp);
            let stage_parts = parts.clone();
            let (results, _) = try_run_stage(
                ctx,
                format!("take({n}) rdd{} [{next}..{hi})", rdd.id()),
                EventKind::Stage,
                shuffle_read,
                parts.len(),
                preferred,
                Arc::new(move |idx, tc: &TaskContext| {
                    let part = stage_parts[idx];
                    // Pull at most `remaining` elements; a fused upstream
                    // chain stops computing as soon as the quota is met.
                    let taken: Vec<T> = materialize(&stage_imp, part, tc)
                        .into_iter()
                        .take(remaining)
                        .collect();
                    tc.note_records_written(taken.len() as u64);
                    tc.note_materialized(slice_bytes(&taken));
                    taken
                }),
            )?;
            // Everything the batch gathered is fetched to the driver, even
            // if the batch collectively overshot `n`.
            let fetched: u64 = results.iter().map(|p| slice_bytes(p)).sum();
            let cost = ctx.cluster().cost();
            metrics.advance(cost.serialize(fetched) + cost.net_transfer(fetched));
            for p in results {
                for t in p {
                    if out.len() == n {
                        break;
                    }
                    out.push(t);
                }
            }
            sync_node_losses(ctx);
            next = hi;
            batch = batch.saturating_mul(4);
        }
        Ok(out)
    })();
    metrics.end_job(job);
    result
}

/// Fault injection helpers, exposed on [`Context`] via an extension trait so
/// tests, the chaos bench and the fault-tolerance example can knock pieces
/// out mid-run.
pub trait FaultInjection {
    /// Drop one cached partition, as if its executor was lost. Returns
    /// whether anything was dropped. The next read recomputes via lineage.
    fn drop_cached_partition(&self, rdd_id: u64, partition: usize) -> bool;

    /// Drop a materialized shuffle output. The next action that reads it
    /// re-runs the map stage. Returns whether anything was dropped.
    fn drop_shuffle(&self, shuffle_id: u64) -> bool;

    /// Kill a node *now* (at the current virtual time): the node takes no
    /// further tasks, its cached partitions and shuffle map outputs are
    /// invalidated, and broadcast blocks are re-fetched. Idempotent — a
    /// second kill of the same node reports nothing new.
    fn lose_node(&self, node: NodeId) -> NodeLossReport;

    /// Alias for [`FaultInjection::drop_shuffle`], matching the
    /// `lose_node` naming: drop one shuffle's map outputs wholesale.
    fn lose_shuffle(&self, shuffle_id: u64) -> bool;

    /// Number of currently materialized shuffles (observability for tests).
    fn materialized_shuffles(&self) -> usize;
}

impl FaultInjection for Context {
    fn drop_cached_partition(&self, rdd_id: u64, partition: usize) -> bool {
        self.cache().evict(rdd_id, partition)
    }

    fn drop_shuffle(&self, shuffle_id: u64) -> bool {
        self.shuffles().invalidate(shuffle_id)
    }

    fn lose_node(&self, node: NodeId) -> NodeLossReport {
        let now = self.metrics().now();
        if self.cluster().faults().kill_node(node, now) {
            apply_node_loss(self, node)
        } else {
            // Already dead: its data was already invalidated.
            NodeLossReport {
                node,
                cached_partitions_dropped: 0,
                map_outputs_lost: 0,
            }
        }
    }

    fn lose_shuffle(&self, shuffle_id: u64) -> bool {
        self.drop_shuffle(shuffle_id)
    }

    fn materialized_shuffles(&self) -> usize {
        self.shuffles().len()
    }
}
