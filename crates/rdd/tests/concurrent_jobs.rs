//! Property test for the multi-job scheduler's core promise: N jobs
//! running *concurrently* — bound to one shared [`JobQueue`], each
//! restricted to its pool's executor grant, FIFO pools serializing, one
//! job recovering from a seeded node loss — produce results byte-identical
//! to the same lineages run sequentially on unbound clusters. Randomized
//! operator lineages, both exec modes. Pool grants, queue waits and
//! fault recovery may only ever move virtual time, never data.

use yafim_cluster::{
    critical_path, ClusterSpec, CostModel, FaultPlan, JobQueue, NodeId, PoolSpec, SimCluster,
    SimDuration, SimInstant,
};
use yafim_rdd::{Context, ExecMode, Rdd, RddConfig, StorageLevel};

/// Tiny deterministic generator for test inputs (splitmix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn data(&mut self, max_len: u64) -> Vec<u32> {
        let n = self.range(8, max_len) as usize;
        (0..n).map(|_| self.next() as u32).collect()
    }
}

const CASES: usize = 8;
const NODES: u32 = 6;

/// One randomly chosen operator, parameters pinned for rebuilding the
/// identical lineage on every cluster.
#[derive(Clone, Copy, Debug)]
enum Op {
    Map(u32),
    Filter(u32),
    FlatMap(u32),
    Cache,
    UnionSelf,
}

fn random_plan(rng: &mut Rng, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| match rng.range(0, 5) {
            0 => Op::Map(rng.next() as u32),
            1 => Op::Filter(rng.next() as u32),
            2 => Op::FlatMap(rng.next() as u32),
            3 => Op::Cache,
            _ => Op::UnionSelf,
        })
        .collect()
}

fn apply(rdd: Rdd<u32>, op: Op) -> Rdd<u32> {
    match op {
        Op::Map(k) => rdd.map(move |x| x.wrapping_mul(2_654_435_761).wrapping_add(k)),
        Op::Filter(m) => rdd.filter(move |x| x % (m % 7 + 2) != 0),
        Op::FlatMap(k) => rdd.flat_map(move |x| {
            (0..x.wrapping_add(k) % 3)
                .map(move |i| x.wrapping_add(i))
                .collect::<Vec<u32>>()
        }),
        Op::Cache => rdd.cache(),
        Op::UnionSelf => rdd.union(&rdd),
    }
}

/// The lineage under test: random narrow ops with one shuffle in the
/// middle, so jobs exercise map-output provenance under their grants.
fn build(c: &Context, data: &[u32], parts: usize, plan: &[Op]) -> Rdd<u32> {
    let mut rdd = c.parallelize_with_partitions(data.to_vec(), parts);
    for (i, op) in plan.iter().enumerate() {
        rdd = apply(rdd, *op);
        if i == plan.len() / 2 {
            rdd = rdd
                .map(|x| (x % 32, x as u64))
                .reduce_by_key(|a, b| a.wrapping_add(b))
                .map(|(k, v)| k.wrapping_add(v as u32));
        }
    }
    rdd
}

fn ctx_on(cluster: SimCluster, mode: ExecMode) -> Context {
    let mut config = RddConfig::for_cluster(&cluster);
    config.exec_mode = mode;
    Context::with_config(cluster, config)
}

fn small_cluster() -> SimCluster {
    SimCluster::with_threads(
        ClusterSpec::new(NODES, 2, 1 << 30),
        CostModel::hadoop_era(),
        2,
    )
}

/// N concurrent jobs over one queue == the same jobs run sequentially on
/// unbound clusters, byte for byte — with a fair 2:1 pool split, a FIFO
/// pool serializing two jobs, and one job losing a node mid-run.
#[test]
fn concurrent_jobs_match_sequential_runs_bit_for_bit() {
    let mut rng = Rng(0x0c0_c0de);
    for case in 0..CASES {
        let data = rng.data(100);
        let parts = rng.range(2, 8) as usize;
        let len = rng.range(1, 5) as usize;
        let plan = random_plan(&mut rng, len);
        let fault_seed = rng.next();

        for mode in [ExecMode::Fused, ExecMode::Eager] {
            // Sequential reference: unbound cluster, no queue, no faults.
            let reference = {
                let c = ctx_on(small_cluster(), mode);
                build(&c, &data, parts, &plan).collect()
            };

            let queue = JobQueue::new(NODES);
            queue.add_pool(PoolSpec::fair("interactive", 2.0));
            queue.add_pool(PoolSpec::fair("batch", 1.0));
            queue.add_pool(PoolSpec::fifo("etl", 1.0));
            // Submit everything before any job binds: grants are a pure
            // function of the submitted set.
            let defs = [
                ("interactive", false),
                ("batch", true), // the node-loss probe
                ("etl", false),
                ("etl", false), // FIFO successor: waits for the one above
            ];
            let tickets: Vec<_> = defs
                .iter()
                .map(|(pool, _)| queue.submit(pool, "prop"))
                .collect();

            let handles: Vec<_> = defs
                .iter()
                .zip(tickets)
                .map(|(&(pool, faulted), ticket)| {
                    let data = data.clone();
                    let plan = plan.clone();
                    std::thread::spawn(move || {
                        let cluster = small_cluster();
                        if faulted {
                            let (lo, _) = ticket.grant();
                            cluster
                                .faults()
                                .set_plan(FaultPlan::seeded(fault_seed).lose_node_at(
                                    NodeId(lo as u32),
                                    SimInstant::EPOCH + SimDuration::from_secs(0.01),
                                ));
                        }
                        cluster.attach_job(&ticket);
                        let guard = cluster.acquire_job(pool, "prop");
                        let c = ctx_on(cluster.clone(), mode);
                        let out = build(&c, &data, parts, &plan);
                        let collected = out.collect();
                        drop(guard);
                        let report = critical_path(cluster.metrics(), cluster.cost());
                        (collected, report, cluster)
                    })
                })
                .collect();

            for (i, h) in handles.into_iter().enumerate() {
                let (collected, report, cluster) = h.join().unwrap();
                let (pool, faulted) = defs[i];
                assert_eq!(
                    collected, reference,
                    "case {case} {mode:?}: job {i} ({pool}) diverged from sequential run"
                );
                // Bucket tiling holds per job, queue wait included.
                let makespan = cluster.metrics().now().as_secs();
                assert!(
                    (report.buckets.total() - makespan).abs() < 1e-6,
                    "case {case} {mode:?}: job {i} buckets {} != makespan {makespan}",
                    report.buckets.total()
                );
                // Fault recovery stays inside the faulted job.
                let lost = cluster.metrics().snapshot().recovery.nodes_lost;
                if faulted {
                    assert!(lost >= 1, "case {case}: planted node loss never fired");
                } else {
                    assert_eq!(lost, 0, "case {case}: job {i} ({pool}) lost a node");
                }
                // The second FIFO job waited for the first.
                if i == 3 {
                    assert!(
                        report.buckets.scheduler_queue > 0.0,
                        "case {case} {mode:?}: FIFO successor charged no queue time"
                    );
                }
            }
            assert_eq!(queue.jobs_completed(), defs.len() as u64);
        }
    }
}

/// Fair-pool jobs under a starved memory budget: the governor's per-task
/// slice rounds to zero so every shuffle combine buffer spills through
/// local disk, a 64-byte cache demotes every `MemoryAndDisk` partition to
/// the disk tier, and one job additionally loses a node — yet every
/// result stays byte-identical to an unbound, unbudgeted solo run.
/// Memory pressure, like pool grants and faults, may only move virtual
/// time, never data.
#[test]
fn tight_budget_jobs_spill_and_match_solo_runs() {
    // 1 byte/node: storage rounds to 0, the per-core execution slice to 0,
    // so any non-empty combine buffer overflows and takes the spill rung.
    const TIGHT_BUDGET: u64 = 1;

    let mut rng = Rng(0xb007_1e55);
    for case in 0..CASES / 2 {
        let data = rng.data(100);
        let parts = rng.range(2, 8) as usize;
        let len = rng.range(1, 5) as usize;
        let plan = random_plan(&mut rng, len);
        let fault_seed = rng.next();

        for mode in [ExecMode::Fused, ExecMode::Eager] {
            // Solo reference: unbound cluster, no queue, no budget.
            let reference = {
                let c = ctx_on(small_cluster(), mode);
                let rdd = build(&c, &data, parts, &plan).persist(StorageLevel::MemoryAndDisk);
                let once = rdd.collect();
                assert_eq!(once, rdd.collect(), "solo re-read must be stable");
                once
            };

            let queue = JobQueue::new(NODES);
            queue.add_pool(PoolSpec::fair("interactive", 2.0));
            queue.add_pool(PoolSpec::fair("batch", 1.0));
            // The node loss rides on the interactive job: its 4-node fair
            // grant survives losing one; a 1-node batch grant would not.
            let defs = [("interactive", true), ("batch", false), ("batch", false)];
            let tickets: Vec<_> = defs
                .iter()
                .map(|(pool, _)| queue.submit(pool, "tight"))
                .collect();

            let handles: Vec<_> = defs
                .iter()
                .zip(tickets)
                .map(|(&(pool, faulted), ticket)| {
                    let data = data.clone();
                    let plan = plan.clone();
                    std::thread::spawn(move || {
                        let cluster = small_cluster();
                        let mut fp = FaultPlan::seeded(fault_seed).with_mem_budget(TIGHT_BUDGET);
                        if faulted {
                            let (lo, _) = ticket.grant();
                            fp = fp.lose_node_at(
                                NodeId(lo as u32),
                                SimInstant::EPOCH + SimDuration::from_secs(0.01),
                            );
                        }
                        cluster.faults().set_plan(fp);
                        cluster.attach_job(&ticket);
                        let guard = cluster.acquire_job(pool, "tight");
                        let mut config = RddConfig::for_cluster(&cluster);
                        config.exec_mode = mode;
                        // A zero-byte cache: every non-empty MemoryAndDisk
                        // partition demotes straight to the disk tier.
                        config.cache_capacity_per_node = Some(0);
                        let c = Context::with_config(cluster.clone(), config);
                        let rdd =
                            build(&c, &data, parts, &plan).persist(StorageLevel::MemoryAndDisk);
                        let first = rdd.collect();
                        let second = rdd.collect();
                        drop(guard);
                        let disk_hits = c.cache().stats().disk_hits;
                        (first, second, disk_hits, cluster)
                    })
                })
                .collect();

            for (i, h) in handles.into_iter().enumerate() {
                let (first, second, disk_hits, cluster) = h.join().unwrap();
                let (pool, faulted) = defs[i];
                assert_eq!(
                    first, reference,
                    "case {case} {mode:?}: job {i} ({pool}) diverged under the tight budget"
                );
                assert_eq!(
                    second, reference,
                    "case {case} {mode:?}: job {i} ({pool}) re-read diverged"
                );
                let rec = cluster.metrics().snapshot().recovery;
                assert!(
                    rec.mem.spills > 0 && rec.mem.spill_bytes > 0,
                    "case {case} {mode:?}: job {i} ({pool}) never spilled a combine buffer"
                );
                assert_eq!(
                    rec.mem.oom_killed, 0,
                    "case {case} {mode:?}: degradable spills must never kill a task"
                );
                if !reference.is_empty() {
                    assert!(
                        disk_hits > 0,
                        "case {case} {mode:?}: job {i} ({pool}) never served a \
                         MemoryAndDisk partition from the disk tier"
                    );
                }
                if faulted {
                    assert!(
                        rec.nodes_lost >= 1,
                        "case {case}: planted node loss never fired"
                    );
                } else {
                    assert_eq!(
                        rec.nodes_lost, 0,
                        "case {case}: job {i} ({pool}) lost a node"
                    );
                }
            }
            assert_eq!(queue.jobs_completed(), defs.len() as u64);
        }
    }
}
