//! Observability invariants, checked over *real* engine runs: the virtual
//! clock only moves forward, task spans nest inside their stage and job,
//! no two tasks overlap on one virtual core, attribution counters land where
//! the engine moved bytes, and the Chrome trace export round-trips through
//! a JSON parser with sane timestamps.

use std::collections::HashMap;
use yafim_cluster::{
    chrome_trace, json, ClusterSpec, CostModel, EventKind, SimCluster, SimInstant,
};
use yafim_rdd::Context;

fn cluster() -> SimCluster {
    SimCluster::with_threads(ClusterSpec::new(3, 2, 1 << 30), CostModel::hadoop_era(), 2)
}

/// A small two-job workload with a cache and a shuffle: the same shape as
/// one YAFIM pass (broadcast → flatMap → reduceByKey → collect).
fn run_workload(ctx: &Context) {
    let nums = ctx
        .parallelize_with_partitions((0..600u64).collect(), 6)
        .cache();
    nums.count();
    let counts = nums
        .map(|n| (n % 7, 1u64))
        .reduce_by_key(|a, b| a + b)
        .collect();
    assert_eq!(counts.iter().map(|(_, c)| c).sum::<u64>(), 600);
}

#[test]
fn virtual_clock_is_monotonic_and_events_are_ordered() {
    let c = cluster();
    let ctx = Context::new(c.clone());
    run_workload(&ctx);

    let now = c.metrics().now();
    assert!(now > SimInstant::EPOCH);
    let events = c.metrics().events();
    assert!(!events.is_empty());
    // Events are filed when they complete, so completion times are
    // non-decreasing (starts are not: a job's span begins before the stages
    // it contains).
    for pair in events.windows(2) {
        assert!(
            pair[1].end() >= pair[0].end(),
            "events logged out of clock order: {pair:?}"
        );
    }
    for e in &events {
        assert!(e.end() <= now, "event ends after the clock: {e:?}");
    }
}

#[test]
fn task_spans_nest_inside_stage_and_job_spans() {
    let c = cluster();
    let ctx = Context::new(c.clone());
    run_workload(&ctx);

    let jobs: HashMap<u64, _> = c
        .metrics()
        .job_spans()
        .into_iter()
        .map(|j| (j.job_id, j))
        .collect();
    let stages: HashMap<u64, _> = c
        .metrics()
        .stage_spans()
        .into_iter()
        .map(|s| (s.stage_id, s))
        .collect();
    let tasks = c.metrics().task_spans();
    assert_eq!(jobs.len(), 2, "count + collect");
    assert!(!tasks.is_empty());

    for t in &tasks {
        let stage = &stages[&t.stage_id];
        assert!(t.start >= stage.start, "task starts before its stage");
        assert!(t.end() <= stage.end(), "task ends after its stage");
        assert_eq!(t.job_id, stage.job_id, "task and stage disagree on job");
        let job = &jobs[&stage.job_id];
        assert!(stage.start >= job.start, "stage starts before its job");
        assert!(stage.end() <= job.end(), "stage ends after its job");
    }
}

#[test]
fn per_core_task_spans_never_overlap() {
    let c = cluster();
    let ctx = Context::new(c.clone());
    run_workload(&ctx);

    let mut lanes: HashMap<(u32, usize), Vec<(SimInstant, SimInstant)>> = HashMap::new();
    for t in c.metrics().task_spans() {
        assert!(
            t.core < c.spec().cores_per_node as usize,
            "core out of range"
        );
        lanes
            .entry((t.node.0, t.core))
            .or_default()
            .push((t.start, t.end()));
    }
    assert!(!lanes.is_empty());
    for ((node, core), mut spans) in lanes {
        spans.sort();
        for pair in spans.windows(2) {
            assert!(
                pair[1].0 >= pair[0].1,
                "tasks overlap on node {node} core {core}: {pair:?}"
            );
        }
    }
}

#[test]
fn shuffle_and_cache_attribution_is_recorded() {
    let c = cluster();
    let ctx = Context::new(c.clone());
    run_workload(&ctx);

    let stages = c.metrics().stage_spans();
    let map_stages: Vec<_> = stages
        .iter()
        .filter(|s| s.kind == EventKind::Shuffle)
        .collect();
    assert_eq!(
        map_stages.len(),
        1,
        "one reduceByKey → one shuffle map stage"
    );
    let map = map_stages[0];
    assert!(
        map.shuffle_id.is_some(),
        "shuffle map stage labeled with its id"
    );
    assert!(map.profile.shuffle_write_bytes > 0);
    assert_eq!(map.profile.shuffle_read_bytes, 0);

    let read_stage = stages
        .iter()
        .find(|s| s.shuffle_id == map.shuffle_id && s.stage_id != map.stage_id)
        .expect("the collect stage reads the shuffle");
    assert_eq!(
        read_stage.profile.shuffle_read_bytes, map.profile.shuffle_write_bytes,
        "every shuffled byte written is read back exactly once"
    );

    // The cached RDD is materialized once per partition (6 misses: count),
    // then hit once per partition by the shuffle map stage.
    let snap = c.metrics().snapshot();
    assert_eq!(snap.profile.cache_misses, 6);
    assert_eq!(snap.profile.cache_hits, 6);
}

#[test]
fn chrome_trace_round_trips_with_valid_timestamps() {
    let c = cluster();
    let ctx = Context::new(c.clone());
    run_workload(&ctx);

    let text = chrome_trace(c.metrics(), c.spec());
    let doc = json::parse(&text).expect("trace is valid JSON");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();

    let mut tasks = 0usize;
    for e in events {
        match e.get("ph").unwrap().as_str().unwrap() {
            "X" => {
                let ts = e.get("ts").unwrap().as_f64().unwrap();
                let dur = e.get("dur").unwrap().as_f64().unwrap();
                assert!(ts >= 0.0 && dur >= 0.0, "bad interval: {e:?}");
                if e.get("cat").and_then(json::JsonValue::as_str) == Some("task") {
                    tasks += 1;
                    let pid = e.get("pid").unwrap().as_f64().unwrap();
                    assert!(pid >= 1.0, "tasks run on node processes, not the driver");
                }
            }
            "M" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(tasks as u64, c.metrics().snapshot().tasks);
    // Emission is deterministic: exporting twice gives identical bytes.
    assert_eq!(text, chrome_trace(c.metrics(), c.spec()));
}
