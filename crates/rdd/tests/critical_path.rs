//! Property test for the critical-path analyzer's tiling invariant: over
//! randomized operator lineages (the same harness `pipelines.rs` uses),
//! the attribution buckets must sum to the makespan within 1e-6 virtual
//! seconds — on clean runs, through shuffles, after node loss, and under
//! transient fetch/HDFS faults. The buckets partition the timeline by
//! construction; this test keeps that claim honest end to end, where real
//! executor schedules (overlapping stages, retries, recomputation) feed
//! the analyzer instead of hand-built spans.

use yafim_cluster::{
    critical_path, ClusterSpec, CostModel, CriticalPathReport, FaultPlan, NodeId, SimCluster,
};
use yafim_rdd::{Context, ExecMode, FaultInjection, Rdd, RddConfig};

fn ctx_with(mode: ExecMode) -> Context {
    let cluster =
        SimCluster::with_threads(ClusterSpec::new(3, 2, 1 << 30), CostModel::hadoop_era(), 2);
    let mut config = RddConfig::for_cluster(&cluster);
    config.exec_mode = mode;
    Context::with_config(cluster, config)
}

/// Tiny deterministic generator for test inputs (splitmix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn data(&mut self, max_len: u64) -> Vec<u32> {
        let n = self.range(0, max_len) as usize;
        (0..n).map(|_| self.next() as u32).collect()
    }
}

const CASES: usize = 16;

/// One randomly chosen narrow operator, parameters pinned for rebuilding.
#[derive(Clone, Copy, Debug)]
enum Op {
    Map(u32),
    Filter(u32),
    FlatMap(u32),
    MapPartitions(u32),
    Sample(u64),
    Coalesce(usize),
    Cache,
    UnionSelf,
}

fn random_plan(rng: &mut Rng, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| match rng.range(0, 8) {
            0 => Op::Map(rng.next() as u32),
            1 => Op::Filter(rng.next() as u32),
            2 => Op::FlatMap(rng.next() as u32),
            3 => Op::MapPartitions(rng.next() as u32),
            4 => Op::Sample(rng.next()),
            5 => Op::Coalesce(rng.range(1, 6) as usize),
            6 => Op::Cache,
            _ => Op::UnionSelf,
        })
        .collect()
}

fn apply(rdd: Rdd<u32>, op: Op) -> Rdd<u32> {
    match op {
        Op::Map(k) => rdd.map(move |x| x.wrapping_mul(2_654_435_761).wrapping_add(k)),
        Op::Filter(m) => rdd.filter(move |x| x % (m % 7 + 2) != 0),
        Op::FlatMap(k) => rdd.flat_map(move |x| {
            (0..x.wrapping_add(k) % 3)
                .map(move |i| x.wrapping_add(i))
                .collect::<Vec<u32>>()
        }),
        Op::MapPartitions(k) => rdd.map_partitions(move |s, _| s.iter().map(|x| x ^ k).collect()),
        Op::Sample(seed) => rdd.sample(0.6, seed),
        Op::Coalesce(n) => rdd.coalesce(n),
        Op::Cache => rdd.cache(),
        Op::UnionSelf => rdd.union(&rdd),
    }
}

/// Build the lineage, optionally injecting a shuffle halfway through.
fn build(c: &Context, data: &[u32], parts: usize, plan: &[Op], shuffle: bool) -> Rdd<u32> {
    let mut rdd = c.parallelize_with_partitions(data.to_vec(), parts);
    for (i, op) in plan.iter().enumerate() {
        rdd = apply(rdd, *op);
        if shuffle && i == plan.len() / 2 {
            rdd = rdd
                .map(|x| (x % 64, x as u64))
                .reduce_by_key(|a, b| a.wrapping_add(b))
                .map(|(k, v)| k.wrapping_add(v as u32));
        }
    }
    rdd
}

/// The tiling invariant plus basic sanity on every bucket.
fn assert_sums_to_makespan(c: &Context, case: usize, what: &str) -> CriticalPathReport {
    let report = critical_path(c.metrics(), c.cluster().cost());
    let makespan = c.metrics().now().as_secs();
    assert!(
        (report.makespan - makespan).abs() < 1e-9,
        "report makespan != clock ({what}, case {case})"
    );
    let total = report.buckets.total();
    assert!(
        (total - makespan).abs() < 1e-6,
        "buckets sum to {total}, makespan {makespan}, delta {} ({what}, case {case}): {:?}",
        total - makespan,
        report.buckets
    );
    for (name, v) in report.buckets.named() {
        assert!(
            v >= 0.0,
            "negative bucket {name} = {v} ({what}, case {case})"
        );
    }
    report
}

#[test]
fn buckets_tile_makespan_on_random_narrow_chains() {
    let mut rng = Rng(0xc417_1ca1);
    for case in 0..CASES {
        let data = rng.data(120);
        let parts = rng.range(1, 10) as usize;
        let len = rng.range(1, 6) as usize;
        let plan = random_plan(&mut rng, len);
        for mode in [ExecMode::Fused, ExecMode::Eager] {
            let c = ctx_with(mode);
            let rdd = build(&c, &data, parts, &plan, false);
            rdd.collect();
            rdd.collect();
            assert_sums_to_makespan(&c, case, "narrow");
        }
    }
}

#[test]
fn buckets_tile_makespan_through_shuffles() {
    let mut rng = Rng(0x51ab_1234_5678);
    for case in 0..CASES {
        let data = rng.data(120);
        let parts = rng.range(1, 10) as usize;
        let len = rng.range(1, 5) as usize;
        let plan = random_plan(&mut rng, len);
        let c = ctx_with(ExecMode::Fused);
        let rdd = build(&c, &data, parts, &plan, true);
        rdd.collect();
        let report = assert_sums_to_makespan(&c, case, "shuffle");
        if !rdd.collect().is_empty() {
            // A second collect reuses shuffle output and cache entries.
            assert_sums_to_makespan(&c, case, "shuffle-reuse");
        }
        assert!(!report.partial, "nothing should drop here (case {case})");
    }
}

#[test]
fn buckets_tile_makespan_after_node_loss() {
    let mut rng = Rng(0xdead_10cc);
    for case in 0..CASES {
        let n = rng.range(1, 120) as usize;
        let data: Vec<u32> = (0..n).map(|_| rng.range(0, 500) as u32).collect();
        let parts = rng.range(2, 8) as usize;
        let victim = rng.range(0, 3) as u32;
        let c = ctx_with(ExecMode::Fused);
        let cached = c
            .parallelize_with_partitions(data.clone(), parts)
            .flat_map(|x| vec![x, x.wrapping_add(1)])
            .cache();
        let reduced = cached.map(|x| (x % 16, 1u64)).reduce_by_key(|a, b| a + b);
        let healthy = reduced.collect();

        c.lose_node(NodeId(victim));
        let recovered = reduced.collect();
        assert_eq!(healthy, recovered, "recompute diverged (case {case})");
        assert_sums_to_makespan(&c, case, "node-loss");
    }
}

#[test]
fn buckets_tile_makespan_under_transient_faults() {
    let mut rng = Rng(0xf1a6_60e5);
    for case in 0..CASES {
        let data = rng.data(100);
        let parts = rng.range(2, 8) as usize;
        let len = rng.range(1, 4) as usize;
        let plan = random_plan(&mut rng, len);
        let c = ctx_with(ExecMode::Fused);
        c.cluster().faults().set_plan(
            FaultPlan::seeded(rng.next())
                .flaky_fetches(0.4)
                .flaky_hdfs(0.4),
        );
        let rdd = build(&c, &data, parts, &plan, true);
        rdd.collect();
        assert_sums_to_makespan(&c, case, "transient-faults");
    }
}

#[test]
fn buckets_tile_makespan_under_silent_corruption() {
    let mut rng = Rng(0xbadd_c0de_5eed);
    for case in 0..CASES {
        let data = rng.data(100);
        let parts = rng.range(2, 8) as usize;
        let len = rng.range(1, 4) as usize;
        let plan = random_plan(&mut rng, len);
        let rate = rng.range(1, 40) as f64 / 100.0;
        let reference = {
            let c = ctx_with(ExecMode::Fused);
            build(&c, &data, parts, &plan, true).collect()
        };
        let c = ctx_with(ExecMode::Fused);
        c.cluster().faults().set_plan(
            FaultPlan::seeded(rng.next())
                .corrupt_shuffle(rate)
                .corrupt_cache(rate)
                .corrupt_hdfs(rate),
        );
        let rdd = build(&c, &data, parts, &plan, true);
        assert_eq!(
            rdd.collect(),
            reference,
            "corruption repair diverged (case {case})"
        );
        // Verification, repair stalls and resubmitted map work must all
        // land inside the bucket tiling.
        assert_sums_to_makespan(&c, case, "silent-corruption");
        let rec = c.cluster().metrics().snapshot().recovery;
        assert_eq!(
            rec.integrity.corruptions_detected, rec.integrity.corruptions_injected,
            "case {case}: detection must be total"
        );
        // A second collect re-verifies (now-healed) data: still clean.
        rdd.collect();
        assert_sums_to_makespan(&c, case, "silent-corruption-reuse");
    }
}
