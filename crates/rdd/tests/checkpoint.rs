//! Checkpointing, lineage truncation, and the transient-fault ladder at the
//! RDD level: checkpointed data round-trips byte-identically, survives node
//! loss through replication, bounds replay depth after a loss, and seeded
//! transient fetch failures cost virtual time without ever changing results.

use yafim_cluster::{ClusterSpec, CostModel, FaultPlan, NodeId, SimCluster};
use yafim_rdd::{Context, FaultInjection};

fn ctx() -> Context {
    Context::new(SimCluster::with_threads(
        ClusterSpec::new(4, 2, 1 << 30),
        CostModel::hadoop_era(),
        2,
    ))
}

/// A lineage `depth` narrow operators deep over `parts` partitions.
fn deep_chain(c: &Context, depth: usize, parts: usize) -> yafim_rdd::Rdd<u32> {
    let data: Vec<u32> = (0..200u32).collect();
    let mut rdd = c.parallelize_with_partitions(data, parts);
    for _ in 0..depth {
        rdd = rdd.map(|x| x.wrapping_add(1));
    }
    rdd
}

#[test]
fn checkpoint_round_trips_and_counts_writes() {
    let c = ctx();
    let rdd = deep_chain(&c, 5, 6);
    let expected = rdd.collect();

    let cp = rdd.checkpoint();
    assert_eq!(cp.collect(), expected, "checkpoint must be transparent");

    let rec = c.metrics().snapshot().recovery;
    assert_eq!(rec.checkpoint_writes, 6, "one write per partition");
    let (blocks, bytes) = c.cluster().hdfs().checkpoint_stats();
    assert_eq!(blocks, 6);
    assert!(bytes > 0);

    assert_eq!(cp.discard_checkpoint(), 6);
    assert_eq!(c.cluster().hdfs().checkpoint_stats().0, 0);
}

#[test]
fn checkpoint_blocks_survive_node_loss() {
    let c = ctx();
    let rdd = deep_chain(&c, 3, 8);
    let expected = rdd.collect();
    let cp = rdd.checkpoint();

    // Default 3x replication: one node loss never loses a block.
    c.lose_node(NodeId(1));
    assert_eq!(
        cp.collect(),
        expected,
        "replicated checkpoint must survive one node loss"
    );
    let rec = c.metrics().snapshot().recovery;
    assert!(
        rec.checkpoint_reads >= 8,
        "reads after the loss come from the checkpoint, got {}",
        rec.checkpoint_reads
    );
}

#[test]
fn checkpoint_truncates_replay_depth_after_loss() {
    const DEPTH: usize = 8;

    // Control: a deep cached lineage with no checkpoint. Losing a node
    // forces the evicted partitions to replay the whole ancestor chain.
    let ctl = ctx();
    let cached = deep_chain(&ctl, DEPTH, 8).cache();
    let expected = cached.collect();
    ctl.lose_node(NodeId(1));
    assert_eq!(cached.collect(), expected);
    let deep_replay = ctl.metrics().snapshot().recovery.max_replay_depth;
    assert!(
        deep_replay >= DEPTH as u64,
        "without a checkpoint the replay walks the whole chain, got {deep_replay}"
    );

    // Checkpointed: the same lineage truncated at the checkpoint. Recovery
    // re-reads the materialized blocks instead of replaying ancestors.
    let c = ctx();
    let cached = deep_chain(&c, DEPTH, 8).checkpoint().cache();
    assert_eq!(cached.collect(), expected);
    c.lose_node(NodeId(1));
    assert_eq!(cached.collect(), expected, "results stay byte-identical");
    let truncated_replay = c.metrics().snapshot().recovery.max_replay_depth;
    assert_eq!(
        truncated_replay, 1,
        "a checkpoint reader is its own source: replay depth 1"
    );
}

#[test]
fn transient_fetch_ladder_preserves_results_and_costs_time() {
    let run = |plan: Option<FaultPlan>| {
        let c = ctx();
        if let Some(p) = plan {
            c.cluster().faults().set_plan(p);
        }
        let mut out = deep_chain(&c, 2, 6)
            .map(|x| (x % 16, 1u64))
            .reduce_by_key(|a, b| a + b)
            .collect();
        out.sort_unstable();
        (out, c.metrics().now(), c.metrics().snapshot().recovery)
    };

    let (clean, clean_t, _) = run(None);
    let (flaky, flaky_t, rec) = run(Some(
        FaultPlan::seeded(7).flaky_fetches(1.0).flaky_hdfs(1.0),
    ));

    assert_eq!(clean, flaky, "transient faults must never change data");
    assert!(
        flaky_t > clean_t,
        "retries, backoff and escalations only add virtual time"
    );
    assert!(rec.fetch_retries > 0, "ladder must have retried");
    assert!(rec.backoff_micros > 0, "retries must have backed off");
    assert!(
        rec.recomputed_partitions > 0,
        "prob-1.0 ladders escalate to map resubmission"
    );
}

#[test]
fn seeded_transient_plans_are_fully_deterministic() {
    let run = || {
        let c = ctx();
        c.cluster()
            .faults()
            .set_plan(FaultPlan::seeded(11).flaky_fetches(0.3).flaky_hdfs(0.3));
        let out = deep_chain(&c, 3, 5)
            .map(|x| (x % 8, x as u64))
            .reduce_by_key(|a, b| a.wrapping_add(b))
            .collect();
        (out, c.metrics().now(), c.metrics().snapshot().recovery)
    };
    let (a, ta, ra) = run();
    let (b, tb, rb) = run();
    assert_eq!(a, b, "same seed, same data");
    assert_eq!(ta, tb, "same seed, same virtual timeline");
    assert_eq!(ra, rb, "same seed, same recovery counters");
}
