//! Cache behavior for *coarse* cached blocks — RDDs whose partitions hold
//! one large element each (the shape of yafim-core's columnar bitmap
//! store), rather than many small records. The cache manager must account
//! their bytes through `ByteSize` exactly like record-granular blocks,
//! survive node eviction by lineage recompute, and release everything on
//! unpersist.

use yafim_cluster::{ByteSize, ClusterSpec, CostModel, SimCluster};
use yafim_rdd::Context;

fn ctx() -> Context {
    Context::new(SimCluster::with_threads(
        ClusterSpec::new(4, 2, 1 << 30),
        CostModel::hadoop_era(),
        2,
    ))
}

/// One big arena per partition — a stand-in for a columnar bitset block.
#[derive(Clone, Debug, PartialEq)]
struct Arena {
    words: Vec<u64>,
}

impl Arena {
    fn build(xs: &[u32]) -> Self {
        Arena {
            words: xs.iter().map(|&x| (x as u64) << 1 | 1).collect(),
        }
    }

    fn sum(&self) -> u64 {
        self.words.iter().sum()
    }
}

impl ByteSize for Arena {
    fn byte_size(&self) -> u64 {
        32 + 8 * self.words.len() as u64
    }
}

#[test]
fn coarse_blocks_are_byte_accounted_and_released() {
    let c = ctx();
    let parts = 4usize;
    let coarse = c
        .parallelize_with_partitions((0u32..1000).collect(), parts)
        .map_partitions(|xs, _tc| vec![Arena::build(xs)])
        .cache();

    let arenas = coarse.collect();
    assert_eq!(arenas.len(), parts, "one arena per partition");
    // Each cached block is charged 8 bytes of Vec header plus its
    // elements' ByteSize — here a single arena.
    let expected_bytes: u64 = arenas.iter().map(|a| 8 + a.byte_size()).sum();

    let stats = c.cache().stats();
    assert_eq!(stats.entries, parts, "one cached block per partition");
    assert_eq!(
        stats.used_bytes, expected_bytes,
        "cache accounts the arena bytes, not a per-record estimate"
    );

    coarse.unpersist();
    let stats = c.cache().stats();
    assert_eq!(stats.entries, 0);
    assert_eq!(stats.used_bytes, 0);
}

#[test]
fn evicted_coarse_blocks_recompute_identically() {
    let c = ctx();
    let coarse = c
        .parallelize_with_partitions((0u32..1000).collect(), 4)
        .map_partitions(|xs, _tc| vec![Arena::build(xs)])
        .cache();

    let before: u64 = coarse.collect().iter().map(Arena::sum).sum();
    let bytes_before = c.cache().stats().used_bytes;

    let dropped = c.cache().evict_node(0);
    assert!(dropped > 0, "node 0 must have held at least one block");
    assert!(c.cache().stats().used_bytes < bytes_before);

    // The next job recomputes the evicted arenas through lineage and
    // re-caches them; contents and byte accounting both come back.
    let after: u64 = coarse.collect().iter().map(Arena::sum).sum();
    assert_eq!(before, after, "recompute must rebuild identical arenas");
    assert_eq!(c.cache().stats().used_bytes, bytes_before);

    coarse.unpersist();
    assert_eq!(c.cache().stats().used_bytes, 0);
}
