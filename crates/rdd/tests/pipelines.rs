//! Cross-checks between the fused iterator pipelines (the default engine)
//! and the retained naive-eager reference evaluator: random narrow-operator
//! lineages must produce identical results, identical virtual time, and
//! identical shuffle/cache/record accounting in both modes — only
//! `bytes_materialized` (what fusion exists to shrink) may differ, and then
//! only downward. Plus regressions for incremental `take` and for lineage
//! recompute through pipelines after node loss.

use yafim_cluster::{ClusterSpec, CostModel, MetricsSnapshot, SimCluster};
use yafim_rdd::{Context, ExecMode, FaultInjection, Rdd, RddConfig};

fn ctx_with(mode: ExecMode) -> Context {
    let cluster =
        SimCluster::with_threads(ClusterSpec::new(3, 2, 1 << 30), CostModel::hadoop_era(), 2);
    let mut config = RddConfig::for_cluster(&cluster);
    config.exec_mode = mode;
    Context::with_config(cluster, config)
}

/// Tiny deterministic generator for test inputs (splitmix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn data(&mut self, max_len: u64) -> Vec<u32> {
        let n = self.range(0, max_len) as usize;
        (0..n).map(|_| self.next() as u32).collect()
    }
}

const CASES: usize = 24;

/// One randomly chosen narrow operator, with its parameters pinned so the
/// exact same lineage can be rebuilt under both execution modes.
#[derive(Clone, Copy, Debug)]
enum Op {
    Map(u32),
    Filter(u32),
    FlatMap(u32),
    MapPartitions(u32),
    Sample(u64),
    Coalesce(usize),
    Cache,
    UnionSelf,
}

fn random_plan(rng: &mut Rng, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| match rng.range(0, 8) {
            0 => Op::Map(rng.next() as u32),
            1 => Op::Filter(rng.next() as u32),
            2 => Op::FlatMap(rng.next() as u32),
            3 => Op::MapPartitions(rng.next() as u32),
            4 => Op::Sample(rng.next()),
            5 => Op::Coalesce(rng.range(1, 6) as usize),
            6 => Op::Cache,
            _ => Op::UnionSelf,
        })
        .collect()
}

fn apply(rdd: Rdd<u32>, op: Op) -> Rdd<u32> {
    match op {
        Op::Map(k) => rdd.map(move |x| x.wrapping_mul(2_654_435_761).wrapping_add(k)),
        Op::Filter(m) => rdd.filter(move |x| x % (m % 7 + 2) != 0),
        Op::FlatMap(k) => rdd.flat_map(move |x| {
            (0..x.wrapping_add(k) % 3)
                .map(move |i| x.wrapping_add(i))
                .collect::<Vec<u32>>()
        }),
        Op::MapPartitions(k) => rdd.map_partitions(move |s, _| s.iter().map(|x| x ^ k).collect()),
        Op::Sample(seed) => rdd.sample(0.6, seed),
        Op::Coalesce(n) => rdd.coalesce(n),
        Op::Cache => rdd.cache(),
        Op::UnionSelf => rdd.union(&rdd),
    }
}

/// Build the planned lineage and run `collect` twice (the second pass
/// exercises cache hits and shuffle reuse). Returns both collections and
/// the final metrics snapshot.
fn run_plan(
    mode: ExecMode,
    data: &[u32],
    parts: usize,
    plan: &[Op],
    shuffle: bool,
) -> (Vec<u32>, Vec<u32>, MetricsSnapshot) {
    let c = ctx_with(mode);
    let mut rdd = c.parallelize_with_partitions(data.to_vec(), parts);
    for (i, op) in plan.iter().enumerate() {
        rdd = apply(rdd, *op);
        if shuffle && i == plan.len() / 2 {
            rdd = rdd
                .map(|x| (x % 64, x as u64))
                .reduce_by_key(|a, b| a.wrapping_add(b))
                .map(|(k, v)| k.wrapping_add(v as u32));
        }
    }
    let first = rdd.collect();
    let second = rdd.collect();
    (first, second, c.metrics().snapshot())
}

/// Everything observable except `bytes_materialized` must be identical
/// between the two modes; `bytes_materialized` must never grow under fusion.
fn assert_modes_agree(fused: &MetricsSnapshot, eager: &MetricsSnapshot, case: usize) {
    assert_eq!(fused.now, eager.now, "virtual time diverged (case {case})");
    assert_eq!(fused.jobs, eager.jobs, "job count diverged (case {case})");
    assert_eq!(
        fused.stages, eager.stages,
        "stage count diverged (case {case})"
    );
    assert_eq!(
        fused.tasks, eager.tasks,
        "task count diverged (case {case})"
    );
    let (f, e) = (&fused.profile, &eager.profile);
    assert_eq!(f.records_read, e.records_read, "records_read (case {case})");
    assert_eq!(
        f.records_written, e.records_written,
        "records_written (case {case})"
    );
    assert_eq!(
        f.shuffle_read_bytes, e.shuffle_read_bytes,
        "shuffle_read_bytes (case {case})"
    );
    assert_eq!(
        f.shuffle_write_bytes, e.shuffle_write_bytes,
        "shuffle_write_bytes (case {case})"
    );
    assert_eq!(f.cache_hits, e.cache_hits, "cache_hits (case {case})");
    assert_eq!(f.cache_misses, e.cache_misses, "cache_misses (case {case})");
    assert_eq!(
        fused.work.records_in, eager.work.records_in,
        "records_in (case {case})"
    );
    assert_eq!(
        fused.work.records_out, eager.work.records_out,
        "records_out (case {case})"
    );
    assert!(
        f.bytes_materialized <= e.bytes_materialized,
        "fusion materialized more than eager: {} > {} (case {case})",
        f.bytes_materialized,
        e.bytes_materialized
    );
}

#[test]
fn fused_and_eager_agree_on_narrow_chains() {
    let mut rng = Rng(seed(1));
    for case in 0..CASES {
        let data = rng.data(120);
        let parts = rng.range(1, 10) as usize;
        let len = rng.range(1, 6) as usize;
        let plan = random_plan(&mut rng, len);
        let (f1, f2, fs) = run_plan(ExecMode::Fused, &data, parts, &plan, false);
        let (e1, e2, es) = run_plan(ExecMode::Eager, &data, parts, &plan, false);
        assert_eq!(f1, e1, "first collect diverged (case {case}: {plan:?})");
        assert_eq!(f2, e2, "second collect diverged (case {case}: {plan:?})");
        assert_eq!(f1, f2, "fused collect not stable (case {case}: {plan:?})");
        assert_modes_agree(&fs, &es, case);
    }
}

#[test]
fn fused_and_eager_agree_through_shuffles() {
    let mut rng = Rng(seed(2));
    for case in 0..CASES {
        let data = rng.data(120);
        let parts = rng.range(1, 10) as usize;
        let len = rng.range(1, 5) as usize;
        let plan = random_plan(&mut rng, len);
        let (f1, f2, fs) = run_plan(ExecMode::Fused, &data, parts, &plan, true);
        let (e1, e2, es) = run_plan(ExecMode::Eager, &data, parts, &plan, true);
        assert_eq!(f1, e1, "first collect diverged (case {case}: {plan:?})");
        assert_eq!(f2, e2, "second collect diverged (case {case}: {plan:?})");
        // An upstream filter can legitimately empty the shuffle input; only
        // a non-empty result proves bytes crossed the boundary.
        if !f1.is_empty() {
            assert!(
                fs.profile.shuffle_write_bytes > 0,
                "shuffle never ran (case {case})"
            );
        }
        assert_modes_agree(&fs, &es, case);
    }
}

/// PR 2's invariant, re-proven through the pipelined path: losing a node
/// (cached partitions and map outputs included) and recomputing through
/// lineage yields byte-identical results — in both execution modes.
#[test]
fn node_loss_recompute_is_identical_through_pipelines() {
    let mut rng = Rng(seed(3));
    for case in 0..CASES {
        let n = rng.range(1, 120) as usize;
        let data: Vec<u32> = (0..n).map(|_| rng.range(0, 500) as u32).collect();
        let parts = rng.range(2, 8) as usize;
        let victim = rng.range(0, 3);
        for mode in [ExecMode::Fused, ExecMode::Eager] {
            let c = ctx_with(mode);
            let cached = c
                .parallelize_with_partitions(data.clone(), parts)
                .flat_map(|x| vec![x, x.wrapping_add(1)])
                .cache();
            let reduced = cached.map(|x| (x % 16, 1u64)).reduce_by_key(|a, b| a + b);
            let healthy = reduced.collect();

            c.lose_node(yafim_cluster::NodeId(victim as u32));
            let recovered = reduced.collect();
            assert_eq!(
                healthy, recovered,
                "recompute diverged (case {case}, {mode:?})"
            );
            assert_eq!(cached.collect().len(), data.len() * 2);
        }
    }
}

#[test]
fn take_matches_collect_prefix() {
    let mut rng = Rng(seed(4));
    for case in 0..CASES {
        let data = rng.data(150);
        let parts = rng.range(1, 12) as usize;
        let n = rng.range(0, 40) as usize;
        let c = ctx_with(ExecMode::Fused);
        let rdd = c
            .parallelize_with_partitions(data.clone(), parts)
            .map(|x| x / 2)
            .filter(|x| x % 3 != 1);
        let full = rdd.collect();
        let prefix: Vec<u32> = full.iter().take(n).copied().collect();
        assert_eq!(rdd.take(n), prefix, "case {case}");
    }
}

/// With plenty of rows in partition 0, `take(small)` must touch only the
/// first partition — later ones are never computed.
#[test]
fn take_skips_later_partitions_when_early_ones_fill() {
    let c = ctx_with(ExecMode::Fused);
    let data: Vec<u32> = (0..800).collect();
    let rdd = c.parallelize_with_partitions(data, 8); // 100 rows per partition
    let out = rdd.take(5);
    assert_eq!(out, vec![0, 1, 2, 3, 4]);
    let snap = c.metrics().snapshot();
    assert_eq!(snap.tasks, 1, "take(5) should run exactly one task");
    // Only partition 0's rows ever entered a pipeline.
    assert!(
        snap.profile.records_read <= 100,
        "later partitions were computed: {} records read",
        snap.profile.records_read
    );
}

/// When early partitions under-fill, `take` keeps ramping through later
/// ones and still returns the correct prefix.
#[test]
fn take_ramps_through_underfilled_partitions() {
    let c = ctx_with(ExecMode::Fused);
    // Partitions 0..6 filter to nothing; only the tail survives.
    let data: Vec<u32> = (0..400).collect();
    let rdd = c.parallelize_with_partitions(data, 8).filter(|x| *x >= 390);
    assert_eq!(rdd.take(4), vec![390, 391, 392, 393]);
}

#[test]
fn take_zero_runs_no_job() {
    let c = ctx_with(ExecMode::Fused);
    let rdd = c.parallelize_with_partitions((0..100u32).collect(), 4);
    assert_eq!(rdd.take(0), Vec::<u32>::new());
    assert_eq!(c.metrics().snapshot().jobs, 0);
}

/// Seed helper so each test's stream is distinct but stable.
fn seed(n: u64) -> u64 {
    0x9e37_79b9_7f4a_7c15u64.wrapping_mul(n).wrapping_add(n)
}
