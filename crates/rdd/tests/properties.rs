//! Randomized-but-deterministic tests over the RDD engine: operator semantics
//! must match their `Vec` equivalents regardless of data, partitioning,
//! caching, or injected faults — and virtual time must always move forward.

use std::collections::HashMap;
use yafim_cluster::{ClusterSpec, CostModel, SimCluster};
use yafim_rdd::{Context, FaultInjection};

fn ctx() -> Context {
    Context::new(SimCluster::with_threads(
        ClusterSpec::new(3, 2, 1 << 30),
        CostModel::hadoop_era(),
        2,
    ))
}

/// Tiny deterministic generator for test inputs (splitmix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn data(&mut self, max_len: u64) -> Vec<u32> {
        let n = self.range(0, max_len) as usize;
        (0..n).map(|_| self.next() as u32).collect()
    }
}

const CASES: usize = 24;

#[test]
fn collect_is_identity() {
    let mut rng = Rng(10);
    for _ in 0..CASES {
        let data = rng.data(200);
        let parts = rng.range(1, 16) as usize;
        let c = ctx();
        let rdd = c.parallelize_with_partitions(data.clone(), parts);
        assert_eq!(rdd.collect(), data);
    }
}

#[test]
fn map_matches_vec_map() {
    let mut rng = Rng(11);
    for _ in 0..CASES {
        let data = rng.data(200);
        let parts = rng.range(1, 16) as usize;
        let c = ctx();
        let out = c
            .parallelize_with_partitions(data.clone(), parts)
            .map(|x| x.wrapping_mul(3).wrapping_add(1))
            .collect();
        let expected: Vec<u32> = data
            .iter()
            .map(|x| x.wrapping_mul(3).wrapping_add(1))
            .collect();
        assert_eq!(out, expected);
    }
}

#[test]
fn filter_matches_vec_filter() {
    let mut rng = Rng(12);
    for _ in 0..CASES {
        let data: Vec<u32> = rng.data(200).into_iter().map(|x| x % 100).collect();
        let parts = rng.range(1, 16) as usize;
        let c = ctx();
        let out = c
            .parallelize_with_partitions(data.clone(), parts)
            .filter(|x| x % 3 == 0)
            .collect();
        let expected: Vec<u32> = data.into_iter().filter(|x| x % 3 == 0).collect();
        assert_eq!(out, expected);
    }
}

#[test]
fn flat_map_matches_vec() {
    let mut rng = Rng(13);
    for _ in 0..CASES {
        let data: Vec<u32> = rng.data(100).into_iter().map(|x| x % 8).collect();
        let parts = rng.range(1, 8) as usize;
        let c = ctx();
        let out = c
            .parallelize_with_partitions(data.clone(), parts)
            .flat_map(|x| (0..x).collect::<Vec<u32>>())
            .collect();
        let expected: Vec<u32> = data.into_iter().flat_map(|x| 0..x).collect();
        assert_eq!(out, expected);
    }
}

#[test]
fn count_equals_len() {
    let mut rng = Rng(14);
    for _ in 0..CASES {
        let data = rng.data(300);
        let parts = rng.range(1, 20) as usize;
        let c = ctx();
        assert_eq!(
            c.parallelize_with_partitions(data.clone(), parts).count(),
            data.len() as u64
        );
    }
}

#[test]
fn reduce_by_key_matches_hashmap() {
    let mut rng = Rng(15);
    for _ in 0..CASES {
        let n = rng.range(0, 200) as usize;
        let pairs: Vec<(u32, u64)> = (0..n)
            .map(|_| (rng.range(0, 10) as u32, rng.range(1, 100)))
            .collect();
        let parts = rng.range(1, 12) as usize;
        let reduce_parts = rng.range(1, 8) as usize;
        let c = ctx();
        let out = c
            .parallelize_with_partitions(pairs.clone(), parts)
            .reduce_by_key_with_partitions(|a, b| a + b, reduce_parts)
            .collect();
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for (k, v) in pairs {
            *expected.entry(k).or_insert(0) += v;
        }
        assert_eq!(out.len(), expected.len());
        for (k, v) in out {
            assert_eq!(expected.get(&k), Some(&v));
        }
    }
}

#[test]
fn partitioning_never_changes_reduce_results() {
    let mut rng = Rng(16);
    for _ in 0..CASES {
        let n = rng.range(1, 100) as usize;
        let pairs: Vec<(u32, u64)> = (0..n)
            .map(|_| (rng.range(0, 6) as u32, rng.range(1, 10)))
            .collect();
        let parts_a = rng.range(1, 10) as usize;
        let parts_b = rng.range(1, 10) as usize;
        let run = |parts: usize| {
            let c = ctx();
            let mut out = c
                .parallelize_with_partitions(pairs.clone(), parts)
                .reduce_by_key(|a, b| a + b)
                .collect();
            out.sort();
            out
        };
        assert_eq!(run(parts_a), run(parts_b));
    }
}

#[test]
fn caching_is_transparent() {
    let mut rng = Rng(17);
    for _ in 0..CASES {
        let mut data = rng.data(150);
        if data.is_empty() {
            data.push(rng.next() as u32);
        }
        let parts = rng.range(1, 10) as usize;
        let c = ctx();
        let plain = c
            .parallelize_with_partitions(data.clone(), parts)
            .map(|x| x ^ 0xdead_beef)
            .collect();
        let cached_rdd = c
            .parallelize_with_partitions(data, parts)
            .map(|x| x ^ 0xdead_beef)
            .cache();
        let first = cached_rdd.collect();
        let second = cached_rdd.collect();
        assert_eq!(&first, &plain);
        assert_eq!(&second, &plain);
    }
}

#[test]
fn fault_injection_is_transparent() {
    let mut rng = Rng(18);
    for _ in 0..CASES {
        let n = rng.range(1, 150) as usize;
        let data: Vec<u32> = (0..n).map(|_| rng.range(0, 50) as u32).collect();
        let parts = rng.range(2, 10) as usize;
        let victim = rng.range(0, 10) as usize;
        let c = ctx();
        let rdd = c
            .parallelize_with_partitions(data, parts)
            .map(|x| (x % 5, 1u64))
            .cache();
        let reduced = rdd.reduce_by_key(|a, b| a + b);
        let healthy = reduced.collect();

        c.drop_cached_partition(rdd.id(), victim % parts);
        c.drop_shuffle(reduced.id());
        let recovered = reduced.collect();
        assert_eq!(healthy, recovered);
    }
}

#[test]
fn actions_always_advance_the_clock() {
    let mut rng = Rng(19);
    for _ in 0..CASES {
        let data = rng.data(50);
        let c = ctx();
        let before = c.metrics().now();
        c.parallelize(data).count();
        assert!(c.metrics().now() > before);
    }
}

#[test]
fn union_is_concatenation() {
    let mut rng = Rng(20);
    for _ in 0..CASES {
        let a = rng.data(80);
        let b = rng.data(80);
        let pa = rng.range(1, 6) as usize;
        let pb = rng.range(1, 6) as usize;
        let c = ctx();
        let ra = c.parallelize_with_partitions(a.clone(), pa);
        let rb = c.parallelize_with_partitions(b.clone(), pb);
        let mut expected = a;
        expected.extend(b);
        assert_eq!(ra.union(&rb).collect(), expected);
    }
}
