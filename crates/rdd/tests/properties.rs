//! Property-based tests over the RDD engine: operator semantics must match
//! their `Vec` equivalents regardless of data, partitioning, caching, or
//! injected faults — and virtual time must always move forward.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;
use yafim_cluster::{ClusterSpec, CostModel, SimCluster};
use yafim_rdd::{Context, FaultInjection};

fn ctx() -> Context {
    Context::new(SimCluster::with_threads(
        ClusterSpec::new(3, 2, 1 << 30),
        CostModel::hadoop_era(),
        2,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn collect_is_identity(data in vec(any::<u32>(), 0..200), parts in 1usize..16) {
        let c = ctx();
        let rdd = c.parallelize_with_partitions(data.clone(), parts);
        prop_assert_eq!(rdd.collect(), data);
    }

    #[test]
    fn map_matches_vec_map(data in vec(any::<u32>(), 0..200), parts in 1usize..16) {
        let c = ctx();
        let out = c
            .parallelize_with_partitions(data.clone(), parts)
            .map(|x| x.wrapping_mul(3).wrapping_add(1))
            .collect();
        let expected: Vec<u32> =
            data.iter().map(|x| x.wrapping_mul(3).wrapping_add(1)).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn filter_matches_vec_filter(data in vec(0u32..100, 0..200), parts in 1usize..16) {
        let c = ctx();
        let out = c
            .parallelize_with_partitions(data.clone(), parts)
            .filter(|x| x % 3 == 0)
            .collect();
        let expected: Vec<u32> = data.into_iter().filter(|x| x % 3 == 0).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn flat_map_matches_vec(data in vec(0u32..8, 0..100), parts in 1usize..8) {
        let c = ctx();
        let out = c
            .parallelize_with_partitions(data.clone(), parts)
            .flat_map(|x| (0..x).collect::<Vec<u32>>())
            .collect();
        let expected: Vec<u32> = data.into_iter().flat_map(|x| 0..x).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn count_equals_len(data in vec(any::<u64>(), 0..300), parts in 1usize..20) {
        let c = ctx();
        prop_assert_eq!(
            c.parallelize_with_partitions(data.clone(), parts).count(),
            data.len() as u64
        );
    }

    #[test]
    fn reduce_by_key_matches_hashmap(
        pairs in vec((0u32..10, 1u64..100), 0..200),
        parts in 1usize..12,
        reduce_parts in 1usize..8,
    ) {
        let c = ctx();
        let out = c
            .parallelize_with_partitions(pairs.clone(), parts)
            .reduce_by_key_with_partitions(|a, b| a + b, reduce_parts)
            .collect();
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for (k, v) in pairs {
            *expected.entry(k).or_insert(0) += v;
        }
        prop_assert_eq!(out.len(), expected.len());
        for (k, v) in out {
            prop_assert_eq!(expected.get(&k), Some(&v));
        }
    }

    #[test]
    fn partitioning_never_changes_reduce_results(
        pairs in vec((0u32..6, 1u64..10), 1..100),
        parts_a in 1usize..10,
        parts_b in 1usize..10,
    ) {
        let run = |parts: usize| {
            let c = ctx();
            let mut out = c
                .parallelize_with_partitions(pairs.clone(), parts)
                .reduce_by_key(|a, b| a + b)
                .collect();
            out.sort();
            out
        };
        prop_assert_eq!(run(parts_a), run(parts_b));
    }

    #[test]
    fn caching_is_transparent(data in vec(any::<u32>(), 1..150), parts in 1usize..10) {
        let c = ctx();
        let plain = c
            .parallelize_with_partitions(data.clone(), parts)
            .map(|x| x ^ 0xdead_beef)
            .collect();
        let cached_rdd = c
            .parallelize_with_partitions(data, parts)
            .map(|x| x ^ 0xdead_beef)
            .cache();
        let first = cached_rdd.collect();
        let second = cached_rdd.collect();
        prop_assert_eq!(&first, &plain);
        prop_assert_eq!(&second, &plain);
    }

    #[test]
    fn fault_injection_is_transparent(
        data in vec(0u32..50, 1..150),
        parts in 2usize..10,
        victim in 0usize..10,
    ) {
        let c = ctx();
        let rdd = c
            .parallelize_with_partitions(data, parts)
            .map(|x| (x % 5, 1u64))
            .cache();
        let reduced = rdd.reduce_by_key(|a, b| a + b);
        let healthy = reduced.collect();

        c.drop_cached_partition(rdd.id(), victim % parts);
        c.drop_shuffle(reduced.id());
        let recovered = reduced.collect();
        prop_assert_eq!(healthy, recovered);
    }

    #[test]
    fn actions_always_advance_the_clock(data in vec(any::<u32>(), 0..50)) {
        let c = ctx();
        let before = c.metrics().now();
        c.parallelize(data).count();
        prop_assert!(c.metrics().now() > before);
    }

    #[test]
    fn union_is_concatenation(
        a in vec(any::<u32>(), 0..80),
        b in vec(any::<u32>(), 0..80),
        pa in 1usize..6,
        pb in 1usize..6,
    ) {
        let c = ctx();
        let ra = c.parallelize_with_partitions(a.clone(), pa);
        let rb = c.parallelize_with_partitions(b.clone(), pb);
        let mut expected = a;
        expected.extend(b);
        prop_assert_eq!(ra.union(&rb).collect(), expected);
    }
}
