//! # yafim-mapreduce — a Hadoop-1.x-style MapReduce engine
//!
//! The paper's baseline, MR-Apriori (PApriori, Li et al. 2012), runs one
//! Hadoop job per Apriori pass. Its cost structure — re-reading the dataset
//! from HDFS on every pass, spilling and sorting map output to disk,
//! launching a JVM per task, committing results back to HDFS with 3×
//! replication — is exactly what YAFIM's evaluation measures against. This
//! crate reproduces that engine over the [`yafim_cluster`] substrate.
//!
//! One [`MapReduceJob`] is: text input splits → `mapper` per line →
//! optional `combiner` → sort-based shuffle into `reduce_tasks` buckets →
//! keys presented to `reducer` in sorted order → optional text output
//! committed to simulated HDFS.
//!
//! As everywhere in this repository, the data processing is real and the
//! time is virtual: map/reduce tasks run on the host thread pool while their
//! work counters are converted to durations and list-scheduled onto the
//! virtual cluster, with Hadoop's per-job, per-task and per-wave overheads
//! added from the cost model.

mod emitter;
mod job;
mod runner;

pub use emitter::Emitter;
pub use job::{MapPhase, MapReduceJob, MrKey, MrValue, OutputSpec};
pub use runner::{JobStats, MrError, MrJobResult, MrRunner};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use yafim_cluster::{ClusterSpec, CostModel, EventKind, SimCluster};

    fn cluster() -> SimCluster {
        SimCluster::with_threads(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era(), 4)
    }

    fn word_count_job(input: &str) -> MapReduceJob<String, u64, String, u64> {
        MapReduceJob::new(
            "wordcount",
            input,
            |_off, line: &str, em: &mut Emitter<String, u64>, _w| {
                for word in line.split_whitespace() {
                    em.emit(word.to_string(), 1);
                }
            },
            |key: &String, values: Vec<u64>, em: &mut Emitter<String, u64>, _w| {
                em.emit(key.clone(), values.into_iter().sum());
            },
        )
    }

    #[test]
    fn word_count_end_to_end() {
        let c = cluster();
        c.hdfs()
            .put(
                "in.txt",
                vec!["a b a".to_string(), "c a".to_string(), "b".to_string()],
            )
            .unwrap();
        let runner = MrRunner::new(c.clone());
        let result = runner
            .run(word_count_job("in.txt").with_reduce_tasks(2))
            .unwrap();
        let mut pairs = result.pairs.clone();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
    }

    #[test]
    fn combiner_gives_same_result() {
        let c = cluster();
        let lines: Vec<String> = (0..200)
            .map(|i| format!("w{} w{} w0", i % 5, i % 3))
            .collect();
        c.hdfs().put("in.txt", lines).unwrap();
        let runner = MrRunner::new(c.clone());

        let plain = runner.run(word_count_job("in.txt")).unwrap();
        let combined = runner
            .run(
                word_count_job("in.txt")
                    .with_combiner(|_k: &String, vs: Vec<u64>| vs.into_iter().sum()),
            )
            .unwrap();
        let mut a = plain.pairs.clone();
        let mut b = combined.pairs.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(
            combined.stats.shuffle_records < plain.stats.shuffle_records,
            "combiner must shrink the shuffle"
        );
    }

    #[test]
    fn reducer_sees_keys_in_sorted_order() {
        let c = cluster();
        c.hdfs()
            .put("in.txt", vec!["3 1 2 5 4".to_string()])
            .unwrap();
        let runner = MrRunner::new(c.clone());
        let job = MapReduceJob::new(
            "sorted",
            "in.txt",
            |_o, line: &str, em: &mut Emitter<u32, u64>, _w| {
                for t in line.split_whitespace() {
                    em.emit(t.parse().unwrap(), 1);
                }
            },
            |k: &u32, _vs, em: &mut Emitter<u32, u64>, _w| em.emit(*k, 0),
        )
        .with_reduce_tasks(1);
        let result = runner.run(job).unwrap();
        let keys: Vec<u32> = result.pairs.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn output_committed_to_hdfs() {
        let c = cluster();
        c.hdfs().put("in.txt", vec!["x y x".to_string()]).unwrap();
        let runner = MrRunner::new(c.clone());
        let job = word_count_job("in.txt").with_output(
            "out/part",
            Arc::new(|k: &String, v: &u64| format!("{k}\t{v}")),
        );
        let result = runner.run(job).unwrap();
        let f = result.output_file.expect("output file");
        assert!(c.hdfs().exists("out/part"));
        let mut lines = f.lines().as_ref().clone();
        lines.sort();
        assert_eq!(lines, vec!["x\t2".to_string(), "y\t1".to_string()]);
    }

    #[test]
    fn job_charges_fixed_overhead() {
        let c = cluster();
        c.hdfs().put("in.txt", vec!["a".to_string()]).unwrap();
        let runner = MrRunner::new(c.clone());
        runner.run(word_count_job("in.txt")).unwrap();
        let elapsed = c.metrics().now().as_secs();
        let cost = c.cost();
        assert!(
            elapsed >= cost.mr_job_overhead,
            "a tiny job still pays the job overhead: {elapsed}"
        );
        assert_eq!(c.metrics().events_of(EventKind::Job).len(), 1);
    }

    #[test]
    fn every_pass_rereads_input_from_disk() {
        let c = cluster();
        let lines: Vec<String> = (0..1000).map(|i| format!("line {i}")).collect();
        c.hdfs().put("in.txt", lines).unwrap();
        let runner = MrRunner::new(c.clone());
        runner.run(word_count_job("in.txt")).unwrap();
        let disk_once = c.metrics().snapshot().work.disk_read_bytes;
        runner.run(word_count_job("in.txt")).unwrap();
        let disk_twice = c.metrics().snapshot().work.disk_read_bytes;
        assert!(
            disk_twice >= 2 * disk_once - disk_once / 10,
            "second job re-reads from disk: {disk_once} vs {disk_twice}"
        );
    }

    #[test]
    fn missing_input_errors() {
        let runner = MrRunner::new(cluster());
        assert!(runner.run(word_count_job("missing.txt")).is_err());
    }

    #[test]
    fn per_split_mapper_sees_whole_split() {
        let c = cluster();
        let lines: Vec<String> = (0..50).map(|i| format!("{i}")).collect();
        c.hdfs().put("in.txt", lines).unwrap();
        let runner = MrRunner::new(c.clone());
        // Each split emits (split line count, 1); the total must cover the
        // file exactly, and offsets must be split starts.
        let job = MapReduceJob::new_per_split(
            "split-count",
            "in.txt",
            |off, lines: &[String], em: &mut Emitter<String, u64>, _w| {
                em.emit(format!("off{off}"), lines.len() as u64);
            },
            |k: &String, vs: Vec<u64>, em: &mut Emitter<String, u64>, _w| {
                em.emit(k.clone(), vs.into_iter().sum())
            },
        )
        .with_split_size(40); // several splits
        let result = runner.run(job).unwrap();
        assert!(result.pairs.len() > 1, "expected multiple splits");
        let total: u64 = result.pairs.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 50);
        assert!(result.pairs.iter().any(|(k, _)| k == "off0"));
    }

    #[test]
    fn empty_input_file() {
        let c = cluster();
        c.hdfs().put("empty.txt", Vec::new()).unwrap();
        let runner = MrRunner::new(c.clone());
        let result = runner.run(word_count_job("empty.txt")).unwrap();
        assert!(result.pairs.is_empty());
    }

    #[test]
    fn split_size_controls_map_tasks() {
        let c = cluster();
        let lines: Vec<String> = (0..100).map(|i| format!("line number {i}")).collect();
        c.hdfs().put("in.txt", lines).unwrap();
        let runner = MrRunner::new(c.clone());
        let small = runner
            .run(word_count_job("in.txt").with_split_size(100))
            .unwrap();
        let big = runner.run(word_count_job("in.txt")).unwrap();
        assert!(small.stats.map_tasks > big.stats.map_tasks);
    }

    #[test]
    fn side_data_costs_time() {
        let c1 = cluster();
        let c2 = cluster();
        for c in [&c1, &c2] {
            c.hdfs().put("in.txt", vec!["a".to_string()]).unwrap();
        }
        MrRunner::new(c1.clone())
            .run(word_count_job("in.txt"))
            .unwrap();
        MrRunner::new(c2.clone())
            .run(word_count_job("in.txt").with_side_data(50_000_000))
            .unwrap();
        assert!(c2.metrics().now() > c1.metrics().now());
    }
}
