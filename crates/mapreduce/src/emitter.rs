//! The output collector handed to mappers and reducers.

/// Collects `(key, value)` emissions from a mapper or reducer
/// (Hadoop's `OutputCollector` / `Context.write`).
pub struct Emitter<K, V> {
    out: Vec<(K, V)>,
}

impl<K, V> Emitter<K, V> {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Emitter { out: Vec::new() }
    }

    /// Emit one pair.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.out.push((key, value));
    }

    /// Number of pairs emitted so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Consume the collector, yielding the emissions in order.
    pub fn into_pairs(self) -> Vec<(K, V)> {
        self.out
    }
}

impl<K, V> Default for Emitter<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_in_order() {
        let mut e = Emitter::new();
        assert!(e.is_empty());
        e.emit("a", 1);
        e.emit("b", 2);
        assert_eq!(e.len(), 2);
        assert_eq!(e.into_pairs(), vec![("a", 1), ("b", 2)]);
    }
}
