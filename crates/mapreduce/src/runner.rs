//! The job runner: executes a [`MapReduceJob`] for real and charges
//! Hadoop-shaped virtual time.

use crate::emitter::Emitter;
use crate::job::{MapReduceJob, MrKey, MrValue};
use std::collections::BTreeMap;
use std::sync::Arc;
use yafim_cluster::{
    bucket_of, fx_hash64, memgov, slice_bytes, DetailedSchedule, DfsError, DfsFile, EventKind,
    FaultError, IntegrityCounters, IntegrityTier, MemoryRefusal, RecoveryCounters, SimCluster,
    SimDuration, StageExecution, TaskExecution, TaskMemory, TaskProfile, TaskSpec, WorkCounters,
    SPILL_GRANULE,
};

/// Why a MapReduce job failed: the input is missing, or the active fault
/// plan exhausted some task's retry budget.
#[derive(Clone, Debug)]
pub enum MrError {
    /// HDFS input/output error.
    Dfs(DfsError),
    /// A task wave aborted under the active fault plan.
    Fault {
        /// The wave that aborted (`"<job>: map"` or `"<job>: reduce"`).
        stage: String,
        /// The underlying scheduler failure.
        source: FaultError,
    },
    /// Every replica of some input split failed checksum verification:
    /// there is no clean copy to read, and returning anything would mean
    /// returning wrong results.
    Integrity {
        /// Human-readable description of the poisoned data.
        detail: String,
    },
    /// The memory governor's admission control refused the job before
    /// running it: its smallest viable per-task footprint cannot fit the
    /// execution budget even with full borrowing from storage.
    MemoryRefused {
        /// Required vs available bytes per task.
        refusal: MemoryRefusal,
    },
}

impl std::fmt::Display for MrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrError::Dfs(e) => write!(f, "{e}"),
            MrError::Fault { stage, source } => write!(f, "stage `{stage}` aborted: {source}"),
            MrError::Integrity { detail } => write!(f, "data integrity failure: {detail}"),
            MrError::MemoryRefused { refusal } => write!(f, "{refusal}"),
        }
    }
}

impl std::error::Error for MrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrError::Dfs(e) => Some(e),
            MrError::Fault { source, .. } => Some(source),
            MrError::Integrity { .. } | MrError::MemoryRefused { .. } => None,
        }
    }
}

impl From<DfsError> for MrError {
    fn from(e: DfsError) -> Self {
        MrError::Dfs(e)
    }
}

/// Aggregate facts about one executed job.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobStats {
    /// Number of map tasks (input splits).
    pub map_tasks: usize,
    /// Number of reduce tasks.
    pub reduce_tasks: usize,
    /// Records crossing the shuffle (after the combiner, if any).
    pub shuffle_records: u64,
    /// Estimated bytes crossing the shuffle.
    pub shuffle_bytes: u64,
    /// Input bytes read.
    pub input_bytes: u64,
    /// Output records produced by the reducers.
    pub output_records: u64,
}

/// Result of one job: the real output pairs (in reduce-task, then sorted-key
/// order), the committed HDFS file if requested, and stats.
pub struct MrJobResult<KO, VO> {
    /// All reducer emissions.
    pub pairs: Vec<(KO, VO)>,
    /// The committed output file, when the job specified one.
    pub output_file: Option<DfsFile>,
    /// Aggregate counters.
    pub stats: JobStats,
}

/// Executes jobs against one virtual cluster.
#[derive(Clone)]
pub struct MrRunner {
    cluster: SimCluster,
}

impl MrRunner {
    /// A runner over `cluster`.
    pub fn new(cluster: SimCluster) -> Self {
        MrRunner { cluster }
    }

    /// The cluster this runner executes on.
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// Schedule one task wave, through the fault-aware path when a fault
    /// plan is active on the cluster. Admission goes through the multi-job
    /// scheduler: the wave is placed within the job's executor grant and
    /// any FIFO queue wait is returned for the caller to charge to the
    /// wave's stage record.
    fn schedule_wave(
        &self,
        label: &str,
        specs: &[TaskSpec],
        retry_extra: Option<&[SimDuration]>,
    ) -> Result<(DetailedSchedule, RecoveryCounters, SimDuration, SimDuration), MrError> {
        let (queue, scheduler) = self.cluster.stage_admission();
        let faults = self.cluster.faults();
        if faults.active() {
            let fs = faults
                .schedule_stage(
                    &scheduler,
                    specs,
                    retry_extra,
                    self.cluster.metrics().now() + queue,
                )
                .map_err(|source| MrError::Fault {
                    stage: label.to_string(),
                    source,
                })?;
            let pad = fs.trailing_pad();
            Ok((fs.schedule, fs.recovery, pad, queue))
        } else {
            Ok((
                scheduler.schedule_detailed(specs),
                RecoveryCounters::default(),
                SimDuration::ZERO,
                queue,
            ))
        }
    }

    /// Post-stage scheduler bookkeeping for one recorded wave (queue-wait
    /// attribution, decision units, shared-blacklist hits). MapReduce waves
    /// never skew-split: Hadoop repartitions only between jobs.
    fn record_wave(&self, queue: SimDuration, detailed: &DetailedSchedule) {
        self.cluster.record_sched_stage(
            queue,
            detailed.decision_units,
            self.cluster.faults().drain_shared_hits(),
            0,
        );
    }

    /// Execute one job: map → shuffle/sort → reduce → commit.
    pub fn run<KM: MrKey, VM: MrValue, KO: MrValue, VO: MrValue>(
        &self,
        job: MapReduceJob<KM, VM, KO, VO>,
    ) -> Result<MrJobResult<KO, VO>, MrError> {
        let cluster = &self.cluster;
        let cost = cluster.cost().clone();
        let spec = cluster.spec().clone();
        let metrics = cluster.metrics().clone();
        let file = cluster.hdfs().get(&job.input)?;

        // ---- Admission control (memory governor, last ladder rung) ----
        //
        // A per-task slice below one spill granule cannot stream its
        // map-side combine buffer through disk, so the job could only end
        // in OOM kills: refuse it up front with a typed error.
        if let Some(budget) = cluster.memory_budget() {
            if let Err(refusal) = budget.admit(SPILL_GRANULE) {
                return Err(MrError::MemoryRefused { refusal });
            }
        }

        let job_span = metrics.begin_job(job.name.clone());
        metrics.advance(SimDuration::from_secs(cost.mr_job_overhead));

        // Distributed-cache localization: every node pulls the side data
        // from its `replication` HDFS sources, so the pull contends by a
        // factor of nodes/replication.
        if job.side_data_bytes > 0 {
            let contention = (spec.nodes as f64 / cost.hdfs_replication as f64).max(1.0);
            metrics.advance_with_event(
                cost.net_transfer(job.side_data_bytes) * contention,
                EventKind::Broadcast,
                format!("{}: distributed cache {}B", job.name, job.side_data_bytes),
            );
        }

        // ---- map phase ----
        let splits = match job.split_size {
            Some(s) => file.splits((file.bytes().div_ceil(s)).max(1) as usize),
            None => file.splits(file.blocks().len()),
        };
        let map_tasks = splits.len();
        let reduce_tasks = if job.reduce_tasks == 0 {
            spec.total_cores() as usize
        } else {
            job.reduce_tasks
        };

        // ---- data integrity (silent-corruption plans) ----
        //
        // The job name keys this job's corruption rolls: HDFS-tier rolls
        // cover the input splits (shared across jobs reading the same
        // file — a repaired block stays repaired), shuffle-tier rolls
        // cover this job's reduce inputs. Before any work runs, refuse
        // the job if some split has *no* clean replica left — Hadoop has
        // no lineage to recompute an input from.
        let faults = cluster.faults().clone();
        let integrity = faults.integrity_active();
        let integrity_id = fx_hash64(&job.input);
        let split_replicas: Vec<u32> = splits
            .iter()
            .map(|s| {
                file.blocks()
                    .iter()
                    .find(|b| b.lines.start <= s.lines.start && s.lines.start < b.lines.end)
                    .map(|b| b.replicas.len())
                    .unwrap_or(1)
                    .max(1) as u32
            })
            .collect();
        if integrity {
            for (i, &copies) in split_replicas.iter().enumerate() {
                if (0..copies).all(|c| faults.corrupted(IntegrityTier::Hdfs, integrity_id, i, c)) {
                    return Err(MrError::Integrity {
                        detail: format!(
                            "input `{}` split {i}: all {copies} replicas failed checksum \
                             verification — no clean copy reachable",
                            job.input
                        ),
                    });
                }
            }
        }

        let mapper = match &job.mapper {
            crate::job::MapPhase::PerLine(f) => crate::job::MapPhase::PerLine(Arc::clone(f)),
            crate::job::MapPhase::PerSplit(f) => crate::job::MapPhase::PerSplit(Arc::clone(f)),
        };
        let combiner = job.combiner.clone();
        let side_bytes = job.side_data_bytes;
        let spill_factor = cost.mr_spill_factor;
        let file_for_tasks = file.clone();
        let splits_for_tasks = splits.clone();
        let shuffle_integrity_id = fx_hash64(&job.name);
        let faults_map = faults.clone();
        let metrics_map = metrics.clone();
        let cost_map = cost.clone();
        let replicas_map = split_replicas.clone();
        // Memory governor: every map task reserves its combine buffer
        // against the same per-task slice; rolls are keyed by (job, split).
        let mem_budget = cluster.memory_budget();
        let mem_stage_key = fx_hash64(&(job.name.as_str(), metrics.now().as_secs().to_bits()));

        type MapOut<KM, VM> = (Vec<Vec<(KM, VM)>>, TaskProfile);
        let map_outs: Vec<MapOut<KM, VM>> =
            cluster
                .pool()
                .map((0..map_tasks).collect::<Vec<usize>>(), move |_, i| {
                    let split = &splits_for_tasks[i];
                    let mut w = WorkCounters::new();
                    w.add_disk_read(split.bytes); // locality-scheduled: local read
                    if side_bytes > 0 {
                        w.add_disk_read(side_bytes); // localized cache file
                    }
                    // Verify the split's checksum; a rotten replica is
                    // re-fetched from the next one (the preflight above
                    // guarantees a clean copy exists).
                    if integrity {
                        for copy in 0..replicas_map[i] {
                            w.add_stall_micros(
                                (cost_map.checksum(split.bytes).as_secs() * 1e6) as u64,
                            );
                            if faults_map.take_corruption(
                                IntegrityTier::Hdfs,
                                integrity_id,
                                i,
                                copy,
                            ) {
                                w.add_net(split.bytes);
                                metrics_map.note_recovery(&RecoveryCounters {
                                    integrity: IntegrityCounters {
                                        corruptions_injected: 1,
                                        corruptions_detected: 1,
                                        corruptions_repaired: 1,
                                        repaired_via_replica: 1,
                                        ..IntegrityCounters::default()
                                    },
                                    ..RecoveryCounters::default()
                                });
                            } else {
                                break;
                            }
                        }
                    }

                    let mut em = Emitter::new();
                    let lines = &file_for_tasks.lines()[split.lines.clone()];
                    match &mapper {
                        crate::job::MapPhase::PerLine(f) => {
                            for (j, line) in lines.iter().enumerate() {
                                w.add_records_in(1);
                                f((split.lines.start + j) as u64, line, &mut em, &mut w);
                            }
                        }
                        crate::job::MapPhase::PerSplit(f) => {
                            w.add_records_in(lines.len() as u64);
                            f(split.lines.start as u64, lines, &mut em, &mut w);
                        }
                    }
                    let mut pairs = em.into_pairs();
                    w.add_records_out(pairs.len() as u64);

                    // Optional combine: group map-local values per key.
                    if let Some(comb) = &combiner {
                        let mut groups: BTreeMap<KM, Vec<VM>> = BTreeMap::new();
                        for (k, v) in pairs {
                            groups.entry(k).or_default().push(v);
                        }
                        w.add_cpu(groups.len() as u64);
                        pairs = groups
                            .into_iter()
                            .map(|(k, vs)| {
                                let v = comb(&k, vs);
                                (k, v)
                            })
                            .collect();
                    } else {
                        // Hadoop sorts map output by key either way.
                        pairs.sort_by(|a, b| a.0.cmp(&b.0));
                    }
                    let n = pairs.len() as u64;
                    w.add_cpu(n * (64 - n.leading_zeros() as u64)); // sort comparisons

                    // Partition into reduce buckets.
                    let mut buckets: Vec<Vec<(KM, VM)>> =
                        (0..reduce_tasks).map(|_| Vec::new()).collect();
                    for (k, v) in pairs {
                        buckets[bucket_of(&k, reduce_tasks)].push((k, v));
                    }
                    let bytes: u64 = buckets.iter().map(|b| slice_bytes(b)).sum();
                    w.add_ser(bytes);
                    if integrity {
                        // Checksum the map output at write time.
                        w.add_stall_micros((cost_map.checksum(bytes).as_secs() * 1e6) as u64);
                    }
                    // The combine buffer is execution memory; a denial
                    // (budget overflow or injected OOM) spills it through
                    // local disk — the buffer is degradable, so the
                    // governor never kills a map task.
                    let tm = TaskMemory::new(mem_budget, mem_stage_key, i);
                    let (_, fx) = tm.try_reserve(bytes, memgov::site::MR_COMBINE, true);
                    w.add_stall_micros(fx.stall_micros);
                    if fx.spill_disk_bytes > 0 {
                        w.add_disk_write(fx.spill_disk_bytes);
                        w.add_disk_read(fx.spill_disk_bytes);
                    }
                    // Spill traffic: write the sorted runs, read them back for
                    // the merge.
                    let spill = (bytes as f64 * spill_factor / 2.0) as u64;
                    w.add_disk_write(spill);
                    w.add_disk_read(spill);

                    let profile = TaskProfile {
                        work: w,
                        shuffle_write_bytes: bytes,
                        broadcast_read_bytes: side_bytes,
                        mem: fx.mem,
                        ..TaskProfile::new()
                    };
                    (buckets, profile)
                });

        // Charge the map wave. A retried map attempt cannot read its local
        // HDFS block again (the original attempt's machine may be the one
        // that failed), so retries pay a remote read from a surviving
        // replica on top of the base task cost.
        let task_specs: Vec<TaskSpec> = map_outs
            .iter()
            .zip(&splits)
            .map(|((_, p), split)| {
                TaskSpec::local(
                    SimDuration::from_secs(cost.mr_task_overhead) + p.work.data_time(&cost),
                    split.preferred_node,
                )
            })
            .collect();
        let reread: Vec<SimDuration> = splits.iter().map(|s| cost.net_transfer(s.bytes)).collect();
        let map_label = format!("{}: map", job.name);
        let (detailed, mut recovery, pad, queue) =
            self.schedule_wave(&map_label, &task_specs, Some(&reread))?;
        // Roll the governor's per-task outcomes up into the wave's recovery
        // block (peak merges with max, the rest sum).
        for (_, p) in &map_outs {
            recovery.mem.merge(&p.mem);
        }
        metrics.record_stage_with_recovery(
            StageExecution {
                label: map_label,
                kind: EventKind::Stage,
                shuffle_id: None,
                queue,
                overhead: SimDuration::ZERO,
                // Each map wave ends on a heartbeat boundary.
                trailing: SimDuration::from_secs(cost.mr_wave_latency)
                    * detailed.outcome.waves as f64
                    + pad,
                tasks: detailed
                    .placements
                    .iter()
                    .zip(&map_outs)
                    .enumerate()
                    .map(|(i, (pl, (_, p)))| TaskExecution {
                        partition: i,
                        node: pl.node,
                        core: pl.core,
                        start: pl.start,
                        duration: pl.duration,
                        profile: *p,
                    })
                    .collect(),
            },
            recovery,
        );
        self.record_wave(queue, &detailed);

        // A node lost between map and reduce takes its completed map outputs
        // with it (they live on local disk, not in HDFS): re-execute just
        // those map tasks, reading the input from surviving block replicas.
        let faults = cluster.faults();
        if faults.active() {
            let dead = faults.take_new_losses(metrics.now());
            if !dead.is_empty() {
                let lost: Vec<usize> = detailed
                    .placements
                    .iter()
                    .enumerate()
                    .filter(|(_, pl)| dead.contains(&pl.node))
                    .map(|(i, _)| i)
                    .collect();
                let mut rec = RecoveryCounters {
                    nodes_lost: dead.len() as u64,
                    fetch_failures: lost.len() as u64,
                    recomputed_partitions: lost.len() as u64,
                    ..RecoveryCounters::default()
                };
                if lost.is_empty() {
                    metrics.note_recovery(&rec);
                } else {
                    let resubmit_label = format!("{}: map (resubmit)", job.name);
                    let resubmit_specs: Vec<TaskSpec> = lost
                        .iter()
                        .map(|&i| TaskSpec::anywhere(task_specs[i].duration + reread[i]))
                        .collect();
                    let (re_detailed, re_recovery, re_pad, re_queue) =
                        self.schedule_wave(&resubmit_label, &resubmit_specs, None)?;
                    rec.merge(&re_recovery);
                    metrics.record_stage_with_recovery(
                        StageExecution {
                            label: resubmit_label,
                            kind: EventKind::Stage,
                            shuffle_id: None,
                            queue: re_queue,
                            overhead: SimDuration::ZERO,
                            trailing: SimDuration::from_secs(cost.mr_wave_latency)
                                * re_detailed.outcome.waves as f64
                                + re_pad,
                            tasks: re_detailed
                                .placements
                                .iter()
                                .zip(&lost)
                                .map(|(pl, &orig)| TaskExecution {
                                    partition: orig,
                                    node: pl.node,
                                    core: pl.core,
                                    start: pl.start,
                                    duration: pl.duration,
                                    profile: map_outs[orig].1,
                                })
                                .collect(),
                        },
                        rec,
                    );
                    self.record_wave(re_queue, &re_detailed);
                }
            }
        }

        // ---- shuffle: concatenate buckets in map-task order ----
        let mut buckets: Vec<Vec<(KM, VM)>> = (0..reduce_tasks).map(|_| Vec::new()).collect();
        let mut shuffle_records = 0u64;
        for (map_out, _) in map_outs {
            for (i, b) in map_out.into_iter().enumerate() {
                shuffle_records += b.len() as u64;
                buckets[i].extend(b);
            }
        }
        let bucket_bytes: Vec<u64> = buckets.iter().map(|b| slice_bytes(b)).collect();
        let shuffle_bytes: u64 = bucket_bytes.iter().sum();

        // ---- reduce phase ----
        let reducer = Arc::clone(&job.reducer);
        let format = job.output.as_ref().map(|o| Arc::clone(&o.format));
        let nodes = spec.nodes as u64;
        let replication = cost.hdfs_replication as u64;
        // Repairing a rotten reduce input means re-running the map task
        // that produced it (map outputs live on local disk with no replica
        // and no lineage); charge the slowest map attempt plus the remote
        // input re-read, as the loss-resubmit path would.
        let map_repair_micros = (task_specs
            .iter()
            .zip(&reread)
            .map(|(t, rr)| (t.duration + *rr).as_secs())
            .fold(0.0f64, f64::max)
            * 1e6) as u64;
        let faults_red = faults.clone();
        let metrics_red = metrics.clone();
        let cost_red = cost.clone();
        let buckets = Arc::new(buckets);
        let bucket_bytes_arc = Arc::new(bucket_bytes);

        type ReduceOut<KO, VO> = (Vec<(KO, VO)>, Vec<String>, TaskProfile);
        let reduce_outs: Vec<ReduceOut<KO, VO>> =
            cluster
                .pool()
                .map((0..reduce_tasks).collect::<Vec<usize>>(), move |_, r| {
                    let mut w = WorkCounters::new();
                    let bytes = bucket_bytes_arc[r];
                    let local = bytes / nodes.max(1);
                    w.add_disk_read(local);
                    w.add_net(bytes - local);
                    w.add_ser(bytes);
                    // Verify the fetched reduce input; on mismatch, re-run
                    // the producing map task and fetch again.
                    if integrity {
                        w.add_stall_micros((cost_red.checksum(bytes).as_secs() * 1e6) as u64);
                        if faults_red.take_corruption(
                            IntegrityTier::Shuffle,
                            shuffle_integrity_id,
                            r,
                            0,
                        ) {
                            w.add_stall_micros(map_repair_micros);
                            w.add_net(bytes);
                            w.add_stall_micros((cost_red.checksum(bytes).as_secs() * 1e6) as u64);
                            metrics_red.note_recovery(&RecoveryCounters {
                                recomputed_partitions: 1,
                                integrity: IntegrityCounters {
                                    corruptions_injected: 1,
                                    corruptions_detected: 1,
                                    corruptions_repaired: 1,
                                    repaired_via_resubmit: 1,
                                    ..IntegrityCounters::default()
                                },
                                ..RecoveryCounters::default()
                            });
                        }
                    }

                    let bucket = &buckets[r];
                    w.add_records_in(bucket.len() as u64);
                    let n = bucket.len() as u64;
                    w.add_cpu(n * (64 - n.leading_zeros() as u64)); // merge sort

                    let mut groups: BTreeMap<KM, Vec<VM>> = BTreeMap::new();
                    for (k, v) in bucket.iter() {
                        groups.entry(k.clone()).or_default().push(v.clone());
                    }

                    let mut em = Emitter::new();
                    for (k, vs) in groups {
                        reducer(&k, vs, &mut em, &mut w);
                    }
                    let pairs = em.into_pairs();
                    w.add_records_out(pairs.len() as u64);

                    let mut lines = Vec::new();
                    if let Some(fmt) = &format {
                        lines.reserve(pairs.len());
                        let mut out_bytes = 0u64;
                        for (k, v) in &pairs {
                            let line = fmt(k, v);
                            out_bytes += line.len() as u64 + 1;
                            lines.push(line);
                        }
                        // HDFS commit: local write plus pipeline replication.
                        w.add_disk_write(out_bytes);
                        w.add_net(out_bytes * (replication.saturating_sub(1)));
                        if integrity {
                            // Checksum the committed blocks at write time.
                            w.add_stall_micros(
                                (cost_red.checksum(out_bytes).as_secs() * 1e6) as u64,
                            );
                        }
                    }

                    let profile = TaskProfile {
                        work: w,
                        shuffle_read_bytes: bytes,
                        ..TaskProfile::new()
                    };
                    (pairs, lines, profile)
                });

        let task_specs: Vec<TaskSpec> = reduce_outs
            .iter()
            .map(|(_, _, p)| {
                TaskSpec::anywhere(
                    SimDuration::from_secs(cost.mr_task_overhead) + p.work.data_time(&cost),
                )
            })
            .collect();
        let reduce_label = format!("{}: reduce", job.name);
        let (detailed, recovery, pad, queue) =
            self.schedule_wave(&reduce_label, &task_specs, None)?;
        metrics.record_stage_with_recovery(
            StageExecution {
                label: reduce_label,
                kind: EventKind::Stage,
                shuffle_id: None,
                queue,
                overhead: SimDuration::ZERO,
                trailing: SimDuration::from_secs(cost.mr_wave_latency)
                    * detailed.outcome.waves as f64
                    + pad,
                tasks: detailed
                    .placements
                    .iter()
                    .zip(&reduce_outs)
                    .enumerate()
                    .map(|(i, (pl, (_, _, p)))| TaskExecution {
                        partition: i,
                        node: pl.node,
                        core: pl.core,
                        start: pl.start,
                        duration: pl.duration,
                        profile: *p,
                    })
                    .collect(),
            },
            recovery,
        );
        self.record_wave(queue, &detailed);

        // ---- commit & gather ----
        let mut pairs = Vec::new();
        let mut all_lines = Vec::new();
        for (p, l, _) in reduce_outs {
            pairs.extend(p);
            all_lines.extend(l);
        }
        let output_records = pairs.len() as u64;

        let output_file = match &job.output {
            Some(spec_out) => {
                let f = cluster.hdfs().put_overwrite(&spec_out.path, all_lines);
                metrics.advance_with_event(
                    SimDuration::from_millis(100.0), // namenode commit round-trip
                    EventKind::HdfsWrite,
                    format!("{}: commit {}", job.name, spec_out.path),
                );
                Some(f)
            }
            None => None,
        };

        // The driver reads the (small) result pairs back.
        let result_bytes = slice_bytes(&pairs);
        metrics.advance(cost.serialize(result_bytes) + cost.net_transfer(result_bytes));

        metrics.end_job(job_span);

        Ok(MrJobResult {
            pairs,
            output_file,
            stats: JobStats {
                map_tasks,
                reduce_tasks,
                shuffle_records,
                shuffle_bytes,
                input_bytes: file.bytes(),
                output_records,
            },
        })
    }
}
