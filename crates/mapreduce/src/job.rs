//! Job description: the typed mapper/combiner/reducer closures plus the
//! Hadoop-style configuration knobs.

use crate::emitter::Emitter;
use std::sync::Arc;
use yafim_cluster::{ByteSize, WorkCounters};

/// Bound for intermediate/output keys: hashable (partitioning), ordered
/// (Hadoop's sort-based shuffle presents keys in sorted order), sizeable
/// (shuffle byte accounting).
pub trait MrKey: Clone + Send + Sync + std::hash::Hash + Eq + Ord + ByteSize + 'static {}
impl<T: Clone + Send + Sync + std::hash::Hash + Eq + Ord + ByteSize + 'static> MrKey for T {}

/// Bound for intermediate/output values.
pub trait MrValue: Clone + Send + Sync + ByteSize + 'static {}
impl<T: Clone + Send + Sync + ByteSize + 'static> MrValue for T {}

/// Mapper: `(byte offset, line, collector, work counters)`.
pub type MapFn<KM, VM> =
    Arc<dyn Fn(u64, &str, &mut Emitter<KM, VM>, &mut WorkCounters) + Send + Sync>;
/// Split-level mapper: `(first line offset, all split lines, collector, work
/// counters)` — for algorithms that need the whole split at once (SON's
/// local mining phase; the equivalent of doing the work in Hadoop's
/// `cleanup()` after buffering).
pub type SplitMapFn<KM, VM> =
    Arc<dyn Fn(u64, &[String], &mut Emitter<KM, VM>, &mut WorkCounters) + Send + Sync>;

/// The map phase: per-line (classic) or per-split.
pub enum MapPhase<KM, VM> {
    /// Called once per input line.
    PerLine(MapFn<KM, VM>),
    /// Called once per input split with all its lines.
    PerSplit(SplitMapFn<KM, VM>),
}
/// Combiner: collapse one key's map-local values.
pub type CombineFn<KM, VM> = Arc<dyn Fn(&KM, Vec<VM>) -> VM + Send + Sync>;
/// Reducer: `(key, all values, collector, work counters)`.
pub type ReduceFn<KM, VM, KO, VO> =
    Arc<dyn Fn(&KM, Vec<VM>, &mut Emitter<KO, VO>, &mut WorkCounters) + Send + Sync>;
/// Text output format for committed results.
pub type FormatFn<KO, VO> = Arc<dyn Fn(&KO, &VO) -> String + Send + Sync>;

/// Where and how a job commits its output to HDFS.
pub struct OutputSpec<KO, VO> {
    /// HDFS path of the (single, for simplicity) output part file.
    pub path: String,
    /// Formats one output pair as a line of text.
    pub format: FormatFn<KO, VO>,
}

/// A complete MapReduce job over text input.
///
/// Type parameters: `KM`/`VM` are the intermediate (map output) pair,
/// `KO`/`VO` the final (reduce output) pair.
pub struct MapReduceJob<KM, VM, KO, VO> {
    /// Human-readable job name (event log label).
    pub name: String,
    /// HDFS path of the text input.
    pub input: String,
    /// Number of reduce tasks.
    pub reduce_tasks: usize,
    /// Input split size override in bytes (`None` = one split per HDFS
    /// block, the Hadoop default).
    pub split_size: Option<u64>,
    /// Bytes of side data shipped to every node via the distributed cache
    /// before the job starts (MR-Apriori ships the candidate set this way).
    pub side_data_bytes: u64,
    pub(crate) mapper: MapPhase<KM, VM>,
    pub(crate) combiner: Option<CombineFn<KM, VM>>,
    pub(crate) reducer: ReduceFn<KM, VM, KO, VO>,
    pub(crate) output: Option<OutputSpec<KO, VO>>,
}

impl<KM: MrKey, VM: MrValue, KO: MrValue, VO: MrValue> MapReduceJob<KM, VM, KO, VO> {
    /// A job with the two mandatory phases. Defaults: one reduce task per
    /// virtual core is decided by the runner when left at 0; block-sized
    /// splits; no combiner; no committed output.
    pub fn new(
        name: impl Into<String>,
        input: impl Into<String>,
        mapper: impl Fn(u64, &str, &mut Emitter<KM, VM>, &mut WorkCounters) + Send + Sync + 'static,
        reducer: impl Fn(&KM, Vec<VM>, &mut Emitter<KO, VO>, &mut WorkCounters) + Send + Sync + 'static,
    ) -> Self {
        MapReduceJob {
            name: name.into(),
            input: input.into(),
            reduce_tasks: 0,
            split_size: None,
            side_data_bytes: 0,
            mapper: MapPhase::PerLine(Arc::new(mapper)),
            combiner: None,
            reducer: Arc::new(reducer),
            output: None,
        }
    }

    /// Like [`MapReduceJob::new`] but with a split-level mapper that sees a
    /// whole input split at once (see [`MapPhase::PerSplit`]).
    pub fn new_per_split(
        name: impl Into<String>,
        input: impl Into<String>,
        mapper: impl Fn(u64, &[String], &mut Emitter<KM, VM>, &mut WorkCounters) + Send + Sync + 'static,
        reducer: impl Fn(&KM, Vec<VM>, &mut Emitter<KO, VO>, &mut WorkCounters) + Send + Sync + 'static,
    ) -> Self {
        MapReduceJob {
            name: name.into(),
            input: input.into(),
            reduce_tasks: 0,
            split_size: None,
            side_data_bytes: 0,
            mapper: MapPhase::PerSplit(Arc::new(mapper)),
            combiner: None,
            reducer: Arc::new(reducer),
            output: None,
        }
    }

    /// Add a map-side combiner.
    pub fn with_combiner(
        mut self,
        combiner: impl Fn(&KM, Vec<VM>) -> VM + Send + Sync + 'static,
    ) -> Self {
        self.combiner = Some(Arc::new(combiner));
        self
    }

    /// Set the number of reduce tasks.
    pub fn with_reduce_tasks(mut self, n: usize) -> Self {
        self.reduce_tasks = n;
        self
    }

    /// Override the input split size in bytes.
    pub fn with_split_size(mut self, bytes: u64) -> Self {
        self.split_size = Some(bytes.max(1));
        self
    }

    /// Ship `bytes` of side data to every node (distributed cache).
    pub fn with_side_data(mut self, bytes: u64) -> Self {
        self.side_data_bytes = bytes;
        self
    }

    /// Commit output to HDFS at `path`, one formatted line per pair.
    pub fn with_output(mut self, path: impl Into<String>, format: FormatFn<KO, VO>) -> Self {
        self.output = Some(OutputSpec {
            path: path.into(),
            format,
        });
        self
    }
}
