//! Property-based tests over the MapReduce engine: job semantics must match
//! the in-memory equivalents for arbitrary inputs and configurations.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;
use yafim_cluster::{ClusterSpec, CostModel, SimCluster};
use yafim_mapreduce::{Emitter, MapReduceJob, MrRunner};

fn cluster() -> SimCluster {
    SimCluster::with_threads(ClusterSpec::new(3, 2, 1 << 30), CostModel::hadoop_era(), 2)
}

/// Lines of small integer tokens.
fn corpus() -> impl Strategy<Value = Vec<String>> {
    vec(vec(0u32..20, 0..8), 0..40).prop_map(|rows| {
        rows.into_iter()
            .map(|r| {
                r.into_iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    })
}

fn expected_counts(lines: &[String]) -> HashMap<u32, u64> {
    let mut m = HashMap::new();
    for l in lines {
        for t in l.split_whitespace() {
            *m.entry(t.parse::<u32>().expect("numeric token")).or_insert(0u64) += 1;
        }
    }
    m
}

fn count_job(input: &str) -> MapReduceJob<u32, u64, u32, u64> {
    MapReduceJob::new(
        "count",
        input,
        |_o, line: &str, em: &mut Emitter<u32, u64>, _w| {
            for t in line.split_whitespace() {
                em.emit(t.parse().expect("numeric token"), 1);
            }
        },
        |k: &u32, vs: Vec<u64>, em: &mut Emitter<u32, u64>, _w| {
            em.emit(*k, vs.into_iter().sum())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn counting_matches_hashmap(lines in corpus(), reduce_tasks in 1usize..8) {
        let c = cluster();
        c.hdfs().put_overwrite("in.txt", lines.clone());
        let result = MrRunner::new(c)
            .run(count_job("in.txt").with_reduce_tasks(reduce_tasks))
            .expect("input exists");
        let expected = expected_counts(&lines);
        prop_assert_eq!(result.pairs.len(), expected.len());
        for (k, v) in result.pairs {
            prop_assert_eq!(expected.get(&k), Some(&v));
        }
    }

    #[test]
    fn combiner_never_changes_results(lines in corpus(), split_size in 16u64..512) {
        let run = |with_combiner: bool| {
            let c = cluster();
            c.hdfs().put_overwrite("in.txt", lines.clone());
            let job = count_job("in.txt").with_split_size(split_size);
            let job = if with_combiner {
                job.with_combiner(|_k: &u32, vs: Vec<u64>| vs.into_iter().sum())
            } else {
                job
            };
            let mut pairs = MrRunner::new(c).run(job).expect("input exists").pairs;
            pairs.sort();
            pairs
        };
        prop_assert_eq!(run(false), run(true));
    }

    #[test]
    fn per_split_mapper_equals_per_line_mapper(lines in corpus(), split_size in 16u64..512) {
        let per_line = {
            let c = cluster();
            c.hdfs().put_overwrite("in.txt", lines.clone());
            let mut p = MrRunner::new(c)
                .run(count_job("in.txt").with_split_size(split_size))
                .expect("input exists")
                .pairs;
            p.sort();
            p
        };
        let per_split = {
            let c = cluster();
            c.hdfs().put_overwrite("in.txt", lines.clone());
            let job = MapReduceJob::new_per_split(
                "count",
                "in.txt",
                |_o, lines: &[String], em: &mut Emitter<u32, u64>, _w| {
                    for line in lines {
                        for t in line.split_whitespace() {
                            em.emit(t.parse().expect("numeric token"), 1);
                        }
                    }
                },
                |k: &u32, vs: Vec<u64>, em: &mut Emitter<u32, u64>, _w| {
                    em.emit(*k, vs.into_iter().sum())
                },
            )
            .with_split_size(split_size);
            let mut p = MrRunner::new(c).run(job).expect("input exists").pairs;
            p.sort();
            p
        };
        prop_assert_eq!(per_line, per_split);
    }

    #[test]
    fn virtual_time_deterministic(lines in corpus()) {
        let run = || {
            let c = cluster();
            c.hdfs().put_overwrite("in.txt", lines.clone());
            MrRunner::new(c.clone()).run(count_job("in.txt")).expect("input exists");
            c.metrics().now().as_secs()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn reduce_task_count_only_affects_time(lines in corpus()) {
        let run = |reduce_tasks: usize| {
            let c = cluster();
            c.hdfs().put_overwrite("in.txt", lines.clone());
            let mut p = MrRunner::new(c)
                .run(count_job("in.txt").with_reduce_tasks(reduce_tasks))
                .expect("input exists")
                .pairs;
            p.sort();
            p
        };
        prop_assert_eq!(run(1), run(7));
    }
}
