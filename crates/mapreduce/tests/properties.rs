//! Randomized-but-deterministic tests over the MapReduce engine: job
//! semantics must match the in-memory equivalents for arbitrary inputs and
//! configurations.

use std::collections::HashMap;
use yafim_cluster::{ClusterSpec, CostModel, SimCluster};
use yafim_mapreduce::{Emitter, MapReduceJob, MrRunner};

fn cluster() -> SimCluster {
    SimCluster::with_threads(ClusterSpec::new(3, 2, 1 << 30), CostModel::hadoop_era(), 2)
}

/// Tiny deterministic generator for test inputs (splitmix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// Lines of small integer tokens.
    fn corpus(&mut self) -> Vec<String> {
        let rows = self.range(0, 40) as usize;
        (0..rows)
            .map(|_| {
                let len = self.range(0, 8) as usize;
                (0..len)
                    .map(|_| self.range(0, 20).to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    }
}

fn expected_counts(lines: &[String]) -> HashMap<u32, u64> {
    let mut m = HashMap::new();
    for l in lines {
        for t in l.split_whitespace() {
            *m.entry(t.parse::<u32>().expect("numeric token"))
                .or_insert(0u64) += 1;
        }
    }
    m
}

fn count_job(input: &str) -> MapReduceJob<u32, u64, u32, u64> {
    MapReduceJob::new(
        "count",
        input,
        |_o, line: &str, em: &mut Emitter<u32, u64>, _w| {
            for t in line.split_whitespace() {
                em.emit(t.parse().expect("numeric token"), 1);
            }
        },
        |k: &u32, vs: Vec<u64>, em: &mut Emitter<u32, u64>, _w| em.emit(*k, vs.into_iter().sum()),
    )
}

const CASES: usize = 16;

#[test]
fn counting_matches_hashmap() {
    let mut rng = Rng(30);
    for _ in 0..CASES {
        let lines = rng.corpus();
        let reduce_tasks = rng.range(1, 8) as usize;
        let c = cluster();
        c.hdfs().put_overwrite("in.txt", lines.clone());
        let result = MrRunner::new(c)
            .run(count_job("in.txt").with_reduce_tasks(reduce_tasks))
            .expect("input exists");
        let expected = expected_counts(&lines);
        assert_eq!(result.pairs.len(), expected.len());
        for (k, v) in result.pairs {
            assert_eq!(expected.get(&k), Some(&v));
        }
    }
}

#[test]
fn combiner_never_changes_results() {
    let mut rng = Rng(31);
    for _ in 0..CASES {
        let lines = rng.corpus();
        let split_size = rng.range(16, 512);
        let run = |with_combiner: bool| {
            let c = cluster();
            c.hdfs().put_overwrite("in.txt", lines.clone());
            let job = count_job("in.txt").with_split_size(split_size);
            let job = if with_combiner {
                job.with_combiner(|_k: &u32, vs: Vec<u64>| vs.into_iter().sum())
            } else {
                job
            };
            let mut pairs = MrRunner::new(c).run(job).expect("input exists").pairs;
            pairs.sort();
            pairs
        };
        assert_eq!(run(false), run(true));
    }
}

#[test]
fn per_split_mapper_equals_per_line_mapper() {
    let mut rng = Rng(32);
    for _ in 0..CASES {
        let lines = rng.corpus();
        let split_size = rng.range(16, 512);
        let per_line = {
            let c = cluster();
            c.hdfs().put_overwrite("in.txt", lines.clone());
            let mut p = MrRunner::new(c)
                .run(count_job("in.txt").with_split_size(split_size))
                .expect("input exists")
                .pairs;
            p.sort();
            p
        };
        let per_split = {
            let c = cluster();
            c.hdfs().put_overwrite("in.txt", lines.clone());
            let job = MapReduceJob::new_per_split(
                "count",
                "in.txt",
                |_o, lines: &[String], em: &mut Emitter<u32, u64>, _w| {
                    for line in lines {
                        for t in line.split_whitespace() {
                            em.emit(t.parse().expect("numeric token"), 1);
                        }
                    }
                },
                |k: &u32, vs: Vec<u64>, em: &mut Emitter<u32, u64>, _w| {
                    em.emit(*k, vs.into_iter().sum())
                },
            )
            .with_split_size(split_size);
            let mut p = MrRunner::new(c).run(job).expect("input exists").pairs;
            p.sort();
            p
        };
        assert_eq!(per_line, per_split);
    }
}

#[test]
fn virtual_time_deterministic() {
    let mut rng = Rng(33);
    for _ in 0..CASES {
        let lines = rng.corpus();
        let run = || {
            let c = cluster();
            c.hdfs().put_overwrite("in.txt", lines.clone());
            MrRunner::new(c.clone())
                .run(count_job("in.txt"))
                .expect("input exists");
            c.metrics().now().as_secs()
        };
        assert_eq!(run(), run());
    }
}

#[test]
fn reduce_task_count_only_affects_time() {
    let mut rng = Rng(34);
    for _ in 0..CASES {
        let lines = rng.corpus();
        let run = |reduce_tasks: usize| {
            let c = cluster();
            c.hdfs().put_overwrite("in.txt", lines.clone());
            let mut p = MrRunner::new(c)
                .run(count_job("in.txt").with_reduce_tasks(reduce_tasks))
                .expect("input exists")
                .pairs;
            p.sort();
            p
        };
        assert_eq!(run(1), run(7));
    }
}
