//! Randomized-but-deterministic tests over the substrate: scheduler bounds,
//! HDFS layout invariants, hashing determinism, and cost-model additivity.
//!
//! Each case runs over many seeded inputs from a local splitmix64 stream, so
//! coverage is property-test-like while remaining reproducible offline.

use yafim_cluster::{
    bucket_of, fx_hash64, ClusterSpec, CostModel, SimDuration, SimHdfs, TaskSpec, VirtualScheduler,
    WorkCounters,
};

/// Tiny deterministic generator for test inputs (splitmix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `[lo, hi)`; modulo bias is irrelevant for tests.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

#[test]
fn scheduler_respects_classic_bounds() {
    let mut rng = Rng(1);
    for case in 0..128 {
        let nodes = rng.range(1, 6) as u32;
        let cores = rng.range(1, 5) as u32;
        let n_tasks = rng.range(0, 60) as usize;
        let durs: Vec<u32> = (0..n_tasks).map(|_| rng.range(1, 1000) as u32).collect();

        let spec = ClusterSpec::new(nodes, cores, 1 << 30);
        // No locality: pure greedy list scheduling bounds apply.
        let sched = VirtualScheduler::new(spec);
        let tasks: Vec<TaskSpec> = durs
            .iter()
            .map(|&d| TaskSpec::anywhere(SimDuration::from_millis(d as f64)))
            .collect();
        let out = sched.schedule(&tasks);
        let total: f64 = durs.iter().map(|&d| d as f64 / 1e3).sum();
        let max: f64 = durs.iter().map(|&d| d as f64 / 1e3).fold(0.0, f64::max);
        let c = (nodes * cores) as f64;
        let lower = (total / c).max(max);
        assert!(
            out.makespan.as_secs() >= lower - 1e-9,
            "case {case}: makespan below lower bound"
        );
        assert!(
            out.makespan.as_secs() <= total / c + max + 1e-9,
            "case {case}: makespan above Graham bound"
        );
        assert!(
            (out.total_busy.as_secs() - total).abs() < 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn more_cores_never_hurt() {
    let mut rng = Rng(2);
    for case in 0..128 {
        let nodes = rng.range(1, 4) as u32;
        let cores = rng.range(1, 4) as u32;
        let n_tasks = rng.range(1, 40) as usize;
        let tasks: Vec<TaskSpec> = (0..n_tasks)
            .map(|_| TaskSpec::anywhere(SimDuration::from_millis(rng.range(1, 500) as f64)))
            .collect();
        let small = VirtualScheduler::new(ClusterSpec::new(nodes, cores, 1 << 30)).schedule(&tasks);
        let big =
            VirtualScheduler::new(ClusterSpec::new(nodes * 2, cores, 1 << 30)).schedule(&tasks);
        assert!(big.makespan <= small.makespan, "case {case}");
    }
}

#[test]
fn hdfs_blocks_tile_any_file() {
    let mut rng = Rng(3);
    for case in 0..128 {
        let n_lines = rng.range(0, 300) as usize;
        let line_len = rng.range(1, 40) as usize;
        let block_size = rng.range(8, 4096);

        let fs = SimHdfs::new(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era());
        fs.set_block_size(block_size);
        let lines: Vec<String> = (0..n_lines)
            .map(|i| "x".repeat(1 + (i % line_len)))
            .collect();
        let f = fs.put_overwrite("f", lines);
        let mut covered = 0usize;
        let mut bytes = 0u64;
        for b in f.blocks() {
            assert_eq!(b.lines.start, covered, "case {case}: gap before block");
            covered = b.lines.end;
            bytes += b.bytes;
        }
        assert_eq!(covered, n_lines, "case {case}");
        assert_eq!(bytes, f.bytes(), "case {case}");
    }
}

#[test]
fn hdfs_splits_tile_any_file() {
    let mut rng = Rng(4);
    for case in 0..128 {
        let n_lines = rng.range(1, 300) as usize;
        let min_splits = rng.range(1, 40) as usize;

        let fs = SimHdfs::new(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era());
        let lines: Vec<String> = (0..n_lines).map(|i| format!("line {i}")).collect();
        let f = fs.put_overwrite("f", lines);
        let splits = f.splits(min_splits);
        assert!(splits.len() <= n_lines, "case {case}");
        let mut covered = 0usize;
        let mut bytes = 0u64;
        for s in &splits {
            assert_eq!(s.lines.start, covered, "case {case}: gap before split");
            covered = s.lines.end;
            bytes += s.bytes;
        }
        assert_eq!(covered, n_lines, "case {case}");
        assert_eq!(bytes, f.bytes(), "case {case}");
    }
}

#[test]
fn fx_hash_is_deterministic_and_buckets_in_range() {
    let mut rng = Rng(5);
    for _ in 0..128 {
        let buckets = rng.range(1, 64) as usize;
        for _ in 0..100 {
            let k = rng.next();
            assert_eq!(fx_hash64(&k), fx_hash64(&k));
            assert!(bucket_of(&k, buckets) < buckets);
        }
    }
}

#[test]
fn work_counter_time_is_additive() {
    let mut rng = Rng(6);
    let model = CostModel::zero_overhead();
    for case in 0..256 {
        let mut a = WorkCounters::new();
        a.add_cpu(rng.range(0, 1_000_000));
        a.add_disk_read(rng.range(0, 1_000_000));
        a.add_net(rng.range(0, 1_000_000));
        let mut b = WorkCounters::new();
        b.add_cpu(rng.range(0, 1_000_000));
        b.add_disk_read(rng.range(0, 1_000_000));
        b.add_net(rng.range(0, 1_000_000));

        let separate = a.data_time(&model) + b.data_time(&model);
        let mut merged = a;
        merged.merge(&b);
        // net_transfer has a per-transfer latency term, so only compare when
        // both or neither move bytes; zero_overhead removes the latency.
        assert!(
            (merged.data_time(&model).as_secs() - separate.as_secs()).abs() < 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn cost_model_scales_linearly() {
    let mut rng = Rng(7);
    let m = CostModel::zero_overhead();
    for case in 0..256 {
        let bytes = rng.range(1, 100_000_000);
        let one = m.disk_read(bytes).as_secs();
        let two = m.disk_read(bytes * 2).as_secs();
        assert!((two - 2.0 * one).abs() < 1e-9, "case {case}");
    }
}
