//! Property-based tests over the substrate: scheduler bounds, HDFS layout
//! invariants, hashing determinism, and cost-model additivity.

use proptest::collection::vec;
use proptest::prelude::*;
use yafim_cluster::{
    bucket_of, fx_hash64, ClusterSpec, CostModel, SimDuration, SimHdfs, TaskSpec,
    VirtualScheduler, WorkCounters,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scheduler_respects_classic_bounds(
        durs in vec(1u32..1000, 0..60),
        nodes in 1u32..6,
        cores in 1u32..5,
    ) {
        let spec = ClusterSpec::new(nodes, cores, 1 << 30);
        // No locality: pure greedy list scheduling bounds apply.
        let sched = VirtualScheduler::new(spec);
        let tasks: Vec<TaskSpec> = durs
            .iter()
            .map(|&d| TaskSpec::anywhere(SimDuration::from_millis(d as f64)))
            .collect();
        let out = sched.schedule(&tasks);
        let total: f64 = durs.iter().map(|&d| d as f64 / 1e3).sum();
        let max: f64 = durs.iter().map(|&d| d as f64 / 1e3).fold(0.0, f64::max);
        let c = (nodes * cores) as f64;
        let lower = (total / c).max(max);
        prop_assert!(out.makespan.as_secs() >= lower - 1e-9);
        prop_assert!(out.makespan.as_secs() <= total / c + max + 1e-9);
        prop_assert!((out.total_busy.as_secs() - total).abs() < 1e-9);
    }

    #[test]
    fn more_cores_never_hurt(
        durs in vec(1u32..500, 1..40),
        nodes in 1u32..4,
        cores in 1u32..4,
    ) {
        let tasks: Vec<TaskSpec> = durs
            .iter()
            .map(|&d| TaskSpec::anywhere(SimDuration::from_millis(d as f64)))
            .collect();
        let small = VirtualScheduler::new(ClusterSpec::new(nodes, cores, 1 << 30))
            .schedule(&tasks);
        let big = VirtualScheduler::new(ClusterSpec::new(nodes * 2, cores, 1 << 30))
            .schedule(&tasks);
        prop_assert!(big.makespan <= small.makespan);
    }

    #[test]
    fn hdfs_blocks_tile_any_file(
        n_lines in 0usize..300,
        line_len in 1usize..40,
        block_size in 8u64..4096,
    ) {
        let fs = SimHdfs::new(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era());
        fs.set_block_size(block_size);
        let lines: Vec<String> = (0..n_lines).map(|i| "x".repeat(1 + (i % line_len))).collect();
        let f = fs.put_overwrite("f", lines);
        let mut covered = 0usize;
        let mut bytes = 0u64;
        for b in f.blocks() {
            prop_assert_eq!(b.lines.start, covered);
            covered = b.lines.end;
            bytes += b.bytes;
        }
        prop_assert_eq!(covered, n_lines);
        prop_assert_eq!(bytes, f.bytes());
    }

    #[test]
    fn hdfs_splits_tile_any_file(
        n_lines in 1usize..300,
        min_splits in 1usize..40,
    ) {
        let fs = SimHdfs::new(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era());
        let lines: Vec<String> = (0..n_lines).map(|i| format!("line {i}")).collect();
        let f = fs.put_overwrite("f", lines);
        let splits = f.splits(min_splits);
        prop_assert!(splits.len() <= n_lines);
        let mut covered = 0usize;
        let mut bytes = 0u64;
        for s in &splits {
            prop_assert_eq!(s.lines.start, covered);
            covered = s.lines.end;
            bytes += s.bytes;
        }
        prop_assert_eq!(covered, n_lines);
        prop_assert_eq!(bytes, f.bytes());
    }

    #[test]
    fn fx_hash_is_deterministic_and_buckets_in_range(
        keys in vec(any::<u64>(), 0..100),
        buckets in 1usize..64,
    ) {
        for k in &keys {
            prop_assert_eq!(fx_hash64(k), fx_hash64(k));
            prop_assert!(bucket_of(k, buckets) < buckets);
        }
    }

    #[test]
    fn work_counter_time_is_additive(
        cpu_a in 0u64..1_000_000, cpu_b in 0u64..1_000_000,
        disk_a in 0u64..1_000_000, disk_b in 0u64..1_000_000,
        net_a in 0u64..1_000_000, net_b in 0u64..1_000_000,
    ) {
        let model = CostModel::zero_overhead();
        let mut a = WorkCounters::new();
        a.add_cpu(cpu_a);
        a.add_disk_read(disk_a);
        a.add_net(net_a);
        let mut b = WorkCounters::new();
        b.add_cpu(cpu_b);
        b.add_disk_read(disk_b);
        b.add_net(net_b);

        let separate = a.data_time(&model) + b.data_time(&model);
        let mut merged = a;
        merged.merge(&b);
        // net_transfer has a per-transfer latency term, so only compare when
        // both or neither move bytes; zero_overhead removes the latency.
        prop_assert!((merged.data_time(&model).as_secs() - separate.as_secs()).abs() < 1e-9);
    }

    #[test]
    fn cost_model_scales_linearly(bytes in 1u64..100_000_000) {
        let m = CostModel::zero_overhead();
        let one = m.disk_read(bytes).as_secs();
        let two = m.disk_read(bytes * 2).as_secs();
        prop_assert!((two - 2.0 * one).abs() < 1e-9);
    }
}
