//! Cluster topology description.

/// Identifier of a virtual node, `0..ClusterSpec::nodes`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Static description of a virtual cluster.
///
/// Matches the evaluation cluster of the paper when constructed with
/// [`ClusterSpec::paper`]: 12 nodes, each with two quad-core Intel Xeons
/// (8 cores), 24 GB of memory and a 2 TB disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: u32,
    /// Cores per node available for task execution.
    pub cores_per_node: u32,
    /// Memory per node, in bytes, available for caching RDD partitions.
    pub memory_per_node: u64,
}

impl ClusterSpec {
    /// Build a spec; panics if any dimension is zero.
    pub fn new(nodes: u32, cores_per_node: u32, memory_per_node: u64) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        assert!(cores_per_node > 0, "nodes need at least one core");
        assert!(memory_per_node > 0, "nodes need some memory");
        ClusterSpec {
            nodes,
            cores_per_node,
            memory_per_node,
        }
    }

    /// The paper's evaluation cluster: 12 × (8 cores, 24 GB).
    pub fn paper() -> Self {
        ClusterSpec::new(12, 8, 24 * GIB)
    }

    /// The paper's speedup sweep keeps the data fixed and varies node count
    /// through 4, 6, 8, 10, 12 (x-axis labelled in cores: 32..96).
    pub fn paper_speedup_sweep() -> Vec<Self> {
        [4u32, 6, 8, 10, 12]
            .into_iter()
            .map(|n| ClusterSpec::new(n, 8, 24 * GIB))
            .collect()
    }

    /// The paper's sizeup experiments fix the core count at 48 (6 nodes).
    pub fn paper_sizeup() -> Self {
        ClusterSpec::new(6, 8, 24 * GIB)
    }

    /// Total virtual cores in the cluster.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }

    /// Total cache memory in the cluster.
    pub fn total_memory(&self) -> u64 {
        self.nodes as u64 * self.memory_per_node
    }

    /// Deterministic home node for a partition/block index (round-robin).
    ///
    /// Engines use this for data placement so that "local" reads are
    /// meaningful: a cached partition lives on its home node, and a
    /// locality-aware scheduler runs the corresponding task there.
    pub fn home_node(&self, index: usize) -> NodeId {
        NodeId((index % self.nodes as usize) as u32)
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }
}

/// One gibibyte in bytes.
pub const GIB: u64 = 1024 * 1024 * 1024;
/// One mebibyte in bytes.
pub const MIB: u64 = 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec() {
        let s = ClusterSpec::paper();
        assert_eq!(s.total_cores(), 96);
        assert_eq!(s.total_memory(), 12 * 24 * GIB);
    }

    #[test]
    fn home_node_round_robin() {
        let s = ClusterSpec::new(3, 2, GIB);
        assert_eq!(s.home_node(0), NodeId(0));
        assert_eq!(s.home_node(1), NodeId(1));
        assert_eq!(s.home_node(2), NodeId(2));
        assert_eq!(s.home_node(3), NodeId(0));
    }

    #[test]
    fn speedup_sweep_matches_paper_axis() {
        let cores: Vec<u32> = ClusterSpec::paper_speedup_sweep()
            .iter()
            .map(|s| s.total_cores())
            .collect();
        assert_eq!(cores, vec![32, 48, 64, 80, 96]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        ClusterSpec::new(0, 1, GIB);
    }
}
