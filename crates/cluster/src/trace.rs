//! Chrome trace event exporter.
//!
//! Serialises the span log ([`Metrics`]) into the Trace Event JSON format
//! understood by Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`. The mapping onto the trace model:
//!
//! * **pid** — one process per simulated node (`pid = node + 1`), plus
//!   `pid 0` for the driver;
//! * **tid** — one thread per core within a node (`tid = core + 1`);
//!   driver-side tracks use `tid 1` for jobs, `tid 2` for stages, and
//!   `tid 3` for the flat event log;
//! * **X events** — every job, stage and task span becomes a "complete"
//!   event with `ts`/`dur` in microseconds of *virtual* time;
//! * **M events** — process/thread name metadata so the UI labels rows
//!   "node 3" / "core 1".
//!
//! Events on a single tid always nest correctly: tasks on one core never
//! overlap (the scheduler hands each core a sequential timeline), and the
//! driver tracks hold jobs, stages and events on separate tids.

use crate::json::JsonValue;
use crate::metrics::Metrics;
use crate::spec::ClusterSpec;
use crate::time::{SimDuration, SimInstant};
use crate::work::TaskProfile;

/// The driver's pid in the exported trace.
pub const DRIVER_PID: u64 = 0;
/// Driver tid carrying job spans.
pub const DRIVER_TID_JOBS: u64 = 1;
/// Driver tid carrying stage spans.
pub const DRIVER_TID_STAGES: u64 = 2;
/// Driver tid carrying the flat event log.
pub const DRIVER_TID_EVENTS: u64 = 3;

fn micros(t: SimInstant) -> JsonValue {
    JsonValue::Number(t.as_secs() * 1e6)
}

fn micros_dur(d: SimDuration) -> JsonValue {
    JsonValue::Number(d.as_secs() * 1e6)
}

fn meta(name: &str, pid: u64, tid: Option<u64>, label: String) -> JsonValue {
    let mut pairs = vec![
        ("ph", "M".into()),
        ("name", name.into()),
        ("pid", pid.into()),
        ("args", JsonValue::object(vec![("name", label.into())])),
    ];
    if let Some(tid) = tid {
        pairs.push(("tid", tid.into()));
    }
    JsonValue::object(pairs)
}

fn complete(
    name: String,
    cat: &str,
    pid: u64,
    tid: u64,
    ts: SimInstant,
    dur: SimDuration,
    args: Vec<(&str, JsonValue)>,
) -> JsonValue {
    JsonValue::object(vec![
        ("ph", "X".into()),
        ("name", name.into()),
        ("cat", cat.into()),
        ("pid", pid.into()),
        ("tid", tid.into()),
        ("ts", micros(ts)),
        ("dur", micros_dur(dur)),
        ("args", JsonValue::object(args)),
    ])
}

fn profile_args(p: &TaskProfile) -> Vec<(&'static str, JsonValue)> {
    vec![
        ("records_in", p.work.records_in.into()),
        ("records_out", p.work.records_out.into()),
        ("shuffle_read_bytes", p.shuffle_read_bytes.into()),
        ("shuffle_write_bytes", p.shuffle_write_bytes.into()),
        ("broadcast_read_bytes", p.broadcast_read_bytes.into()),
        ("cache_hits", p.cache_hits.into()),
        ("cache_misses", p.cache_misses.into()),
    ]
}

/// Build the Chrome trace document for a run as a [`JsonValue`].
///
/// `spec` supplies the node/core topology for the process and thread
/// metadata rows.
pub fn chrome_trace_value(metrics: &Metrics, spec: &ClusterSpec) -> JsonValue {
    let mut events = Vec::new();

    // Metadata: driver process and its tracks.
    events.push(meta("process_name", DRIVER_PID, None, "driver".to_string()));
    for (tid, label) in [
        (DRIVER_TID_JOBS, "jobs"),
        (DRIVER_TID_STAGES, "stages"),
        (DRIVER_TID_EVENTS, "events"),
    ] {
        events.push(meta(
            "thread_name",
            DRIVER_PID,
            Some(tid),
            label.to_string(),
        ));
    }

    // Metadata: one process per node, one thread per core.
    for node in spec.node_ids() {
        let pid = node.0 as u64 + 1;
        events.push(meta("process_name", pid, None, format!("node {}", node.0)));
        for core in 0..spec.cores_per_node {
            events.push(meta(
                "thread_name",
                pid,
                Some(core as u64 + 1),
                format!("core {core}"),
            ));
        }
    }

    for job in metrics.job_spans() {
        events.push(complete(
            format!("job {}: {}", job.job_id, job.label),
            "job",
            DRIVER_PID,
            DRIVER_TID_JOBS,
            job.start,
            job.duration,
            vec![("job_id", job.job_id.into())],
        ));
    }

    for stage in metrics.stage_spans() {
        let mut args = vec![
            ("stage_id", stage.stage_id.into()),
            ("job_id", stage.job_id.into()),
            ("tasks", stage.tasks.into()),
        ];
        if let Some(sid) = stage.shuffle_id {
            args.push(("shuffle_id", sid.into()));
        }
        args.extend(profile_args(&stage.profile));
        // Recovery work attributed to this stage — only emitted when the
        // stage actually recovered from something, so clean traces stay
        // byte-identical to pre-fault exports.
        let r = &stage.recovery;
        if r.any() {
            args.extend([
                ("task_failures", r.task_failures.into()),
                ("task_retries", r.task_retries.into()),
                ("speculative_launched", r.speculative_launched.into()),
                ("fetch_retries", r.fetch_retries.into()),
                ("backoff_us", r.backoff_micros.into()),
                ("checkpoint_writes", r.checkpoint_writes.into()),
                ("checkpoint_reads", r.checkpoint_reads.into()),
            ]);
            // Silent-corruption counters, only when the integrity layer
            // actually fired — clean-but-recovering stages keep the
            // pre-integrity arg set byte-identical.
            let i = &r.integrity;
            if i.any() {
                args.extend([
                    ("corruptions_injected", i.corruptions_injected.into()),
                    ("corruptions_detected", i.corruptions_detected.into()),
                    ("corruptions_repaired", i.corruptions_repaired.into()),
                    ("repaired_via_replica", i.repaired_via_replica.into()),
                    ("repaired_via_recompute", i.repaired_via_recompute.into()),
                    ("repaired_via_resubmit", i.repaired_via_resubmit.into()),
                ]);
            }
        }
        events.push(complete(
            format!("stage {}: {}", stage.stage_id, stage.label),
            "stage",
            DRIVER_PID,
            DRIVER_TID_STAGES,
            stage.start,
            stage.duration,
            args,
        ));
    }

    for task in metrics.task_spans() {
        let mut args = vec![
            ("stage_id", task.stage_id.into()),
            ("job_id", task.job_id.into()),
            ("partition", task.partition.into()),
            (
                "queue_wait_us",
                JsonValue::Number(task.queue_wait.as_secs() * 1e6),
            ),
        ];
        args.extend(profile_args(&task.profile));
        events.push(complete(
            format!("task s{}.{}", task.stage_id, task.partition),
            "task",
            task.node.0 as u64 + 1,
            task.core as u64 + 1,
            task.start,
            task.duration,
            args,
        ));
    }

    // The flat event log (iterations, broadcasts, HDFS, driver work) on its
    // own driver track, so Fig. 3 passes are visible as top-level bands.
    for e in metrics.events() {
        events.push(complete(
            e.label.clone(),
            &format!("{:?}", e.kind).to_lowercase(),
            DRIVER_PID,
            DRIVER_TID_EVENTS,
            e.start,
            e.duration,
            vec![],
        ));
    }

    let dropped = metrics.dropped();
    JsonValue::object(vec![
        ("traceEvents", JsonValue::Array(events)),
        ("displayTimeUnit", "ms".into()),
        (
            "otherData",
            JsonValue::object(vec![
                ("clock", "virtual".into()),
                ("dropped_events", dropped.events.into()),
                ("dropped_jobs", dropped.jobs.into()),
                ("dropped_stages", dropped.stages.into()),
                ("dropped_tasks", dropped.tasks.into()),
            ]),
        ),
    ])
}

/// Render the Chrome trace document for a run as a JSON string, ready to be
/// written to a `.json` file and loaded in Perfetto.
pub fn chrome_trace(metrics: &Metrics, spec: &ClusterSpec) -> String {
    chrome_trace_value(metrics, spec).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::metrics::{EventKind, StageExecution, TaskExecution};
    use crate::spec::NodeId;

    fn sample_metrics() -> Metrics {
        let m = Metrics::new();
        let job = m.begin_job("collect rdd3");
        m.record_stage(StageExecution {
            label: "shuffle 0 map".into(),
            kind: EventKind::Shuffle,
            shuffle_id: Some(0),
            queue: SimDuration::ZERO,
            overhead: SimDuration::from_secs(0.1),
            trailing: SimDuration::ZERO,
            tasks: vec![
                TaskExecution {
                    partition: 0,
                    node: NodeId(0),
                    core: 0,
                    start: SimDuration::ZERO,
                    duration: SimDuration::from_secs(1.0),
                    profile: TaskProfile::new(),
                },
                TaskExecution {
                    partition: 1,
                    node: NodeId(1),
                    core: 1,
                    start: SimDuration::ZERO,
                    duration: SimDuration::from_secs(2.0),
                    profile: TaskProfile::new(),
                },
            ],
        });
        m.end_job(job);
        m
    }

    #[test]
    fn trace_round_trips_and_has_valid_times() {
        let m = sample_metrics();
        let spec = ClusterSpec::new(2, 2, 1 << 30);
        let text = chrome_trace(&m, &spec);
        let doc = json::parse(&text).expect("exporter emits valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            if ph == "X" {
                let ts = e.get("ts").unwrap().as_f64().unwrap();
                let dur = e.get("dur").unwrap().as_f64().unwrap();
                assert!(ts >= 0.0, "negative ts: {e:?}");
                assert!(dur >= 0.0, "negative dur: {e:?}");
            }
        }
    }

    #[test]
    fn tasks_land_on_their_node_and_core() {
        let m = sample_metrics();
        let spec = ClusterSpec::new(2, 2, 1 << 30);
        let doc = json::parse(&chrome_trace(&m, &spec)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let task_on_node1: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("cat").and_then(JsonValue::as_str) == Some("task")
                    && e.get("pid").and_then(JsonValue::as_f64) == Some(2.0)
            })
            .collect();
        assert_eq!(task_on_node1.len(), 1);
        assert_eq!(task_on_node1[0].get("tid").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn metadata_names_every_node_and_core() {
        let m = Metrics::new();
        let spec = ClusterSpec::new(3, 2, 1 << 30);
        let doc = json::parse(&chrome_trace(&m, &spec)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let process_names = events
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("process_name"))
            .count();
        let thread_names = events
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("thread_name"))
            .count();
        assert_eq!(process_names, 4, "driver + 3 nodes");
        assert_eq!(
            thread_names,
            3 + 3 * 2,
            "3 driver tracks + 3 nodes x 2 cores"
        );
    }

    #[test]
    fn recovering_stage_exports_recovery_args() {
        use crate::fault::RecoveryCounters;
        let m = Metrics::new();
        m.record_stage_with_recovery(
            StageExecution {
                label: "flaky".into(),
                kind: EventKind::Stage,
                shuffle_id: None,
                queue: SimDuration::ZERO,
                overhead: SimDuration::ZERO,
                trailing: SimDuration::ZERO,
                tasks: vec![TaskExecution {
                    partition: 0,
                    node: NodeId(0),
                    core: 0,
                    start: SimDuration::ZERO,
                    duration: SimDuration::from_secs(1.0),
                    profile: TaskProfile::new(),
                }],
            },
            RecoveryCounters {
                fetch_retries: 5,
                backoff_micros: 700,
                checkpoint_writes: 2,
                ..RecoveryCounters::default()
            },
        );
        let spec = ClusterSpec::new(2, 2, 1 << 30);
        let doc = json::parse(&chrome_trace(&m, &spec)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let stage = events
            .iter()
            .find(|e| e.get("cat").and_then(JsonValue::as_str) == Some("stage"))
            .expect("stage event present");
        let args = stage.get("args").unwrap();
        assert_eq!(args.get("fetch_retries").unwrap().as_f64(), Some(5.0));
        assert_eq!(args.get("backoff_us").unwrap().as_f64(), Some(700.0));
        assert_eq!(args.get("checkpoint_writes").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn clean_stage_exports_no_recovery_args() {
        let m = sample_metrics();
        let spec = ClusterSpec::new(2, 2, 1 << 30);
        let doc = json::parse(&chrome_trace(&m, &spec)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let stage = events
            .iter()
            .find(|e| e.get("cat").and_then(JsonValue::as_str) == Some("stage"))
            .expect("stage event present");
        assert!(stage.get("args").unwrap().get("fetch_retries").is_none());
    }

    #[test]
    fn arbitrary_stage_labels_survive_json_escaping() {
        // Labels flow user/engine strings straight into event names; the
        // exporter must escape them so the document still parses and the
        // label round-trips byte-for-byte.
        let hostile = "quote:\" backslash:\\ newline:\n tab:\t ctrl:\u{1} unicode:\u{2603}";
        let m = Metrics::new();
        let job = m.begin_job(hostile);
        m.record_stage(StageExecution {
            label: hostile.into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![TaskExecution {
                partition: 0,
                node: NodeId(0),
                core: 0,
                start: SimDuration::ZERO,
                duration: SimDuration::from_secs(1.0),
                profile: TaskProfile::new(),
            }],
        });
        m.end_job(job);
        let spec = ClusterSpec::new(2, 2, 1 << 30);
        let text = chrome_trace(&m, &spec);
        let doc = json::parse(&text).expect("hostile labels must not break the document");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let stage = events
            .iter()
            .find(|e| e.get("cat").and_then(JsonValue::as_str) == Some("stage"))
            .expect("stage event present");
        let name = stage.get("name").unwrap().as_str().unwrap();
        assert!(
            name.ends_with(hostile),
            "label did not round-trip: {name:?}"
        );
    }

    #[test]
    fn identical_runs_export_byte_identical_traces() {
        let spec = ClusterSpec::new(2, 2, 1 << 30);
        let a = chrome_trace(&sample_metrics(), &spec);
        let b = chrome_trace(&sample_metrics(), &spec);
        assert_eq!(a, b, "trace export must be deterministic");
    }

    #[test]
    fn drop_counters_are_reported_in_other_data() {
        let m = sample_metrics();
        let spec = ClusterSpec::new(2, 2, 1 << 30);
        let doc = json::parse(&chrome_trace(&m, &spec)).unwrap();
        let other = doc.get("otherData").unwrap();
        assert_eq!(other.get("dropped_tasks").unwrap().as_f64(), Some(0.0));
        assert_eq!(other.get("clock").unwrap().as_str(), Some("virtual"));
    }
}
