//! Critical-path analysis over the recorded span log.
//!
//! [`critical_path`] walks the job → stage → task spans plus the flat event
//! log and decomposes the run's makespan into **exhaustive, mutually
//! exclusive** attribution buckets — compute, shuffle read/write, broadcast,
//! cache, checkpoint, fault stall/recovery, scheduler idle, driver work,
//! HDFS I/O, and an explicit `unattributed` remainder. The load-bearing
//! invariant, checked by unit tests here and by a randomized-lineage
//! property test in `yafim-rdd`, is that the buckets **sum to the makespan**
//! (within 1e-6 virtual seconds), fault injection included. Nothing is
//! counted twice and nothing falls on the floor: every answer to "where did
//! the time go?" is a complete partition of the timeline.
//!
//! The decomposition works by tiling `[0, now]` with *primitive intervals*:
//!
//! * **stage spans** — decomposed internally: the pre-window (stage
//!   overhead) and post-window (trailing heartbeats) go to scheduler idle,
//!   all-cores-idle holes inside the task window go to fault recovery (when
//!   the stage recorded failures) or scheduler idle, and the busy time —
//!   the union of task intervals — is split proportionally by cost-model
//!   weights derived from the merged [`TaskProfile`];
//! * **flat events** other than `Job`/`Iteration` summaries (broadcasts,
//!   HDFS traffic, driver/projection work, checkpoints) — mapped whole to
//!   one bucket by kind (events duplicating a retained stage span are
//!   skipped, since [`Metrics::record_stage`] files both);
//! * **gaps** between primitives — plain clock advances (job-submission
//!   overhead, driver result fetches) are attributed to the driver; if the
//!   ring buffers dropped entries, the gap before the first retained
//!   primitive is unknowable history and lands in `unattributed`.
//!
//! Per-stage skew metrics (task-time p50/p95/max, straggler ratio,
//! partition-size CV) ride along in the same report, because the skew the
//! distributed-Apriori literature blames for poor scaling lives exactly in
//! the gap between `p50` and `max`.

use crate::costmodel::CostModel;
use crate::fault::RecoveryCounters;
use crate::json::JsonValue;
use crate::metrics::{EventKind, Metrics, StageSpan, TaskSpan};
use crate::work::TaskProfile;
use std::collections::{BTreeMap, HashSet};

/// Exhaustive, mutually exclusive makespan decomposition, in virtual
/// seconds. The fields sum to the makespan (see [`CriticalPathBuckets::total`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CriticalPathBuckets {
    /// CPU work inside tasks (records, hash-tree visits, comparisons) plus
    /// task-local disk I/O not attributed to shuffle.
    pub compute: f64,
    /// Fetching shuffle map outputs (local and remote).
    pub shuffle_read: f64,
    /// Writing and serializing shuffle files on the map side.
    pub shuffle_write: f64,
    /// Broadcast distribution and task-side broadcast reads.
    pub broadcast: f64,
    /// Scanning cached partitions.
    pub cache: f64,
    /// Checkpoint writes and reads (lineage truncation).
    pub checkpoint: f64,
    /// Task time spent stalled in retry backoff (transient faults).
    pub fault_stall: f64,
    /// All-cores-idle time inside stages that recorded failures: resubmit
    /// delays, blacklisting windows, recomputation waves.
    pub fault_recovery: f64,
    /// Time stages spent waiting in the multi-job scheduler queue before
    /// any setup work (FIFO pool serialization).
    pub scheduler_queue: f64,
    /// Stage overhead, trailing waves, and all-cores-idle scheduling holes
    /// in fault-free stages.
    pub scheduler_idle: f64,
    /// Driver-side work: job submission overhead, candidate generation,
    /// projection planning, result fetches.
    pub driver: f64,
    /// HDFS reads and writes outside stages.
    pub hdfs_io: f64,
    /// Time the retained logs cannot explain (dropped ring-buffer history,
    /// zero-information markers).
    pub unattributed: f64,
}

impl CriticalPathBuckets {
    /// Sum of all buckets — equals the makespan within float rounding.
    pub fn total(&self) -> f64 {
        self.named().iter().map(|(_, v)| v).sum()
    }

    /// The buckets with their canonical names, in report order.
    pub fn named(&self) -> [(&'static str, f64); 13] {
        [
            ("compute", self.compute),
            ("shuffle_read", self.shuffle_read),
            ("shuffle_write", self.shuffle_write),
            ("broadcast", self.broadcast),
            ("cache", self.cache),
            ("checkpoint", self.checkpoint),
            ("fault_stall", self.fault_stall),
            ("fault_recovery", self.fault_recovery),
            ("scheduler_queue", self.scheduler_queue),
            ("scheduler_idle", self.scheduler_idle),
            ("driver", self.driver),
            ("hdfs_io", self.hdfs_io),
            ("unattributed", self.unattributed),
        ]
    }

    /// JSON object `{bucket: seconds}` (deterministic key order).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(
            self.named()
                .iter()
                .map(|(k, v)| (*k, JsonValue::from(*v)))
                .collect(),
        )
    }
}

/// Task-time distribution and partition balance for one stage.
#[derive(Clone, Debug, PartialEq)]
pub struct StageSkew {
    /// Stage id from the span log.
    pub stage_id: u64,
    /// Stage label.
    pub label: String,
    /// Stage wall duration (virtual seconds).
    pub duration: f64,
    /// Retained task count.
    pub tasks: usize,
    /// Median task duration (nearest rank).
    pub p50: f64,
    /// 95th-percentile task duration (nearest rank).
    pub p95: f64,
    /// Longest task duration.
    pub max: f64,
    /// `max / p50` — 1.0 for perfectly balanced stages; large values mean
    /// one straggler set the stage makespan.
    pub straggler_ratio: f64,
    /// Coefficient of variation (stddev/mean) of per-task records read — 0
    /// for perfectly even partitions.
    pub partition_cv: f64,
}

impl StageSkew {
    /// JSON object for manifests.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("stage_id", JsonValue::from(self.stage_id)),
            ("label", JsonValue::from(self.label.as_str())),
            ("duration", JsonValue::from(self.duration)),
            ("tasks", JsonValue::from(self.tasks)),
            ("p50", JsonValue::from(self.p50)),
            ("p95", JsonValue::from(self.p95)),
            ("max", JsonValue::from(self.max)),
            ("straggler_ratio", JsonValue::from(self.straggler_ratio)),
            ("partition_cv", JsonValue::from(self.partition_cv)),
        ])
    }
}

/// Everything [`critical_path`] computes.
#[derive(Clone, Debug)]
pub struct CriticalPathReport {
    /// Total virtual time of the run.
    pub makespan: f64,
    /// The makespan decomposition.
    pub buckets: CriticalPathBuckets,
    /// Per-stage skew, in stage order (only stages with retained tasks).
    pub stages: Vec<StageSkew>,
    /// True when ring-buffer drops mean the decomposition was reconstructed
    /// from an incomplete log (the unexplained prefix sits in
    /// `buckets.unattributed`).
    pub partial: bool,
}

impl CriticalPathReport {
    /// JSON object for manifests (deterministic key order).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("makespan", JsonValue::from(self.makespan)),
            ("partial", JsonValue::Bool(self.partial)),
            ("buckets", self.buckets.to_json()),
            (
                "stages",
                JsonValue::Array(self.stages.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }

    /// Render the decomposition and the most skewed stages as a text table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "critical path (makespan {:.3}s):", self.makespan);
        if self.partial {
            let _ = writeln!(
                out,
                "  (partial: span logs overflowed; unexplained history is 'unattributed')"
            );
        }
        for (name, secs) in self.buckets.named() {
            if secs == 0.0 {
                continue;
            }
            let pct = if self.makespan > 0.0 {
                100.0 * secs / self.makespan
            } else {
                0.0
            };
            let _ = writeln!(out, "  {name:<15} {secs:>10.3}s {pct:>5.1}%");
        }
        if !self.stages.is_empty() {
            let mut by_duration: Vec<&StageSkew> = self.stages.iter().collect();
            by_duration.sort_by(|a, b| {
                b.duration
                    .total_cmp(&a.duration)
                    .then(a.stage_id.cmp(&b.stage_id))
            });
            let shown = by_duration.len().min(12);
            let _ = writeln!(
                out,
                "\nstage skew (top {shown} of {} by duration):",
                self.stages.len()
            );
            let _ = writeln!(
                out,
                "  {:>5} {:>6} {:>9} {:>9} {:>9} {:>9} {:>7} label",
                "stage", "tasks", "p50", "p95", "max", "straggle", "cv"
            );
            for s in by_duration.into_iter().take(shown) {
                let _ = writeln!(
                    out,
                    "  {:>5} {:>6} {:>8.3}s {:>8.3}s {:>8.3}s {:>8.2}x {:>7.3} {}",
                    s.stage_id,
                    s.tasks,
                    s.p50,
                    s.p95,
                    s.max,
                    s.straggler_ratio,
                    s.partition_cv,
                    s.label
                );
            }
        }
        out
    }
}

/// What one primitive interval on the timeline attributes its time to.
enum Attribution<'a> {
    /// A stage span, decomposed internally.
    Stage(&'a StageSpan),
    /// A flat event, mapped whole to one bucket.
    Kind(EventKind),
}

/// Decompose the recorded run into [`CriticalPathBuckets`] and per-stage
/// skew metrics. Pure read: the metrics sink is not modified.
pub fn critical_path(metrics: &Metrics, cost: &CostModel) -> CriticalPathReport {
    let makespan = metrics.now().as_secs();
    let stage_spans = metrics.stage_spans();
    let task_spans = metrics.task_spans();
    let events = metrics.events();
    let partial = metrics.dropped().total() > 0;

    let mut tasks_by_stage: BTreeMap<u64, Vec<&TaskSpan>> = BTreeMap::new();
    for t in &task_spans {
        tasks_by_stage.entry(t.stage_id).or_default().push(t);
    }

    // `record_stage` files the same interval as both a flat event and a
    // stage span; skip the flat copy when the span survived the ring.
    let stage_keys: HashSet<(u64, u64, &str)> = stage_spans
        .iter()
        .map(|s| {
            (
                s.start.as_secs().to_bits(),
                s.duration.as_secs().to_bits(),
                s.label.as_str(),
            )
        })
        .collect();

    let mut prims: Vec<(f64, f64, Attribution)> = Vec::new();
    for s in &stage_spans {
        prims.push((s.start.as_secs(), s.end().as_secs(), Attribution::Stage(s)));
    }
    for e in &events {
        match e.kind {
            // Job and Iteration events summarize intervals whose stages and
            // driver work already advanced the clock — counting them would
            // double-book the timeline.
            EventKind::Job | EventKind::Iteration => continue,
            EventKind::Stage | EventKind::Shuffle => {
                let key = (
                    e.start.as_secs().to_bits(),
                    e.duration.as_secs().to_bits(),
                    e.label.as_str(),
                );
                if stage_keys.contains(&key) {
                    continue;
                }
                // The span was dropped from the ring: the interval is real
                // but its internal structure is gone.
                prims.push((
                    e.start.as_secs(),
                    e.end().as_secs(),
                    Attribution::Kind(EventKind::Other),
                ));
            }
            kind => prims.push((
                e.start.as_secs(),
                e.end().as_secs(),
                Attribution::Kind(kind),
            )),
        }
    }
    prims.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));

    let mut buckets = CriticalPathBuckets::default();
    let mut cursor = 0.0_f64;
    let mut leading = true;
    for (start, end, attr) in prims {
        if start > cursor {
            let gap = start - cursor;
            if leading && partial {
                // Dropped history: something happened here, the log no
                // longer says what.
                buckets.unattributed += gap;
            } else {
                // Plain clock advances between records are job-submission
                // overhead and driver result fetches.
                buckets.driver += gap;
            }
        }
        leading = false;
        let effective = (end - start.max(cursor)).max(0.0);
        if effective > 0.0 {
            // `scale < 1` only if primitives ever overlapped (they cannot,
            // every record advances the shared clock); kept for safety so
            // the sum invariant survives adversarial inputs.
            let scale = effective / (end - start);
            match attr {
                Attribution::Stage(span) => {
                    let tasks = tasks_by_stage
                        .get(&span.stage_id)
                        .map(Vec::as_slice)
                        .unwrap_or(&[]);
                    add_stage(&mut buckets, span, tasks, cost, scale);
                }
                Attribution::Kind(kind) => {
                    *flat_bucket(&mut buckets, kind) += effective;
                }
            }
        }
        cursor = cursor.max(end);
    }
    if makespan > cursor {
        // The run ends with driver-side work (final result fetch, rule
        // generation) recorded as a plain advance.
        buckets.driver += makespan - cursor;
    }

    let mut stages = Vec::new();
    for s in &stage_spans {
        if let Some(tasks) = tasks_by_stage.get(&s.stage_id) {
            if tasks.len() as u64 == s.tasks && !tasks.is_empty() {
                stages.push(stage_skew(s, tasks));
            }
        }
    }

    CriticalPathReport {
        makespan,
        buckets,
        stages,
        partial,
    }
}

/// Which bucket a flat (non-stage) event belongs to.
fn flat_bucket(b: &mut CriticalPathBuckets, kind: EventKind) -> &mut f64 {
    match kind {
        EventKind::Broadcast => &mut b.broadcast,
        EventKind::HdfsRead | EventKind::HdfsWrite => &mut b.hdfs_io,
        EventKind::Driver | EventKind::Projection => &mut b.driver,
        EventKind::Checkpoint => &mut b.checkpoint,
        _ => &mut b.unattributed,
    }
}

/// Decompose one stage interval. `scale` is 1.0 unless the interval was
/// clipped against an overlap (never, in practice).
fn add_stage(
    b: &mut CriticalPathBuckets,
    span: &StageSpan,
    tasks: &[&TaskSpan],
    cost: &CostModel,
    scale: f64,
) {
    let stage_start = span.start.as_secs();
    let stage_end = span.end().as_secs();
    // With tasks missing from the ring the window reconstruction would be
    // wrong; fall back to a proportional split of the whole interval using
    // the (complete) merged stage profile. The recorded queue wait is still
    // exact, so it is peeled off first.
    if tasks.is_empty() || tasks.len() as u64 != span.tasks {
        let total = (stage_end - stage_start) * scale;
        let queue = (span.queue.as_secs() * scale).min(total);
        b.scheduler_queue += queue;
        split_busy(b, total - queue, &span.profile, &span.recovery, cost);
        return;
    }

    let window_start = tasks
        .iter()
        .map(|t| t.start.as_secs())
        .fold(f64::INFINITY, f64::min);
    let window_end = tasks
        .iter()
        .map(|t| t.end().as_secs())
        .fold(f64::NEG_INFINITY, f64::max);

    // The pre-window time is queue wait (recorded exactly on the span)
    // followed by stage overhead; the queue share goes to its own bucket,
    // the rest plus trailing time (heartbeat waves) is scheduler
    // bookkeeping.
    let pre_window = (window_start - stage_start).max(0.0);
    let queue = span.queue.as_secs().min(pre_window);
    b.scheduler_queue += queue * scale;
    b.scheduler_idle += (pre_window - queue + (stage_end - window_end).max(0.0)) * scale;

    // Union of task intervals: wall time with at least one task running.
    let mut intervals: Vec<(f64, f64)> = tasks
        .iter()
        .map(|t| (t.start.as_secs(), t.end().as_secs()))
        .collect();
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut busy = 0.0;
    let mut open: Option<(f64, f64)> = None;
    for (s, e) in intervals {
        match open {
            Some((os, oe)) if s <= oe => open = Some((os, oe.max(e))),
            Some((os, oe)) => {
                busy += oe - os;
                open = Some((s, e));
            }
            None => open = Some((s, e)),
        }
    }
    if let Some((os, oe)) = open {
        busy += oe - os;
    }

    // All-cores-idle holes inside the window: the fault scheduler's
    // resubmit delays and recomputation waves for faulty stages; plain
    // scheduling gaps otherwise.
    let holes = ((window_end - window_start) - busy).max(0.0);
    if span.recovery.any() {
        b.fault_recovery += holes * scale;
    } else {
        b.scheduler_idle += holes * scale;
    }

    split_busy(b, busy * scale, &span.profile, &span.recovery, cost);
}

/// Split `busy` wall seconds across the work buckets proportionally to the
/// cost-model weight of each activity in the merged profile. The weights
/// are normalized so the split sums to exactly `busy`.
fn split_busy(
    b: &mut CriticalPathBuckets,
    busy: f64,
    profile: &TaskProfile,
    recovery: &RecoveryCounters,
    cost: &CostModel,
) {
    if busy <= 0.0 {
        return;
    }
    let stall = profile.work.stall_micros as f64 / 1e6;
    let shuffle_read = cost.net_transfer(profile.shuffle_read_bytes).as_secs();
    let shuffle_write = (cost.disk_write(profile.shuffle_write_bytes)
        + cost.serialize(profile.shuffle_write_bytes))
    .as_secs();
    let broadcast = cost.net_transfer(profile.broadcast_read_bytes).as_secs();
    let cache = cost.mem_scan(profile.work.mem_read_bytes).as_secs();
    let data = profile.work.data_time(cost).as_secs();
    let compute = (data - stall - shuffle_read - shuffle_write - broadcast - cache).max(0.0);
    let sum = stall + shuffle_read + shuffle_write + broadcast + cache + compute;
    if sum <= 0.0 {
        // A stage that did no attributable work (empty task set, pure
        // overhead): idle from the scheduler's point of view — unless it
        // recorded failures, in which case the time is recovery.
        if recovery.any() {
            b.fault_recovery += busy;
        } else {
            b.scheduler_idle += busy;
        }
        return;
    }
    let k = busy / sum;
    b.fault_stall += stall * k;
    b.shuffle_read += shuffle_read * k;
    b.shuffle_write += shuffle_write * k;
    b.broadcast += broadcast * k;
    b.cache += cache * k;
    b.compute += compute * k;
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn stage_skew(span: &StageSpan, tasks: &[&TaskSpan]) -> StageSkew {
    let mut durations: Vec<f64> = tasks.iter().map(|t| t.duration.as_secs()).collect();
    durations.sort_by(f64::total_cmp);
    let p50 = percentile(&durations, 0.50);
    let p95 = percentile(&durations, 0.95);
    let max = *durations.last().unwrap_or(&0.0);
    let straggler_ratio = if p50 > 0.0 { max / p50 } else { 1.0 };

    let sizes: Vec<f64> = tasks
        .iter()
        .map(|t| t.profile.records_read as f64)
        .collect();
    let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
    let partition_cv = if mean > 0.0 {
        let var = sizes.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sizes.len() as f64;
        var.sqrt() / mean
    } else {
        0.0
    };

    StageSkew {
        stage_id: span.stage_id,
        label: span.label.clone(),
        duration: span.duration.as_secs(),
        tasks: tasks.len(),
        p50,
        p95,
        max,
        straggler_ratio,
        partition_cv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsCapacity, StageExecution, TaskExecution};
    use crate::spec::NodeId;
    use crate::time::SimDuration;

    const EPS: f64 = 1e-6;

    fn task(partition: usize, node: u32, core: usize, start: f64, dur: f64) -> TaskExecution {
        TaskExecution {
            partition,
            node: NodeId(node),
            core,
            start: SimDuration::from_secs(start),
            duration: SimDuration::from_secs(dur),
            profile: TaskProfile::new(),
        }
    }

    fn worked_task(
        partition: usize,
        start: f64,
        dur: f64,
        records: u64,
        shuffle_read: u64,
    ) -> TaskExecution {
        let mut t = task(partition, 0, partition, start, dur);
        t.profile.work.add_records_in(records);
        t.profile.records_read = records;
        t.profile.work.add_net(shuffle_read);
        t.profile.shuffle_read_bytes = shuffle_read;
        t
    }

    fn assert_sums(m: &Metrics) -> CriticalPathReport {
        let report = critical_path(m, &CostModel::hadoop_era());
        assert!(
            (report.buckets.total() - report.makespan).abs() < EPS,
            "buckets {:?} total {} != makespan {}",
            report.buckets,
            report.buckets.total(),
            report.makespan
        );
        report
    }

    #[test]
    fn empty_run_is_all_zero() {
        let m = Metrics::new();
        let r = assert_sums(&m);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.buckets, CriticalPathBuckets::default());
        assert!(!r.partial);
    }

    #[test]
    fn stage_overhead_and_gaps_are_attributed() {
        let m = Metrics::new();
        // A plain advance: job submission overhead → driver.
        m.advance(SimDuration::from_secs(1.0));
        m.record_stage(StageExecution {
            label: "s".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::from_secs(0.5),
            trailing: SimDuration::from_secs(0.25),
            tasks: vec![worked_task(0, 0.0, 2.0, 100, 0)],
        });
        // Trailing driver fetch.
        m.advance(SimDuration::from_secs(0.5));
        let r = assert_sums(&m);
        assert!((r.makespan - 4.25).abs() < EPS);
        assert!((r.buckets.driver - 1.5).abs() < EPS, "{:?}", r.buckets);
        assert!(
            (r.buckets.scheduler_idle - 0.75).abs() < EPS,
            "{:?}",
            r.buckets
        );
        assert!((r.buckets.compute - 2.0).abs() < EPS, "{:?}", r.buckets);
    }

    #[test]
    fn busy_time_splits_by_profile_weights() {
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "fetchy".into(),
            kind: EventKind::Stage,
            shuffle_id: Some(1),
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            // All network bytes are shuffle reads: the busy time should be
            // dominated by the shuffle_read bucket.
            tasks: vec![worked_task(0, 0.0, 3.0, 10, 200_000_000)],
        });
        let r = assert_sums(&m);
        assert!(r.buckets.shuffle_read > r.buckets.compute);
        assert!(r.buckets.shuffle_read > 2.0, "{:?}", r.buckets);
    }

    #[test]
    fn flat_events_map_to_their_buckets() {
        let m = Metrics::new();
        m.advance_with_event(SimDuration::from_secs(1.0), EventKind::Broadcast, "b");
        m.advance_with_event(SimDuration::from_secs(2.0), EventKind::HdfsRead, "r");
        m.advance_with_event(SimDuration::from_secs(0.5), EventKind::Checkpoint, "c");
        m.advance_with_event(SimDuration::from_secs(0.25), EventKind::Projection, "p");
        let r = assert_sums(&m);
        assert!((r.buckets.broadcast - 1.0).abs() < EPS);
        assert!((r.buckets.hdfs_io - 2.0).abs() < EPS);
        assert!((r.buckets.checkpoint - 0.5).abs() < EPS);
        assert!((r.buckets.driver - 0.25).abs() < EPS);
    }

    #[test]
    fn job_and_iteration_summaries_are_not_double_counted() {
        let m = Metrics::new();
        let job = m.begin_job("j");
        let start = m.now();
        m.record_stage(StageExecution {
            label: "s".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![worked_task(0, 0.0, 1.0, 10, 0)],
        });
        m.record_span(EventKind::Iteration, "pass 1", start);
        m.end_job(job);
        let r = assert_sums(&m);
        assert!((r.makespan - 1.0).abs() < EPS);
    }

    #[test]
    fn holes_in_faulty_stages_are_recovery() {
        let m = Metrics::new();
        let recovery = RecoveryCounters {
            task_failures: 1,
            task_retries: 1,
            ..RecoveryCounters::default()
        };
        m.record_stage_with_recovery(
            StageExecution {
                label: "faulty".into(),
                kind: EventKind::Stage,
                shuffle_id: None,
                queue: SimDuration::ZERO,
                overhead: SimDuration::ZERO,
                trailing: SimDuration::ZERO,
                // Attempt at [0,1), resubmit delay, retry at [2,3): the
                // all-idle hole [1,2) is recovery time.
                tasks: vec![
                    worked_task(0, 0.0, 1.0, 10, 0),
                    worked_task(0, 2.0, 1.0, 10, 0),
                ],
            },
            recovery,
        );
        let r = assert_sums(&m);
        assert!(
            (r.buckets.fault_recovery - 1.0).abs() < EPS,
            "{:?}",
            r.buckets
        );
        assert!((r.buckets.compute - 2.0).abs() < EPS, "{:?}", r.buckets);
    }

    #[test]
    fn same_hole_without_recovery_is_scheduler_idle() {
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "gappy".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![
                worked_task(0, 0.0, 1.0, 10, 0),
                worked_task(1, 2.0, 1.0, 10, 0),
            ],
        });
        let r = assert_sums(&m);
        assert!(
            (r.buckets.scheduler_idle - 1.0).abs() < EPS,
            "{:?}",
            r.buckets
        );
    }

    #[test]
    fn queue_wait_gets_its_own_bucket_and_still_tiles() {
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "fifo successor".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::from_secs(3.0),
            overhead: SimDuration::from_secs(0.5),
            trailing: SimDuration::ZERO,
            tasks: vec![worked_task(0, 0.0, 1.0, 10, 0)],
        });
        let r = assert_sums(&m);
        assert!((r.makespan - 4.5).abs() < EPS);
        assert!(
            (r.buckets.scheduler_queue - 3.0).abs() < EPS,
            "{:?}",
            r.buckets
        );
        assert!(
            (r.buckets.scheduler_idle - 0.5).abs() < EPS,
            "queue wait must not inflate scheduler_idle: {:?}",
            r.buckets
        );
        assert!((r.buckets.compute - 1.0).abs() < EPS, "{:?}", r.buckets);
    }

    #[test]
    fn queued_stage_with_dropped_tasks_still_attributes_queue() {
        let m = Metrics::with_capacity(MetricsCapacity {
            events: 16,
            jobs: 16,
            stages: 16,
            tasks: 1,
        });
        // Two tasks but capacity one: the span survives, a task is dropped,
        // forcing the proportional fallback path.
        m.record_stage(StageExecution {
            label: "queued, truncated".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::from_secs(2.0),
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![
                worked_task(0, 0.0, 1.0, 10, 0),
                worked_task(1, 0.0, 1.0, 10, 0),
            ],
        });
        let r = assert_sums(&m);
        assert!(
            (r.buckets.scheduler_queue - 2.0).abs() < EPS,
            "{:?}",
            r.buckets
        );
    }

    #[test]
    fn stall_micros_become_fault_stall() {
        let m = Metrics::new();
        let mut t = task(0, 0, 0, 0.0, 2.0);
        t.profile.work.add_stall_micros(1_000_000); // 1s of backoff
        t.profile.work.add_cpu(10_000_000); // 1s of CPU at hadoop_era
        m.record_stage(StageExecution {
            label: "stalled".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![t],
        });
        let r = assert_sums(&m);
        assert!(r.buckets.fault_stall > 0.5, "{:?}", r.buckets);
        assert!(r.buckets.compute > 0.5, "{:?}", r.buckets);
    }

    #[test]
    fn dropped_history_goes_to_unattributed() {
        let m = Metrics::with_capacity(MetricsCapacity {
            events: 2,
            jobs: 2,
            stages: 2,
            tasks: 4,
        });
        for i in 0..5 {
            m.record_stage(StageExecution {
                label: format!("s{i}"),
                kind: EventKind::Stage,
                shuffle_id: None,
                queue: SimDuration::ZERO,
                overhead: SimDuration::ZERO,
                trailing: SimDuration::ZERO,
                tasks: vec![worked_task(0, 0.0, 1.0, 10, 0)],
            });
        }
        let r = assert_sums(&m);
        assert!(r.partial);
        // The three dropped 1s stages are unexplained history.
        assert!(
            (r.buckets.unattributed - 3.0).abs() < EPS,
            "{:?}",
            r.buckets
        );
    }

    #[test]
    fn skew_metrics_match_known_distribution() {
        let m = Metrics::new();
        let mut tasks = Vec::new();
        for p in 0..10 {
            let mut t = worked_task(p, 0.0, 1.0, 100, 0);
            if p == 9 {
                t.duration = SimDuration::from_secs(4.0);
                t.profile.records_read = 400;
                t.profile.work.add_records_in(300);
            }
            tasks.push(t);
        }
        m.record_stage(StageExecution {
            label: "skewed".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks,
        });
        let r = assert_sums(&m);
        assert_eq!(r.stages.len(), 1);
        let s = &r.stages[0];
        assert_eq!(s.tasks, 10);
        assert!((s.p50 - 1.0).abs() < EPS);
        assert!((s.max - 4.0).abs() < EPS);
        assert!((s.straggler_ratio - 4.0).abs() < EPS);
        assert!(s.partition_cv > 0.5, "{s:?}");
        // p95 with nearest-rank over 10 samples is the 10th value.
        assert!((s.p95 - 4.0).abs() < EPS);
    }

    #[test]
    fn report_renders_and_serializes() {
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "s".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::from_secs(0.5),
            trailing: SimDuration::ZERO,
            tasks: vec![worked_task(0, 0.0, 1.0, 10, 0)],
        });
        let r = assert_sums(&m);
        let text = r.render();
        assert!(text.contains("critical path"));
        assert!(text.contains("compute"));
        let json = r.to_json();
        let parsed = crate::json::parse(&json.to_string()).expect("round-trips");
        assert_eq!(
            parsed.get("buckets").and_then(|b| b.get("compute")),
            json.get("buckets").and_then(|b| b.get("compute"))
        );
        let total: f64 = parsed
            .get("buckets")
            .and_then(|b| b.as_object())
            .map(|o| o.values().filter_map(|v| v.as_f64()).sum())
            .unwrap_or(0.0);
        assert!((total - r.makespan).abs() < EPS);
    }
}
