//! Spark-UI-style text reports over the span log.
//!
//! Two tables, both computed from [`Metrics`]:
//!
//! * [`stage_report`] — one row per stage: task count, min/median/max task
//!   time, straggler ratio (max/median), records read and written at
//!   pipeline boundaries, shuffle bytes read and written, cache hit-rate;
//! * [`iteration_report`] — one row per [`EventKind::Iteration`] event,
//!   matching the per-pass x-axis of the paper's Fig. 3.
//!
//! [`full_report`] stitches them together with the job list and — never
//! silently — a warning block whenever the bounded in-memory logs dropped
//! entries.

use crate::metrics::{EventKind, Metrics, TaskSpan};
use crate::time::SimDuration;
use std::fmt::Write;

fn fmt_bytes(b: u64) -> String {
    if b >= 10 * 1024 * 1024 {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 10 * 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

fn fmt_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        format!("{n}")
    }
}

fn fmt_dur(d: SimDuration) -> String {
    let s = d.as_secs();
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Task-time distribution of one stage.
struct TaskStats {
    min: SimDuration,
    median: SimDuration,
    max: SimDuration,
}

fn task_stats(tasks: &[&TaskSpan]) -> Option<TaskStats> {
    if tasks.is_empty() {
        return None;
    }
    let mut durs: Vec<SimDuration> = tasks.iter().map(|t| t.duration).collect();
    durs.sort();
    Some(TaskStats {
        min: durs[0],
        median: durs[durs.len() / 2],
        max: durs[durs.len() - 1],
    })
}

/// Render the per-stage table. Stages whose task spans were dropped from
/// the ring buffer show `-` in the distribution columns.
pub fn stage_report(metrics: &Metrics) -> String {
    let stages = metrics.stage_spans();
    let tasks = metrics.task_spans();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5}  {:<34} {:>5}  {:>8} {:>8} {:>8}  {:>6}  {:>8} {:>8}  {:>10} {:>10}  {:>6}  {:>12}",
        "stage",
        "label",
        "tasks",
        "min",
        "median",
        "max",
        "strag",
        "rec.read",
        "rec.writ",
        "shuf.read",
        "shuf.write",
        "cache",
        "recovery"
    );
    for s in &stages {
        let mine: Vec<&TaskSpan> = tasks.iter().filter(|t| t.stage_id == s.stage_id).collect();
        let stats = task_stats(&mine);
        let (min, median, max, strag) = match &stats {
            Some(st) => {
                let strag = if st.median.as_secs() > 0.0 {
                    format!("{:.2}x", st.max.as_secs() / st.median.as_secs())
                } else {
                    "-".to_string()
                };
                (fmt_dur(st.min), fmt_dur(st.median), fmt_dur(st.max), strag)
            }
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        let lookups = s.profile.cache_hits + s.profile.cache_misses;
        let cache = if lookups > 0 {
            format!(
                "{:.0}%",
                100.0 * s.profile.cache_hits as f64 / lookups as f64
            )
        } else {
            "-".to_string()
        };
        let mut label = s.label.clone();
        if let Some(sid) = s.shuffle_id {
            if !label.contains("shuffle") {
                label = format!("{label} [shuffle {sid}]");
            }
        }
        if label.len() > 34 {
            label.truncate(31);
            label.push_str("...");
        }
        // Compact failures/retries/speculative-launch counts, `-` for a
        // fault-free stage.
        let r = &s.recovery;
        let recovery = if r.any() {
            format!(
                "{}f {}r {}s",
                r.task_failures, r.task_retries, r.speculative_launched
            )
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "{:>5}  {:<34} {:>5}  {:>8} {:>8} {:>8}  {:>6}  {:>8} {:>8}  {:>10} {:>10}  {:>6}  {:>12}",
            s.stage_id,
            label,
            s.tasks,
            min,
            median,
            max,
            strag,
            fmt_count(s.profile.records_read),
            fmt_count(s.profile.records_written),
            fmt_bytes(s.profile.shuffle_read_bytes),
            fmt_bytes(s.profile.shuffle_write_bytes),
            cache,
            recovery
        );
    }
    if stages.is_empty() {
        out.push_str("(no stages recorded)\n");
    }
    out
}

/// Render the per-iteration table (one row per Apriori pass), matching the
/// per-pass series the paper plots in Fig. 3.
pub fn iteration_report(metrics: &Metrics) -> String {
    let iters = metrics.events_of(EventKind::Iteration);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4}  {:<24} {:>10} {:>10}  {:>8}",
        "#", "iteration", "start", "end", "time"
    );
    let mut total = SimDuration::ZERO;
    for (i, e) in iters.iter().enumerate() {
        total += e.duration;
        let _ = writeln!(
            out,
            "{:>4}  {:<24} {:>9.3}s {:>9.3}s  {:>8}",
            i + 1,
            e.label,
            e.start.as_secs(),
            e.end().as_secs(),
            fmt_dur(e.duration)
        );
    }
    if iters.is_empty() {
        out.push_str("(no iterations recorded)\n");
    } else {
        let _ = writeln!(
            out,
            "{:>4}  {:<24} {:>10} {:>10}  {:>8}",
            "",
            "total",
            "",
            "",
            fmt_dur(total)
        );
    }
    out
}

/// Render job list, stage table, iteration table and totals — with an
/// explicit warning block if any bounded log dropped entries.
pub fn full_report(metrics: &Metrics) -> String {
    let mut out = String::new();
    let snap = metrics.snapshot();

    let dropped = metrics.dropped();
    if dropped.total() > 0 {
        let _ = writeln!(
            out,
            "WARNING: {} spans dropped, timings below are partial \
             (events: {}, jobs: {}, stages: {}, tasks: {}); \
             raise MetricsCapacity to retain more.",
            dropped.total(),
            dropped.events,
            dropped.jobs,
            dropped.stages,
            dropped.tasks
        );
        out.push('\n');
    }

    out.push_str("== Jobs ==\n");
    let jobs = metrics.job_spans();
    if jobs.is_empty() {
        out.push_str("(no jobs recorded)\n");
    } else {
        for j in &jobs {
            let _ = writeln!(
                out,
                "{:>4}  {:<34} {:>9.3}s .. {:>9.3}s  ({})",
                j.job_id,
                j.label,
                j.start.as_secs(),
                j.end().as_secs(),
                fmt_dur(j.duration)
            );
        }
    }
    out.push('\n');

    out.push_str("== Stages ==\n");
    out.push_str(&stage_report(metrics));
    out.push('\n');

    out.push_str("== Iterations ==\n");
    out.push_str(&iteration_report(metrics));
    out.push('\n');

    let p = &snap.profile;
    let lookups = p.cache_hits + p.cache_misses;
    let cache = if lookups > 0 {
        format!(
            "{:.0}% ({} hits / {} misses)",
            100.0 * p.cache_hits as f64 / lookups as f64,
            p.cache_hits,
            p.cache_misses
        )
    } else {
        "n/a".to_string()
    };
    let _ = writeln!(out, "== Totals ==");
    let _ = writeln!(
        out,
        "virtual time {:.3}s | jobs {} | stages {} | tasks {}",
        snap.now.as_secs(),
        snap.jobs,
        snap.stages,
        snap.tasks
    );
    let _ = writeln!(
        out,
        "shuffle read {} | shuffle write {} | broadcast {} | cache hit-rate {}",
        fmt_bytes(p.shuffle_read_bytes),
        fmt_bytes(p.shuffle_write_bytes),
        fmt_bytes(p.broadcast_read_bytes),
        cache
    );
    let _ = writeln!(
        out,
        "records read {} | records written {} | bytes materialized {}",
        fmt_count(p.records_read),
        fmt_count(p.records_written),
        fmt_bytes(p.bytes_materialized)
    );
    let r = &snap.recovery;
    if r.any() {
        let _ = writeln!(
            out,
            "recovery: {} task failures | {} retries | {} speculative ({} won) | \
             {} nodes lost | {} blacklisted | {} partitions recomputed | \
             {} fetch failures | {} broadcast re-fetches",
            r.task_failures,
            r.task_retries,
            r.speculative_launched,
            r.speculative_wins,
            r.nodes_lost,
            r.nodes_blacklisted,
            r.recomputed_partitions,
            r.fetch_failures,
            r.broadcast_refetches
        );
    }
    // The transient/checkpoint layer gets its own line, again only when
    // something actually happened.
    if r.fetch_retries > 0
        || r.backoff_micros > 0
        || r.checkpoint_writes > 0
        || r.checkpoint_reads > 0
        || r.max_replay_depth > 0
    {
        let _ = writeln!(
            out,
            "transients: {} fetch retries | {:.3}s backoff | \
             {} checkpoint writes | {} checkpoint reads | max replay depth {}",
            r.fetch_retries,
            r.backoff_micros as f64 / 1e6,
            r.checkpoint_writes,
            r.checkpoint_reads,
            r.max_replay_depth
        );
    }
    // Silent-corruption detection/repair, only under a corruption plan.
    let i = &r.integrity;
    if i.any() {
        let _ = writeln!(
            out,
            "integrity: {} corruptions injected | {} detected | {} repaired \
             ({} via replica, {} via recompute, {} via resubmit)",
            i.corruptions_injected,
            i.corruptions_detected,
            i.corruptions_repaired,
            i.repaired_via_replica,
            i.repaired_via_recompute,
            i.repaired_via_resubmit
        );
    }
    // The memory governor's line, only when a plan armed it and something
    // actually happened (spill, step-down, or OOM).
    let m = &r.mem;
    if m.any() {
        let _ = writeln!(
            out,
            "memory: peak {} execution | {} spills ({}) | {} step-downs | \
             {} OOM injected ({} killed, {} survived by degradation)",
            fmt_bytes(m.peak_execution_bytes),
            m.spills,
            fmt_bytes(m.spill_bytes),
            m.degradations,
            m.oom_injected,
            m.oom_killed,
            m.oom_survived_by_degradation
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsCapacity, StageExecution, TaskExecution};
    use crate::spec::NodeId;
    use crate::work::TaskProfile;

    fn task(partition: usize, dur: f64, profile: TaskProfile) -> TaskExecution {
        TaskExecution {
            partition,
            node: NodeId(0),
            core: 0,
            start: SimDuration::ZERO,
            duration: SimDuration::from_secs(dur),
            profile,
        }
    }

    fn shuffle_profile() -> TaskProfile {
        let mut p = TaskProfile::new();
        p.shuffle_read_bytes = 2048;
        p.shuffle_write_bytes = 4096;
        p.cache_hits = 3;
        p.cache_misses = 1;
        p.records_read = 12_500;
        p.records_written = 777;
        p.bytes_materialized = 512;
        p
    }

    #[test]
    fn stage_table_has_distribution_and_cache_columns() {
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "count rdd2".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![
                task(0, 1.0, shuffle_profile()),
                task(1, 2.0, TaskProfile::new()),
                task(2, 4.0, TaskProfile::new()),
            ],
        });
        let table = stage_report(&m);
        assert!(table.contains("count rdd2"), "{table}");
        assert!(table.contains("1.00s"), "min: {table}");
        assert!(table.contains("2.00s"), "median: {table}");
        assert!(table.contains("4.00s"), "max: {table}");
        assert!(table.contains("2.00x"), "straggler ratio: {table}");
        assert!(table.contains("4096 B"), "shuffle write: {table}");
        assert!(table.contains("2048 B"), "shuffle read: {table}");
        assert!(table.contains("75%"), "cache hit rate: {table}");
        assert!(table.contains("rec.read"), "records header: {table}");
        assert!(table.contains("12.5k"), "records read: {table}");
        assert!(table.contains("777"), "records written: {table}");
    }

    #[test]
    fn totals_include_record_and_materialization_counters() {
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "s".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![task(0, 1.0, shuffle_profile())],
        });
        let report = full_report(&m);
        assert!(report.contains("records read 12.5k"), "{report}");
        assert!(report.contains("records written 777"), "{report}");
        assert!(report.contains("bytes materialized 512 B"), "{report}");
    }

    #[test]
    fn iteration_table_lists_passes_in_order() {
        let m = Metrics::new();
        m.advance_with_event(SimDuration::from_secs(2.0), EventKind::Iteration, "pass 1");
        m.advance_with_event(SimDuration::from_secs(1.0), EventKind::Iteration, "pass 2");
        let table = iteration_report(&m);
        let pass1 = table.find("pass 1").unwrap();
        let pass2 = table.find("pass 2").unwrap();
        assert!(pass1 < pass2);
        assert!(table.contains("3.00s"), "total row: {table}");
    }

    #[test]
    fn full_report_warns_about_drops() {
        let m = Metrics::with_capacity(MetricsCapacity {
            events: 1,
            jobs: 1,
            stages: 1,
            tasks: 1,
        });
        for i in 0..3 {
            m.record_stage(StageExecution {
                label: format!("s{i}"),
                kind: EventKind::Stage,
                shuffle_id: None,
                queue: SimDuration::ZERO,
                overhead: SimDuration::ZERO,
                trailing: SimDuration::ZERO,
                tasks: vec![task(0, 1.0, TaskProfile::new())],
            });
        }
        let report = full_report(&m);
        assert!(report.contains("WARNING"), "{report}");
        assert!(
            report.contains("spans dropped, timings below are partial"),
            "{report}"
        );
        assert!(report.contains("tasks: 2"), "{report}");
    }

    #[test]
    fn recovery_counters_show_in_stage_row_and_totals() {
        use crate::fault::RecoveryCounters;
        let m = Metrics::new();
        m.record_stage_with_recovery(
            StageExecution {
                label: "flaky stage".into(),
                kind: EventKind::Stage,
                shuffle_id: None,
                queue: SimDuration::ZERO,
                overhead: SimDuration::ZERO,
                trailing: SimDuration::ZERO,
                tasks: vec![task(0, 1.0, TaskProfile::new())],
            },
            RecoveryCounters {
                task_failures: 3,
                task_retries: 2,
                speculative_launched: 1,
                speculative_wins: 1,
                ..RecoveryCounters::default()
            },
        );
        m.note_recovery(&RecoveryCounters {
            nodes_lost: 1,
            recomputed_partitions: 5,
            ..RecoveryCounters::default()
        });
        let table = stage_report(&m);
        assert!(table.contains("3f 2r 1s"), "{table}");
        let report = full_report(&m);
        assert!(report.contains("3 task failures"), "{report}");
        assert!(report.contains("1 nodes lost"), "{report}");
        assert!(report.contains("5 partitions recomputed"), "{report}");
    }

    #[test]
    fn transient_and_checkpoint_counters_show_in_totals() {
        use crate::fault::RecoveryCounters;
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "s".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![task(0, 1.0, TaskProfile::new())],
        });
        m.note_recovery(&RecoveryCounters {
            fetch_retries: 4,
            backoff_micros: 1_500_000,
            checkpoint_writes: 8,
            checkpoint_reads: 3,
            max_replay_depth: 2,
            ..RecoveryCounters::default()
        });
        let report = full_report(&m);
        assert!(report.contains("4 fetch retries"), "{report}");
        assert!(report.contains("1.500s backoff"), "{report}");
        assert!(report.contains("8 checkpoint writes"), "{report}");
        assert!(report.contains("3 checkpoint reads"), "{report}");
        assert!(report.contains("max replay depth 2"), "{report}");
    }

    #[test]
    fn integrity_counters_show_in_totals() {
        use crate::fault::{IntegrityCounters, RecoveryCounters};
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "s".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![task(0, 1.0, TaskProfile::new())],
        });
        m.note_recovery(&RecoveryCounters {
            integrity: IntegrityCounters {
                corruptions_injected: 5,
                corruptions_detected: 5,
                corruptions_repaired: 5,
                repaired_via_replica: 2,
                repaired_via_recompute: 2,
                repaired_via_resubmit: 1,
            },
            ..RecoveryCounters::default()
        });
        let report = full_report(&m);
        assert!(
            report.contains("integrity: 5 corruptions injected"),
            "{report}"
        );
        assert!(report.contains("5 detected"), "{report}");
        assert!(
            report.contains("(2 via replica, 2 via recompute, 1 via resubmit)"),
            "{report}"
        );
    }

    #[test]
    fn fault_free_report_has_no_recovery_lines() {
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "clean".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![task(0, 1.0, TaskProfile::new())],
        });
        let report = full_report(&m);
        assert!(!report.contains("recovery:"));
        assert!(!report.contains("transients:"));
        assert!(!report.contains("integrity:"));
        assert!(!report.contains("memory:"));
    }

    #[test]
    fn full_report_without_drops_has_no_warning() {
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "s".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![task(0, 1.0, TaskProfile::new())],
        });
        let report = full_report(&m);
        assert!(!report.contains("WARNING"), "{report}");
        assert!(report.contains("== Totals =="));
    }
}
