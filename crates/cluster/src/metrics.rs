//! Shared metrics: the virtual clock, aggregate counters, and an event log.
//!
//! Both engines charge all their virtual time here, so an experiment can run
//! a YAFIM job and an MR-Apriori job against separate clusters and compare
//! `metrics().now()` readings, or read back the event log to reconstruct the
//! per-iteration series of the paper's Fig. 3/Fig. 6.

use crate::time::{SimDuration, SimInstant};
use crate::work::WorkCounters;
use parking_lot::Mutex;
use std::sync::Arc;

/// What kind of activity an [`Event`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A whole engine job (one action / one MapReduce job).
    Job,
    /// One scheduler stage (between shuffle boundaries).
    Stage,
    /// One Apriori iteration (pass k), as plotted in Fig. 3.
    Iteration,
    /// A broadcast of shared data to the workers.
    Broadcast,
    /// Reading a file from simulated HDFS.
    HdfsRead,
    /// Committing a file to simulated HDFS.
    HdfsWrite,
    /// Driver-side computation (candidate generation etc.).
    Driver,
    /// Anything else.
    Other,
}

/// One interval on the virtual timeline.
#[derive(Clone, Debug)]
pub struct Event {
    /// Category of the interval.
    pub kind: EventKind,
    /// Human-readable label, e.g. `"pass 3"` or `"stage 7 (reduceByKey)"`.
    pub label: String,
    /// Start of the interval.
    pub start: SimInstant,
    /// Length of the interval.
    pub duration: SimDuration,
}

impl Event {
    /// End of the interval.
    pub fn end(&self) -> SimInstant {
        self.start + self.duration
    }
}

/// Aggregate counters over a whole run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsSnapshot {
    /// Current virtual time.
    pub now: SimInstant,
    /// Jobs executed.
    pub jobs: u64,
    /// Stages executed.
    pub stages: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Merged work counters across all tasks.
    pub work: WorkCounters,
}

#[derive(Default)]
struct MetricsInner {
    now: SimInstant,
    jobs: u64,
    stages: u64,
    tasks: u64,
    work: WorkCounters,
    events: Vec<Event>,
}

/// Thread-safe handle to the virtual clock and event log. Cheap to clone.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<MetricsInner>>,
}

impl Metrics {
    /// A fresh metrics sink at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.inner.lock().now
    }

    /// Advance the virtual clock by `d`, returning the interval's
    /// `(start, end)`.
    pub fn advance(&self, d: SimDuration) -> (SimInstant, SimInstant) {
        let mut g = self.inner.lock();
        let start = g.now;
        g.now += d;
        (start, g.now)
    }

    /// Advance the clock and record an [`Event`] covering the interval.
    pub fn advance_with_event(
        &self,
        d: SimDuration,
        kind: EventKind,
        label: impl Into<String>,
    ) -> (SimInstant, SimInstant) {
        let mut g = self.inner.lock();
        let start = g.now;
        g.now += d;
        let end = g.now;
        g.events.push(Event {
            kind,
            label: label.into(),
            start,
            duration: d,
        });
        (start, end)
    }

    /// Record an event over an interval that already elapsed (e.g. a job
    /// whose stages each advanced the clock individually).
    pub fn record_span(&self, kind: EventKind, label: impl Into<String>, start: SimInstant) {
        let mut g = self.inner.lock();
        let duration = g.now.since(start);
        g.events.push(Event {
            kind,
            label: label.into(),
            start,
            duration,
        });
    }

    /// Count a finished job.
    pub fn count_job(&self) {
        self.inner.lock().jobs += 1;
    }

    /// Count a finished stage.
    pub fn count_stage(&self) {
        self.inner.lock().stages += 1;
    }

    /// Count `n` finished tasks and merge their work counters.
    pub fn count_tasks(&self, n: u64, work: &WorkCounters) {
        let mut g = self.inner.lock();
        g.tasks += n;
        g.work.merge(work);
    }

    /// Copy of the aggregate counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock();
        MetricsSnapshot {
            now: g.now,
            jobs: g.jobs,
            stages: g.stages,
            tasks: g.tasks,
            work: g.work,
        }
    }

    /// Copy of the event log.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.clone()
    }

    /// Events of one kind, in order.
    pub fn events_of(&self, kind: EventKind) -> Vec<Event> {
        self.inner
            .lock()
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Reset clock, counters and log (for reusing a cluster across runs).
    pub fn reset(&self) {
        *self.inner.lock() = MetricsInner::default();
    }

    /// Aggregate the event log by kind: `(kind, events, total virtual time)`,
    /// ordered by descending total time. Useful for "where did the time go"
    /// breakdowns in experiment reports.
    pub fn summary_by_kind(&self) -> Vec<(EventKind, usize, SimDuration)> {
        let g = self.inner.lock();
        let mut agg: Vec<(EventKind, usize, SimDuration)> = Vec::new();
        for e in &g.events {
            match agg.iter_mut().find(|(k, _, _)| *k == e.kind) {
                Some((_, n, d)) => {
                    *n += 1;
                    *d += e.duration;
                }
                None => agg.push((e.kind, 1, e.duration)),
            }
        }
        agg.sort_by_key(|e| std::cmp::Reverse(e.2));
        agg
    }

    /// Render the event log as an indented text timeline (one line per
    /// event), for debugging and experiment write-ups.
    pub fn render_timeline(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in self.inner.lock().events.iter() {
            let _ = writeln!(
                out,
                "[{:>10.3}s +{:>9.3}s] {:<10} {}",
                e.start.as_secs(),
                e.duration.as_secs(),
                format!("{:?}", e.kind),
                e.label
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let m = Metrics::new();
        let (s, e) = m.advance(SimDuration::from_secs(2.0));
        assert_eq!(s, SimInstant::EPOCH);
        assert_eq!(e.as_secs(), 2.0);
        assert_eq!(m.now().as_secs(), 2.0);
    }

    #[test]
    fn events_are_logged_in_order() {
        let m = Metrics::new();
        m.advance_with_event(SimDuration::from_secs(1.0), EventKind::Stage, "s0");
        m.advance_with_event(SimDuration::from_secs(0.5), EventKind::Iteration, "pass 1");
        let ev = m.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].label, "s0");
        assert_eq!(ev[1].start.as_secs(), 1.0);
        assert_eq!(ev[1].end().as_secs(), 1.5);
        assert_eq!(m.events_of(EventKind::Iteration).len(), 1);
    }

    #[test]
    fn record_span_covers_elapsed_interval() {
        let m = Metrics::new();
        let start = m.now();
        m.advance(SimDuration::from_secs(0.25));
        m.advance(SimDuration::from_secs(0.75));
        m.record_span(EventKind::Job, "job", start);
        let ev = m.events();
        assert_eq!(ev[0].duration.as_secs(), 1.0);
    }

    #[test]
    fn task_counters_merge() {
        let m = Metrics::new();
        let mut w = WorkCounters::new();
        w.add_records_in(5);
        m.count_tasks(3, &w);
        m.count_tasks(2, &w);
        let snap = m.snapshot();
        assert_eq!(snap.tasks, 5);
        assert_eq!(snap.work.records_in, 10);
    }

    #[test]
    fn summary_aggregates_by_kind() {
        let m = Metrics::new();
        m.advance_with_event(SimDuration::from_secs(1.0), EventKind::Stage, "a");
        m.advance_with_event(SimDuration::from_secs(2.0), EventKind::Stage, "b");
        m.advance_with_event(SimDuration::from_secs(0.5), EventKind::Broadcast, "c");
        let s = m.summary_by_kind();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, EventKind::Stage);
        assert_eq!(s[0].1, 2);
        assert_eq!(s[0].2.as_secs(), 3.0);
        assert_eq!(s[1].0, EventKind::Broadcast);
    }

    #[test]
    fn timeline_renders_every_event() {
        let m = Metrics::new();
        m.advance_with_event(SimDuration::from_secs(1.0), EventKind::Job, "job one");
        m.advance_with_event(SimDuration::from_secs(0.25), EventKind::Stage, "stage two");
        let text = m.render_timeline();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("job one"));
        assert!(text.contains("stage two"));
        assert!(text.contains("1.000s"), "{text}");
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::new();
        m.advance_with_event(SimDuration::from_secs(1.0), EventKind::Job, "j");
        m.count_job();
        m.reset();
        assert_eq!(m.now(), SimInstant::EPOCH);
        assert!(m.events().is_empty());
        assert_eq!(m.snapshot().jobs, 0);
    }
}
