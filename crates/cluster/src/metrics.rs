//! Shared metrics: the virtual clock, aggregate counters, and a hierarchical
//! span log (job → stage → task) over the virtual timeline.
//!
//! Both engines charge all their virtual time here, so an experiment can run
//! a YAFIM job and an MR-Apriori job against separate clusters and compare
//! `metrics().now()` readings, or read back the logs to reconstruct the
//! per-iteration series of the paper's Fig. 3/Fig. 6.
//!
//! Three granularities are kept, all on the same virtual clock:
//!
//! * **events** — flat intervals ([`Event`]), the coarse log the engines have
//!   always produced (iterations, broadcasts, HDFS traffic, driver work);
//! * **spans** — [`JobSpan`] / [`StageSpan`] / [`TaskSpan`], parented
//!   job → stage → task, each task attributed to a simulated node and core
//!   with queue wait and a full [`TaskProfile`];
//! * **aggregates** — [`MetricsSnapshot`] totals.
//!
//! Every log is a bounded ring buffer: when full, the *oldest* entries are
//! dropped and counted in [`DropCounts`], never silently (the text report
//! prints them). Engines record stages through [`Metrics::record_stage`],
//! which advances the clock and files all three granularities atomically.

use crate::fault::RecoveryCounters;
use crate::spec::NodeId;
use crate::sync::Mutex;
use crate::time::{SimDuration, SimInstant};
use crate::work::{TaskProfile, WorkCounters};
use std::collections::VecDeque;
use std::sync::Arc;

/// What kind of activity an [`Event`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A whole engine job (one action / one MapReduce job).
    Job,
    /// One scheduler stage (between shuffle boundaries).
    Stage,
    /// A shuffle map stage (writing shuffle files for a `reduceByKey`).
    Shuffle,
    /// One Apriori iteration (pass k), as plotted in Fig. 3.
    Iteration,
    /// A broadcast of shared data to the workers.
    Broadcast,
    /// Reading a file from simulated HDFS.
    HdfsRead,
    /// Committing a file to simulated HDFS.
    HdfsWrite,
    /// Driver-side computation (candidate generation etc.).
    Driver,
    /// Dataset projection / trimming work (dense re-encoding dictionary
    /// builds, cross-pass trim planning) — attributed separately from
    /// generic driver work so reports can show what the re-encoding costs.
    Projection,
    /// Materializing an RDD's partitions to replicated simulated HDFS
    /// (lineage truncation) and reads served back from such a checkpoint.
    Checkpoint,
    /// Anything else.
    Other,
}

/// One interval on the virtual timeline.
#[derive(Clone, Debug)]
pub struct Event {
    /// Category of the interval.
    pub kind: EventKind,
    /// Human-readable label, e.g. `"pass 3"` or `"stage 7 (reduceByKey)"`.
    pub label: String,
    /// Start of the interval.
    pub start: SimInstant,
    /// Length of the interval.
    pub duration: SimDuration,
}

impl Event {
    /// End of the interval.
    pub fn end(&self) -> SimInstant {
        self.start + self.duration
    }
}

/// One engine job (action / MR job) on the virtual timeline.
#[derive(Clone, Debug)]
pub struct JobSpan {
    /// Job id, unique per metrics sink.
    pub job_id: u64,
    /// Label, e.g. `"collect rdd7"`.
    pub label: String,
    /// Start of the job interval.
    pub start: SimInstant,
    /// Length of the job interval.
    pub duration: SimDuration,
}

impl JobSpan {
    /// End of the job interval.
    pub fn end(&self) -> SimInstant {
        self.start + self.duration
    }
}

/// One scheduler stage, parented to a job.
#[derive(Clone, Debug)]
pub struct StageSpan {
    /// Stage id, unique per metrics sink.
    pub stage_id: u64,
    /// Owning job id (0 when the stage ran outside any open job).
    pub job_id: u64,
    /// Stage label.
    pub label: String,
    /// [`EventKind::Stage`] or [`EventKind::Shuffle`].
    pub kind: EventKind,
    /// Shuffle id, for map stages of a `reduceByKey` and for stages reading
    /// shuffle output.
    pub shuffle_id: Option<u64>,
    /// Time the stage waited in the multi-job scheduler queue before any
    /// setup work began (zero outside FIFO pools).
    pub queue: SimDuration,
    /// Start of the stage interval (including queue wait and overhead).
    pub start: SimInstant,
    /// Length of the stage interval.
    pub duration: SimDuration,
    /// Number of tasks the stage ran.
    pub tasks: u64,
    /// Merged profile over the stage's tasks.
    pub profile: TaskProfile,
    /// Failures, retries and speculation this stage went through (all zero
    /// for a fault-free stage).
    pub recovery: RecoveryCounters,
}

impl StageSpan {
    /// End of the stage interval.
    pub fn end(&self) -> SimInstant {
        self.start + self.duration
    }
}

/// One task, parented to a stage, attributed to a simulated node and core.
#[derive(Clone, Debug)]
pub struct TaskSpan {
    /// Owning stage id.
    pub stage_id: u64,
    /// Owning job id (0 when outside any open job).
    pub job_id: u64,
    /// Partition index the task computed.
    pub partition: usize,
    /// Node the task ran on.
    pub node: NodeId,
    /// Core *within* the node.
    pub core: usize,
    /// Time the task spent queued after stage submission.
    pub queue_wait: SimDuration,
    /// Launch time on the virtual timeline.
    pub start: SimInstant,
    /// Run time.
    pub duration: SimDuration,
    /// Everything the task did.
    pub profile: TaskProfile,
}

impl TaskSpan {
    /// End of the task interval.
    pub fn end(&self) -> SimInstant {
        self.start + self.duration
    }
}

/// One task's execution record, as reported by an engine to
/// [`Metrics::record_stage`]. Times are relative to the start of the stage's
/// task window (after the stage overhead).
#[derive(Clone, Debug)]
pub struct TaskExecution {
    /// Partition index.
    pub partition: usize,
    /// Node the task ran on.
    pub node: NodeId,
    /// Core within the node.
    pub core: usize,
    /// Launch offset from the task window start (the queue wait).
    pub start: SimDuration,
    /// Task duration.
    pub duration: SimDuration,
    /// Everything the task did.
    pub profile: TaskProfile,
}

/// One stage's execution record: clock accounting plus per-task placements.
///
/// The stage charges `queue + overhead + max(start + duration over tasks) +
/// trailing` to the virtual clock. `queue` is time spent waiting for the
/// multi-job scheduler to admit the stage (FIFO pools); `overhead` models
/// driver/stage setup before the first task launches; `trailing` models
/// per-wave latencies charged after the last task (MapReduce heartbeats).
#[derive(Clone, Debug)]
pub struct StageExecution {
    /// Stage label.
    pub label: String,
    /// [`EventKind::Stage`] or [`EventKind::Shuffle`].
    pub kind: EventKind,
    /// Shuffle id this stage writes or reads, if any.
    pub shuffle_id: Option<u64>,
    /// Scheduler-queue wait charged before any setup work.
    pub queue: SimDuration,
    /// Setup time before the first task can launch.
    pub overhead: SimDuration,
    /// Extra time charged after the last task finishes.
    pub trailing: SimDuration,
    /// Per-task execution records.
    pub tasks: Vec<TaskExecution>,
}

/// Aggregate counters over a whole run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsSnapshot {
    /// Current virtual time.
    pub now: SimInstant,
    /// Jobs executed.
    pub jobs: u64,
    /// Stages executed.
    pub stages: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Merged work counters across all tasks.
    pub work: WorkCounters,
    /// Merged full profile across all tasks.
    pub profile: TaskProfile,
    /// Merged failure/retry/speculation counters across all stages.
    pub recovery: RecoveryCounters,
}

/// How many entries each bounded log has discarded (oldest first).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DropCounts {
    /// Dropped flat events.
    pub events: u64,
    /// Dropped job spans.
    pub jobs: u64,
    /// Dropped stage spans.
    pub stages: u64,
    /// Dropped task spans.
    pub tasks: u64,
}

impl DropCounts {
    /// Total dropped entries across all logs.
    pub fn total(&self) -> u64 {
        self.events + self.jobs + self.stages + self.tasks
    }
}

/// Ring-buffer capacities for the in-memory logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricsCapacity {
    /// Max retained flat events.
    pub events: usize,
    /// Max retained job spans.
    pub jobs: usize,
    /// Max retained stage spans.
    pub stages: usize,
    /// Max retained task spans.
    pub tasks: usize,
}

impl Default for MetricsCapacity {
    fn default() -> Self {
        // Sized so every paper-figure run fits with room to spare, while a
        // pathological long-running job tops out around tens of MB.
        MetricsCapacity {
            events: 16_384,
            jobs: 4_096,
            stages: 16_384,
            tasks: 262_144,
        }
    }
}

/// A bounded log: ring buffer plus a count of entries dropped at the front.
struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    fn new(capacity: usize) -> Self {
        Ring {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
    }
}

struct MetricsInner {
    now: SimInstant,
    jobs: u64,
    stages: u64,
    tasks: u64,
    work: WorkCounters,
    profile: TaskProfile,
    recovery: RecoveryCounters,
    next_job_id: u64,
    next_stage_id: u64,
    /// Innermost-last stack of jobs opened via [`Metrics::begin_job`].
    open_jobs: Vec<(u64, String, SimInstant)>,
    events: Ring<Event>,
    job_spans: Ring<JobSpan>,
    stage_spans: Ring<StageSpan>,
    task_spans: Ring<TaskSpan>,
}

impl MetricsInner {
    fn new(capacity: MetricsCapacity) -> Self {
        MetricsInner {
            now: SimInstant::EPOCH,
            jobs: 0,
            stages: 0,
            tasks: 0,
            work: WorkCounters::new(),
            profile: TaskProfile::new(),
            recovery: RecoveryCounters::default(),
            next_job_id: 1,
            next_stage_id: 1,
            open_jobs: Vec::new(),
            events: Ring::new(capacity.events),
            job_spans: Ring::new(capacity.jobs),
            stage_spans: Ring::new(capacity.stages),
            task_spans: Ring::new(capacity.tasks),
        }
    }

    fn capacity(&self) -> MetricsCapacity {
        MetricsCapacity {
            events: self.events.capacity,
            jobs: self.job_spans.capacity,
            stages: self.stage_spans.capacity,
            tasks: self.task_spans.capacity,
        }
    }
}

/// Thread-safe handle to the virtual clock and the logs. Cheap to clone.
#[derive(Clone)]
pub struct Metrics {
    inner: Arc<Mutex<MetricsInner>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A fresh metrics sink at virtual time zero with default capacities.
    pub fn new() -> Self {
        Self::with_capacity(MetricsCapacity::default())
    }

    /// A fresh metrics sink with explicit ring-buffer capacities.
    pub fn with_capacity(capacity: MetricsCapacity) -> Self {
        Metrics {
            inner: Arc::new(Mutex::new(MetricsInner::new(capacity))),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.inner.lock().now
    }

    /// Advance the virtual clock by `d`, returning the interval's
    /// `(start, end)`.
    pub fn advance(&self, d: SimDuration) -> (SimInstant, SimInstant) {
        let mut g = self.inner.lock();
        let start = g.now;
        g.now += d;
        (start, g.now)
    }

    /// Advance the clock and record an [`Event`] covering the interval.
    pub fn advance_with_event(
        &self,
        d: SimDuration,
        kind: EventKind,
        label: impl Into<String>,
    ) -> (SimInstant, SimInstant) {
        let mut g = self.inner.lock();
        let start = g.now;
        g.now += d;
        let end = g.now;
        g.events.push(Event {
            kind,
            label: label.into(),
            start,
            duration: d,
        });
        (start, end)
    }

    /// Record an event over an interval that already elapsed (e.g. a job
    /// whose stages each advanced the clock individually).
    pub fn record_span(&self, kind: EventKind, label: impl Into<String>, start: SimInstant) {
        let mut g = self.inner.lock();
        let duration = g.now.since(start);
        g.events.push(Event {
            kind,
            label: label.into(),
            start,
            duration,
        });
    }

    /// Open a job span at the current virtual time. Stages recorded before
    /// the matching [`Metrics::end_job`] are parented to it. Returns the job
    /// id.
    pub fn begin_job(&self, label: impl Into<String>) -> u64 {
        let mut g = self.inner.lock();
        let id = g.next_job_id;
        g.next_job_id += 1;
        let now = g.now;
        g.open_jobs.push((id, label.into(), now));
        id
    }

    /// Close a job opened with [`Metrics::begin_job`]: files the
    /// [`JobSpan`], a flat [`EventKind::Job`] event, and bumps the job
    /// counter. Out-of-order ids are tolerated (the matching entry is
    /// removed wherever it sits on the stack).
    pub fn end_job(&self, job_id: u64) {
        let mut g = self.inner.lock();
        let Some(pos) = g.open_jobs.iter().position(|(id, _, _)| *id == job_id) else {
            return;
        };
        let (id, label, start) = g.open_jobs.remove(pos);
        let duration = g.now.since(start);
        g.events.push(Event {
            kind: EventKind::Job,
            label: label.clone(),
            start,
            duration,
        });
        g.job_spans.push(JobSpan {
            job_id: id,
            label,
            start,
            duration,
        });
        g.jobs += 1;
    }

    /// Record one executed stage: advances the clock by
    /// `overhead + makespan + trailing`, files the stage span, its task
    /// spans, a flat event, and merges the profiles into the aggregates.
    /// Returns the assigned stage id.
    pub fn record_stage(&self, exec: StageExecution) -> u64 {
        self.record_stage_with_recovery(exec, RecoveryCounters::default())
    }

    /// Like [`Metrics::record_stage`], also attaching the stage's
    /// failure/retry/speculation counters (merged into the aggregates).
    pub fn record_stage_with_recovery(
        &self,
        exec: StageExecution,
        recovery: RecoveryCounters,
    ) -> u64 {
        let mut g = self.inner.lock();
        let stage_id = g.next_stage_id;
        g.next_stage_id += 1;
        let job_id = g.open_jobs.last().map_or(0, |(id, _, _)| *id);

        let stage_start = g.now;
        let makespan = exec
            .tasks
            .iter()
            .map(|t| t.start + t.duration)
            .fold(SimDuration::ZERO, SimDuration::max);
        let duration = exec.queue + exec.overhead + makespan + exec.trailing;
        g.now = stage_start + duration;

        let window_start = stage_start + exec.queue + exec.overhead;
        let mut merged = TaskProfile::new();
        for t in &exec.tasks {
            merged.merge(&t.profile);
            g.task_spans.push(TaskSpan {
                stage_id,
                job_id,
                partition: t.partition,
                node: t.node,
                core: t.core,
                queue_wait: t.start,
                start: window_start + t.start,
                duration: t.duration,
                profile: t.profile,
            });
        }

        g.events.push(Event {
            kind: exec.kind,
            label: exec.label.clone(),
            start: stage_start,
            duration,
        });
        g.stage_spans.push(StageSpan {
            stage_id,
            job_id,
            label: exec.label,
            kind: exec.kind,
            shuffle_id: exec.shuffle_id,
            queue: exec.queue,
            start: stage_start,
            duration,
            tasks: exec.tasks.len() as u64,
            profile: merged,
            recovery,
        });
        g.stages += 1;
        g.tasks += exec.tasks.len() as u64;
        g.work.merge(&merged.work);
        g.profile.merge(&merged);
        g.recovery.merge(&recovery);
        stage_id
    }

    /// Merge engine-level recovery counters (node losses, fetch failures,
    /// lineage recomputations) into the aggregates, outside any stage.
    pub fn note_recovery(&self, counters: &RecoveryCounters) {
        self.inner.lock().recovery.merge(counters);
    }

    /// Count a finished job (legacy path for engines not using
    /// [`Metrics::begin_job`]).
    pub fn count_job(&self) {
        self.inner.lock().jobs += 1;
    }

    /// Count a finished stage (legacy path for engines not using
    /// [`Metrics::record_stage`]).
    pub fn count_stage(&self) {
        self.inner.lock().stages += 1;
    }

    /// Count `n` finished tasks and merge their work counters.
    pub fn count_tasks(&self, n: u64, work: &WorkCounters) {
        let mut g = self.inner.lock();
        g.tasks += n;
        g.work.merge(work);
        g.profile.work.merge(work);
    }

    /// Copy of the aggregate counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock();
        MetricsSnapshot {
            now: g.now,
            jobs: g.jobs,
            stages: g.stages,
            tasks: g.tasks,
            work: g.work,
            profile: g.profile,
            recovery: g.recovery,
        }
    }

    /// Copy of the event log.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.buf.iter().cloned().collect()
    }

    /// Events of one kind, in order.
    pub fn events_of(&self, kind: EventKind) -> Vec<Event> {
        self.inner
            .lock()
            .events
            .buf
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Copy of the retained job spans, in completion order.
    pub fn job_spans(&self) -> Vec<JobSpan> {
        self.inner.lock().job_spans.buf.iter().cloned().collect()
    }

    /// Copy of the retained stage spans, in completion order.
    pub fn stage_spans(&self) -> Vec<StageSpan> {
        self.inner.lock().stage_spans.buf.iter().cloned().collect()
    }

    /// Copy of the retained task spans, grouped by stage in stage order.
    pub fn task_spans(&self) -> Vec<TaskSpan> {
        self.inner.lock().task_spans.buf.iter().cloned().collect()
    }

    /// How many entries each log has dropped to stay within capacity.
    pub fn dropped(&self) -> DropCounts {
        let g = self.inner.lock();
        DropCounts {
            events: g.events.dropped,
            jobs: g.job_spans.dropped,
            stages: g.stage_spans.dropped,
            tasks: g.task_spans.dropped,
        }
    }

    /// Reset clock, counters and logs (for reusing a cluster across runs).
    /// Capacities are preserved.
    pub fn reset(&self) {
        let mut g = self.inner.lock();
        *g = MetricsInner::new(g.capacity());
    }

    /// Aggregate the event log by kind: `(kind, events, total virtual time)`,
    /// ordered by descending total time. Useful for "where did the time go"
    /// breakdowns in experiment reports.
    pub fn summary_by_kind(&self) -> Vec<(EventKind, usize, SimDuration)> {
        let g = self.inner.lock();
        let mut agg: Vec<(EventKind, usize, SimDuration)> = Vec::new();
        for e in g.events.buf.iter() {
            match agg.iter_mut().find(|(k, _, _)| *k == e.kind) {
                Some((_, n, d)) => {
                    *n += 1;
                    *d += e.duration;
                }
                None => agg.push((e.kind, 1, e.duration)),
            }
        }
        agg.sort_by_key(|e| std::cmp::Reverse(e.2));
        agg
    }

    /// Render the event log as an indented text timeline (one line per
    /// event), for debugging and experiment write-ups.
    pub fn render_timeline(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in self.inner.lock().events.buf.iter() {
            let _ = writeln!(
                out,
                "[{:>10.3}s +{:>9.3}s] {:<10} {}",
                e.start.as_secs(),
                e.duration.as_secs(),
                format!("{:?}", e.kind),
                e.label
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(partition: usize, node: u32, core: usize, start: f64, dur: f64) -> TaskExecution {
        TaskExecution {
            partition,
            node: NodeId(node),
            core,
            start: SimDuration::from_secs(start),
            duration: SimDuration::from_secs(dur),
            profile: TaskProfile::new(),
        }
    }

    #[test]
    fn clock_advances() {
        let m = Metrics::new();
        let (s, e) = m.advance(SimDuration::from_secs(2.0));
        assert_eq!(s, SimInstant::EPOCH);
        assert_eq!(e.as_secs(), 2.0);
        assert_eq!(m.now().as_secs(), 2.0);
    }

    #[test]
    fn events_are_logged_in_order() {
        let m = Metrics::new();
        m.advance_with_event(SimDuration::from_secs(1.0), EventKind::Stage, "s0");
        m.advance_with_event(SimDuration::from_secs(0.5), EventKind::Iteration, "pass 1");
        let ev = m.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].label, "s0");
        assert_eq!(ev[1].start.as_secs(), 1.0);
        assert_eq!(ev[1].end().as_secs(), 1.5);
        assert_eq!(m.events_of(EventKind::Iteration).len(), 1);
    }

    #[test]
    fn record_span_covers_elapsed_interval() {
        let m = Metrics::new();
        let start = m.now();
        m.advance(SimDuration::from_secs(0.25));
        m.advance(SimDuration::from_secs(0.75));
        m.record_span(EventKind::Job, "job", start);
        let ev = m.events();
        assert_eq!(ev[0].duration.as_secs(), 1.0);
    }

    #[test]
    fn task_counters_merge() {
        let m = Metrics::new();
        let mut w = WorkCounters::new();
        w.add_records_in(5);
        m.count_tasks(3, &w);
        m.count_tasks(2, &w);
        let snap = m.snapshot();
        assert_eq!(snap.tasks, 5);
        assert_eq!(snap.work.records_in, 10);
    }

    #[test]
    fn record_stage_files_all_granularities() {
        let m = Metrics::new();
        let job = m.begin_job("job a");
        let stage_id = m.record_stage(StageExecution {
            label: "stage one".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::from_secs(0.5),
            trailing: SimDuration::ZERO,
            tasks: vec![task(0, 0, 0, 0.0, 1.0), task(1, 1, 0, 0.0, 2.0)],
        });
        m.end_job(job);

        // Clock: 0.5 overhead + 2.0 makespan.
        assert_eq!(m.now().as_secs(), 2.5);

        let stages = m.stage_spans();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].stage_id, stage_id);
        assert_eq!(stages[0].job_id, job);
        assert_eq!(stages[0].tasks, 2);
        assert_eq!(stages[0].duration.as_secs(), 2.5);

        let tasks = m.task_spans();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].start.as_secs(), 0.5, "task starts after overhead");
        assert_eq!(tasks[1].end().as_secs(), 2.5);
        assert!(tasks
            .iter()
            .all(|t| t.stage_id == stage_id && t.job_id == job));

        let jobs = m.job_spans();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].duration.as_secs(), 2.5);

        let snap = m.snapshot();
        assert_eq!((snap.jobs, snap.stages, snap.tasks), (1, 1, 2));
    }

    #[test]
    fn trailing_time_extends_the_stage() {
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "map wave".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::from_secs(3.0),
            tasks: vec![task(0, 0, 0, 0.0, 1.0)],
        });
        assert_eq!(m.now().as_secs(), 4.0);
        assert_eq!(m.stage_spans()[0].duration.as_secs(), 4.0);
    }

    #[test]
    fn queue_time_precedes_overhead_and_extends_the_stage() {
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "queued".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::from_secs(2.0),
            overhead: SimDuration::from_secs(0.5),
            trailing: SimDuration::ZERO,
            tasks: vec![task(0, 0, 0, 0.0, 1.0)],
        });
        // queue 2.0 + overhead 0.5 + makespan 1.0.
        assert_eq!(m.now().as_secs(), 3.5);
        let span = &m.stage_spans()[0];
        assert_eq!(span.queue.as_secs(), 2.0);
        assert_eq!(span.duration.as_secs(), 3.5);
        // Tasks launch only after both queue and overhead have elapsed.
        assert_eq!(m.task_spans()[0].start.as_secs(), 2.5);
    }

    #[test]
    fn stage_outside_job_gets_job_zero() {
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "orphan".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![task(0, 0, 0, 0.0, 1.0)],
        });
        assert_eq!(m.stage_spans()[0].job_id, 0);
    }

    #[test]
    fn shuffle_stage_keeps_its_identity() {
        let m = Metrics::new();
        m.record_stage(StageExecution {
            label: "shuffle 9 map".into(),
            kind: EventKind::Shuffle,
            shuffle_id: Some(9),
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![],
        });
        let s = &m.stage_spans()[0];
        assert_eq!(s.kind, EventKind::Shuffle);
        assert_eq!(s.shuffle_id, Some(9));
        assert_eq!(m.events_of(EventKind::Shuffle).len(), 1);
    }

    #[test]
    fn ring_buffers_drop_oldest_and_count() {
        let m = Metrics::with_capacity(MetricsCapacity {
            events: 2,
            jobs: 2,
            stages: 2,
            tasks: 3,
        });
        for i in 0..5 {
            m.record_stage(StageExecution {
                label: format!("s{i}"),
                kind: EventKind::Stage,
                shuffle_id: None,
                queue: SimDuration::ZERO,
                overhead: SimDuration::ZERO,
                trailing: SimDuration::ZERO,
                tasks: vec![task(0, 0, 0, 0.0, 1.0)],
            });
        }
        let d = m.dropped();
        assert_eq!(d.events, 3);
        assert_eq!(d.stages, 3);
        assert_eq!(d.tasks, 2);
        assert_eq!(d.total(), 8);
        // Newest entries survive.
        let labels: Vec<String> = m.stage_spans().into_iter().map(|s| s.label).collect();
        assert_eq!(labels, vec!["s3".to_string(), "s4".to_string()]);
        // Aggregates are not affected by dropping.
        assert_eq!(m.snapshot().stages, 5);
        assert_eq!(m.snapshot().tasks, 5);
    }

    #[test]
    fn nested_jobs_parent_to_innermost() {
        let m = Metrics::new();
        let outer = m.begin_job("outer");
        let inner = m.begin_job("inner");
        m.record_stage(StageExecution {
            label: "s".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            trailing: SimDuration::ZERO,
            tasks: vec![task(0, 0, 0, 0.0, 1.0)],
        });
        m.end_job(inner);
        m.end_job(outer);
        assert_eq!(m.stage_spans()[0].job_id, inner);
        assert_eq!(m.job_spans().len(), 2);
    }

    #[test]
    fn end_job_with_unknown_id_is_a_noop() {
        let m = Metrics::new();
        m.end_job(42);
        assert!(m.job_spans().is_empty());
        assert_eq!(m.snapshot().jobs, 0);
    }

    #[test]
    fn summary_aggregates_by_kind() {
        let m = Metrics::new();
        m.advance_with_event(SimDuration::from_secs(1.0), EventKind::Stage, "a");
        m.advance_with_event(SimDuration::from_secs(2.0), EventKind::Stage, "b");
        m.advance_with_event(SimDuration::from_secs(0.5), EventKind::Broadcast, "c");
        let s = m.summary_by_kind();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, EventKind::Stage);
        assert_eq!(s[0].1, 2);
        assert_eq!(s[0].2.as_secs(), 3.0);
        assert_eq!(s[1].0, EventKind::Broadcast);
    }

    #[test]
    fn timeline_renders_every_event() {
        let m = Metrics::new();
        m.advance_with_event(SimDuration::from_secs(1.0), EventKind::Job, "job one");
        m.advance_with_event(SimDuration::from_secs(0.25), EventKind::Stage, "stage two");
        let text = m.render_timeline();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("job one"));
        assert!(text.contains("stage two"));
        assert!(text.contains("1.000s"), "{text}");
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::with_capacity(MetricsCapacity {
            events: 7,
            jobs: 7,
            stages: 7,
            tasks: 7,
        });
        m.advance_with_event(SimDuration::from_secs(1.0), EventKind::Job, "j");
        m.count_job();
        m.reset();
        assert_eq!(m.now(), SimInstant::EPOCH);
        assert!(m.events().is_empty());
        assert_eq!(m.snapshot().jobs, 0);
        // Capacity survives the reset.
        for i in 0..9 {
            m.advance_with_event(
                SimDuration::from_secs(1.0),
                EventKind::Other,
                format!("{i}"),
            );
        }
        assert_eq!(m.dropped().events, 2);
    }
}
