//! Minimal synchronization primitives over `std::sync`.
//!
//! The repository builds with no external crates, so this module provides
//! the small slice of the `parking_lot` API the codebase uses: `lock()` /
//! `read()` / `write()` return guards directly instead of a `Result`.
//! Poisoning is deliberately ignored — a panicked task already re-panics on
//! the caller thread via the worker pool, and metrics/cache state stays
//! consistent because every critical section is a handful of field updates.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a `Result` (poison-transparent).
#[derive(Default, Debug)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards are poison-transparent.
#[derive(Default, Debug)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable paired with [`Mutex`]; `wait` consumes and returns the
/// guard (std style).
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A fresh condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the lock while waiting.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // A poisoned std mutex would refuse to lock; the shim recovers.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                done = cv.wait(done);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().expect("waiter exits");
    }
}
