//! Typed metrics registry: named counters, gauges and log-bucketed
//! histograms shared by the engines.
//!
//! The span log ([`crate::metrics`]) answers *when* things happened; the
//! registry answers *how much* of each thing happened, cheaply enough to be
//! fed from hot paths. No external deps — snapshots serialize through the
//! same hand-rolled [`JsonValue`] as the trace exporter, and everything is
//! deterministic: counters are order-independent sums, histogram buckets
//! are computed from the float's exponent bits (no libm), and snapshots
//! emit in sorted name order.
//!
//! Handles are cheap `Arc` clones; `counter`/`gauge`/`histogram` get or
//! create by name and panic if the name is already registered with a
//! different type (a programming error worth failing loudly on).

use crate::json::JsonValue;
use crate::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n`.
    pub fn inc(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins value (stored as f64 bits in an atomic).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Power-of-two-bucketed distribution of f64 observations.
#[derive(Clone)]
pub struct Histogram {
    state: Arc<Mutex<HistState>>,
}

#[derive(Default)]
struct HistState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// floor(log2(value)) → observation count.
    buckets: BTreeMap<i32, u64>,
}

/// `floor(log2(v))` for positive `v`, read off the exponent bits so the
/// bucketing is bit-deterministic across platforms (no libm). Non-positive
/// and subnormal values land in the lowest bucket.
fn log2_floor(v: f64) -> i32 {
    if v.is_nan() || v < f64::MIN_POSITIVE {
        return -1023;
    }
    ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let mut g = self.state.lock();
        if g.count == 0 {
            g.min = v;
            g.max = v;
        } else {
            if v < g.min {
                g.min = v;
            }
            if v > g.max {
                g.max = v;
            }
        }
        g.count += 1;
        g.sum += v;
        *g.buckets.entry(log2_floor(v)).or_insert(0) += 1;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.state.lock().count
    }
}

/// Read-only copy of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// `(floor(log2(value)), count)` pairs, ascending — a value `v` with
    /// exponent `e` satisfies `2^e <= v < 2^(e+1)`.
    pub buckets: Vec<(i32, u64)>,
}

impl HistogramSnapshot {
    /// JSON object (bucket keys are the stringified exponents).
    pub fn to_json(&self) -> JsonValue {
        let buckets = JsonValue::Object(
            self.buckets
                .iter()
                .map(|(e, n)| (e.to_string(), JsonValue::from(*n)))
                .collect(),
        );
        JsonValue::object(vec![
            ("count", JsonValue::from(self.count)),
            ("sum", JsonValue::from(self.sum)),
            ("min", JsonValue::from(self.min)),
            ("max", JsonValue::from(self.max)),
            ("buckets", buckets),
        ])
    }
}

/// Read-only copy of the whole registry, in sorted name order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// JSON object `{counters, gauges, histograms}` (deterministic order).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            (
                "counters",
                JsonValue::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::from(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                JsonValue::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::from(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                JsonValue::Object(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<Mutex<HistState>>>,
}

/// The registry. Cheap to clone; all clones share the same metrics.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn assert_untyped(inner: &RegistryInner, name: &str, want: &str) {
        let taken = if inner.counters.contains_key(name) {
            "counter"
        } else if inner.gauges.contains_key(name) {
            "gauge"
        } else if inner.histograms.contains_key(name) {
            "histogram"
        } else {
            return;
        };
        if taken != want {
            panic!("metric '{name}' is registered as a {taken}, requested as a {want}");
        }
    }

    /// Get or create the counter `name`. Panics if `name` is registered
    /// with a different type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.lock();
        Self::assert_untyped(&g, name, "counter");
        let cell = g
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter { cell }
    }

    /// Get or create the gauge `name`. Panics if `name` is registered with
    /// a different type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.inner.lock();
        Self::assert_untyped(&g, name, "gauge");
        let bits = g
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits())))
            .clone();
        Gauge { bits }
    }

    /// Get or create the histogram `name`. Panics if `name` is registered
    /// with a different type.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut g = self.inner.lock();
        Self::assert_untyped(&g, name, "histogram");
        let state = g
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(HistState::default())))
            .clone();
        Histogram { state }
    }

    /// Copy every metric's current value.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let g = self.inner.lock();
        RegistrySnapshot {
            counters: g
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: g
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, v)| {
                    let h = v.lock();
                    (
                        k.clone(),
                        HistogramSnapshot {
                            count: h.count,
                            sum: h.sum,
                            min: h.min,
                            max: h.max,
                            buckets: h.buckets.iter().map(|(e, n)| (*e, *n)).collect(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Drop every metric (for reusing a cluster across runs). Outstanding
    /// handles keep updating their detached cells.
    pub fn reset(&self) {
        *self.inner.lock() = RegistryInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let r = MetricsRegistry::new();
        let a = r.counter("tasks");
        let b = r.counter("tasks");
        a.inc(2);
        b.inc(3);
        assert_eq!(r.counter("tasks").get(), 5);
        assert_eq!(r.snapshot().counters["tasks"], 5);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = MetricsRegistry::new();
        r.gauge("cache.bytes").set(10.5);
        r.gauge("cache.bytes").set(7.25);
        assert_eq!(r.snapshot().gauges["cache.bytes"], 7.25);
    }

    #[test]
    fn histogram_buckets_by_exponent() {
        let r = MetricsRegistry::new();
        let h = r.histogram("task_seconds");
        h.observe(1.5); // exp 0
        h.observe(1.0); // exp 0
        h.observe(4.0); // exp 2
        h.observe(0.75); // exp -1
        h.observe(0.0); // lowest bucket
        let s = &r.snapshot().histograms["task_seconds"];
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(
            s.buckets,
            vec![(-1023, 1), (-1, 1), (0, 2), (2, 1)],
            "{s:?}"
        );
        assert!((s.sum - 7.25).abs() < 1e-12);
    }

    #[test]
    fn log2_floor_matches_libm_on_normals() {
        for v in [1e-9, 0.1, 0.5, 1.0, 1.999, 2.0, 3.0, 1024.0, 1e12] {
            assert_eq!(log2_floor(v), v.log2().floor() as i32, "v={v}");
        }
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn type_conflicts_panic() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_serializes_and_round_trips() {
        let r = MetricsRegistry::new();
        r.counter("a.count").inc(7);
        r.gauge("b.level").set(2.5);
        r.histogram("c.dist").observe(3.0);
        let json = r.snapshot().to_json();
        let back = crate::json::parse(&json.to_string()).expect("parses");
        assert_eq!(
            back.get("counters")
                .and_then(|c| c.get("a.count"))
                .and_then(JsonValue::as_f64),
            Some(7.0)
        );
        assert_eq!(
            back.get("histograms")
                .and_then(|h| h.get("c.dist"))
                .and_then(|d| d.get("count"))
                .and_then(JsonValue::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn reset_clears_metrics() {
        let r = MetricsRegistry::new();
        r.counter("n").inc(1);
        r.reset();
        assert!(r.snapshot().counters.is_empty());
    }
}
