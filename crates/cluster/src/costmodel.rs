//! The calibrated cost model: every conversion from *work* (records, bytes,
//! hash-tree visits) into *virtual time* lives here.
//!
//! This is the single file to edit when calibrating experiment shapes against
//! the paper (see `EXPERIMENTS.md`). The defaults, [`CostModel::hadoop_era`],
//! describe commodity hardware and framework overheads of the 2013/2014 era
//! the paper measured on:
//!
//! * spinning disks around 100 MB/s sequential,
//! * 1 GbE interconnect (~117 MiB/s),
//! * Hadoop 1.x jobs paying tens of seconds of fixed setup (JobTracker
//!   scheduling, JVM spawning per task, heartbeat-based slot assignment),
//! * Spark 0.7 stages paying tens of *milliseconds* of fixed setup.
//!
//! That asymmetry — per-iteration fixed cost plus mandatory HDFS round trips
//! for MapReduce versus in-memory reuse for Spark — is precisely the effect
//! YAFIM's evaluation measures, so it must be modelled explicitly rather than
//! emerge from host hardware.

use crate::time::SimDuration;

/// All virtual-time constants.
///
/// Engines never hard-code a cost: they count work and call the conversion
/// helpers on this struct.
#[derive(Clone, Debug)]
pub struct CostModel {
    // ---- hardware ----
    /// Sequential disk read bandwidth per node, bytes/s.
    pub disk_read_bw: f64,
    /// Sequential disk write bandwidth per node, bytes/s.
    pub disk_write_bw: f64,
    /// Network bandwidth per node link, bytes/s.
    pub net_bw: f64,
    /// Per-transfer network latency (connection setup etc.).
    pub net_latency: f64,
    /// Memory scan bandwidth per core, bytes/s (reading cached partitions).
    pub mem_scan_bw: f64,
    /// Seconds per abstract CPU work unit (one record touch, one hash-tree
    /// node visit, one candidate comparison). JVM-era constant; identical for
    /// both engines — the frameworks differ in overheads, not in per-record
    /// compute.
    pub cpu_unit: f64,
    /// Serialization/deserialization throughput, bytes/s (applies at shuffle
    /// and broadcast boundaries on both engines).
    pub ser_bw: f64,
    /// Block-checksum throughput, bytes/s (fx-hash64 over serialized bytes;
    /// charged at every checksummed write and every verified read when a
    /// corruption plan is active).
    pub checksum_bw: f64,

    // ---- MapReduce (Hadoop 1.x) framework ----
    /// Fixed per-job overhead: submission, JobTracker setup, output commit.
    pub mr_job_overhead: f64,
    /// Per-task overhead: JVM launch + task setup.
    pub mr_task_overhead: f64,
    /// Scheduling latency per task wave (heartbeat-based slot assignment).
    pub mr_wave_latency: f64,
    /// HDFS replication factor for committed output (pipeline writes).
    pub hdfs_replication: u32,
    /// Multiplier on map-output bytes for local spill traffic
    /// (write + merge read; 2.0 = one spill pass).
    pub mr_spill_factor: f64,

    // ---- Spark (0.7-era) framework ----
    /// Fixed per-job (action) overhead at the driver.
    pub spark_job_overhead: f64,
    /// Per-stage overhead: DAG scheduling + task-set dispatch.
    pub spark_stage_overhead: f64,
    /// Per-task overhead: deserialize closure, launch in existing executor.
    pub spark_task_overhead: f64,
}

impl CostModel {
    /// Constants calibrated to the paper's 2014 testbed (see module docs).
    pub fn hadoop_era() -> Self {
        CostModel {
            disk_read_bw: 100.0e6,
            disk_write_bw: 80.0e6,
            net_bw: 117.0e6,
            net_latency: 1.0e-3,
            mem_scan_bw: 4.0e9,
            cpu_unit: 100.0e-9,
            ser_bw: 400.0e6,
            checksum_bw: 8.0e9,
            mr_job_overhead: 20.0,
            mr_task_overhead: 1.5,
            mr_wave_latency: 4.0,
            hdfs_replication: 3,
            mr_spill_factor: 2.0,
            spark_job_overhead: 0.4,
            spark_stage_overhead: 0.5,
            spark_task_overhead: 0.02,
        }
    }

    /// A cost model with all fixed overheads zeroed — useful in unit tests
    /// that want to reason about pure data-dependent costs.
    pub fn zero_overhead() -> Self {
        CostModel {
            mr_job_overhead: 0.0,
            mr_task_overhead: 0.0,
            mr_wave_latency: 0.0,
            spark_job_overhead: 0.0,
            spark_stage_overhead: 0.0,
            spark_task_overhead: 0.0,
            net_latency: 0.0,
            ..Self::hadoop_era()
        }
    }

    // ---- conversion helpers ----

    /// Time to read `bytes` sequentially from a node-local disk.
    pub fn disk_read(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs(bytes as f64 / self.disk_read_bw)
    }

    /// Time to write `bytes` sequentially to a node-local disk.
    pub fn disk_write(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs(bytes as f64 / self.disk_write_bw)
    }

    /// Time to move `bytes` across one network link.
    pub fn net_transfer(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs(self.net_latency + bytes as f64 / self.net_bw)
    }

    /// Time to scan `bytes` from the in-memory cache on one core.
    pub fn mem_scan(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs(bytes as f64 / self.mem_scan_bw)
    }

    /// Time for `units` abstract CPU work units on one core.
    pub fn cpu(&self, units: u64) -> SimDuration {
        SimDuration::from_secs(units as f64 * self.cpu_unit)
    }

    /// Time to (de)serialize `bytes` on one core.
    pub fn serialize(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs(bytes as f64 / self.ser_bw)
    }

    /// Time to fx-hash64-checksum `bytes` on one core (block write
    /// checksumming and read-time verification).
    pub fn checksum(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs(bytes as f64 / self.checksum_bw)
    }

    /// Time to commit `bytes` to HDFS with pipeline replication: one local
    /// disk write plus `replication - 1` network hops plus the remote disk
    /// writes, pipelined (bounded by the slowest stage of the pipeline).
    pub fn hdfs_write(&self, bytes: u64) -> SimDuration {
        let disk = self.disk_write(bytes);
        let net = self.net_transfer(bytes) * (self.hdfs_replication.saturating_sub(1)) as f64;
        disk.max(net) + self.disk_write(bytes) // pipeline bound + final replica write
    }

    /// Time to build a vertical TID-bitmap arena: write `words` `u64`s of
    /// zeroed bitset rows (memory bandwidth) plus one cheap CPU touch per
    /// bit set (`set_bits` = item occurrences in the partition). The
    /// per-task charge of the columnar Phase-II projection.
    pub fn bitmap_build(&self, words: u64, set_bits: u64) -> SimDuration {
        self.mem_scan(words * 8) + self.cpu(set_bits)
    }

    /// Time for a BitTorrent-style broadcast of `bytes` to `nodes` nodes
    /// (Spark's broadcast variables): the data is chunked and re-shared, so
    /// total time grows logarithmically in the node count.
    pub fn broadcast_torrent(&self, bytes: u64, nodes: u32) -> SimDuration {
        if nodes == 0 || bytes == 0 {
            return SimDuration::ZERO;
        }
        let rounds = (nodes as f64).log2().ceil().max(1.0);
        self.serialize(bytes) + self.net_transfer(bytes) * rounds
    }

    /// Time for the naive alternative the paper calls out in §IV.C: the
    /// driver ships the shared data with *every task*, serialized through the
    /// master's single uplink, which becomes the bottleneck.
    pub fn broadcast_naive(&self, bytes: u64, tasks: usize) -> SimDuration {
        self.serialize(bytes) + self.net_transfer(bytes) * tasks as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::hadoop_era()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions() {
        let m = CostModel::hadoop_era();
        assert!((m.disk_read(100_000_000).as_secs() - 1.0).abs() < 1e-9);
        assert!((m.cpu(10_000_000).as_secs() - 1.0).abs() < 1e-9);
        assert_eq!(m.net_transfer(0), SimDuration::ZERO);
    }

    #[test]
    fn hdfs_write_more_expensive_than_local() {
        let m = CostModel::hadoop_era();
        assert!(m.hdfs_write(1_000_000) > m.disk_write(1_000_000));
    }

    #[test]
    fn torrent_beats_naive_for_many_tasks() {
        let m = CostModel::hadoop_era();
        let bytes = 10_000_000;
        let torrent = m.broadcast_torrent(bytes, 12);
        let naive = m.broadcast_naive(bytes, 96 * 2);
        assert!(
            torrent < naive,
            "torrent {torrent:?} should beat naive {naive:?}"
        );
    }

    #[test]
    fn torrent_scales_logarithmically() {
        let m = CostModel::hadoop_era();
        let b4 = m.broadcast_torrent(1_000_000, 4);
        let b16 = m.broadcast_torrent(1_000_000, 16);
        // 4 nodes → 2 rounds, 16 nodes → 4 rounds: exactly 2× the net term.
        let net = m.net_transfer(1_000_000);
        assert!((b16.as_secs() - b4.as_secs() - (net * 2.0).as_secs()).abs() < 1e-9);
    }

    #[test]
    fn checksum_is_cheaper_than_serialization() {
        let m = CostModel::hadoop_era();
        let bytes = 1_000_000;
        assert!(m.checksum(bytes) > SimDuration::ZERO);
        assert!(m.checksum(bytes) < m.serialize(bytes));
    }

    #[test]
    fn bitmap_build_sums_arena_write_and_bit_sets() {
        let m = CostModel::hadoop_era();
        let t = m.bitmap_build(1_000_000, 500_000);
        let expect = m.mem_scan(8_000_000) + m.cpu(500_000);
        assert!((t.as_secs() - expect.as_secs()).abs() < 1e-12);
        assert_eq!(m.bitmap_build(0, 0), SimDuration::ZERO);
    }

    #[test]
    fn zero_overhead_keeps_hardware() {
        let m = CostModel::zero_overhead();
        assert_eq!(m.mr_job_overhead, 0.0);
        assert_eq!(m.disk_read_bw, CostModel::hadoop_era().disk_read_bw);
    }
}
