//! Versioned, machine-readable run manifests.
//!
//! A [`RunManifest`] is the contract between a bench binary and the
//! regression gate: one JSON document per run carrying the schema version,
//! the dataset parameters, the configuration (plus a fingerprint over
//! both), and a **flat map of scalar metrics** — virtual makespan,
//! critical-path buckets, recovery counters, registry counters — that the
//! gate compares against a committed baseline with per-metric tolerance
//! bands. A nested `detail` object keeps the full critical-path report and
//! registry snapshot for humans; the gate only reads `metrics`.
//!
//! Only *deterministic* quantities belong in `metrics` (virtual time,
//! counters, byte totals). Wall-clock numbers vary run to run and must stay
//! in the text reports / `detail`, never where the gate can see them.
//!
//! The fingerprint is an FxHash over the canonical JSON of `dataset` and
//! `config`: two manifests with different fingerprints describe different
//! experiments, and the gate refuses to compare them.

use crate::critical::critical_path;
use crate::hash::fx_hash64;
use crate::json::JsonValue;
use crate::SimCluster;
use std::collections::BTreeMap;

/// Manifest schema version. Bump when the metric names or the layout
/// change incompatibly; the gate refuses cross-version comparisons.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// One run's machine-readable summary.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// [`MANIFEST_SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// Bench binary / experiment name, e.g. `"pipeline"`.
    pub bench: String,
    /// Engine variant the run measured, e.g. `"fused"`.
    pub engine: String,
    /// Dataset parameters (JSON object).
    pub dataset: JsonValue,
    /// Configuration knobs (JSON object).
    pub config: JsonValue,
    /// Fingerprint over `dataset` + `config`.
    pub fingerprint: String,
    /// Flat scalar metrics the regression gate compares. Deterministic
    /// quantities only.
    pub metrics: BTreeMap<String, f64>,
    /// Full critical-path report, registry snapshot, and anything else
    /// worth keeping for humans. Not compared by the gate.
    pub detail: JsonValue,
}

impl RunManifest {
    /// The canonical fingerprint over dataset and config JSON.
    pub fn fingerprint_of(dataset: &JsonValue, config: &JsonValue) -> String {
        format!("{:016x}", fx_hash64(&format!("{dataset}\u{0}{config}")))
    }

    /// Build a manifest from a finished run on `cluster`: captures the
    /// virtual clock, critical-path buckets, recovery counters and the
    /// typed-registry counters into `metrics`, and the full reports into
    /// `detail`. Benches add their own scalars with
    /// [`RunManifest::push_metric`] afterwards.
    pub fn capture(
        bench: impl Into<String>,
        engine: impl Into<String>,
        dataset: JsonValue,
        config: JsonValue,
        cluster: &SimCluster,
    ) -> RunManifest {
        let report = critical_path(cluster.metrics(), cluster.cost());
        let registry = cluster.registry().snapshot();
        let snap = cluster.metrics().snapshot();

        let mut metrics = BTreeMap::new();
        metrics.insert("virtual_seconds".to_string(), snap.now.as_secs());
        metrics.insert("jobs".to_string(), snap.jobs as f64);
        metrics.insert("stages".to_string(), snap.stages as f64);
        metrics.insert("tasks".to_string(), snap.tasks as f64);
        for (name, secs) in report.buckets.named() {
            metrics.insert(format!("bucket.{name}"), secs);
        }
        let r = &snap.recovery;
        for (name, v) in [
            ("task_failures", r.task_failures),
            ("task_retries", r.task_retries),
            ("nodes_lost", r.nodes_lost),
            ("nodes_blacklisted", r.nodes_blacklisted),
            ("speculative_launched", r.speculative_launched),
            ("speculative_wins", r.speculative_wins),
            ("recomputed_partitions", r.recomputed_partitions),
            ("fetch_failures", r.fetch_failures),
            ("broadcast_refetches", r.broadcast_refetches),
            ("fetch_retries", r.fetch_retries),
            ("backoff_micros", r.backoff_micros),
            ("checkpoint_writes", r.checkpoint_writes),
            ("checkpoint_reads", r.checkpoint_reads),
            ("max_replay_depth", r.max_replay_depth),
        ] {
            metrics.insert(format!("recovery.{name}"), v as f64);
        }
        let i = &r.integrity;
        for (name, v) in [
            ("corruptions_injected", i.corruptions_injected),
            ("corruptions_detected", i.corruptions_detected),
            ("corruptions_repaired", i.corruptions_repaired),
            ("repaired_via_replica", i.repaired_via_replica),
            ("repaired_via_recompute", i.repaired_via_recompute),
            ("repaired_via_resubmit", i.repaired_via_resubmit),
        ] {
            metrics.insert(format!("integrity.{name}"), v as f64);
        }
        let m = &r.mem;
        for (name, v) in [
            ("peak_execution_bytes", m.peak_execution_bytes),
            ("spills", m.spills),
            ("spill_bytes", m.spill_bytes),
            ("degradations", m.degradations),
            ("oom_injected", m.oom_injected),
            ("oom_killed", m.oom_killed),
            ("oom_survived_by_degradation", m.oom_survived_by_degradation),
        ] {
            metrics.insert(format!("mem.{name}"), v as f64);
        }
        for (name, v) in &registry.counters {
            metrics.insert(format!("counter.{name}"), *v as f64);
        }
        for (name, v) in &registry.gauges {
            metrics.insert(format!("gauge.{name}"), *v);
        }
        for (name, h) in &registry.histograms {
            metrics.insert(format!("hist.{name}.count"), h.count as f64);
            metrics.insert(format!("hist.{name}.sum"), h.sum);
        }

        let fingerprint = Self::fingerprint_of(&dataset, &config);
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            bench: bench.into(),
            engine: engine.into(),
            dataset,
            config,
            fingerprint,
            metrics,
            detail: JsonValue::object(vec![
                ("critical_path", report.to_json()),
                ("registry", registry.to_json()),
            ]),
        }
    }

    /// Add a bench-specific scalar metric (deterministic quantities only).
    pub fn push_metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.insert(name.into(), value);
    }

    /// Serialize to the manifest JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("schema_version", JsonValue::from(self.schema_version)),
            ("bench", JsonValue::from(self.bench.as_str())),
            ("engine", JsonValue::from(self.engine.as_str())),
            ("dataset", self.dataset.clone()),
            ("config", self.config.clone()),
            ("fingerprint", JsonValue::from(self.fingerprint.as_str())),
            (
                "metrics",
                JsonValue::Object(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::from(*v)))
                        .collect(),
                ),
            ),
            ("detail", self.detail.clone()),
        ])
    }

    /// Parse a manifest back from JSON (strict on the fields the gate
    /// needs, lenient on `detail`).
    pub fn from_json(v: &JsonValue) -> Result<RunManifest, String> {
        let obj = v.as_object().ok_or("manifest is not an object")?;
        let schema_version = v
            .get("schema_version")
            .and_then(JsonValue::as_f64)
            .ok_or("missing schema_version")? as u64;
        let bench = v
            .get("bench")
            .and_then(JsonValue::as_str)
            .ok_or("missing bench")?
            .to_string();
        let engine = v
            .get("engine")
            .and_then(JsonValue::as_str)
            .ok_or("missing engine")?
            .to_string();
        let dataset = v.get("dataset").cloned().ok_or("missing dataset")?;
        let config = v.get("config").cloned().ok_or("missing config")?;
        let fingerprint = v
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .ok_or("missing fingerprint")?
            .to_string();
        let metrics = v
            .get("metrics")
            .and_then(JsonValue::as_object)
            .ok_or("missing metrics")?
            .iter()
            .map(|(k, val)| {
                val.as_f64()
                    .map(|f| (k.clone(), f))
                    .ok_or_else(|| format!("metric '{k}' is not a number"))
            })
            .collect::<Result<BTreeMap<String, f64>, String>>()?;
        let detail = obj.get("detail").cloned().unwrap_or(JsonValue::Null);
        Ok(RunManifest {
            schema_version,
            bench,
            engine,
            dataset,
            config,
            fingerprint,
            metrics,
            detail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{EventKind, StageExecution, TaskExecution};
    use crate::spec::{ClusterSpec, NodeId};
    use crate::time::SimDuration;
    use crate::work::TaskProfile;
    use crate::CostModel;

    fn small_cluster_with_work() -> SimCluster {
        let c =
            SimCluster::with_threads(ClusterSpec::new(2, 2, 1 << 30), CostModel::hadoop_era(), 1);
        c.registry().counter("executor.tasks").inc(2);
        c.registry().histogram("executor.task_seconds").observe(1.0);
        let mut profile = TaskProfile::new();
        profile.work.add_records_in(100);
        c.metrics().record_stage(StageExecution {
            label: "s".into(),
            kind: EventKind::Stage,
            shuffle_id: None,
            queue: SimDuration::ZERO,
            overhead: SimDuration::from_secs(0.5),
            trailing: SimDuration::ZERO,
            tasks: vec![TaskExecution {
                partition: 0,
                node: NodeId(0),
                core: 0,
                start: SimDuration::ZERO,
                duration: SimDuration::from_secs(1.0),
                profile,
            }],
        });
        c
    }

    #[test]
    fn capture_round_trips_through_json() {
        let c = small_cluster_with_work();
        let dataset = JsonValue::object(vec![("name", "toy".into()), ("records", 100u64.into())]);
        let config = JsonValue::object(vec![("mode", "fused".into())]);
        let mut m = RunManifest::capture("pipeline", "fused", dataset, config, &c);
        m.push_metric("pipeline.records", 100.0);

        let text = m.to_json().to_string();
        let back = RunManifest::from_json(&crate::json::parse(&text).expect("parses")).expect("ok");
        assert_eq!(back, m);
        assert_eq!(back.schema_version, MANIFEST_SCHEMA_VERSION);
        assert_eq!(back.metrics["virtual_seconds"], 1.5);
        assert_eq!(back.metrics["counter.executor.tasks"], 2.0);
        assert_eq!(
            back.metrics["mem.spills"], 0.0,
            "mem.* keys exist (zero-valued) even without an armed governor"
        );
        assert_eq!(back.metrics["mem.peak_execution_bytes"], 0.0);
        assert_eq!(back.metrics["hist.executor.task_seconds.count"], 1.0);
        assert_eq!(back.metrics["pipeline.records"], 100.0);
    }

    #[test]
    fn bucket_metrics_sum_to_makespan() {
        let c = small_cluster_with_work();
        let m = RunManifest::capture(
            "b",
            "e",
            JsonValue::object(vec![]),
            JsonValue::object(vec![]),
            &c,
        );
        let total: f64 = m
            .metrics
            .iter()
            .filter(|(k, _)| k.starts_with("bucket."))
            .map(|(_, v)| v)
            .sum();
        assert!((total - m.metrics["virtual_seconds"]).abs() < 1e-6);
    }

    #[test]
    fn fingerprint_tracks_dataset_and_config() {
        let d1 = JsonValue::object(vec![("n", 1u64.into())]);
        let d2 = JsonValue::object(vec![("n", 2u64.into())]);
        let c1 = JsonValue::object(vec![("mode", "a".into())]);
        assert_eq!(
            RunManifest::fingerprint_of(&d1, &c1),
            RunManifest::fingerprint_of(&d1, &c1)
        );
        assert_ne!(
            RunManifest::fingerprint_of(&d1, &c1),
            RunManifest::fingerprint_of(&d2, &c1)
        );
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let v = crate::json::parse("{\"bench\":\"x\"}").unwrap();
        assert!(RunManifest::from_json(&v).is_err());
    }
}
