//! The virtual list scheduler.
//!
//! A stage (Spark) or task wave (MapReduce) is a bag of tasks with known
//! virtual durations. The scheduler assigns them to `nodes × cores_per_node`
//! virtual cores and reports the makespan — the virtual wall-clock time the
//! stage would have taken on the paper's cluster.
//!
//! Placement rules (deterministic):
//!
//! * a task with a preferred node (its input partition is cached there, or an
//!   HDFS replica is local) runs on the earliest-available core *of that
//!   node* — unless that core only frees up after the **locality wait**, in
//!   which case the task spills over to the globally earliest core. This is
//!   Spark's delay scheduling (`spark.locality.wait`): without it, a stage
//!   whose 192 partitions all come from one HDFS block would serialize onto
//!   a single node's cores;
//! * a task with no preference runs on the earliest-available core anywhere,
//!   ties broken by core index.
//!
//! The global earliest-core search runs on a binary heap with lazy
//! deletion ordered by `(free_time, core_index)`, which reproduces the
//! linear scan's lowest-index tie-break while doing O(log cores) work per
//! decision instead of O(cores). [`DetailedSchedule::decision_units`]
//! counts the heap operations actually performed, so benches can assert
//! the scheduler's decision overhead stays sublinear in cluster size
//! without touching the host clock.
//!
//! A scheduler may be restricted to a **node slice** — a contiguous run of
//! nodes granted to one job by the [`crate::jobs::JobQueue`]. Placements
//! always report absolute cluster node ids; preferences for nodes outside
//! the slice are remapped deterministically into it (the data moved when
//! the job's executor set shrank).

use crate::spec::{ClusterSpec, NodeId};
use crate::time::{SimDuration, SimInstant};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Default locality wait before a task gives up on its preferred node.
pub const DEFAULT_LOCALITY_WAIT: f64 = 0.3;

/// Heartbeat-based liveness detection.
///
/// Every node emits a heartbeat to the driver at `t = 0, interval,
/// 2·interval, …` on the virtual timeline. A node that dies at instant `d`
/// sends its last beat at the latest multiple of `interval` not after `d`;
/// the driver declares it lost only once `timeout` has elapsed since that
/// beat without hearing another. This replaces the oracle view of PR 2
/// (where a planned loss was visible the instant it happened) with what a
/// real driver can actually observe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatMonitor {
    interval: SimDuration,
    timeout: SimDuration,
}

impl HeartbeatMonitor {
    /// A monitor with the given beat interval and missed-beat timeout.
    /// The interval must be positive; the timeout may be zero (detection
    /// at the last beat plus nothing — clamped to the death itself).
    pub fn new(interval: SimDuration, timeout: SimDuration) -> Self {
        assert!(
            interval > SimDuration::ZERO,
            "heartbeat interval must be positive"
        );
        HeartbeatMonitor { interval, timeout }
    }

    /// Beat interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Missed-beat timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Instant of the last heartbeat a node dying at `death` managed to
    /// send: the latest beat at or before the death.
    pub fn last_beat(&self, death: SimInstant) -> SimInstant {
        let beats = (death.as_secs() / self.interval.as_secs()).floor();
        SimInstant::from_secs(beats * self.interval.as_secs())
    }

    /// Instant the driver declares a node dying at `death` lost: `timeout`
    /// past its last beat, clamped to never precede the death itself (the
    /// driver cannot know about a failure before it happens).
    pub fn detection_instant(&self, death: SimInstant) -> SimInstant {
        (self.last_beat(death) + self.timeout).max(death)
    }
}

/// One task to be scheduled.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Full virtual duration (engine overhead + data time).
    pub duration: SimDuration,
    /// Node the task prefers to run on (data locality), if any.
    pub preferred_node: Option<NodeId>,
}

impl TaskSpec {
    /// A task with no locality preference.
    pub fn anywhere(duration: SimDuration) -> Self {
        TaskSpec {
            duration,
            preferred_node: None,
        }
    }

    /// A task pinned to the node holding its input.
    pub fn local(duration: SimDuration, node: NodeId) -> Self {
        TaskSpec {
            duration,
            preferred_node: Some(node),
        }
    }
}

/// Result of scheduling one bag of tasks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleOutcome {
    /// Virtual time until the last task finishes.
    pub makespan: SimDuration,
    /// Total busy core-time (sum of all task durations).
    pub total_busy: SimDuration,
    /// Number of tasks scheduled.
    pub tasks: usize,
    /// Maximum number of tasks any single core executed ("waves" for a
    /// uniform bag). MapReduce charges its heartbeat latency per wave.
    pub waves: usize,
}

/// Where and when one task ran, relative to stage submission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskPlacement {
    /// Node the task executed on (after any locality spill-over).
    pub node: NodeId,
    /// Core index *within* its node.
    pub core: usize,
    /// Launch time relative to stage submission — the task's queue wait.
    pub start: SimDuration,
    /// The task's virtual duration (as passed in).
    pub duration: SimDuration,
}

/// [`ScheduleOutcome`] plus per-task placements, in input task order.
#[derive(Clone, Debug)]
pub struct DetailedSchedule {
    /// Aggregate outcome (makespan, busy time, waves).
    pub outcome: ScheduleOutcome,
    /// One placement per input task.
    pub placements: Vec<TaskPlacement>,
    /// Deterministic count of scheduler decisions taken (heap pushes and
    /// pops for the heap path, cores examined for the fault-aware linear
    /// path). A pure measure of scheduling overhead: independent of the
    /// host clock, comparable across cluster sizes.
    pub decision_units: u64,
}

/// Greedy earliest-core list scheduler over the virtual cluster (or a
/// contiguous node slice of it).
#[derive(Clone, Debug)]
pub struct VirtualScheduler {
    spec: ClusterSpec,
    locality_wait: SimDuration,
    /// First node of the slice this scheduler may place tasks on.
    node_lo: usize,
    /// Number of nodes in the slice.
    node_count: usize,
}

impl VirtualScheduler {
    /// A scheduler for the given topology with the default locality wait.
    pub fn new(spec: ClusterSpec) -> Self {
        Self::with_locality_wait(spec, SimDuration::from_secs(DEFAULT_LOCALITY_WAIT))
    }

    /// A scheduler with an explicit locality wait (`SimDuration::ZERO`
    /// disables locality entirely; a very large value pins tasks strictly).
    pub fn with_locality_wait(spec: ClusterSpec, locality_wait: SimDuration) -> Self {
        let nodes = spec.nodes as usize;
        Self::with_slice(spec, locality_wait, 0, nodes)
    }

    /// A scheduler restricted to the contiguous node slice
    /// `[node_lo, node_lo + node_count)` — the executor set one job holds
    /// under the multi-job queue. `node_count` is clamped to stay inside
    /// the topology and to at least one node.
    pub fn with_slice(
        spec: ClusterSpec,
        locality_wait: SimDuration,
        node_lo: usize,
        node_count: usize,
    ) -> Self {
        let nodes = spec.nodes as usize;
        let node_lo = node_lo.min(nodes.saturating_sub(1));
        let node_count = node_count.clamp(1, nodes - node_lo);
        VirtualScheduler {
            spec,
            locality_wait,
            node_lo,
            node_count,
        }
    }

    /// Topology this scheduler simulates.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Delay-scheduling wait before a task gives up on locality.
    pub fn locality_wait(&self) -> SimDuration {
        self.locality_wait
    }

    /// The node slice this scheduler places tasks on, as
    /// `(first_node, node_count)`.
    pub fn node_slice(&self) -> (usize, usize) {
        (self.node_lo, self.node_count)
    }

    /// Map a preferred node into the scheduler's slice: identity when the
    /// node is inside it, deterministic modular remap when the job's
    /// executor set no longer covers it. Returns a slice-relative index.
    pub fn rel_node(&self, node: NodeId) -> usize {
        let n = node.index();
        if n >= self.node_lo && n < self.node_lo + self.node_count {
            n - self.node_lo
        } else {
            n % self.node_count
        }
    }

    /// Schedule `tasks` (in order) and return the outcome.
    pub fn schedule(&self, tasks: &[TaskSpec]) -> ScheduleOutcome {
        self.schedule_detailed(tasks).outcome
    }

    /// Like [`VirtualScheduler::schedule`], also reporting where and when
    /// each task ran — the raw material for per-task spans and traces.
    pub fn schedule_detailed(&self, tasks: &[TaskSpec]) -> DetailedSchedule {
        let cores_per_node = self.spec.cores_per_node as usize;
        let total_cores = self.node_count * cores_per_node;

        // free[i]: time (slice-relative) core i becomes free. Cores are
        // grouped by node: slice node n owns cores n*cores_per_node ..
        // (n+1)*cores_per_node.
        let mut free = vec![SimDuration::ZERO; total_cores];
        let mut count = vec![0usize; total_cores];

        // Min-heap over (free_time, core) with lazy deletion: every core
        // always has exactly one *current* entry (matching free[core]);
        // superseded entries are dropped when they surface. Lexicographic
        // order reproduces the linear scan's lowest-index tie-break.
        let mut heap: BinaryHeap<Reverse<(SimDuration, usize)>> = (0..total_cores)
            .map(|c| Reverse((SimDuration::ZERO, c)))
            .collect();
        let mut units = 0u64;
        // The current global earliest core, discarding stale entries.
        let valid_top = |heap: &mut BinaryHeap<Reverse<(SimDuration, usize)>>,
                         free: &[SimDuration],
                         units: &mut u64|
         -> (SimDuration, usize) {
            loop {
                let Reverse((t, c)) = *heap.peek().expect("every core keeps a live entry");
                if t == free[c] {
                    return (t, c);
                }
                heap.pop();
                *units += 1;
            }
        };

        let earliest_in = |free: &[SimDuration], lo: usize, hi: usize| -> usize {
            let mut best = lo;
            for i in lo + 1..hi {
                if free[i] < free[best] {
                    best = i;
                }
            }
            best
        };

        let mut total_busy = SimDuration::ZERO;
        let mut placements = Vec::with_capacity(tasks.len());
        for t in tasks {
            let core = match t.preferred_node {
                Some(node) => {
                    let lo = self.rel_node(node) * cores_per_node;
                    let local = earliest_in(&free, lo, lo + cores_per_node);
                    units += 1;
                    if free[local] <= self.locality_wait {
                        local
                    } else {
                        // Delay scheduling expired: run anywhere. (The input
                        // bytes a spilled task reads remotely are a rounding
                        // error next to its compute; the duration is kept.)
                        let (global_free, global) = valid_top(&mut heap, &free, &mut units);
                        if free[local] <= global_free {
                            local
                        } else {
                            global
                        }
                    }
                }
                None => valid_top(&mut heap, &free, &mut units).1,
            };
            placements.push(TaskPlacement {
                node: NodeId((self.node_lo + core / cores_per_node) as u32),
                core: core % cores_per_node,
                start: free[core],
                duration: t.duration,
            });
            free[core] += t.duration;
            heap.push(Reverse((free[core], core)));
            units += 1;
            count[core] += 1;
            total_busy += t.duration;
        }

        let makespan = free
            .iter()
            .copied()
            .fold(SimDuration::ZERO, SimDuration::max);
        let waves = count.iter().copied().max().unwrap_or(0);

        DetailedSchedule {
            outcome: ScheduleOutcome {
                makespan,
                total_busy,
                tasks: tasks.len(),
                waves,
            },
            placements,
            decision_units: units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GIB;

    fn spec(nodes: u32, cores: u32) -> ClusterSpec {
        ClusterSpec::new(nodes, cores, GIB)
    }

    #[test]
    fn empty_bag_is_instant() {
        let s = VirtualScheduler::new(spec(2, 2));
        let out = s.schedule(&[]);
        assert_eq!(out.makespan, SimDuration::ZERO);
        assert_eq!(out.waves, 0);
    }

    #[test]
    fn perfectly_parallel_bag() {
        let s = VirtualScheduler::new(spec(2, 2));
        let tasks: Vec<_> = (0..4)
            .map(|_| TaskSpec::anywhere(SimDuration::from_secs(1.0)))
            .collect();
        let out = s.schedule(&tasks);
        assert_eq!(out.makespan.as_secs(), 1.0);
        assert_eq!(out.waves, 1);
        assert_eq!(out.total_busy.as_secs(), 4.0);
    }

    #[test]
    fn two_waves() {
        let s = VirtualScheduler::new(spec(1, 2));
        let tasks: Vec<_> = (0..4)
            .map(|_| TaskSpec::anywhere(SimDuration::from_secs(1.0)))
            .collect();
        let out = s.schedule(&tasks);
        assert_eq!(out.makespan.as_secs(), 2.0);
        assert_eq!(out.waves, 2);
    }

    #[test]
    fn strict_locality_pins_to_node() {
        // With an effectively infinite locality wait, node 0's single core
        // serializes its 3 one-second tasks while node 1 idles.
        let s = VirtualScheduler::with_locality_wait(spec(2, 1), SimDuration::from_secs(1e9));
        let tasks: Vec<_> = (0..3)
            .map(|_| TaskSpec::local(SimDuration::from_secs(1.0), NodeId(0)))
            .collect();
        let out = s.schedule(&tasks);
        assert_eq!(out.makespan.as_secs(), 3.0, "strict locality serializes");
    }

    #[test]
    fn delay_scheduling_spills_over_after_wait() {
        // Default wait (0.3s): the first task runs local; the rest find the
        // local core busy past the wait and spread across the cluster.
        let s = VirtualScheduler::new(spec(2, 1));
        let tasks: Vec<_> = (0..2)
            .map(|_| TaskSpec::local(SimDuration::from_secs(1.0), NodeId(0)))
            .collect();
        let out = s.schedule(&tasks);
        assert_eq!(out.makespan.as_secs(), 1.0, "second task ran on node 1");
    }

    #[test]
    fn zero_locality_wait_disables_delay_scheduling() {
        // wait = 0: the *second* task already finds its node's core busy
        // (queue > 0) and spills immediately — the "no locality" extreme.
        let s = VirtualScheduler::with_locality_wait(spec(2, 1), SimDuration::ZERO);
        let tasks: Vec<_> = (0..2)
            .map(|_| TaskSpec::local(SimDuration::from_secs(0.1), NodeId(0)))
            .collect();
        let out = s.schedule(&tasks);
        assert_eq!(
            out.makespan.as_secs(),
            0.1,
            "with zero wait even a 0.1s queue spills the task over"
        );
        // Default wait keeps the same bag local (queue 0.1 <= 0.3).
        let local = VirtualScheduler::new(spec(2, 1)).schedule(&tasks);
        assert!((local.makespan.as_secs() - 0.2).abs() < 1e-9, "{local:?}");
    }

    #[test]
    fn short_queue_stays_local() {
        // A queue shorter than the wait keeps tasks on their node.
        let s = VirtualScheduler::new(spec(2, 1));
        let tasks: Vec<_> = (0..3)
            .map(|_| TaskSpec::local(SimDuration::from_secs(0.1), NodeId(0)))
            .collect();
        let out = s.schedule(&tasks);
        assert!((out.makespan.as_secs() - 0.3).abs() < 1e-9, "{out:?}");
        assert_eq!(out.waves, 3);
    }

    #[test]
    fn round_robin_locality_balances() {
        let s = VirtualScheduler::new(spec(4, 2));
        let tasks: Vec<_> = (0..16)
            .map(|i| TaskSpec::local(SimDuration::from_secs(1.0), NodeId(i % 4)))
            .collect();
        let out = s.schedule(&tasks);
        assert_eq!(out.makespan.as_secs(), 2.0);
    }

    #[test]
    fn makespan_bounds_hold() {
        let s = VirtualScheduler::new(spec(3, 2));
        let tasks: Vec<_> = (0..17)
            .map(|i| TaskSpec::anywhere(SimDuration::from_secs(0.1 * (i % 5 + 1) as f64)))
            .collect();
        let out = s.schedule(&tasks);
        let max_task = tasks
            .iter()
            .map(|t| t.duration)
            .fold(SimDuration::ZERO, SimDuration::max);
        let lower = out.total_busy / 6.0;
        assert!(out.makespan >= lower.max(max_task));
        assert!(out.makespan <= lower + max_task + SimDuration::from_secs(1e-9));
    }

    #[test]
    fn detailed_placements_match_outcome_and_never_overlap() {
        let s = VirtualScheduler::new(spec(2, 2));
        let tasks: Vec<_> = (0..9)
            .map(|i| TaskSpec::anywhere(SimDuration::from_secs(0.1 * (i % 4 + 1) as f64)))
            .collect();
        let d = s.schedule_detailed(&tasks);
        assert_eq!(d.placements.len(), tasks.len());
        assert_eq!(d.outcome, s.schedule(&tasks));
        // End of the latest placement is the makespan.
        let end = d
            .placements
            .iter()
            .map(|p| p.start + p.duration)
            .fold(SimDuration::ZERO, SimDuration::max);
        assert_eq!(end, d.outcome.makespan);
        // Per-core intervals must not overlap.
        let mut by_core: std::collections::HashMap<(u32, usize), Vec<&TaskPlacement>> =
            std::collections::HashMap::new();
        for p in &d.placements {
            by_core.entry((p.node.0, p.core)).or_default().push(p);
        }
        for ps in by_core.values_mut() {
            ps.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite"));
            for w in ps.windows(2) {
                assert!(
                    w[0].start + w[0].duration <= w[1].start,
                    "overlap on a core"
                );
            }
        }
    }

    #[test]
    fn detailed_respects_locality_node() {
        let s = VirtualScheduler::with_locality_wait(spec(2, 1), SimDuration::from_secs(1e9));
        let tasks: Vec<_> = (0..2)
            .map(|_| TaskSpec::local(SimDuration::from_secs(1.0), NodeId(1)))
            .collect();
        let d = s.schedule_detailed(&tasks);
        assert!(d.placements.iter().all(|p| p.node == NodeId(1)));
        assert_eq!(d.placements[1].start.as_secs(), 1.0, "second task queued");
    }

    /// Reference implementation: the pre-heap linear scan, kept verbatim to
    /// pin the heap path's placements bit-for-bit.
    fn linear_reference(s: &VirtualScheduler, tasks: &[TaskSpec]) -> Vec<TaskPlacement> {
        let cores_per_node = s.spec().cores_per_node as usize;
        let (node_lo, node_count) = s.node_slice();
        let total_cores = node_count * cores_per_node;
        let mut free = vec![SimDuration::ZERO; total_cores];
        let earliest_in = |free: &[SimDuration], lo: usize, hi: usize| -> usize {
            let mut best = lo;
            for i in lo + 1..hi {
                if free[i] < free[best] {
                    best = i;
                }
            }
            best
        };
        let mut placements = Vec::new();
        for t in tasks {
            let core = match t.preferred_node {
                Some(node) => {
                    let lo = s.rel_node(node) * cores_per_node;
                    let local = earliest_in(&free, lo, lo + cores_per_node);
                    if free[local] <= s.locality_wait() {
                        local
                    } else {
                        let global = earliest_in(&free, 0, total_cores);
                        if free[local] <= free[global] {
                            local
                        } else {
                            global
                        }
                    }
                }
                None => earliest_in(&free, 0, total_cores),
            };
            placements.push(TaskPlacement {
                node: NodeId((node_lo + core / cores_per_node) as u32),
                core: core % cores_per_node,
                start: free[core],
                duration: t.duration,
            });
            free[core] += t.duration;
        }
        placements
    }

    #[test]
    fn heap_path_matches_linear_reference_bit_for_bit() {
        // Pseudo-random mixed bags across several topologies: the heap's
        // (free, core) ordering must reproduce the linear scan exactly,
        // including lowest-index tie-breaks on fully idle clusters.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (nodes, cores) in [(1u32, 1u32), (3, 2), (8, 4), (13, 3)] {
            let s = VirtualScheduler::new(spec(nodes, cores));
            let tasks: Vec<TaskSpec> = (0..200)
                .map(|_| {
                    let dur = SimDuration::from_secs((next() % 50) as f64 * 0.01);
                    if next() % 3 == 0 {
                        TaskSpec::local(dur, NodeId((next() % nodes as u64) as u32))
                    } else {
                        TaskSpec::anywhere(dur)
                    }
                })
                .collect();
            let d = s.schedule_detailed(&tasks);
            assert_eq!(
                d.placements,
                linear_reference(&s, &tasks),
                "{nodes}x{cores}: heap diverged from the linear reference"
            );
        }
    }

    #[test]
    fn decision_units_stay_sublinear_in_cluster_size() {
        // Same bag, 100 vs 1000 nodes: per-task decisions are O(log cores),
        // so the counted units must grow far slower than the 10x node count.
        let tasks: Vec<_> = (0..512)
            .map(|i| TaskSpec::anywhere(SimDuration::from_secs(0.01 * (i % 7 + 1) as f64)))
            .collect();
        let small = VirtualScheduler::new(spec(100, 8)).schedule_detailed(&tasks);
        let large = VirtualScheduler::new(spec(1000, 8)).schedule_detailed(&tasks);
        assert!(small.decision_units > 0);
        assert!(
            large.decision_units <= small.decision_units * 2,
            "units {} -> {} across a 10x node sweep",
            small.decision_units,
            large.decision_units
        );
    }

    #[test]
    fn node_slice_confines_placements_and_remaps_preferences() {
        // Nodes [4, 8) of a 12-node cluster: everything lands inside the
        // slice, and a preference for node 1 (outside) remaps into it.
        let s = VirtualScheduler::with_slice(
            spec(12, 2),
            SimDuration::from_secs(DEFAULT_LOCALITY_WAIT),
            4,
            4,
        );
        let mut tasks: Vec<_> = (0..16)
            .map(|_| TaskSpec::anywhere(SimDuration::from_secs(1.0)))
            .collect();
        tasks.push(TaskSpec::local(SimDuration::from_secs(1.0), NodeId(1)));
        tasks.push(TaskSpec::local(SimDuration::from_secs(1.0), NodeId(5)));
        let d = s.schedule_detailed(&tasks);
        assert!(d
            .placements
            .iter()
            .all(|p| (4..8).contains(&(p.node.0 as usize))));
        // 18 one-second tasks on 8 cores: two full waves plus a third.
        assert_eq!(d.outcome.makespan.as_secs(), 3.0);
        // The in-slice preference is honored exactly.
        let pinned = d.placements.last().expect("non-empty");
        assert_eq!(pinned.node, NodeId(5));
    }

    #[test]
    fn slice_clamps_to_topology() {
        let s = VirtualScheduler::with_slice(spec(4, 2), SimDuration::ZERO, 2, 100);
        assert_eq!(s.node_slice(), (2, 2));
        let s = VirtualScheduler::with_slice(spec(4, 2), SimDuration::ZERO, 9, 1);
        assert_eq!(s.node_slice(), (3, 1));
    }

    #[test]
    fn heartbeat_detection_follows_last_beat() {
        let hb = HeartbeatMonitor::new(SimDuration::from_secs(0.5), SimDuration::from_secs(1.0));
        // Death at 1.3s: last beat at 1.0s, detected at 2.0s.
        assert_eq!(
            hb.detection_instant(SimInstant::from_secs(1.3)),
            SimInstant::from_secs(2.0)
        );
        // Death exactly on a beat: that beat still went out.
        assert_eq!(
            hb.last_beat(SimInstant::from_secs(1.5)),
            SimInstant::from_secs(1.5)
        );
        assert_eq!(
            hb.detection_instant(SimInstant::from_secs(1.5)),
            SimInstant::from_secs(2.5)
        );
        // Detection never precedes the death itself.
        let tight = HeartbeatMonitor::new(SimDuration::from_secs(10.0), SimDuration::ZERO);
        assert_eq!(
            tight.detection_instant(SimInstant::from_secs(3.0)),
            SimInstant::from_secs(3.0)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_heartbeat_interval_rejected() {
        HeartbeatMonitor::new(SimDuration::ZERO, SimDuration::from_secs(1.0));
    }

    #[test]
    fn more_cores_never_slower() {
        let tasks: Vec<_> = (0..50)
            .map(|i| TaskSpec::anywhere(SimDuration::from_secs((i % 7 + 1) as f64 * 0.01)))
            .collect();
        let m_small = VirtualScheduler::new(spec(2, 2)).schedule(&tasks).makespan;
        let m_big = VirtualScheduler::new(spec(4, 4)).schedule(&tasks).makespan;
        assert!(m_big <= m_small);
    }
}
