//! The virtual list scheduler.
//!
//! A stage (Spark) or task wave (MapReduce) is a bag of tasks with known
//! virtual durations. The scheduler assigns them to `nodes × cores_per_node`
//! virtual cores and reports the makespan — the virtual wall-clock time the
//! stage would have taken on the paper's cluster.
//!
//! Placement rules (deterministic):
//!
//! * a task with a preferred node (its input partition is cached there, or an
//!   HDFS replica is local) runs on the earliest-available core *of that
//!   node* — unless that core only frees up after the **locality wait**, in
//!   which case the task spills over to the globally earliest core. This is
//!   Spark's delay scheduling (`spark.locality.wait`): without it, a stage
//!   whose 192 partitions all come from one HDFS block would serialize onto
//!   a single node's cores;
//! * a task with no preference runs on the earliest-available core anywhere,
//!   ties broken by core index.

use crate::spec::{ClusterSpec, NodeId};
use crate::time::{SimDuration, SimInstant};

/// Default locality wait before a task gives up on its preferred node.
pub const DEFAULT_LOCALITY_WAIT: f64 = 0.3;

/// Heartbeat-based liveness detection.
///
/// Every node emits a heartbeat to the driver at `t = 0, interval,
/// 2·interval, …` on the virtual timeline. A node that dies at instant `d`
/// sends its last beat at the latest multiple of `interval` not after `d`;
/// the driver declares it lost only once `timeout` has elapsed since that
/// beat without hearing another. This replaces the oracle view of PR 2
/// (where a planned loss was visible the instant it happened) with what a
/// real driver can actually observe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatMonitor {
    interval: SimDuration,
    timeout: SimDuration,
}

impl HeartbeatMonitor {
    /// A monitor with the given beat interval and missed-beat timeout.
    /// The interval must be positive; the timeout may be zero (detection
    /// at the last beat plus nothing — clamped to the death itself).
    pub fn new(interval: SimDuration, timeout: SimDuration) -> Self {
        assert!(
            interval > SimDuration::ZERO,
            "heartbeat interval must be positive"
        );
        HeartbeatMonitor { interval, timeout }
    }

    /// Beat interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Missed-beat timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Instant of the last heartbeat a node dying at `death` managed to
    /// send: the latest beat at or before the death.
    pub fn last_beat(&self, death: SimInstant) -> SimInstant {
        let beats = (death.as_secs() / self.interval.as_secs()).floor();
        SimInstant::from_secs(beats * self.interval.as_secs())
    }

    /// Instant the driver declares a node dying at `death` lost: `timeout`
    /// past its last beat, clamped to never precede the death itself (the
    /// driver cannot know about a failure before it happens).
    pub fn detection_instant(&self, death: SimInstant) -> SimInstant {
        (self.last_beat(death) + self.timeout).max(death)
    }
}

/// One task to be scheduled.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Full virtual duration (engine overhead + data time).
    pub duration: SimDuration,
    /// Node the task prefers to run on (data locality), if any.
    pub preferred_node: Option<NodeId>,
}

impl TaskSpec {
    /// A task with no locality preference.
    pub fn anywhere(duration: SimDuration) -> Self {
        TaskSpec {
            duration,
            preferred_node: None,
        }
    }

    /// A task pinned to the node holding its input.
    pub fn local(duration: SimDuration, node: NodeId) -> Self {
        TaskSpec {
            duration,
            preferred_node: Some(node),
        }
    }
}

/// Result of scheduling one bag of tasks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleOutcome {
    /// Virtual time until the last task finishes.
    pub makespan: SimDuration,
    /// Total busy core-time (sum of all task durations).
    pub total_busy: SimDuration,
    /// Number of tasks scheduled.
    pub tasks: usize,
    /// Maximum number of tasks any single core executed ("waves" for a
    /// uniform bag). MapReduce charges its heartbeat latency per wave.
    pub waves: usize,
}

/// Where and when one task ran, relative to stage submission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskPlacement {
    /// Node the task executed on (after any locality spill-over).
    pub node: NodeId,
    /// Core index *within* its node.
    pub core: usize,
    /// Launch time relative to stage submission — the task's queue wait.
    pub start: SimDuration,
    /// The task's virtual duration (as passed in).
    pub duration: SimDuration,
}

/// [`ScheduleOutcome`] plus per-task placements, in input task order.
#[derive(Clone, Debug)]
pub struct DetailedSchedule {
    /// Aggregate outcome (makespan, busy time, waves).
    pub outcome: ScheduleOutcome,
    /// One placement per input task.
    pub placements: Vec<TaskPlacement>,
}

/// Greedy earliest-core list scheduler over the virtual cluster.
#[derive(Clone, Debug)]
pub struct VirtualScheduler {
    spec: ClusterSpec,
    locality_wait: SimDuration,
}

impl VirtualScheduler {
    /// A scheduler for the given topology with the default locality wait.
    pub fn new(spec: ClusterSpec) -> Self {
        Self::with_locality_wait(spec, SimDuration::from_secs(DEFAULT_LOCALITY_WAIT))
    }

    /// A scheduler with an explicit locality wait (`SimDuration::ZERO`
    /// disables locality entirely; a very large value pins tasks strictly).
    pub fn with_locality_wait(spec: ClusterSpec, locality_wait: SimDuration) -> Self {
        VirtualScheduler {
            spec,
            locality_wait,
        }
    }

    /// Topology this scheduler simulates.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Delay-scheduling wait before a task gives up on locality.
    pub fn locality_wait(&self) -> SimDuration {
        self.locality_wait
    }

    /// Schedule `tasks` (in order) and return the outcome.
    pub fn schedule(&self, tasks: &[TaskSpec]) -> ScheduleOutcome {
        self.schedule_detailed(tasks).outcome
    }

    /// Like [`VirtualScheduler::schedule`], also reporting where and when
    /// each task ran — the raw material for per-task spans and traces.
    pub fn schedule_detailed(&self, tasks: &[TaskSpec]) -> DetailedSchedule {
        let nodes = self.spec.nodes as usize;
        let cores_per_node = self.spec.cores_per_node as usize;
        let total_cores = nodes * cores_per_node;

        // free[i]: time core i becomes free. Cores are grouped by node:
        // node n owns cores n*cores_per_node .. (n+1)*cores_per_node.
        let mut free = vec![SimDuration::ZERO; total_cores];
        let mut count = vec![0usize; total_cores];

        let earliest_in = |free: &[SimDuration], lo: usize, hi: usize| -> usize {
            let mut best = lo;
            for i in lo + 1..hi {
                if free[i] < free[best] {
                    best = i;
                }
            }
            best
        };

        let mut total_busy = SimDuration::ZERO;
        let mut placements = Vec::with_capacity(tasks.len());
        for t in tasks {
            let core = match t.preferred_node {
                Some(node) => {
                    let lo = node.index() * cores_per_node;
                    let local = earliest_in(&free, lo, lo + cores_per_node);
                    if free[local] <= self.locality_wait {
                        local
                    } else {
                        // Delay scheduling expired: run anywhere. (The input
                        // bytes a spilled task reads remotely are a rounding
                        // error next to its compute; the duration is kept.)
                        let global = earliest_in(&free, 0, total_cores);
                        if free[local] <= free[global] {
                            local
                        } else {
                            global
                        }
                    }
                }
                None => earliest_in(&free, 0, total_cores),
            };
            placements.push(TaskPlacement {
                node: NodeId((core / cores_per_node) as u32),
                core: core % cores_per_node,
                start: free[core],
                duration: t.duration,
            });
            free[core] += t.duration;
            count[core] += 1;
            total_busy += t.duration;
        }

        let makespan = free
            .iter()
            .copied()
            .fold(SimDuration::ZERO, SimDuration::max);
        let waves = count.iter().copied().max().unwrap_or(0);

        DetailedSchedule {
            outcome: ScheduleOutcome {
                makespan,
                total_busy,
                tasks: tasks.len(),
                waves,
            },
            placements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GIB;

    fn spec(nodes: u32, cores: u32) -> ClusterSpec {
        ClusterSpec::new(nodes, cores, GIB)
    }

    #[test]
    fn empty_bag_is_instant() {
        let s = VirtualScheduler::new(spec(2, 2));
        let out = s.schedule(&[]);
        assert_eq!(out.makespan, SimDuration::ZERO);
        assert_eq!(out.waves, 0);
    }

    #[test]
    fn perfectly_parallel_bag() {
        let s = VirtualScheduler::new(spec(2, 2));
        let tasks: Vec<_> = (0..4)
            .map(|_| TaskSpec::anywhere(SimDuration::from_secs(1.0)))
            .collect();
        let out = s.schedule(&tasks);
        assert_eq!(out.makespan.as_secs(), 1.0);
        assert_eq!(out.waves, 1);
        assert_eq!(out.total_busy.as_secs(), 4.0);
    }

    #[test]
    fn two_waves() {
        let s = VirtualScheduler::new(spec(1, 2));
        let tasks: Vec<_> = (0..4)
            .map(|_| TaskSpec::anywhere(SimDuration::from_secs(1.0)))
            .collect();
        let out = s.schedule(&tasks);
        assert_eq!(out.makespan.as_secs(), 2.0);
        assert_eq!(out.waves, 2);
    }

    #[test]
    fn strict_locality_pins_to_node() {
        // With an effectively infinite locality wait, node 0's single core
        // serializes its 3 one-second tasks while node 1 idles.
        let s = VirtualScheduler::with_locality_wait(spec(2, 1), SimDuration::from_secs(1e9));
        let tasks: Vec<_> = (0..3)
            .map(|_| TaskSpec::local(SimDuration::from_secs(1.0), NodeId(0)))
            .collect();
        let out = s.schedule(&tasks);
        assert_eq!(out.makespan.as_secs(), 3.0, "strict locality serializes");
    }

    #[test]
    fn delay_scheduling_spills_over_after_wait() {
        // Default wait (0.3s): the first task runs local; the rest find the
        // local core busy past the wait and spread across the cluster.
        let s = VirtualScheduler::new(spec(2, 1));
        let tasks: Vec<_> = (0..2)
            .map(|_| TaskSpec::local(SimDuration::from_secs(1.0), NodeId(0)))
            .collect();
        let out = s.schedule(&tasks);
        assert_eq!(out.makespan.as_secs(), 1.0, "second task ran on node 1");
    }

    #[test]
    fn short_queue_stays_local() {
        // A queue shorter than the wait keeps tasks on their node.
        let s = VirtualScheduler::new(spec(2, 1));
        let tasks: Vec<_> = (0..3)
            .map(|_| TaskSpec::local(SimDuration::from_secs(0.1), NodeId(0)))
            .collect();
        let out = s.schedule(&tasks);
        assert!((out.makespan.as_secs() - 0.3).abs() < 1e-9, "{out:?}");
        assert_eq!(out.waves, 3);
    }

    #[test]
    fn round_robin_locality_balances() {
        let s = VirtualScheduler::new(spec(4, 2));
        let tasks: Vec<_> = (0..16)
            .map(|i| TaskSpec::local(SimDuration::from_secs(1.0), NodeId(i % 4)))
            .collect();
        let out = s.schedule(&tasks);
        assert_eq!(out.makespan.as_secs(), 2.0);
    }

    #[test]
    fn makespan_bounds_hold() {
        let s = VirtualScheduler::new(spec(3, 2));
        let tasks: Vec<_> = (0..17)
            .map(|i| TaskSpec::anywhere(SimDuration::from_secs(0.1 * (i % 5 + 1) as f64)))
            .collect();
        let out = s.schedule(&tasks);
        let max_task = tasks
            .iter()
            .map(|t| t.duration)
            .fold(SimDuration::ZERO, SimDuration::max);
        let lower = out.total_busy / 6.0;
        assert!(out.makespan >= lower.max(max_task));
        assert!(out.makespan <= lower + max_task + SimDuration::from_secs(1e-9));
    }

    #[test]
    fn detailed_placements_match_outcome_and_never_overlap() {
        let s = VirtualScheduler::new(spec(2, 2));
        let tasks: Vec<_> = (0..9)
            .map(|i| TaskSpec::anywhere(SimDuration::from_secs(0.1 * (i % 4 + 1) as f64)))
            .collect();
        let d = s.schedule_detailed(&tasks);
        assert_eq!(d.placements.len(), tasks.len());
        assert_eq!(d.outcome, s.schedule(&tasks));
        // End of the latest placement is the makespan.
        let end = d
            .placements
            .iter()
            .map(|p| p.start + p.duration)
            .fold(SimDuration::ZERO, SimDuration::max);
        assert_eq!(end, d.outcome.makespan);
        // Per-core intervals must not overlap.
        let mut by_core: std::collections::HashMap<(u32, usize), Vec<&TaskPlacement>> =
            std::collections::HashMap::new();
        for p in &d.placements {
            by_core.entry((p.node.0, p.core)).or_default().push(p);
        }
        for ps in by_core.values_mut() {
            ps.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite"));
            for w in ps.windows(2) {
                assert!(
                    w[0].start + w[0].duration <= w[1].start,
                    "overlap on a core"
                );
            }
        }
    }

    #[test]
    fn detailed_respects_locality_node() {
        let s = VirtualScheduler::with_locality_wait(spec(2, 1), SimDuration::from_secs(1e9));
        let tasks: Vec<_> = (0..2)
            .map(|_| TaskSpec::local(SimDuration::from_secs(1.0), NodeId(1)))
            .collect();
        let d = s.schedule_detailed(&tasks);
        assert!(d.placements.iter().all(|p| p.node == NodeId(1)));
        assert_eq!(d.placements[1].start.as_secs(), 1.0, "second task queued");
    }

    #[test]
    fn heartbeat_detection_follows_last_beat() {
        let hb = HeartbeatMonitor::new(SimDuration::from_secs(0.5), SimDuration::from_secs(1.0));
        // Death at 1.3s: last beat at 1.0s, detected at 2.0s.
        assert_eq!(
            hb.detection_instant(SimInstant::from_secs(1.3)),
            SimInstant::from_secs(2.0)
        );
        // Death exactly on a beat: that beat still went out.
        assert_eq!(
            hb.last_beat(SimInstant::from_secs(1.5)),
            SimInstant::from_secs(1.5)
        );
        assert_eq!(
            hb.detection_instant(SimInstant::from_secs(1.5)),
            SimInstant::from_secs(2.5)
        );
        // Detection never precedes the death itself.
        let tight = HeartbeatMonitor::new(SimDuration::from_secs(10.0), SimDuration::ZERO);
        assert_eq!(
            tight.detection_instant(SimInstant::from_secs(3.0)),
            SimInstant::from_secs(3.0)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_heartbeat_interval_rejected() {
        HeartbeatMonitor::new(SimDuration::ZERO, SimDuration::from_secs(1.0));
    }

    #[test]
    fn more_cores_never_slower() {
        let tasks: Vec<_> = (0..50)
            .map(|i| TaskSpec::anywhere(SimDuration::from_secs((i % 7 + 1) as f64 * 0.01)))
            .collect();
        let m_small = VirtualScheduler::new(spec(2, 2)).schedule(&tasks).makespan;
        let m_big = VirtualScheduler::new(spec(4, 4)).schedule(&tasks).makespan;
        assert!(m_big <= m_small);
    }
}
