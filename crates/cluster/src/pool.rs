//! The real worker pool.
//!
//! Virtual cores determine *timing*; this pool determines how fast the
//! simulation itself runs. Tasks are ordinary closures; [`ThreadPool::map`]
//! executes a batch and returns results in input order, propagating panics.

use crate::sync::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of OS threads executing queued closures.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Spawn a pool with `size` worker threads (at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (tx, rx) = channel::<Job>();
        // std's mpsc receiver is single-consumer; share it behind a mutex so
        // every worker can pull from the same queue.
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("yafim-worker-{i}"))
                    .spawn(move || loop {
                        let job = match rx.lock().recv() {
                            Ok(job) => job,
                            Err(_) => break,
                        };
                        job();
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` over every item, in parallel, returning results in input
    /// order. If any task panics, this re-panics on the caller thread after
    /// the batch drains.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send + 'static,
        T: Send + 'static,
        F: Fn(usize, I) -> T + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }

        struct Batch<T> {
            lock: Mutex<BatchState<T>>,
            cv: Condvar,
        }
        struct BatchState<T> {
            results: Vec<Option<T>>,
            remaining: usize,
            /// First panic payload caught in this batch, re-thrown on the
            /// caller thread so the original message survives.
            panic: Option<Box<dyn std::any::Any + Send>>,
        }

        let batch = Arc::new(Batch {
            lock: Mutex::new(BatchState {
                results: (0..n).map(|_| None).collect(),
                remaining: n,
                panic: None,
            }),
            cv: Condvar::new(),
        });
        let f = Arc::new(f);
        let tx = self
            .tx
            .as_ref()
            .expect("thread pool is shut down: the owning SimCluster was dropped while a stage was still submitting tasks");

        for (idx, item) in items.into_iter().enumerate() {
            let batch = Arc::clone(&batch);
            let f = Arc::clone(&f);
            tx.send(Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(|| f(idx, item)));
                // Release this job's share of the task closure *before*
                // signalling completion: the closure may capture the last
                // handle to the cluster that owns this very pool, and its
                // drop must not race past the caller's return from `map`
                // (a worker dropping the pool would self-join).
                drop(f);
                let mut st = batch.lock.lock();
                match out {
                    Ok(v) => st.results[idx] = Some(v),
                    Err(payload) => {
                        // Keep the first payload; later panics in the same
                        // batch are usually knock-on effects.
                        if st.panic.is_none() {
                            st.panic = Some(payload);
                        }
                    }
                }
                st.remaining -= 1;
                if st.remaining == 0 {
                    batch.cv.notify_all();
                }
            }))
            .expect("worker threads exited before the batch was queued: the pool's channel closed unexpectedly");
        }

        let mut st = batch.lock.lock();
        while st.remaining > 0 {
            st = batch.cv.wait(st);
        }
        if let Some(payload) = st.panic.take() {
            // Re-throw the original task panic (message intact) on the
            // caller thread, after the whole batch drained.
            drop(st);
            std::panic::resume_unwind(payload);
        }
        st.results
            .iter_mut()
            .map(|slot| {
                slot.take()
                    .expect("batch accounting bug: remaining hit zero but a result slot is empty")
            })
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers exit, then join them. If the pool is
        // (unexpectedly) dropped *from* one of its own workers, skip the
        // self-join and let that thread exit naturally — joining yourself
        // deadlocks.
        self.tx.take();
        let me = std::thread::current().id();
        for h in self.workers.drain(..) {
            if h.thread().id() == me {
                continue;
            }
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let pool = ThreadPool::new(4);
        let out = pool.map((0..100).collect(), |_, x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch() {
        let pool = ThreadPool::new(2);
        let out: Vec<i32> = pool.map(Vec::<i32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = ThreadPool::new(3);
        for round in 0..50 {
            let out = pool.map(vec![1, 2, 3], move |_, x: i64| x + round);
            assert_eq!(out, vec![1 + round, 2 + round, 3 + round]);
        }
    }

    #[test]
    fn index_is_passed_through() {
        let pool = ThreadPool::new(2);
        let out = pool.map(vec!["a", "b", "c"], |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn closure_captures_released_before_map_returns() {
        // Regression test for a shutdown race: if a task closure holds the
        // last reference to something owning the pool itself, the drop must
        // happen on a worker *before* `map` returns — never afterwards,
        // where it would race with the caller dropping the pool.
        struct Canary(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        for _ in 0..50 {
            let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let canary = Canary(Arc::clone(&drops));
            let pool = ThreadPool::new(3);
            pool.map(vec![1u32, 2, 3], move |_, x| {
                let _keep_alive = &canary;
                x
            });
            assert_eq!(
                drops.load(std::sync::atomic::Ordering::SeqCst),
                1,
                "closure must be fully dropped by the time map returns"
            );
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate_with_original_message() {
        let pool = ThreadPool::new(2);
        pool.map(vec![0, 1, 2], |_, x: i32| {
            if x == 1 {
                panic!("boom");
            }
            x
        });
    }
}
