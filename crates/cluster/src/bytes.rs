//! Byte-size estimation for virtual-time accounting.
//!
//! Shuffle, broadcast and cache costs all depend on how many bytes a value
//! occupies when serialized. [`ByteSize`] gives a cheap, deterministic
//! estimate: fixed-width types report their width, containers add a small
//! header plus their elements. The absolute numbers only need to be
//! *consistent*, since the cost model converts them with calibrated
//! bandwidths.

/// Estimated serialized size of a value, in bytes.
pub trait ByteSize {
    /// The estimate. Must be deterministic for a given value.
    fn byte_size(&self) -> u64;
}

macro_rules! fixed_width {
    ($($t:ty),* $(,)?) => {
        $(impl ByteSize for $t {
            #[inline]
            fn byte_size(&self) -> u64 {
                std::mem::size_of::<$t>() as u64
            }
        })*
    };
}

fixed_width!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl ByteSize for () {
    fn byte_size(&self) -> u64 {
        0
    }
}

impl ByteSize for String {
    fn byte_size(&self) -> u64 {
        self.len() as u64 + 8
    }
}

impl ByteSize for &str {
    fn byte_size(&self) -> u64 {
        self.len() as u64 + 8
    }
}

impl<T: ByteSize> ByteSize for Vec<T> {
    fn byte_size(&self) -> u64 {
        8 + self.iter().map(ByteSize::byte_size).sum::<u64>()
    }
}

impl<T: ByteSize> ByteSize for Box<[T]> {
    fn byte_size(&self) -> u64 {
        8 + self.iter().map(ByteSize::byte_size).sum::<u64>()
    }
}

impl<T: ByteSize> ByteSize for Option<T> {
    fn byte_size(&self) -> u64 {
        1 + self.as_ref().map_or(0, ByteSize::byte_size)
    }
}

impl<T: ByteSize + ?Sized> ByteSize for &T {
    fn byte_size(&self) -> u64 {
        (**self).byte_size()
    }
}

impl<T: ByteSize> ByteSize for std::sync::Arc<T> {
    fn byte_size(&self) -> u64 {
        (**self).byte_size()
    }
}

impl<A: ByteSize, B: ByteSize> ByteSize for (A, B) {
    fn byte_size(&self) -> u64 {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: ByteSize, B: ByteSize, C: ByteSize> ByteSize for (A, B, C) {
    fn byte_size(&self) -> u64 {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

/// Total estimated bytes of a slice of values.
pub fn slice_bytes<T: ByteSize>(items: &[T]) -> u64 {
    items.iter().map(ByteSize::byte_size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(7u32.byte_size(), 4);
        assert_eq!(7u64.byte_size(), 8);
        assert_eq!(true.byte_size(), 1);
    }

    #[test]
    fn strings_scale_with_length() {
        assert_eq!(String::from("abc").byte_size(), 11);
        assert_eq!("abcd".byte_size(), 12);
    }

    #[test]
    fn containers_add_header() {
        assert_eq!(vec![1u32, 2, 3].byte_size(), 8 + 12);
        assert_eq!(Vec::<u32>::new().byte_size(), 8);
        assert_eq!(Some(1u64).byte_size(), 9);
        assert_eq!(Option::<u64>::None.byte_size(), 1);
    }

    #[test]
    fn tuples_sum_components() {
        assert_eq!((1u32, 2u64).byte_size(), 12);
        assert_eq!((1u8, 2u8, String::from("x")).byte_size(), 1 + 1 + 9);
    }

    #[test]
    fn slice_helper() {
        let v = vec![String::from("a"), String::from("bb")];
        assert_eq!(slice_bytes(&v), 9 + 10);
    }
}
